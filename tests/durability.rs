//! Durability properties: a WAL-backed catalog, checkpointed at an
//! arbitrary prefix of a random mutation sequence and recovered after
//! the rest, answers queries **bit-identically** to a live in-memory
//! catalog that applied the same mutations — at 1, 2 and 4 threads.
//!
//! Also: torn-tail and mid-file corruption of the WAL recover the exact
//! intact prefix (frame-level checksums localize the damage).

use proptest::prelude::*;

use pip::core::{DataType, Schema, Value};
use pip::ctable::CRow;
use pip::dist::prelude::builtin;
use pip::engine::{sql, Database};
use pip::expr::{atoms, Conjunction, Equation, RandomVar};
use pip::sampling::SamplerConfig;

/// Deterministic pseudo-stream for structure generation (the proptest
/// shim supplies only flat numeric inputs).
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        ((self.next() as u128 * n as u128) >> 64) as u64
    }

    fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        let u = (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + u * (hi - lo)
    }
}

/// One replayable logical mutation (applied identically to the durable
/// and the live catalog, so both see the same variable identities).
#[derive(Debug, Clone)]
enum Mutation {
    Create(String, Schema),
    Insert(String, Vec<CRow>),
    Drop(String),
}

fn random_var(g: &mut Gen) -> RandomVar {
    match g.below(4) {
        0 => RandomVar::create(
            builtin::normal(),
            &[g.f64_in(-5.0, 5.0), g.f64_in(0.5, 3.0)],
        )
        .unwrap(),
        1 => RandomVar::create(builtin::uniform(), &[-1.0, 4.0]).unwrap(),
        2 => RandomVar::create(builtin::exponential(), &[g.f64_in(0.3, 2.0)]).unwrap(),
        _ => RandomVar::create(builtin::poisson(), &[g.f64_in(0.5, 6.0)]).unwrap(),
    }
}

fn random_cell(g: &mut Gen, dtype: DataType, row_vars: &mut Vec<RandomVar>) -> Equation {
    match dtype {
        DataType::Int => Equation::val(Value::Int(g.below(100) as i64 - 50)),
        DataType::Float => Equation::val(g.f64_in(-10.0, 10.0)),
        DataType::Str => Equation::val(Value::str(format!("s{}", g.below(5)))),
        DataType::Bool => Equation::val(Value::Bool(g.below(2) == 1)),
        DataType::Symbolic => {
            if g.below(3) == 0 {
                Equation::val(g.f64_in(-10.0, 10.0))
            } else {
                let v = random_var(g);
                row_vars.push(v.clone());
                match g.below(3) {
                    0 => Equation::from(v),
                    1 => Equation::from(v) * g.f64_in(0.5, 2.0),
                    _ => Equation::from(v) + g.f64_in(-2.0, 2.0),
                }
            }
        }
    }
}

/// A random, always-valid mutation sequence (tables tracked so inserts
/// and drops land on live names).
fn random_mutations(g: &mut Gen, len: usize) -> Vec<Mutation> {
    let mut out = Vec::new();
    let mut live: Vec<(String, Schema)> = Vec::new();
    let mut next_table = 0usize;
    for _ in 0..len {
        let roll = g.below(10);
        if live.is_empty() || roll < 2 {
            let name = format!("t{next_table}");
            next_table += 1;
            let n_cols = 1 + g.below(3) as usize;
            let cols: Vec<(String, DataType)> = (0..n_cols)
                .map(|i| {
                    let dt = match g.below(4) {
                        0 => DataType::Int,
                        1 => DataType::Float,
                        2 => DataType::Str,
                        _ => DataType::Symbolic,
                    };
                    (format!("c{i}"), dt)
                })
                .collect();
            let schema = Schema::of(
                &cols
                    .iter()
                    .map(|(n, t)| (n.as_str(), *t))
                    .collect::<Vec<_>>(),
            );
            live.push((name.clone(), schema.clone()));
            out.push(Mutation::Create(name, schema));
        } else if roll < 9 {
            let (name, schema) = live[g.below(live.len() as u64) as usize].clone();
            let n_rows = 1 + g.below(4) as usize;
            let rows = (0..n_rows)
                .map(|_| {
                    let mut row_vars = Vec::new();
                    let cells = schema
                        .columns()
                        .iter()
                        .map(|c| random_cell(g, c.dtype, &mut row_vars))
                        .collect();
                    // Conditions over this row's own variables: mostly
                    // satisfiable one-sided bounds, so the samplers
                    // exercise the CDF-bounded and rejection paths.
                    let mut cond = Conjunction::top();
                    if !row_vars.is_empty() && g.below(2) == 0 {
                        let v = row_vars[g.below(row_vars.len() as u64) as usize].clone();
                        let cut = g.f64_in(-2.0, 2.0);
                        cond = if g.below(2) == 0 {
                            Conjunction::single(atoms::gt(Equation::from(v), cut))
                        } else {
                            Conjunction::single(atoms::lt(Equation::from(v), cut + 4.0))
                        };
                    }
                    CRow::new(cells, cond)
                })
                .collect();
            out.push(Mutation::Insert(name, rows));
        } else {
            let i = g.below(live.len() as u64) as usize;
            let (name, _) = live.remove(i);
            out.push(Mutation::Drop(name));
        }
    }
    out
}

fn apply(db: &Database, m: &Mutation) {
    match m {
        Mutation::Create(name, schema) => db.create_table(name, schema.clone()).unwrap(),
        Mutation::Insert(name, rows) => db.insert_rows(name, rows.clone()).unwrap(),
        Mutation::Drop(name) => db.drop_table(name).unwrap(),
    }
}

/// Queries that exercise the sampling stack over every surviving table.
fn probe_queries(db: &Database) -> Vec<String> {
    let mut out = Vec::new();
    for name in db.table_names() {
        let table = db.table(&name).unwrap();
        out.push(format!("SELECT * FROM {name}"));
        for col in table.schema().columns() {
            if col.dtype.is_numeric() {
                out.push(format!("SELECT expected_sum({}) FROM {name}", col.name));
                out.push(format!("SELECT conf() FROM {name} WHERE {} > 1", col.name));
                break;
            }
        }
    }
    out
}

fn tmp_dir(tag: u64) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("pip-durability-{tag:x}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random mutations → checkpoint at a random prefix → more
    /// mutations → recover = snapshot + WAL suffix. The recovered
    /// catalog must answer every probe query bit-identically to a live
    /// catalog that never touched disk, at 1/2/4 threads.
    #[test]
    fn recovered_catalog_is_bit_identical_to_live(
        structure in 0u64..u64::MAX,
        n_mutations in 4usize..18,
    ) {
        let mut g = Gen(structure);
        let mutations = random_mutations(&mut g, n_mutations);
        let checkpoint_at = g.below(n_mutations as u64 + 1) as usize;
        let dir = tmp_dir(structure);

        let live = Database::new();
        {
            let durable = Database::open(&dir).unwrap();
            for (i, m) in mutations.iter().enumerate() {
                if i == checkpoint_at {
                    durable.checkpoint().unwrap();
                }
                apply(&durable, m);
                apply(&live, m);
            }
            if checkpoint_at == mutations.len() {
                durable.checkpoint().unwrap();
            }
        }

        let (recovered, info) = Database::recover(&dir).unwrap();
        prop_assert!(!info.torn_tail);
        // Only the suffix past the checkpoint replays.
        prop_assert_eq!(info.replayed, mutations.len() - checkpoint_at);
        prop_assert_eq!(recovered.table_names(), live.table_names());
        // The version counter survives the restart.
        prop_assert_eq!(recovered.version(), live.version());

        for q in probe_queries(&live) {
            let reference = sql::run(&live, &q, &SamplerConfig::default()).unwrap();
            for threads in [1usize, 2, 4] {
                let cfg = SamplerConfig::default().with_threads(threads);
                let got = sql::run(&recovered, &q, &cfg).unwrap();
                // CTable equality plus rendered text: the render pins
                // float bits via the shortest-round-trip display.
                prop_assert_eq!(&got, &reference);
                prop_assert_eq!(format!("{got}"), format!("{reference}"));
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// A crash mid-append (simulated by garbage at the log tail) loses at
/// most the torn record: recovery truncates to the last intact frame
/// and the catalog equals the state at that frame.
#[test]
fn torn_tail_recovers_the_intact_prefix() {
    let dir = tmp_dir(0xfee1);
    {
        let db = Database::open(&dir).unwrap();
        db.create_table("t", Schema::of(&[("a", DataType::Int)]))
            .unwrap();
        for i in 0..10i64 {
            db.insert_rows(
                "t",
                vec![CRow::unconditional(vec![Equation::val(Value::Int(i))])],
            )
            .unwrap();
        }
    }
    let wal = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| p.extension().is_some_and(|x| x == "pipwal"))
        .expect("a WAL file exists");

    // The on-disk file ends in zeroed preallocation padding; the frames
    // end at the last non-zero byte (a frame's final byte is the JSON
    // payload's closing brace). The tear goes at the write cursor —
    // where a real crash mid-append puts it.
    let clean = {
        let raw = std::fs::read(&wal).unwrap();
        let end = raw.iter().rposition(|&b| b != 0).unwrap() + 1;
        raw[..end].to_vec()
    };

    // Garbage appended at the tail: everything intact survives.
    let mut torn = clean.clone();
    torn.extend_from_slice(&[0x42, 0x00, 0x13, 0x37]);
    std::fs::write(&wal, &torn).unwrap();
    let (db, info) = Database::recover(&dir).unwrap();
    assert!(info.torn_tail);
    assert_eq!(db.table("t").unwrap().len(), 10);

    // A flipped bit mid-file: the checksum catches it, and exactly the
    // records before the damaged frame survive. The damaged byte sits
    // in the 7th insert's frame, so 6 inserts (plus the create) remain.
    let mut corrupt = clean.clone();
    let offset = clean.len() * 7 / 10;
    corrupt[offset] ^= 0x10;
    std::fs::write(&wal, &corrupt).unwrap();
    let (db, info) = Database::recover(&dir).unwrap();
    assert!(info.torn_tail);
    let survived = db.table("t").unwrap().len();
    assert!(
        survived < 10,
        "corruption at byte {offset} must drop at least one record"
    );
    // Prefix property: the surviving rows are exactly 0..survived.
    let t = db.table("t").unwrap();
    for (i, row) in t.rows().iter().enumerate() {
        assert_eq!(
            row.cells[0].as_const().unwrap(),
            &Value::Int(i as i64),
            "recovery must keep an exact prefix"
        );
    }
    // The truncated log is append-clean: new mutations persist.
    db.insert_rows(
        "t",
        vec![CRow::unconditional(vec![Equation::val(Value::Int(99))])],
    )
    .unwrap();
    drop(db);
    let (db, info) = Database::recover(&dir).unwrap();
    assert!(!info.torn_tail, "truncation left a clean log");
    assert_eq!(db.table("t").unwrap().len(), survived + 1);
    std::fs::remove_dir_all(&dir).unwrap();
}
