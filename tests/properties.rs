//! Property-based tests (proptest) of the core invariants listed in
//! DESIGN.md §5: c-table possible-world semantics, consistency-check
//! soundness, special-function identities, and sampler agreement.

use proptest::prelude::*;

use pip::ctable::{algebra, consistency_check, CRow, CTable, Consistency, SelectOutcome};
use pip::dist::prelude::*;
use pip::dist::special;
use pip::expr::{atoms, Assignment, Conjunction, Equation, RandomVar};
use pip::prelude::{DataType, Schema, Value};
use pip::sampling::{conf, expectation, SamplerConfig};

/// A small pool of variables with assigned values, for world-semantics
/// checks.
fn var_pool(n: usize) -> Vec<RandomVar> {
    (0..n)
        .map(|_| RandomVar::create(builtin::normal(), &[0.0, 1.0]).unwrap())
        .collect()
}

/// Strategy: an assignment over the pool.
fn assignment(pool: &[RandomVar]) -> impl Strategy<Value = Assignment> {
    let keys: Vec<_> = pool.iter().map(|v| v.key).collect();
    proptest::collection::vec(-10.0f64..10.0, keys.len()).prop_map(move |vals| {
        let mut a = Assignment::new();
        for (k, v) in keys.iter().zip(vals) {
            a.set(*k, v);
        }
        a
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// σ commutes with instantiation: filtering symbolically and then
    /// instantiating equals instantiating and filtering the world.
    #[test]
    fn select_commutes_with_instantiation(
        thr in -5.0f64..5.0,
        seed_world in 0usize..16,
    ) {
        let pool = var_pool(4);
        let mut runner_a = Assignment::new();
        // Deterministic pseudo-world from seed_world.
        for (i, v) in pool.iter().enumerate() {
            runner_a.set(v.key, ((seed_world * 7 + i * 13) % 19) as f64 - 9.0);
        }
        let schema = Schema::of(&[("v", DataType::Symbolic)]);
        let mut t = CTable::empty(schema);
        for v in &pool {
            t.push(CRow::unconditional(vec![Equation::from(v.clone())])).unwrap();
        }
        let selected = algebra::select(&t, |cells| {
            Ok(SelectOutcome::Conditional(vec![atoms::gt(cells[0].clone(), thr)]))
        }).unwrap();
        let w1 = selected.instantiate(&runner_a).unwrap();
        let w2: Vec<_> = t
            .instantiate(&runner_a).unwrap()
            .into_iter()
            .filter(|tp| tp.get(0).unwrap().as_f64().unwrap() > thr)
            .collect();
        prop_assert_eq!(w1, w2);
    }

    /// distinct: instantiated world of distinct(R) == dedup of
    /// instantiated world of R (set semantics).
    #[test]
    fn distinct_matches_world_dedup(a in prop::collection::vec(-3i64..3, 1..8)) {
        let schema = Schema::of(&[("v", DataType::Int)]);
        let tuples: Vec<_> = a.iter().map(|&x| pip::core::tuple![x]).collect();
        let t = CTable::from_tuples(schema, &tuples).unwrap();
        let d = algebra::distinct(&t).unwrap();
        let mut w = d.instantiate(&Assignment::new()).unwrap();
        w.sort();
        let mut expect: Vec<_> = tuples.clone();
        expect.sort();
        expect.dedup();
        prop_assert_eq!(w, expect);
    }

    /// Consistency soundness: any assignment satisfying the condition is
    /// inside the returned bounds, and satisfiable conditions are never
    /// declared inconsistent.
    #[test]
    fn consistency_never_refutes_a_witness(world in assignment(&var_pool(3))) {
        // Build the pool fresh but copy keys from the generated world.
        let keys: Vec<_> = world.iter().map(|(k, _)| *k).collect();
        prop_assume!(keys.len() == 3);
        let vars: Vec<RandomVar> = keys
            .iter()
            .map(|k| {
                let mut v = RandomVar::create(builtin::normal(), &[0.0, 1.0]).unwrap();
                v.key = *k;
                v
            })
            .collect();
        // Condition: box around each witness value plus one chain atom.
        let mut atoms_v = Vec::new();
        for v in &vars {
            let x = world.get(v.key).unwrap();
            atoms_v.push(atoms::ge(Equation::from(v.clone()), x - 1.0));
            atoms_v.push(atoms::le(Equation::from(v.clone()), x + 1.0));
        }
        let cond = Conjunction::of(atoms_v);
        prop_assert!(cond.eval(&world).unwrap());
        match consistency_check(&cond) {
            Consistency::Inconsistent => prop_assert!(false, "witness refuted"),
            Consistency::Consistent { bounds, .. } => {
                for v in &vars {
                    let iv = bounds.get(v.key);
                    let x = world.get(v.key).unwrap();
                    prop_assert!(iv.contains(x));
                }
            }
        }
    }

    /// Special functions: CDF/quantile round trips.
    #[test]
    fn normal_quantile_round_trip(p in 1e-6f64..0.999999) {
        let x = special::inverse_normal_cdf(p);
        prop_assert!((special::normal_cdf(x) - p).abs() < 1e-8);
    }

    #[test]
    fn erf_odd_symmetry(x in -5.0f64..5.0) {
        prop_assert!((special::erf(x) + special::erf(-x)).abs() < 1e-12);
        prop_assert!((special::erf(x) + special::erfc(x) - 1.0).abs() < 1e-10);
        prop_assert!((special::erfc(-x) - (2.0 - special::erfc(x))).abs() < 1e-10);
    }

    #[test]
    fn gamma_pq_sum_to_one(a in 0.1f64..50.0, x in 0.0f64..80.0) {
        let s = special::gamma_p(a, x) + special::gamma_q(a, x);
        prop_assert!((s - 1.0).abs() < 1e-9, "{}", s);
    }

    /// conf() via exact CDF equals the closed-form tail for arbitrary
    /// Normal parameters and thresholds.
    #[test]
    fn conf_matches_closed_form(mu in -10.0f64..10.0, sigma in 0.1f64..5.0, t in -20.0f64..20.0) {
        let v = RandomVar::create(builtin::normal(), &[mu, sigma]).unwrap();
        let cond = Conjunction::single(atoms::gt(Equation::from(v), t));
        let cfg = SamplerConfig::default();
        let p = conf(&cond, &cfg, 0).unwrap();
        let truth = 1.0 - special::normal_cdf((t - mu) / sigma);
        prop_assert!((p - truth).abs() < 1e-9);
    }

    /// Linearity fast path equals the analytical mean for affine
    /// combinations of mixed distributions.
    #[test]
    fn linear_expectation_exact(a in -5.0f64..5.0, b in -5.0f64..5.0, lam in 0.5f64..10.0) {
        let x = RandomVar::create(builtin::poisson(), &[lam]).unwrap();
        let u = RandomVar::create(builtin::uniform(), &[0.0, 2.0]).unwrap();
        let expr = Equation::from(x) * a + Equation::from(u) * b + 1.0;
        let cfg = SamplerConfig::default();
        let r = expectation(&expr, &Conjunction::top(), false, &cfg, 0).unwrap();
        let truth = a * lam + b * 1.0 + 1.0;
        prop_assert!((r.expectation - truth).abs() < 1e-9);
        prop_assert_eq!(r.n_samples, 0);
    }

    /// Equation simplification preserves semantics under random
    /// assignments.
    #[test]
    fn simplify_preserves_eval(x in -10.0f64..10.0, y in -10.0f64..10.0, c in -3.0f64..3.0) {
        let vx = RandomVar::create(builtin::normal(), &[0.0, 1.0]).unwrap();
        let vy = RandomVar::create(builtin::normal(), &[0.0, 1.0]).unwrap();
        let mut a = Assignment::new();
        a.set(vx.key, x);
        a.set(vy.key, y);
        let e = (Equation::from(vx.clone()) * c + Equation::from(vy.clone()) * 0.0)
            * (Equation::val(1.0) + Equation::val(0.0))
            - (-Equation::from(vy.clone()));
        let s = e.simplify();
        let (ev, sv) = (e.eval_f64(&a).unwrap(), s.eval_f64(&a).unwrap());
        prop_assert!((ev - sv).abs() < 1e-9);
    }

    /// Values survive a serde round trip (bench result rows rely on it).
    #[test]
    fn value_total_order_is_transitive(a in -5i64..5, b in -5.0f64..5.0, s in "[a-z]{0,3}") {
        let vals = [Value::Int(a), Value::Float(b), Value::str(&s), Value::Null];
        for x in &vals {
            for y in &vals {
                for z in &vals {
                    if x.cmp_total(y).is_le() && y.cmp_total(z).is_le() {
                        prop_assert!(x.cmp_total(z).is_le());
                    }
                }
            }
        }
    }
}
