//! Cross-strategy agreement tests (DESIGN.md invariant 3): rejection,
//! CDF-bounded, Metropolis, and the Sample-First baseline must all
//! estimate the same conditional expectations, and PIP and Sample-First
//! must converge to the same answers as samples grow (invariant 7).

use pip::ctable::{CRow, CTable};
use pip::dist::prelude::*;
use pip::dist::special;
use pip::expr::{atoms, Conjunction, Equation, RandomVar};
use pip::prelude::{DataType, Schema};
use pip::samplefirst::{agg as sf_agg, BundleTable};
use pip::sampling::{expectation, SamplerConfig};

/// E[Y | 1 < Y < 2] for Y ~ Normal(0,1), the closed form.
fn truncated_normal_mean(a: f64, b: f64) -> f64 {
    (special::normal_pdf(a) - special::normal_pdf(b))
        / (special::normal_cdf(b) - special::normal_cdf(a))
}

#[test]
fn all_pip_strategies_agree_on_truncated_normal() {
    let y = RandomVar::create(builtin::normal(), &[0.0, 1.0]).unwrap();
    let cond = Conjunction::of(vec![
        atoms::gt(Equation::from(y.clone()), 1.0),
        atoms::lt(Equation::from(y.clone()), 2.0),
    ]);
    let expr = Equation::from(y);
    let truth = truncated_normal_mean(1.0, 2.0);

    // CDF-bounded.
    let cdf_cfg = SamplerConfig::fixed_samples(4000);
    let r1 = expectation(&expr, &cond, true, &cdf_cfg, 1).unwrap();
    assert!(
        (r1.expectation - truth).abs() < 0.05,
        "cdf: {}",
        r1.expectation
    );

    // Pure rejection.
    let rej = SamplerConfig::naive(4000);
    let r2 = expectation(&expr, &cond, true, &rej, 2).unwrap();
    assert!(
        (r2.expectation - truth).abs() < 0.05,
        "rej: {}",
        r2.expectation
    );

    // Metropolis (force the switch: disable CDF, threshold 0 so any
    // rejection triggers it).
    let mut mh = SamplerConfig::fixed_samples(6000);
    mh.use_cdf_sampling = false;
    mh.metropolis_threshold = 0.2;
    let r3 = expectation(&expr, &cond, false, &mh, 3).unwrap();
    assert!(r3.used_metropolis, "expected the Metropolis fallback");
    assert!(
        (r3.expectation - truth).abs() < 0.1,
        "mh: {}",
        r3.expectation
    );

    // Exact probability from the CDF path.
    let p_truth = special::normal_cdf(2.0) - special::normal_cdf(1.0);
    assert!((r1.probability - p_truth).abs() < 1e-9);
}

#[test]
fn pip_and_samplefirst_converge_to_the_same_value() {
    // E[χ_{W>1}·X·W] with X ~ Poisson(3) ⊥ W ~ Exponential(1):
    // = λ·E[W·1{W>1}] = 3·(1+1)·e^{-1} (∫_1^∞ w e^{-w} dw = 2e^{-1}).
    let x = RandomVar::create(builtin::poisson(), &[3.0]).unwrap();
    let w = RandomVar::create(builtin::exponential(), &[1.0]).unwrap();
    let schema = Schema::of(&[("v", DataType::Symbolic)]);
    let ct = CTable::new(
        schema,
        vec![CRow::new(
            vec![(Equation::from(x) * Equation::from(w.clone())).simplify()],
            Conjunction::single(atoms::gt(Equation::from(w), 1.0)),
        )],
    )
    .unwrap();
    let truth = 3.0 * 2.0 * (-1.0f64).exp();

    // PIP: expected_sum = E[v|cond]·P[cond].
    let cfg = SamplerConfig::fixed_samples(6000);
    let pip = pip::sampling::expected_sum(&ct, "v", &cfg).unwrap().value;
    assert!((pip - truth).abs() / truth < 0.05, "pip {pip} vs {truth}");

    // Sample-First: unconditional per-world sum mean.
    let bt = BundleTable::instantiate(&ct, 60_000, 9).unwrap();
    let sf = sf_agg::expected_sum(&bt, "v").unwrap();
    assert!((sf - truth).abs() / truth < 0.05, "sf {sf} vs {truth}");
}

#[test]
fn discrete_explosion_equals_symbolic_evaluation() {
    // Exploding a die roll and summing exact per-row confidences must
    // reproduce the symbolic expectation.
    let d = RandomVar::create(builtin::discrete_uniform(), &[1.0, 6.0]).unwrap();
    let schema = Schema::of(&[("roll", DataType::Symbolic)]);
    let ct = CTable::new(
        schema,
        vec![CRow::unconditional(vec![Equation::from(d.clone())])],
    )
    .unwrap();
    let exploded = pip::ctable::explode_discrete(&ct, 16).unwrap();
    assert_eq!(exploded.len(), 6);
    let cfg = SamplerConfig::default();
    // Σ value · P[X = value] = 3.5.
    let mut acc = 0.0;
    for (i, row) in exploded.rows().iter().enumerate() {
        let v = row.cells[0].as_const().unwrap().as_f64().unwrap();
        let p = pip::sampling::conf(&row.condition, &cfg, i as u64).unwrap();
        assert!((p - 1.0 / 6.0).abs() < 1e-9, "{p}");
        acc += v * p;
    }
    assert!((acc - 3.5).abs() < 1e-9);
    // Symbolic path: linearity fast path gives the mean directly.
    let r = expectation(&Equation::from(d), &Conjunction::top(), false, &cfg, 0).unwrap();
    assert!((r.expectation - 3.5).abs() < 1e-9);
}

#[test]
fn seeded_runs_are_fully_reproducible_across_the_stack() {
    let y = RandomVar::create(builtin::gamma(), &[2.0, 3.0]).unwrap();
    let cond = Conjunction::single(atoms::gt(Equation::from(y.clone()), 5.0));
    let cfg = SamplerConfig::fixed_samples(500).with_seed(0xAB);
    let a = expectation(&Equation::from(y.clone()), &cond, true, &cfg, 7).unwrap();
    let b = expectation(&Equation::from(y.clone()), &cond, true, &cfg, 7).unwrap();
    assert_eq!(a, b);

    let schema = Schema::of(&[("v", DataType::Symbolic)]);
    let ct = CTable::new(schema, vec![CRow::unconditional(vec![Equation::from(y)])]).unwrap();
    let t1 = BundleTable::instantiate(&ct, 64, 5).unwrap();
    let t2 = BundleTable::instantiate(&ct, 64, 5).unwrap();
    assert_eq!(t1, t2);
}
