//! Integration tests for the repair-key operator (discrete probabilistic
//! table construction, paper Section V-A footnote 2) and the engine's
//! EXPLAIN output.

use pip::ctable::repair_key;
use pip::prelude::*;

#[test]
fn repair_key_feeds_the_full_query_stack() {
    // Weather alternatives per city, repaired into a probabilistic table,
    // then queried through conf() and expected_count.
    let db = Database::new();
    let cfg = SamplerConfig::default();
    let schema = Schema::of(&[
        ("city", DataType::Str),
        ("weather", DataType::Str),
        ("w", DataType::Float),
    ]);
    let base = CTable::from_tuples(
        schema,
        &[
            pip::core::tuple!["nyc", "sun", 3.0],
            pip::core::tuple!["nyc", "rain", 1.0],
            pip::core::tuple!["ithaca", "snow", 1.0],
            pip::core::tuple!["ithaca", "rain", 3.0],
        ],
    )
    .unwrap();
    let (repaired, vars) = repair_key(&base, &["city"], "w").unwrap();
    assert_eq!(vars.len(), 2);
    db.register_table("weather", repaired).unwrap();

    // P[rain] per city through the row-level conf operator.
    let t = sql::run(
        &db,
        "SELECT city, conf() FROM weather WHERE weather = 'rain'",
        &cfg,
    )
    .unwrap();
    assert_eq!(t.len(), 2);
    let p_nyc = t.rows()[0].cells[1].as_const().unwrap().as_f64().unwrap();
    let p_ith = t.rows()[1].cells[1].as_const().unwrap().as_f64().unwrap();
    assert!((p_nyc - 0.25).abs() < 1e-9, "{p_nyc}");
    assert!((p_ith - 0.75).abs() < 1e-9, "{p_ith}");

    // Expected number of rainy cities = 0.25 + 0.75 = 1.
    let t = sql::run(
        &db,
        "SELECT expected_count(*) FROM weather WHERE weather = 'rain'",
        &cfg,
    )
    .unwrap();
    assert!((scalar_result(&t).unwrap() - 1.0).abs() < 1e-9);
}

#[test]
fn repaired_alternatives_are_exclusive_under_join() {
    // Self-joining a repaired table on the key never pairs two different
    // alternatives of the same group (their conditions contradict).
    let db = Database::new();
    let cfg = SamplerConfig::default();
    let schema = Schema::of(&[
        ("k", DataType::Str),
        ("v", DataType::Int),
        ("w", DataType::Float),
    ]);
    let base = CTable::from_tuples(
        schema,
        &[
            pip::core::tuple!["a", 1i64, 1.0],
            pip::core::tuple!["a", 2i64, 1.0],
        ],
    )
    .unwrap();
    let (repaired, _) = repair_key(&base, &["k"], "w").unwrap();
    db.register_table("t", repaired).unwrap();
    // Count pairs with different v: expected 0 (mutually exclusive).
    let plan = PlanBuilder::scan("t")
        .product(PlanBuilder::scan("t"))
        .aggregate(vec![], vec![AggFunc::ExpectedCount])
        .build();
    let out = execute(&db, &plan, &cfg).unwrap();
    // 4 candidate pairs; only the 2 same-alternative pairs are possible,
    // each with probability 1/2 → expected count 1.
    let c = scalar_result(&out).unwrap();
    assert!((c - 1.0).abs() < 0.05, "{c}");
}

#[test]
fn explain_renders_the_tree() {
    let plan = PlanBuilder::scan("orders")
        .select(ScalarExpr::col("price").gt(ScalarExpr::lit(5.0)))
        .unwrap()
        .equi_join(PlanBuilder::scan("shipping"), vec![("ship_to", "dest")])
        .aggregate(vec![], vec![AggFunc::ExpectedSum("price".into())])
        .build();
    let text = plan.explain();
    let lines: Vec<&str> = text.lines().collect();
    assert!(
        lines[0].starts_with("Aggregate: [expected_sum(price)]"),
        "{text}"
    );
    assert!(lines[1].trim_start().starts_with("EquiJoin: ship_to=dest"));
    assert!(lines[2].trim_start().starts_with("Select:"));
    assert!(lines[3].trim_start().starts_with("Scan: orders"));
    assert!(lines[4].trim_start().starts_with("Scan: shipping"));
    // Display goes through explain().
    assert_eq!(format!("{plan}"), text);
}

#[test]
fn optimizer_output_explains_pushdown() {
    let db = Database::new();
    db.create_table("l", Schema::of(&[("a", DataType::Int)]))
        .unwrap();
    db.create_table("r", Schema::of(&[("b", DataType::Int)]))
        .unwrap();
    let plan = PlanBuilder::scan("l")
        .product(PlanBuilder::scan("r"))
        .select(
            ScalarExpr::col("a")
                .gt(ScalarExpr::lit(0i64))
                .and(ScalarExpr::col("b").gt(ScalarExpr::lit(0i64))),
        )
        .unwrap()
        .build();
    let opt = optimize(&db, plan).unwrap();
    let text = opt.explain();
    // After pushdown the top node is the product, selects sit below it.
    assert!(text.starts_with("Product"), "{text}");
    assert_eq!(text.matches("Select").count(), 2, "{text}");
}
