//! `samplers_agree`-style determinism tests for the parallel runtime:
//! serial and parallel (2, 4, 8 threads) sampling must produce
//! *bit-identical* results for the same seed — through the chunked
//! expectation executor, the aggregate operators, and full SQL queries.

use pip::ctable::{CRow, CTable};
use pip::expr::{atoms, Conjunction, Equation, RandomVar};
use pip::prelude::{scalar_result, sql, DataType, Database, Schema};
use pip::sampling::parallel::{expectation_chunked, ParallelSampler};
use pip::sampling::{conf, expectation, expected_avg, expected_sum, SamplerConfig};

fn normal(mu: f64, sigma: f64) -> RandomVar {
    RandomVar::create(pip::dist::prelude::builtin::normal(), &[mu, sigma]).unwrap()
}

/// A table mixing exact-path rows (unconditional normals) with rows
/// that force real sampling (cross-variable conditions).
fn mixed_table(rows: usize) -> CTable {
    let schema = Schema::of(&[("v", DataType::Symbolic)]);
    let mut t = CTable::empty(schema);
    for i in 0..rows {
        let y = normal(i as f64, 1.0 + (i % 4) as f64 * 0.5);
        let z = normal(0.0, 1.0);
        let row = if i % 3 == 0 {
            CRow::unconditional(vec![Equation::from(y)])
        } else {
            // z > y - i: genuinely multivariate, so `conf` has to sample.
            CRow::new(
                vec![Equation::from(y.clone())],
                Conjunction::single(atoms::gt(Equation::from(z), Equation::from(y) - i as f64)),
            )
        };
        t.push(row).unwrap();
    }
    t
}

#[test]
fn chunked_expectation_identical_at_1_2_4_8_threads() {
    let y = normal(0.0, 1.0);
    let cond = Conjunction::of(vec![
        atoms::gt(Equation::from(y.clone()), 0.5),
        atoms::lt(Equation::from(y.clone()), 3.0),
    ]);
    let expr = Equation::from(y) * 2.0 + 1.0;
    let serial_pool = ParallelSampler::new(1);
    let cfg1 = SamplerConfig::fixed_samples(3000);
    let baseline = expectation_chunked(&expr, &cond, true, &cfg1, 11, &serial_pool).unwrap();
    assert!(baseline.n_samples > 0, "must actually sample");
    for threads in [2usize, 4, 8] {
        let pool = ParallelSampler::new(threads);
        let cfg = cfg1.clone().with_threads(threads);
        let r = expectation_chunked(&expr, &cond, true, &cfg, 11, &pool).unwrap();
        assert_eq!(
            r, baseline,
            "chunked executor diverged at {threads} threads"
        );
    }
}

#[test]
fn aggregates_identical_at_1_2_4_8_threads() {
    let t = mixed_table(17);
    let serial = SamplerConfig::fixed_samples(400);
    let sum1 = expected_sum(&t, "v", &serial).unwrap();
    let avg1 = expected_avg(&t, "v", &serial).unwrap();
    assert!(sum1.n_samples > 0, "workload must exercise the samplers");
    for threads in [2usize, 4, 8] {
        let par = serial.clone().with_threads(threads);
        assert_eq!(
            expected_sum(&t, "v", &par).unwrap(),
            sum1,
            "expected_sum diverged at {threads} threads"
        );
        assert_eq!(
            expected_avg(&t, "v", &par).unwrap(),
            avg1,
            "expected_avg diverged at {threads} threads"
        );
    }
}

#[test]
fn per_row_conf_sites_are_scheduling_free() {
    // The row fan-out reproduces the serial operator because each row's
    // stream is derived from its index, not from execution order: check
    // the per-row primitives directly.
    let t = mixed_table(9);
    let cfg = SamplerConfig::fixed_samples(600);
    for (i, row) in t.rows().iter().enumerate() {
        let a = conf(&row.condition, &cfg, i as u64).unwrap();
        let b = conf(&row.condition, &cfg, i as u64).unwrap();
        assert_eq!(a, b);
        let ra = expectation(&row.cells[0], &row.condition, true, &cfg, i as u64).unwrap();
        let rb = expectation(&row.cells[0], &row.condition, true, &cfg, i as u64).unwrap();
        assert_eq!(ra, rb);
    }
}

#[test]
fn sql_query_results_identical_at_1_2_4_8_threads() {
    let db = Database::new();
    let serial = SamplerConfig::default();
    sql::run(
        &db,
        "CREATE TABLE sales (region TEXT, amount SYMBOLIC)",
        &serial,
    )
    .unwrap();
    sql::run(
        &db,
        "INSERT INTO sales VALUES \
         ('east', create_variable('Normal', 100, 20)), \
         ('east', create_variable('Normal', 80, 10)), \
         ('west', create_variable('Normal', 60, 15)), \
         ('west', create_variable('Normal', 40, 5)), \
         ('north', create_variable('Exponential', 0.05))",
        &serial,
    )
    .unwrap();
    let q = "SELECT region, expected_sum(amount), expected_count(*), conf() \
             FROM sales WHERE amount > 70 GROUP BY region";
    let baseline = sql::run(&db, q, &serial).unwrap();
    assert_eq!(baseline.len(), 3);
    for threads in [2usize, 4, 8] {
        let par = serial.clone().with_threads(threads);
        let t = sql::run(&db, q, &par).unwrap();
        assert_eq!(
            t.rows(),
            baseline.rows(),
            "SQL results diverged at {threads} threads"
        );
    }
}

#[test]
fn scalar_aggregate_identical_and_sane() {
    let db = Database::new();
    let serial = SamplerConfig::default();
    sql::run(&db, "CREATE TABLE t (x SYMBOLIC)", &serial).unwrap();
    sql::run(
        &db,
        "INSERT INTO t VALUES (create_variable('Normal', 10, 2)), \
         (create_variable('Uniform', 0, 4))",
        &serial,
    )
    .unwrap();
    let v1 =
        scalar_result(&sql::run(&db, "SELECT expected_sum(x) FROM t", &serial).unwrap()).unwrap();
    assert!((v1 - 12.0).abs() < 1e-9, "exact linear path: {v1}");
    for threads in [2usize, 4, 8] {
        let par = serial.clone().with_threads(threads);
        let v =
            scalar_result(&sql::run(&db, "SELECT expected_sum(x) FROM t", &par).unwrap()).unwrap();
        assert_eq!(v.to_bits(), v1.to_bits(), "threads={threads}");
    }
}
