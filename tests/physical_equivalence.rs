//! Executor equivalence properties: the pipelined physical executor
//! must be indistinguishable from the materializing reference
//! interpreter — identical c-tables (schema, row order, cells,
//! conditions) on the raw plan and on the optimized plan, bit-identical
//! sampled numbers through the streaming heads at 1/2/4 threads, and
//! world-semantics preservation through the optimizer — across randomly
//! composed plans (joins, products, unions, differences, fused
//! select/project chains, distinct, sort, limit, aggregate and conf
//! heads).

use proptest::prelude::*;

use pip::ctable::CRow;
use pip::dist::prelude::builtin;
use pip::engine::{
    execute, execute_materialized, optimize, AggFunc, Database, Plan, PlanBuilder, ScalarExpr,
};
use pip::expr::{atoms, Assignment, Conjunction, Equation, RandomVar};
use pip::prelude::{DataType, Schema};
use pip::sampling::SamplerConfig;

/// The database every generated plan runs against: `t1(k, v, s)` mixes
/// deterministic cells, symbolic cells and row conditions (including
/// cross-variable atoms that force real rejection sampling); `t2(k, w)`
/// is deterministic. `t3(j, u)` and `t4(m, q)` are small deterministic
/// tables with names disjoint from `t1`, so multi-way join graphs over
/// them are eligible for the cost-based join reorderer. Returns the
/// variable pool for world instantiation.
fn test_db() -> (Database, Vec<RandomVar>) {
    let db = Database::new();
    let mut vars = Vec::new();
    db.create_table(
        "t1",
        Schema::of(&[
            ("k", DataType::Int),
            ("v", DataType::Float),
            ("s", DataType::Symbolic),
        ]),
    )
    .unwrap();
    db.create_table(
        "t2",
        Schema::of(&[("k", DataType::Int), ("w", DataType::Float)]),
    )
    .unwrap();
    let mut rows = Vec::new();
    for i in 0..6i64 {
        let s = RandomVar::create(builtin::normal(), &[i as f64, 1.0 + (i % 3) as f64]).unwrap();
        let cond = match i % 3 {
            0 => Conjunction::top(),
            1 => Conjunction::single(atoms::gt(Equation::from(s.clone()), (i - 2) as f64)),
            _ => {
                // Cross-variable: the sampler cannot use a CDF shortcut.
                let gate = RandomVar::create(builtin::normal(), &[0.0, 1.0]).unwrap();
                let cond = Conjunction::single(atoms::gt(
                    Equation::from(gate.clone()),
                    Equation::from(s.clone()) - i as f64,
                ));
                vars.push(gate);
                cond
            }
        };
        vars.push(s.clone());
        rows.push(CRow::new(
            vec![
                Equation::val(i % 3),
                Equation::val(i as f64 * 2.0),
                Equation::from(s),
            ],
            cond,
        ));
    }
    db.insert_rows("t1", rows).unwrap();
    db.insert_tuples(
        "t2",
        &[
            pip::core::tuple![0i64, 10.0],
            pip::core::tuple![1i64, 20.0],
            pip::core::tuple![3i64, 30.0],
        ],
    )
    .unwrap();
    db.create_table(
        "t3",
        Schema::of(&[("j", DataType::Int), ("u", DataType::Int)]),
    )
    .unwrap();
    db.insert_tuples(
        "t3",
        &(0..4i64)
            .map(|i| pip::core::tuple![i, i % 3])
            .collect::<Vec<_>>(),
    )
    .unwrap();
    db.create_table(
        "t4",
        Schema::of(&[("m", DataType::Int), ("q", DataType::Int)]),
    )
    .unwrap();
    db.insert_tuples(
        "t4",
        &(0..3i64)
            .map(|i| pip::core::tuple![i, i * 5])
            .collect::<Vec<_>>(),
    )
    .unwrap();
    (db, vars)
}

/// Compose a plan from random choices, tracking live column names so
/// every generated plan is well-formed.
fn random_plan(base: u8, ops: &[u8], head: u8, thr: f64, limit_n: usize) -> Plan {
    let mut cols: Vec<&str>;
    let mut b = match base % 7 {
        0 => {
            cols = vec!["k", "v", "s"];
            PlanBuilder::scan("t1")
        }
        1 => {
            cols = vec!["k", "v", "s", "k.right", "w"];
            PlanBuilder::scan("t1").equi_join(PlanBuilder::scan("t2"), vec![("k", "k")])
        }
        2 => {
            cols = vec!["k", "v", "s", "k.right", "w"];
            PlanBuilder::scan("t1").product(PlanBuilder::scan("t2"))
        }
        3 => {
            cols = vec!["k", "v", "s"];
            PlanBuilder::scan("t1").union(PlanBuilder::scan("t1"))
        }
        4 => {
            // Difference over the deterministic table: subtracting a
            // symbolically-conditioned row from itself conjoins a
            // cross-variable atom with its own negation, which is only
            // numerically unsatisfiable — every sample then burns the
            // full rejection cap. Real, but not a property-test budget.
            cols = vec!["k", "w"];
            PlanBuilder::scan("t2").difference(
                PlanBuilder::scan("t2")
                    .select(ScalarExpr::col("w").gt(ScalarExpr::lit(15.0)))
                    .unwrap(),
            )
        }
        5 => {
            // A reorderable three-way chain join written as products:
            // t1–t3 via k=j, t3–t4 via u=m. Name-disjoint leaves, so the
            // cost-based reorderer may restructure it into hash joins.
            cols = vec!["k", "v", "s", "j", "u", "m", "q"];
            PlanBuilder::scan("t1")
                .product(PlanBuilder::scan("t3"))
                .product(PlanBuilder::scan("t4"))
                .select(
                    ScalarExpr::col("k")
                        .eq(ScalarExpr::col("j"))
                        .and(ScalarExpr::col("u").eq(ScalarExpr::col("m"))),
                )
                .unwrap()
        }
        _ => {
            // A reorderable star: t1 at the center, t3 and t4 hanging
            // off the same key (k=j AND k=m).
            cols = vec!["k", "v", "s", "j", "u", "m", "q"];
            PlanBuilder::scan("t1")
                .product(PlanBuilder::scan("t3"))
                .product(PlanBuilder::scan("t4"))
                .select(
                    ScalarExpr::col("k")
                        .eq(ScalarExpr::col("j"))
                        .and(ScalarExpr::col("k").eq(ScalarExpr::col("m"))),
                )
                .unwrap()
        }
    };
    for &op in ops {
        match op % 6 {
            0 if cols.contains(&"v") => {
                b = b
                    .select(ScalarExpr::col("v").gt(ScalarExpr::lit(thr)))
                    .unwrap();
            }
            1 if cols.contains(&"s") => {
                b = b
                    .select(ScalarExpr::col("s").gt(ScalarExpr::lit(thr / 2.0)))
                    .unwrap();
            }
            2 if cols.contains(&"k") && cols.contains(&"s") && cols.contains(&"v") => {
                b = b.project(vec![
                    ("k", ScalarExpr::col("k")),
                    ("s", ScalarExpr::col("s")),
                    ("v2", ScalarExpr::col("v").mul(ScalarExpr::lit(2.0))),
                ]);
                cols = vec!["k", "s", "v2"];
            }
            3 => b = b.distinct(),
            4 if cols.contains(&"k") => b = b.sort(vec![("k", thr > 5.0)]),
            5 => b = b.limit(limit_n),
            _ => {}
        }
    }
    match head % 3 {
        0 => b.build(),
        1 => b.conf().build(),
        _ => {
            let mut aggs = vec![AggFunc::ExpectedCount, AggFunc::Conf];
            if cols.contains(&"s") {
                aggs.push(AggFunc::ExpectedSum("s".into()));
            } else if cols.contains(&"v") {
                aggs.push(AggFunc::ExpectedSum("v".into()));
            }
            let group = if cols.contains(&"k") {
                vec!["k"]
            } else {
                vec![]
            };
            b.aggregate(group, aggs).build()
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The streaming executor and the materializing reference produce
    /// identical c-tables — schema, row order, cells and conditions —
    /// on the raw plan AND on its optimized form (including cost-based
    /// join reorderings of the multi-way bases), and the sampled
    /// numbers are bit-identical at 1, 2 and 4 threads on both.
    #[test]
    fn streaming_equals_materialized_on_random_plans(
        base in 0u8..7,
        ops in prop::collection::vec(0u8..6, 0..4),
        head in 0u8..3,
        thr in -2.0f64..8.0,
        limit_n in 0usize..7,
    ) {
        let (db, _vars) = test_db();
        let plan = random_plan(base, &ops, head, thr, limit_n);
        // A small fixed budget: sampling still happens on the
        // cross-variable conditions, but debug-build runs stay fast.
        let cfg = SamplerConfig::fixed_samples(96);

        let streamed = execute(&db, &plan, &cfg).unwrap();
        let reference = execute_materialized(&db, &plan, &cfg).unwrap();
        prop_assert_eq!(&streamed, &reference);

        let optimized = optimize(&db, plan.clone()).unwrap();
        let streamed_opt = execute(&db, &optimized, &cfg).unwrap();
        let reference_opt = execute_materialized(&db, &optimized, &cfg).unwrap();
        prop_assert_eq!(&streamed_opt, &reference_opt);

        // Thread count must be invisible in the streaming heads — on
        // the written plan and on the (possibly reordered) one.
        for threads in [2usize, 4] {
            let par = cfg.clone().with_threads(threads);
            let t = execute(&db, &plan, &par).unwrap();
            prop_assert_eq!(&t, &streamed);
            let t = execute(&db, &optimized, &par).unwrap();
            prop_assert_eq!(&t, &streamed_opt);
        }
    }

    /// The optimizer (predicate pushdown, join reordering, projection
    /// pushdown) preserves possible-worlds semantics: instantiating the
    /// optimized plan's result yields the same multiset of tuples as
    /// the reference result in every sampled world. Row order is only
    /// pinned for non-reordered plans; a reordered join region emits in
    /// its new join sequence, so the comparison sorts both sides.
    /// (Sampling-free plans only: heads turn worlds into numbers.)
    #[test]
    fn optimizer_preserves_world_semantics(
        base in 0u8..7,
        ops in prop::collection::vec(0u8..6, 0..4),
        thr in -2.0f64..8.0,
        world in prop::collection::vec(-6.0f64..6.0, 12),
    ) {
        let (db, vars) = test_db();
        let plan = random_plan(base, &ops, 0, thr, 3);
        let cfg = SamplerConfig::fixed_samples(64);
        let optimized = optimize(&db, plan.clone()).unwrap();
        let raw = execute_materialized(&db, &plan, &cfg).unwrap();
        let opt = execute(&db, &optimized, &cfg).unwrap();
        let mut a = Assignment::new();
        for (var, x) in vars.iter().zip(world) {
            a.set(var.key, x);
        }
        // The optimizer may drop nothing the plan's own output depends
        // on: the worlds must coincide as multisets.
        let mut w_raw = raw.instantiate(&a).unwrap();
        let mut w_opt = opt.instantiate(&a).unwrap();
        w_raw.sort();
        w_opt.sort();
        prop_assert_eq!(w_raw, w_opt);
    }
}
