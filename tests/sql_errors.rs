//! SQL front-end error paths must surface as `Err`, never a panic: the
//! server hands arbitrary client text to `sql::run`, so a panicking
//! parser or rewriter would take a connection thread down with it.

use pip::prelude::{sql, Database, SamplerConfig};

fn db() -> (Database, SamplerConfig) {
    let db = Database::new();
    let cfg = SamplerConfig::default();
    sql::run(&db, "CREATE TABLE t (a INT, x SYMBOLIC)", &cfg).unwrap();
    sql::run(
        &db,
        "INSERT INTO t VALUES (1, create_variable('Normal', 5, 1))",
        &cfg,
    )
    .unwrap();
    (db, cfg)
}

/// Assert `sql` fails with a `PipError` whose message contains `needle`.
fn expect_err(db: &Database, cfg: &SamplerConfig, sql_text: &str, needle: &str) {
    match sql::run(db, sql_text, cfg) {
        Ok(_) => panic!("expected error for: {sql_text}"),
        Err(e) => {
            let msg = e.to_string();
            assert!(
                msg.to_lowercase().contains(&needle.to_lowercase()),
                "error for {sql_text:?} should mention {needle:?}, got: {msg}"
            );
        }
    }
}

#[test]
fn unterminated_string_literal() {
    let (db, cfg) = db();
    expect_err(&db, &cfg, "SELECT a FROM t WHERE a = 'oops", "unterminated");
    expect_err(
        &db,
        &cfg,
        "INSERT INTO t VALUES (1, 'dangling)",
        "unterminated",
    );
}

#[test]
fn create_variable_arity_and_argument_errors() {
    let (db, cfg) = db();
    // Too few / too many parameters for the distribution class.
    expect_err(
        &db,
        &cfg,
        "INSERT INTO t VALUES (1, create_variable('Normal'))",
        "2 parameter",
    );
    expect_err(
        &db,
        &cfg,
        "INSERT INTO t VALUES (1, create_variable('Normal', 1, 2, 3))",
        "2 parameter",
    );
    // Class name must be a string literal.
    expect_err(
        &db,
        &cfg,
        "INSERT INTO t VALUES (1, create_variable(Normal, 1, 2))",
        "class name",
    );
    // Unknown distribution class.
    expect_err(
        &db,
        &cfg,
        "INSERT INTO t VALUES (1, create_variable('NoSuchDist', 1))",
        "nosuchdist",
    );
    // Invalid parameter values are caught by the class itself.
    expect_err(
        &db,
        &cfg,
        "INSERT INTO t VALUES (1, create_variable('Normal', 0, -1))",
        "invalid parameter",
    );
}

#[test]
fn unknown_aggregate_and_function() {
    let (db, cfg) = db();
    expect_err(
        &db,
        &cfg,
        "SELECT unknown_agg(a) FROM t",
        "unknown function",
    );
    expect_err(&db, &cfg, "SELECT expected_sum() FROM t", "unexpected");
    expect_err(&db, &cfg, "SELECT expected_max(x) FROM t", "expected_max");
}

#[test]
fn truncated_statements() {
    let (db, cfg) = db();
    for q in [
        "SELECT",
        "SELECT a FROM",
        "SELECT a FROM t WHERE",
        "SELECT a FROM t GROUP BY",
        "SELECT a FROM t ORDER BY a LIMIT",
        "INSERT INTO t VALUES",
        "INSERT INTO t VALUES (1,",
        "CREATE TABLE u (",
    ] {
        assert!(sql::run(&db, q, &cfg).is_err(), "should fail: {q}");
    }
}

#[test]
fn malformed_statements_and_semantics() {
    let (db, cfg) = db();
    for q in [
        "FROB x",
        "SELECT a, FROM t",
        "SELECT a FROM ghost",
        "INSERT INTO ghost VALUES (1)",
        "INSERT INTO t VALUES (1)",        // arity mismatch
        "CREATE TABLE t (a INT)",          // duplicate table
        "CREATE TABLE u (a INT, a FLOAT)", // duplicate column
        "SELECT b FROM t",                 // unknown column
        "SELECT a FROM t ORDER BY nope",   // unknown sort key
        "SELECT expected_sum(a) FROM t GROUP BY nope",
    ] {
        assert!(sql::run(&db, q, &cfg).is_err(), "should fail: {q}");
    }
    // And the catalog is still usable afterwards.
    assert!(sql::run(&db, "SELECT a FROM t", &cfg).is_ok());
}
