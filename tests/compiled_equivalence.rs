//! Sampling-compiler equivalence properties: the compiled path (slot
//! tapes + group kernels + columnar sample blocks, `SamplerConfig::
//! compile`) must be **bit-identical** to the interpreted reference
//! path at every seed, site, thread count, and cache setting.
//!
//! * tape vs tree: `Tape::eval` == `Equation::eval_f64` and
//!   `CondTape::eval_bool` == `Conjunction::eval` over random
//!   expressions and assignments, to the bit (including errors);
//! * operator level: `expectation` / `expectation_chunked` / `conf`
//!   with the compiler on == off, for both `want_probability` settings,
//!   across sampler configurations that exercise CDF-bounded sampling,
//!   rejection, multi-group independence, and the Metropolis
//!   escalation bail-out;
//! * the sample-block cache is pure memoization: cold, warm, and
//!   disabled runs produce the same `ExpectationResult` at 1/2/4
//!   threads.

use proptest::prelude::*;

use pip::dist::prelude::builtin;
use pip::expr::{atoms, Assignment, Conjunction, Equation, RandomVar, SlotMap};
use pip::sampling::{
    block_cache_clear, conf, expectation, expectation_chunked, CondTape, ExpectationResult,
    ParallelSampler, SamplerConfig, Tape,
};

/// Deterministic pseudo-stream for structure generation (the proptest
/// shim supplies only flat numeric inputs).
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        ((self.next() as u128 * n as u128) >> 64) as u64
    }

    fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        let u = (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + u * (hi - lo)
    }
}

fn var_pool(g: &mut Gen, n: usize) -> Vec<RandomVar> {
    (0..n)
        .map(|_| match g.below(4) {
            0 => RandomVar::create(
                builtin::normal(),
                &[g.f64_in(-3.0, 3.0), g.f64_in(0.5, 3.0)],
            )
            .unwrap(),
            1 => RandomVar::create(builtin::uniform(), &[-2.0, 5.0]).unwrap(),
            2 => RandomVar::create(builtin::exponential(), &[g.f64_in(0.2, 2.0)]).unwrap(),
            _ => RandomVar::create(builtin::poisson(), &[g.f64_in(0.5, 8.0)]).unwrap(),
        })
        .collect()
}

/// Random arithmetic tree over the pool (division kept, so the
/// divide-by-zero error path is also compared).
fn random_expr(g: &mut Gen, pool: &[RandomVar], depth: usize) -> Equation {
    if depth == 0 || g.below(4) == 0 {
        return if g.below(3) == 0 {
            Equation::val(g.f64_in(-4.0, 4.0))
        } else {
            Equation::from(pool[g.below(pool.len() as u64) as usize].clone())
        };
    }
    let l = random_expr(g, pool, depth - 1);
    let r = random_expr(g, pool, depth - 1);
    match g.below(5) {
        0 => l + r,
        1 => l - r,
        2 => l * r,
        3 => l / r,
        _ => -l,
    }
}

/// Random conjunction over the pool: single-variable intervals (exact /
/// CDF-bounded paths), cross-variable atoms (genuine rejection), and
/// deterministic atoms.
fn random_cond(g: &mut Gen, pool: &[RandomVar], n_atoms: usize) -> Conjunction {
    let mut atoms_v = Vec::new();
    for _ in 0..n_atoms {
        let a = pool[g.below(pool.len() as u64) as usize].clone();
        let atom = match g.below(4) {
            0 => atoms::gt(Equation::from(a), g.f64_in(-2.0, 1.0)),
            1 => atoms::lt(Equation::from(a), g.f64_in(1.0, 6.0)),
            2 => {
                let b = pool[g.below(pool.len() as u64) as usize].clone();
                atoms::gt(Equation::from(a), Equation::from(b) - g.f64_in(0.0, 3.0))
            }
            _ => atoms::le(Equation::val(g.f64_in(-1.0, 1.0)), 0.5),
        };
        atoms_v.push(atom);
    }
    Conjunction::of(atoms_v)
}

/// Bit-exact comparison (NaN == NaN, unlike PartialEq).
fn assert_results_identical(a: &ExpectationResult, b: &ExpectationResult, what: &str) {
    assert_eq!(
        a.expectation.to_bits(),
        b.expectation.to_bits(),
        "{what}: expectation {} vs {}",
        a.expectation,
        b.expectation
    );
    assert_eq!(
        a.probability.to_bits(),
        b.probability.to_bits(),
        "{what}: probability {} vs {}",
        a.probability,
        b.probability
    );
    assert_eq!(a.n_samples, b.n_samples, "{what}: n_samples");
    assert_eq!(
        a.std_error.to_bits(),
        b.std_error.to_bits(),
        "{what}: std_error"
    );
    assert_eq!(a.used_metropolis, b.used_metropolis, "{what}: metropolis");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Tape evaluation is the tree evaluation, to the bit — including
    /// which of the two errors first (unassigned variables never occur
    /// in compiled contexts; division by zero must match).
    #[test]
    fn tape_matches_tree_on_random_expressions(
        structure in 0u64..u64::MAX,
        n_vars in 1usize..5,
        depth in 0usize..5,
    ) {
        let mut g = Gen(structure);
        let pool = var_pool(&mut g, n_vars);
        let expr = random_expr(&mut g, &pool, depth);
        let mut slots = SlotMap::new();
        slots.intern_all(&pool);
        let tape = Tape::compile(&expr, &slots).expect("numeric expression compiles");
        let mut regs = Vec::new();
        for _ in 0..8 {
            let mut buf = vec![0.0; slots.len()];
            let mut asg = Assignment::new();
            for (i, v) in pool.iter().enumerate() {
                // Include exact zeros so division-by-zero fires.
                let x = if g.below(5) == 0 { 0.0 } else { g.f64_in(-5.0, 5.0) };
                buf[i] = x;
                asg.set(v.key, x);
            }
            match (tape.eval(&buf, &mut regs), expr.eval_f64(&asg)) {
                (Ok(a), Ok(b)) => prop_assert_eq!(a.to_bits(), b.to_bits()),
                (Err(ea), Err(eb)) => prop_assert_eq!(ea.to_string(), eb.to_string()),
                (a, b) => prop_assert!(false, "tape {:?} vs tree {:?}", a, b),
            }
        }
    }

    /// Condition tapes agree with `Conjunction::eval`, short-circuit
    /// order included.
    #[test]
    fn cond_tape_matches_conjunction(
        structure in 0u64..u64::MAX,
        n_vars in 1usize..4,
        n_atoms in 0usize..5,
    ) {
        let mut g = Gen(structure);
        let pool = var_pool(&mut g, n_vars);
        let cond = random_cond(&mut g, &pool, n_atoms);
        let mut slots = SlotMap::new();
        slots.intern_all(&pool);
        let tape = CondTape::compile(&cond, &slots).expect("condition compiles");
        let mut regs = Vec::new();
        for _ in 0..8 {
            let mut buf = vec![0.0; slots.len()];
            let mut asg = Assignment::new();
            for (i, v) in pool.iter().enumerate() {
                let x = g.f64_in(-5.0, 5.0);
                buf[i] = x;
                asg.set(v.key, x);
            }
            prop_assert_eq!(
                tape.eval_bool(&buf, &mut regs).unwrap(),
                cond.eval(&asg).unwrap()
            );
        }
    }

    /// The headline property: `expectation` with the compiler on is
    /// bit-identical to the interpreted path, for both probability
    /// settings, on expressions/conditions spanning every strategy.
    #[test]
    fn expectation_compiled_matches_interpreted(
        structure in 0u64..u64::MAX,
        site in 0u64..64,
        n in 64usize..512,
        wp in 0u8..2,
        adaptive in 0u8..3,
    ) {
        let mut g = Gen(structure);
        let pool = var_pool(&mut g, 3);
        let expr = random_expr(&mut g, &pool, 3);
        let n_atoms = (g.below(3) + 1) as usize;
        let cond = random_cond(&mut g, &pool, n_atoms);
        // Exercise both the fixed-budget loop and the adaptive ε–δ
        // stopping rule (which can fire mid-block: the compiled path
        // must stop — and leave its sampler state — at exactly the
        // interpreted sample, counters included, because the
        // probability pass reads both the RNG and the acceptance
        // counts).
        let interpreted_cfg = match adaptive {
            0 => SamplerConfig::fixed_samples(n),
            1 => SamplerConfig {
                min_samples: 32,
                max_samples: n,
                delta: 0.1,
                ..Default::default()
            },
            _ => SamplerConfig {
                min_samples: 16,
                max_samples: n,
                ..Default::default()
            },
        }
        .with_compile(false);
        let compiled_cfg = interpreted_cfg.clone().with_compile(true);
        let want_probability = wp == 1;
        let a = expectation(&expr, &cond, want_probability, &interpreted_cfg, site);
        let b = expectation(&expr, &cond, want_probability, &compiled_cfg, site);
        match (a, b) {
            (Ok(a), Ok(b)) => assert_results_identical(&a, &b, "expectation"),
            (Err(ea), Err(eb)) => prop_assert_eq!(ea.to_string(), eb.to_string()),
            (a, b) => prop_assert!(false, "interpreted {:?} vs compiled {:?}", a, b),
        }
    }

    /// Same property through the chunked parallel executor, at 1/2/4
    /// threads, with the cache both cold and warm.
    #[test]
    fn chunked_compiled_matches_interpreted_across_threads(
        structure in 0u64..u64::MAX,
        site in 0u64..32,
        n in 100usize..400,
    ) {
        let mut g = Gen(structure);
        let pool = var_pool(&mut g, 3);
        let expr = random_expr(&mut g, &pool, 3);
        let n_atoms = (g.below(3) + 1) as usize;
        let cond = random_cond(&mut g, &pool, n_atoms);
        let interpreted_cfg = SamplerConfig::fixed_samples(n).with_compile(false);
        let pool1 = ParallelSampler::new(1);
        let reference = expectation_chunked(&expr, &cond, true, &interpreted_cfg, site, &pool1);
        for threads in [1usize, 2, 4] {
            let cfg = SamplerConfig::fixed_samples(n)
                .with_compile(true)
                .with_threads(threads);
            let tpool = ParallelSampler::new(threads);
            let compiled = expectation_chunked(&expr, &cond, true, &cfg, site, &tpool);
            match (&reference, compiled) {
                (Ok(a), Ok(b)) => assert_results_identical(a, &b, "chunked"),
                (Err(ea), Err(eb)) => prop_assert_eq!(ea.to_string(), eb.to_string()),
                (a, b) => prop_assert!(false, "interpreted {:?} vs compiled {:?}", a, b),
            }
        }
    }

    /// `conf` through kernels + the probe cache equals interpreted
    /// `conf`, bit for bit.
    #[test]
    fn conf_compiled_matches_interpreted(
        structure in 0u64..u64::MAX,
        site in 0u64..64,
        naive_sel in 0u8..2,
    ) {
        let mut g = Gen(structure);
        let pool = var_pool(&mut g, 3);
        let n_atoms = (g.below(4) + 1) as usize;
        let cond = random_cond(&mut g, &pool, n_atoms);
        let base = if naive_sel == 1 {
            SamplerConfig::naive(400)
        } else {
            SamplerConfig::fixed_samples(400)
        };
        let a = conf(&cond, &base.clone().with_compile(false), site).unwrap();
        let b = conf(&cond, &base.clone().with_compile(true), site).unwrap();
        // And again with a warm probe cache.
        let c = conf(&cond, &base.with_compile(true), site).unwrap();
        prop_assert!(a.to_bits() == b.to_bits(), "cold conf diverged: {} vs {}", a, b);
        prop_assert!(a.to_bits() == c.to_bits(), "warm conf diverged: {} vs {}", a, c);
    }
}

/// Regression (caught in review): with adaptive stopping and a
/// multi-variable group that has no exact CDF path, the probability
/// comes from the averaging loop's acceptance counters — a compiled
/// block that overdraws past the stopping point would inflate them.
/// `E[X | X+Y > 0]` at delta=0.1 must agree to the bit, probability
/// included.
#[test]
fn adaptive_stop_counters_feed_probability_bit_identically() {
    let x = RandomVar::create(builtin::normal(), &[0.0, 1.0]).unwrap();
    let y = RandomVar::create(builtin::normal(), &[0.0, 1.0]).unwrap();
    let cond = Conjunction::single(atoms::gt(
        Equation::from(x.clone()) + Equation::from(y.clone()),
        0.0,
    ));
    let base = SamplerConfig {
        min_samples: 32,
        max_samples: 10_000,
        delta: 0.1,
        ..Default::default()
    };
    for site in 0..16u64 {
        let a = expectation(
            &Equation::from(x.clone()),
            &cond,
            true,
            &base.clone().with_compile(false),
            site,
        )
        .unwrap();
        let b = expectation(
            &Equation::from(x.clone()),
            &cond,
            true,
            &base.clone().with_compile(true),
            site,
        )
        .unwrap();
        assert_results_identical(&a, &b, &format!("adaptive site {site}"));
    }
}

/// The Metropolis escalation bail-out: a selectivity extreme enough to
/// trip the switch (with CDF bounds disabled) must produce the
/// interpreted numbers exactly, compiler on or off.
#[test]
fn escalation_falls_back_bit_identically() {
    let y = RandomVar::create(builtin::normal(), &[0.0, 1.0]).unwrap();
    let cond = Conjunction::single(atoms::gt(Equation::from(y.clone()), 4.0));
    let base = SamplerConfig {
        use_cdf_sampling: false,
        ..SamplerConfig::fixed_samples(400)
    };
    let a = expectation(
        &Equation::from(y.clone()),
        &cond,
        true,
        &base.clone().with_compile(false),
        3,
    )
    .unwrap();
    let b = expectation(&Equation::from(y), &cond, true, &base.with_compile(true), 3).unwrap();
    assert!(a.used_metropolis, "test setup must force the switch");
    assert_results_identical(&a, &b, "escalated expectation");
}

/// Satellite regression: the sample-block cache never changes an
/// `ExpectationResult` — cold cache, warm cache, and cache-off agree at
/// every thread count.
#[test]
fn block_cache_never_changes_results() {
    let mut g = Gen(0xB10C);
    let pool = var_pool(&mut g, 3);
    let expr = random_expr(&mut g, &pool, 3);
    let cond = random_cond(&mut g, &pool, 2);

    block_cache_clear();
    let mut reference: Option<ExpectationResult> = None;
    for threads in [1usize, 2, 4] {
        for reuse in [true, true, false] {
            let cfg = SamplerConfig::fixed_samples(300)
                .with_threads(threads)
                .with_block_reuse(reuse);
            let pool_t = ParallelSampler::new(threads);
            let r = expectation_chunked(&expr, &cond, true, &cfg, 7, &pool_t).unwrap();
            match &reference {
                None => reference = Some(r),
                Some(base) => {
                    assert_results_identical(base, &r, &format!("threads={threads} reuse={reuse}"))
                }
            }
        }
    }

    // Serial operator too: cold, warm, and disabled cache agree.
    let serial_ref = expectation(
        &expr,
        &cond,
        false,
        &SamplerConfig::fixed_samples(300).with_block_reuse(false),
        9,
    )
    .unwrap();
    for _ in 0..2 {
        let r = expectation(
            &expr,
            &cond,
            false,
            &SamplerConfig::fixed_samples(300).with_block_reuse(true),
            9,
        )
        .unwrap();
        assert_results_identical(&serial_ref, &r, "serial cache toggle");
    }
}

/// Satellite fix: `probability` is NAN — never a fake 0 or 1 — when the
/// caller did not request it, on every path (sampled, exact-constant,
/// linear-exact, unsatisfiable, chunked).
#[test]
fn probability_is_nan_when_not_requested() {
    let y = RandomVar::create(builtin::normal(), &[1.0, 2.0]).unwrap();
    let cond = Conjunction::single(atoms::gt(Equation::from(y.clone()), 0.5));
    let dead = Conjunction::of(vec![
        atoms::gt(Equation::from(y.clone()), 5.0),
        atoms::lt(Equation::from(y.clone()), 3.0),
    ]);
    let pool = ParallelSampler::new(2);
    for compile in [false, true] {
        let cfg = SamplerConfig::fixed_samples(100).with_compile(compile);
        // Sampled path.
        let r = expectation(&Equation::from(y.clone()), &cond, false, &cfg, 0).unwrap();
        assert!(r.probability.is_nan(), "sampled: {}", r.probability);
        // Exact-constant expression path.
        let r = expectation(&Equation::val(42.0), &cond, false, &cfg, 0).unwrap();
        assert!(r.probability.is_nan(), "const: {}", r.probability);
        // Linear-exact path (trivially-true condition).
        let r = expectation(
            &Equation::from(y.clone()),
            &Conjunction::top(),
            false,
            &cfg,
            0,
        )
        .unwrap();
        assert!(r.probability.is_nan(), "linear: {}", r.probability);
        // Unsatisfiable context.
        let r = expectation(&Equation::from(y.clone()), &dead, false, &cfg, 0).unwrap();
        assert!(r.expectation.is_nan() && r.probability.is_nan());
        // Chunked executor, same contract.
        let cfg = cfg.with_threads(2);
        let r =
            expectation_chunked(&Equation::from(y.clone()), &cond, false, &cfg, 0, &pool).unwrap();
        assert!(r.probability.is_nan(), "chunked: {}", r.probability);
        // And the probability is still real when requested.
        let r = expectation(&Equation::from(y.clone()), &cond, true, &cfg, 0).unwrap();
        assert!(r.probability > 0.0 && r.probability <= 1.0);
    }
}
