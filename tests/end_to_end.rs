//! End-to-end integration tests spanning the whole stack: SQL → plans →
//! c-table algebra → sampling operators, checked against closed forms.

use pip::dist::special;
use pip::prelude::*;

fn setup() -> (Database, SamplerConfig) {
    (Database::new(), SamplerConfig::default())
}

#[test]
fn paper_running_example_sql() {
    let (db, cfg) = setup();
    sql::run(
        &db,
        "CREATE TABLE orders (cust TEXT, ship_to TEXT, price SYMBOLIC)",
        &cfg,
    )
    .unwrap();
    sql::run(
        &db,
        "CREATE TABLE shipping (dest TEXT, duration SYMBOLIC)",
        &cfg,
    )
    .unwrap();
    sql::run(
        &db,
        "INSERT INTO orders VALUES \
         ('Joe', 'NY', create_variable('Normal', 100, 10)), \
         ('Bob', 'LA', create_variable('Normal', 50, 5))",
        &cfg,
    )
    .unwrap();
    sql::run(
        &db,
        "INSERT INTO shipping VALUES \
         ('NY', create_variable('Normal', 5, 2)), \
         ('LA', create_variable('Normal', 9, 2))",
        &cfg,
    )
    .unwrap();

    let r = sql::run(
        &db,
        "SELECT expected_sum(price) FROM orders, shipping \
         WHERE ship_to = dest AND cust = 'Joe' AND duration >= 7",
        &cfg,
    )
    .unwrap();
    let v = scalar_result(&r).unwrap();
    let truth = 100.0 * (1.0 - special::normal_cdf(1.0));
    assert!((v - truth).abs() < 2.0, "{v} vs {truth}");
}

#[test]
fn symbolic_view_materialization_is_lossless() {
    // Section III-A: intermediate results can be materialized without
    // estimation bias — because they are symbolic. Materialize the join
    // as a catalog table, query it twice with different sample budgets,
    // and check both converge to the same truth.
    let (db, cfg) = setup();
    sql::run(&db, "CREATE TABLE t (v SYMBOLIC)", &cfg).unwrap();
    sql::run(
        &db,
        "INSERT INTO t VALUES (create_variable('Exponential', 0.5))",
        &cfg,
    )
    .unwrap();
    // Materialize σ_{v>2}(t) symbolically.
    let plan = PlanBuilder::scan("t")
        .select(ScalarExpr::col("v").gt(ScalarExpr::lit(2.0)))
        .unwrap()
        .build();
    let view = execute(&db, &plan, &cfg).unwrap();
    assert_eq!(view.len(), 1);
    assert!(!view.rows()[0].condition.is_trivially_true());
    db.register_table("late", view).unwrap();

    // Query the view: E[v | v > 2] = 2 + 1/λ = 4 (memorylessness).
    let r1 = sql::run(&db, "SELECT expected_sum(v) FROM late", &cfg).unwrap();
    // expected_sum = E[v|cond]·P[cond]; P = e^{-1}.
    let truth = 4.0 * (-1.0f64).exp();
    let v1 = scalar_result(&r1).unwrap();
    assert!((v1 - truth).abs() < 0.15, "{v1} vs {truth}");

    // conf() on the view is exact via the exponential CDF.
    let r2 = sql::run(&db, "SELECT v, conf() FROM late", &cfg).unwrap();
    let p = r2.rows()[0].cells[1].as_const().unwrap().as_f64().unwrap();
    assert!((p - (-1.0f64).exp()).abs() < 1e-9, "{p}");
}

#[test]
fn group_by_with_uncertain_measures() {
    let (db, cfg) = setup();
    sql::run(&db, "CREATE TABLE sales (region TEXT, amt SYMBOLIC)", &cfg).unwrap();
    sql::run(
        &db,
        "INSERT INTO sales VALUES \
         ('east', create_variable('Normal', 10, 1)), \
         ('east', create_variable('Normal', 20, 1)), \
         ('west', create_variable('Uniform', 0, 10))",
        &cfg,
    )
    .unwrap();
    let r = sql::run(
        &db,
        "SELECT region, expected_sum(amt), expected_count(*) FROM sales GROUP BY region",
        &cfg,
    )
    .unwrap();
    assert_eq!(r.len(), 2);
    let east_sum = r.rows()[0].cells[1].as_const().unwrap().as_f64().unwrap();
    let west_sum = r.rows()[1].cells[1].as_const().unwrap().as_f64().unwrap();
    assert!((east_sum - 30.0).abs() < 1e-6, "{east_sum}");
    assert!((west_sum - 5.0).abs() < 1e-6, "{west_sum}");
}

#[test]
fn discrete_and_continuous_mix_in_one_query() {
    // A Bernoulli gate on a Normal payout: E = p · μ.
    let (db, cfg) = setup();
    sql::run(
        &db,
        "CREATE TABLE deals (gate SYMBOLIC, payout SYMBOLIC)",
        &cfg,
    )
    .unwrap();
    sql::run(
        &db,
        "INSERT INTO deals VALUES \
         (create_variable('Bernoulli', 0.25), create_variable('Normal', 80, 5))",
        &cfg,
    )
    .unwrap();
    let r = sql::run(&db, "SELECT expected_sum(gate * payout) FROM deals", &cfg).unwrap();
    let v = scalar_result(&r).unwrap();
    assert!((v - 0.25 * 80.0).abs() < 1.5, "{v}");
}

#[test]
fn selection_pushes_conditions_not_samples() {
    // After a selective WHERE, the result table is symbolic — no
    // sampling has happened yet, and the row is still present.
    let (db, cfg) = setup();
    sql::run(&db, "CREATE TABLE t (v SYMBOLIC)", &cfg).unwrap();
    sql::run(
        &db,
        "INSERT INTO t VALUES (create_variable('Normal', 0, 1))",
        &cfg,
    )
    .unwrap();
    // Selectivity ~1e-9 — a sample-first engine would need billions of
    // worlds to see this row at all.
    let plan = PlanBuilder::scan("t")
        .select(ScalarExpr::col("v").gt(ScalarExpr::lit(6.0)))
        .unwrap()
        .build();
    let out = execute(&db, &plan, &cfg).unwrap();
    assert_eq!(out.len(), 1, "row survives symbolically");
    // Its confidence is the exact Normal tail.
    let p = pip::sampling::conf(&out.rows()[0].condition, &cfg, 0).unwrap();
    let truth = 1.0 - special::normal_cdf(6.0);
    assert!((p - truth).abs() < 1e-12, "{p} vs {truth}");
}

#[test]
fn union_and_difference_world_semantics() {
    let (db, cfg) = setup();
    sql::run(&db, "CREATE TABLE a (v INT)", &cfg).unwrap();
    sql::run(&db, "CREATE TABLE b (v INT)", &cfg).unwrap();
    sql::run(&db, "INSERT INTO a VALUES (1), (2), (3)", &cfg).unwrap();
    sql::run(&db, "INSERT INTO b VALUES (2)", &cfg).unwrap();
    let diff = execute(
        &db,
        &PlanBuilder::scan("a")
            .difference(PlanBuilder::scan("b"))
            .build(),
        &cfg,
    )
    .unwrap();
    let world = diff.instantiate(&Assignment::new()).unwrap();
    let mut vals: Vec<i64> = world
        .iter()
        .map(|t| t.get(0).unwrap().as_i64().unwrap())
        .collect();
    vals.sort();
    assert_eq!(vals, vec![1, 3]);
}

#[test]
fn expected_max_via_sql() {
    let (db, cfg) = setup();
    sql::run(&db, "CREATE TABLE t (v FLOAT)", &cfg).unwrap();
    sql::run(&db, "INSERT INTO t VALUES (5), (4), (1)", &cfg).unwrap();
    // All rows certain: E[max] = 5 exactly.
    let r = sql::run(&db, "SELECT expected_max(v) FROM t", &cfg).unwrap();
    assert_eq!(scalar_result(&r).unwrap(), 5.0);
}
