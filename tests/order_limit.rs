//! ORDER BY / LIMIT integration tests: useful on their own, and the
//! natural preparation step for the sorted-scan `expected_max`
//! (Example 4.4 requires "a table sorted by the target expression in
//! descending order").

use pip::prelude::*;

fn db_with_scores() -> (Database, SamplerConfig) {
    let db = Database::new();
    let cfg = SamplerConfig::default();
    sql::run(&db, "CREATE TABLE s (name TEXT, score FLOAT)", &cfg).unwrap();
    sql::run(
        &db,
        "INSERT INTO s VALUES ('a', 3), ('b', 1), ('c', 2)",
        &cfg,
    )
    .unwrap();
    (db, cfg)
}

#[test]
fn order_by_ascending_and_descending() {
    let (db, cfg) = db_with_scores();
    let t = sql::run(&db, "SELECT * FROM s ORDER BY score", &cfg).unwrap();
    let names: Vec<String> = t
        .rows()
        .iter()
        .map(|r| r.cells[0].as_const().unwrap().as_str().unwrap().to_string())
        .collect();
    assert_eq!(names, vec!["b", "c", "a"]);
    let t = sql::run(&db, "SELECT * FROM s ORDER BY score DESC", &cfg).unwrap();
    assert_eq!(
        t.rows()[0].cells[0].as_const().unwrap().as_str().unwrap(),
        "a"
    );
}

#[test]
fn limit_truncates() {
    let (db, cfg) = db_with_scores();
    let t = sql::run(&db, "SELECT * FROM s ORDER BY score DESC LIMIT 2", &cfg).unwrap();
    assert_eq!(t.len(), 2);
    let t = sql::run(&db, "SELECT * FROM s LIMIT 0", &cfg).unwrap();
    assert!(t.is_empty());
    assert!(sql::run(&db, "SELECT * FROM s LIMIT 1.5", &cfg).is_err());
}

#[test]
fn order_by_with_aggregates() {
    let (db, cfg) = db_with_scores();
    sql::run(&db, "INSERT INTO s VALUES ('a', 10)", &cfg).unwrap();
    let t = sql::run(
        &db,
        "SELECT name, expected_sum(score) FROM s GROUP BY name ORDER BY name DESC LIMIT 2",
        &cfg,
    )
    .unwrap();
    assert_eq!(t.len(), 2);
    assert_eq!(
        t.rows()[0].cells[0].as_const().unwrap().as_str().unwrap(),
        "c"
    );
}

#[test]
fn order_by_uncertain_column_rejected() {
    let db = Database::new();
    let cfg = SamplerConfig::default();
    sql::run(&db, "CREATE TABLE t (v SYMBOLIC)", &cfg).unwrap();
    sql::run(
        &db,
        "INSERT INTO t VALUES (create_variable('Normal', 0, 1))",
        &cfg,
    )
    .unwrap();
    let r = sql::run(&db, "SELECT * FROM t ORDER BY v", &cfg);
    assert!(matches!(r, Err(PipError::Unsupported(_))), "{r:?}");
}

#[test]
fn sort_then_expected_max_sorted_scan() {
    // The Example 4.4 workflow: sort a constant-target table descending,
    // then expected_max consumes it with early exit.
    let (db, cfg) = db_with_scores();
    let plan = PlanBuilder::scan("s")
        .sort(vec![("score", true)])
        .aggregate(
            vec![],
            vec![AggFunc::ExpectedMax {
                column: "score".into(),
                precision: 0.0,
            }],
        )
        .build();
    let t = execute(&db, &plan, &cfg).unwrap();
    assert_eq!(scalar_result(&t).unwrap(), 3.0);
}
