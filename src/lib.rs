//! # PIP: A Database System for Great and Small Expectations
//!
//! A from-scratch Rust reproduction of Kennedy & Koch, *PIP: A database
//! system for great and small expectations* (ICDE 2010): a general
//! probabilistic database that evaluates queries **symbolically** over
//! probabilistic c-tables — supporting continuous as well as discrete
//! distributions — and defers all sampling until the expression to be
//! measured is fully known. Deferral makes goal-directed integration
//! possible: exact CDF evaluation, inverse-CDF sampling bounded by the
//! consistency checker's intervals, independence-decomposed rejection
//! sampling, and a Metropolis fallback.
//!
//! The workspace layers (re-exported here):
//!
//! * [`core`](pip_core) — values, schemas, tuples.
//! * [`dist`](pip_dist) — distribution classes (`Generate`/`PDF`/`CDF`/
//!   `CDF⁻¹`) and hand-written special functions.
//! * [`expr`](pip_expr) — random variables, the equation datatype,
//!   condition atoms and conjunctions.
//! * [`ctable`](pip_ctable) — c-tables, Figure 1 relational algebra, the
//!   Algorithm 3.2 consistency checker.
//! * [`sampling`](pip_sampling) — the Algorithm 4.3 expectation operator,
//!   `conf`/`aconf`, aggregate operators, histograms.
//! * [`engine`](pip_engine) — catalog, logical plans, executor, SQL.
//! * [`samplefirst`](pip_samplefirst) — the MCDB-style tuple-bundle
//!   baseline the paper compares against.
//! * [`workloads`](pip_workloads) — TPC-H-like + iceberg generators and
//!   evaluation queries Q1–Q5.
//!
//! ## Quickstart
//!
//! ```
//! use pip::prelude::*;
//!
//! let db = Database::new();
//! let cfg = SamplerConfig::default();
//! sql::run(&db, "CREATE TABLE orders (cust TEXT, price SYMBOLIC)", &cfg).unwrap();
//! sql::run(
//!     &db,
//!     "INSERT INTO orders VALUES ('Joe', create_variable('Normal', 100, 10))",
//!     &cfg,
//! ).unwrap();
//! let t = sql::run(&db, "SELECT expected_sum(price) FROM orders", &cfg).unwrap();
//! assert!((scalar_result(&t).unwrap() - 100.0).abs() < 1e-9);
//! ```

pub use pip_core as core;
pub use pip_ctable as ctable;
pub use pip_dist as dist;
pub use pip_engine as engine;
pub use pip_expr as expr;
pub use pip_samplefirst as samplefirst;
pub use pip_sampling as sampling;
pub use pip_store as store;
pub use pip_workloads as workloads;

/// One-stop import for applications.
pub mod prelude {
    pub use pip_core::{Column, DataType, PipError, Result, Schema, Tuple, Value};
    pub use pip_ctable::prelude::*;
    pub use pip_dist::prelude::*;
    pub use pip_engine::prelude::*;
    pub use pip_engine::{scalar_result, sql};
    pub use pip_expr::prelude::*;
    pub use pip_sampling::prelude::*;
}
