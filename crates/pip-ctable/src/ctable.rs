//! The probabilistic c-table (paper Section II): a multiset of rows, each
//! carrying symbolic cells (equations) and a local condition
//! (a conjunction of constraint atoms).

use std::fmt;

use pip_core::{PipError, Result, Schema, Tuple, Value};
use pip_expr::{Assignment, Conjunction, Equation, RandomVar};

/// One c-table row: cells plus the local condition under which the row
/// exists.
#[derive(Debug, Clone, PartialEq)]
pub struct CRow {
    pub cells: Vec<Equation>,
    pub condition: Conjunction,
}

impl CRow {
    pub fn new(cells: Vec<Equation>, condition: Conjunction) -> Self {
        CRow { cells, condition }
    }

    /// A row with trivially-true condition.
    pub fn unconditional(cells: Vec<Equation>) -> Self {
        CRow::new(cells, Conjunction::top())
    }

    /// Build from a deterministic tuple.
    pub fn from_tuple(t: &Tuple) -> Self {
        CRow::unconditional(t.values().iter().cloned().map(Equation::Const).collect())
    }

    /// All distinct variables in cells and condition.
    pub fn variables(&self) -> Vec<RandomVar> {
        let mut out = Vec::new();
        for c in &self.cells {
            c.collect_vars(&mut out);
        }
        for v in self.condition.variables() {
            if !out.iter().any(|o| o.key == v.key) {
                out.push(v);
            }
        }
        out
    }

    /// True if the row has no symbolic content at all.
    pub fn is_deterministic(&self) -> bool {
        self.condition.is_trivially_true() && self.cells.iter().all(|c| c.is_deterministic())
    }

    /// Instantiate under an assignment: `None` when the condition fails.
    pub fn instantiate(&self, a: &Assignment) -> Result<Option<Tuple>> {
        if !self.condition.eval(a)? {
            return Ok(None);
        }
        let vals = self
            .cells
            .iter()
            .map(|c| c.eval_value(a))
            .collect::<Result<Vec<Value>>>()?;
        Ok(Some(Tuple::new(vals)))
    }
}

impl fmt::Display for CRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.cells.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ") | {}", self.condition)
    }
}

/// A probabilistic c-table: a schema plus a multiset of conditioned rows.
///
/// Rows are stored with *conjunctive* conditions only; disjunction is
/// encoded by duplicate rows (bag semantics) and re-coalesced by
/// `distinct`/`aconf` (paper Sections III-B and V-C).
#[derive(Debug, Clone, PartialEq)]
pub struct CTable {
    schema: Schema,
    rows: Vec<CRow>,
}

impl CTable {
    pub fn new(schema: Schema, rows: Vec<CRow>) -> Result<Self> {
        for (i, r) in rows.iter().enumerate() {
            if r.cells.len() != schema.len() {
                return Err(PipError::Schema(format!(
                    "row {i} has {} cells, schema has {} columns",
                    r.cells.len(),
                    schema.len()
                )));
            }
        }
        Ok(CTable { schema, rows })
    }

    pub fn empty(schema: Schema) -> Self {
        CTable {
            schema,
            rows: Vec::new(),
        }
    }

    /// Lift a deterministic relation into a c-table.
    pub fn from_tuples(schema: Schema, tuples: &[Tuple]) -> Result<Self> {
        CTable::new(schema, tuples.iter().map(CRow::from_tuple).collect())
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    pub fn rows(&self) -> &[CRow] {
        &self.rows
    }

    pub fn rows_mut(&mut self) -> &mut Vec<CRow> {
        &mut self.rows
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    pub fn push(&mut self, row: CRow) -> Result<()> {
        if row.cells.len() != self.schema.len() {
            return Err(PipError::Schema(format!(
                "row has {} cells, schema has {} columns",
                row.cells.len(),
                self.schema.len()
            )));
        }
        self.rows.push(row);
        Ok(())
    }

    /// All distinct variables anywhere in the table.
    pub fn variables(&self) -> Vec<RandomVar> {
        let mut out = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for r in &self.rows {
            for v in r.variables() {
                if seen.insert(v.key) {
                    out.push(v);
                }
            }
        }
        out
    }

    /// The possible world selected by `assignment` (paper Section II-A):
    /// each row appears iff its condition holds, with cells evaluated.
    pub fn instantiate(&self, a: &Assignment) -> Result<Vec<Tuple>> {
        let mut out = Vec::with_capacity(self.rows.len());
        for r in &self.rows {
            if let Some(t) = r.instantiate(a)? {
                out.push(t);
            }
        }
        Ok(out)
    }
}

impl fmt::Display for CTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.schema)?;
        for r in &self.rows {
            writeln!(f, "  {r}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pip_core::{tuple, DataType};
    use pip_dist::prelude::builtin;
    use pip_expr::atoms;

    fn yvar() -> RandomVar {
        RandomVar::create(builtin::normal(), &[0.0, 1.0]).unwrap()
    }

    #[test]
    fn from_tuples_and_instantiate_identity() {
        let s = Schema::of(&[("a", DataType::Int), ("b", DataType::Str)]);
        let ts = vec![tuple![1i64, "x"], tuple![2i64, "y"]];
        let ct = CTable::from_tuples(s, &ts).unwrap();
        assert_eq!(ct.len(), 2);
        assert!(ct.rows()[0].is_deterministic());
        let world = ct.instantiate(&Assignment::new()).unwrap();
        assert_eq!(world, ts);
    }

    #[test]
    fn conditioned_row_appears_only_when_condition_holds() {
        let y = yvar();
        let s = Schema::of(&[("price", DataType::Symbolic)]);
        let row = CRow::new(
            vec![Equation::from(y.clone())],
            Conjunction::single(atoms::ge(Equation::from(y.clone()), 7.0)),
        );
        let ct = CTable::new(s, vec![row]).unwrap();
        let mut a = Assignment::new();
        a.set(y.key, 10.0);
        assert_eq!(ct.instantiate(&a).unwrap(), vec![tuple![10.0]]);
        a.set(y.key, 3.0);
        assert!(ct.instantiate(&a).unwrap().is_empty());
    }

    #[test]
    fn schema_arity_enforced() {
        let s = Schema::of(&[("a", DataType::Int)]);
        let bad = CRow::unconditional(vec![Equation::val(1.0), Equation::val(2.0)]);
        assert!(CTable::new(s.clone(), vec![bad.clone()]).is_err());
        let mut ct = CTable::empty(s);
        assert!(ct.push(bad).is_err());
        assert!(ct.is_empty());
    }

    #[test]
    fn variables_collects_cells_and_conditions() {
        let y = yvar();
        let z = yvar();
        let s = Schema::of(&[("v", DataType::Symbolic)]);
        let row = CRow::new(
            vec![Equation::from(y.clone())],
            Conjunction::single(atoms::gt(Equation::from(z.clone()), 0.0)),
        );
        let ct = CTable::new(s, vec![row]).unwrap();
        let vars = ct.variables();
        assert_eq!(vars.len(), 2);
        assert!(vars.iter().any(|v| v.key == y.key));
        assert!(vars.iter().any(|v| v.key == z.key));
    }

    #[test]
    fn display_contains_condition() {
        let y = yvar();
        let s = Schema::of(&[("v", DataType::Symbolic)]);
        let row = CRow::new(
            vec![Equation::from(y.clone())],
            Conjunction::single(atoms::ge(Equation::from(y), 7.0)),
        );
        let ct = CTable::new(s, vec![row]).unwrap();
        let txt = ct.to_string();
        assert!(txt.contains(">= 7"), "{txt}");
    }
}
