//! Discrete-variable explosion (paper Section III-C).
//!
//! "Rather than using abstract representations, every row containing
//! discrete variables may be exploded into one row for every possible
//! valuation. Condition atoms matching each variable to its valuation are
//! used to ensure mutual exclusion of each row." After explosion the
//! discrete columns are plain constants, and the deterministic query
//! optimizer filters them as early as any other predicate.

use pip_core::{PipError, Result};
use pip_expr::{atoms, Assignment, Equation, RandomVar};

use crate::ctable::{CRow, CTable};

/// Enumerate the (finite) integer domain of a discrete variable from its
/// support; fails when the support is unbounded (e.g. Poisson) or larger
/// than `max_domain`.
pub fn discrete_domain(var: &RandomVar, max_domain: usize) -> Result<Vec<f64>> {
    if !var.is_discrete() {
        return Err(PipError::Unsupported(format!(
            "{} is not discrete",
            var.key.id
        )));
    }
    let (lo, hi) = var.class.support(&var.params);
    if !lo.is_finite() || !hi.is_finite() {
        return Err(PipError::Unsupported(format!(
            "discrete variable {} has unbounded support",
            var.key.id
        )));
    }
    let n = (hi - lo) as usize + 1;
    if n > max_domain {
        return Err(PipError::Unsupported(format!(
            "domain of {} has {n} values (cap {max_domain})",
            var.key.id
        )));
    }
    Ok((0..n).map(|i| lo + i as f64).collect())
}

/// Explode every finite-domain discrete variable occurring in the *cells*
/// of `table` into per-valuation rows.
///
/// Each output row gets `X = v` atoms appended to its condition and the
/// variable replaced by the constant `v` in its cells. Variables that are
/// discrete but unbounded (Poisson) are left symbolic — the sampler
/// handles them like continuous ones.
pub fn explode_discrete(table: &CTable, max_domain: usize) -> Result<CTable> {
    let mut out = CTable::empty(table.schema().clone());
    for row in table.rows() {
        // Discrete, finite-support variables in this row's cells.
        let mut dvars: Vec<RandomVar> = Vec::new();
        for cell in &row.cells {
            for v in cell.variables() {
                if v.is_discrete()
                    && discrete_domain(&v, max_domain).is_ok()
                    && !dvars.iter().any(|d| d.key == v.key)
                {
                    dvars.push(v);
                }
            }
        }
        if dvars.is_empty() {
            out.push(row.clone())?;
            continue;
        }
        // Cartesian product over the domains.
        let domains: Vec<Vec<f64>> = dvars
            .iter()
            .map(|v| discrete_domain(v, max_domain))
            .collect::<Result<_>>()?;
        let mut counters = vec![0usize; dvars.len()];
        loop {
            // Build the valuation as an Assignment for substitution.
            let mut asg = Assignment::new();
            let mut cond = row.condition.clone();
            for (v, (&c, dom)) in dvars.iter().zip(counters.iter().zip(&domains)) {
                asg.set(v.key, dom[c]);
                cond = cond.and_atom(atoms::eq(Equation::from(v.clone()), dom[c]));
            }
            // Substitute in cells: any cell whose variables are all
            // assigned becomes a constant.
            let cells = row
                .cells
                .iter()
                .map(|cell| {
                    if cell.is_deterministic() {
                        return Ok(cell.clone());
                    }
                    let vars = cell.variables();
                    if vars.iter().all(|v| asg.get(v.key).is_some()) {
                        Ok(Equation::Const(cell.eval_value(&asg)?))
                    } else {
                        Ok(cell.clone())
                    }
                })
                .collect::<Result<Vec<_>>>()?;
            if let Some(cond) = pip_expr::simplify_row_condition(cond) {
                out.push(CRow::new(cells, cond))?;
            }
            // Advance the mixed-radix counter.
            let mut i = 0;
            loop {
                if i == counters.len() {
                    break;
                }
                counters[i] += 1;
                if counters[i] < domains[i].len() {
                    break;
                }
                counters[i] = 0;
                i += 1;
            }
            if i == counters.len() {
                break;
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pip_core::{DataType, Schema};
    use pip_dist::prelude::builtin;
    use pip_expr::Conjunction;

    fn die() -> RandomVar {
        RandomVar::create(builtin::discrete_uniform(), &[1.0, 6.0]).unwrap()
    }

    #[test]
    fn domain_enumeration() {
        let d = die();
        assert_eq!(
            discrete_domain(&d, 10).unwrap(),
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]
        );
        assert!(discrete_domain(&d, 3).is_err());
        let cont = RandomVar::create(builtin::normal(), &[0.0, 1.0]).unwrap();
        assert!(discrete_domain(&cont, 10).is_err());
        let pois = RandomVar::create(builtin::poisson(), &[3.0]).unwrap();
        assert!(discrete_domain(&pois, 10).is_err(), "unbounded support");
    }

    #[test]
    fn explode_single_die() {
        let d = die();
        let s = Schema::of(&[("roll", DataType::Symbolic)]);
        let t = CTable::new(
            s,
            vec![CRow::unconditional(vec![Equation::from(d.clone())])],
        )
        .unwrap();
        let x = explode_discrete(&t, 16).unwrap();
        assert_eq!(x.len(), 6);
        // Every row is now a constant cell with an X=v condition.
        for (i, row) in x.rows().iter().enumerate() {
            let v = row.cells[0].as_const().unwrap().as_f64().unwrap();
            assert_eq!(v, (i + 1) as f64);
            assert_eq!(row.condition.atoms().len(), 1);
        }
    }

    #[test]
    fn explode_two_dice_product_domain() {
        let d1 = die();
        let d2 = die();
        let s = Schema::of(&[("sum", DataType::Symbolic)]);
        let t = CTable::new(
            s,
            vec![CRow::unconditional(vec![(Equation::from(d1)
                + Equation::from(d2))
            .simplify()])],
        )
        .unwrap();
        let x = explode_discrete(&t, 16).unwrap();
        assert_eq!(x.len(), 36);
        // Cells are fully substituted constants 2..=12.
        let min = x
            .rows()
            .iter()
            .map(|r| r.cells[0].as_const().unwrap().as_f64().unwrap())
            .fold(f64::INFINITY, f64::min);
        let max = x
            .rows()
            .iter()
            .map(|r| r.cells[0].as_const().unwrap().as_f64().unwrap())
            .fold(f64::NEG_INFINITY, f64::max);
        assert_eq!((min, max), (2.0, 12.0));
    }

    #[test]
    fn rows_without_discrete_vars_pass_through() {
        let y = RandomVar::create(builtin::normal(), &[0.0, 1.0]).unwrap();
        let s = Schema::of(&[("v", DataType::Symbolic)]);
        let t = CTable::new(
            s,
            vec![CRow::new(
                vec![Equation::from(y.clone())],
                Conjunction::single(atoms::gt(Equation::from(y), 0.0)),
            )],
        )
        .unwrap();
        let x = explode_discrete(&t, 16).unwrap();
        assert_eq!(x.len(), 1);
        assert_eq!(x.rows()[0], t.rows()[0]);
    }
}
