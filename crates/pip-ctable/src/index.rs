//! Ordered secondary indexes over one column of a c-table.
//!
//! An [`OrderedIndex`] is a sorted run of `(key, row_id)` pairs over the
//! rows whose cell in the indexed column is a *constant*, plus a list of
//! the remaining rows (symbolic cells — equations over random
//! variables). Keys are ordered by [`Value::cmp_total`], the same total
//! order every deterministic comparison in the engine goes through
//! (`Atom::const_truth`, `sql_eq`), so a seek range computed with
//! `cmp_total` bounds selects exactly the constant cells a full scan's
//! predicate would decide on.
//!
//! The contract consumed by the physical operators is *candidate
//! superset, base order*: [`OrderedIndex::seek`] and
//! [`OrderedIndex::equal_candidates`] return row ids in ascending
//! (insertion) order, always including every symbolic row — a symbolic
//! comparison never drops a row, it hoists a condition atom, so those
//! rows must reach the residual filter. Emitting candidates in base
//! order (not key order) is what keeps index plans row-identical — and
//! therefore sample-site- and bit-identical — to their full-scan
//! equivalents.
//!
//! Maintenance is incremental: [`OrderedIndex::with_appended`] merges a
//! sorted run of new entries in O(existing + new), matching the
//! catalog's copy-on-write INSERT path.

use pip_core::{PipError, Result, Value};

use crate::ctable::CTable;

/// Inclusive/exclusive bound of a seek range.
pub type Bound = (Value, bool);

/// An ordered index over one column: sorted `(key, row_id)` entries for
/// constant cells, plus the symbolic rows that every probe must visit.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderedIndex {
    /// Indexed cell position in the table schema.
    column: usize,
    /// `(key, row_id)` sorted by `(cmp_total, row_id)`.
    entries: Vec<(Value, u32)>,
    /// Rows whose indexed cell is symbolic, ascending.
    others: Vec<u32>,
    /// Rows covered (entries + others); the next row id to assign.
    covered: u32,
}

impl OrderedIndex {
    /// Build an index over `column` from scratch.
    pub fn build(table: &CTable, column: usize) -> Result<OrderedIndex> {
        if column >= table.schema().len() {
            return Err(PipError::Schema(format!(
                "index column {column} out of range for schema of {} columns",
                table.schema().len()
            )));
        }
        let mut idx = OrderedIndex {
            column,
            entries: Vec::new(),
            others: Vec::new(),
            covered: 0,
        };
        idx.append_rows(table, 0);
        Ok(idx)
    }

    /// A copy of the index extended with the rows of `table` from
    /// `start_row` on (the catalog's INSERT path: the table was cloned
    /// and appended to, the index follows suit).
    pub fn with_appended(&self, table: &CTable, start_row: usize) -> Result<OrderedIndex> {
        if start_row != self.covered as usize {
            return Err(PipError::Schema(format!(
                "index covers {} rows but insert starts at row {start_row}",
                self.covered
            )));
        }
        let mut idx = self.clone();
        idx.append_rows(table, start_row);
        Ok(idx)
    }

    fn append_rows(&mut self, table: &CTable, start_row: usize) {
        let mut fresh: Vec<(Value, u32)> = Vec::new();
        for (i, row) in table.rows().iter().enumerate().skip(start_row) {
            let id = i as u32;
            match row.cells[self.column].as_const() {
                Some(v) => fresh.push((v.clone(), id)),
                None => self.others.push(id),
            }
        }
        self.covered = table.len() as u32;
        if fresh.is_empty() {
            return;
        }
        fresh.sort_by(|a, b| a.0.cmp_total(&b.0).then(a.1.cmp(&b.1)));
        if self
            .entries
            .last()
            .map(|last| last.0.cmp_total(&fresh[0].0).is_le())
            .unwrap_or(true)
        {
            // Appended keys all sort after the existing run (common for
            // monotone inserts): plain extend.
            self.entries.extend(fresh);
        } else {
            let old = std::mem::take(&mut self.entries);
            self.entries = merge_entries(old, fresh);
        }
    }

    /// Indexed cell position.
    pub fn column(&self) -> usize {
        self.column
    }

    /// Rows covered by the index.
    pub fn covered_rows(&self) -> u32 {
        self.covered
    }

    /// Sorted constant entries (tests and byte-identity checks).
    pub fn entries(&self) -> &[(Value, u32)] {
        &self.entries
    }

    /// Symbolic rows, ascending (always candidates).
    pub fn others(&self) -> &[u32] {
        &self.others
    }

    /// First entry position whose key is not below `bound` (when
    /// `inclusive`) / not at-or-below `bound` (when exclusive).
    fn lower_pos(&self, bound: &Value, inclusive: bool) -> usize {
        self.entries.partition_point(|(k, _)| {
            let ord = k.cmp_total(bound);
            if inclusive {
                ord.is_lt()
            } else {
                ord.is_le()
            }
        })
    }

    /// One past the last entry position inside an upper `bound`.
    fn upper_pos(&self, bound: &Value, inclusive: bool) -> usize {
        self.entries.partition_point(|(k, _)| {
            let ord = k.cmp_total(bound);
            if inclusive {
                ord.is_le()
            } else {
                ord.is_lt()
            }
        })
    }

    /// Candidate row ids for a range seek, ascending: constant cells
    /// inside the `cmp_total` range `[lo, hi]` (each bound optional,
    /// inclusive or exclusive) merged with every symbolic row.
    pub fn seek(&self, lo: Option<&Bound>, hi: Option<&Bound>) -> Vec<u32> {
        let start = lo.map_or(0, |(v, inc)| self.lower_pos(v, *inc));
        let end = hi.map_or(self.entries.len(), |(v, inc)| self.upper_pos(v, *inc));
        let mut hits: Vec<u32> = self.entries[start..end.max(start)]
            .iter()
            .map(|(_, id)| *id)
            .collect();
        hits.sort_unstable();
        merge_ids(&hits, &self.others)
    }

    /// Candidate row ids for an equality probe, ascending: constant
    /// cells `cmp_total`-equal to `key` (the engine's `sql_eq`) merged
    /// with every symbolic row.
    pub fn equal_candidates(&self, key: &Value) -> Vec<u32> {
        let start = self.lower_pos(key, true);
        let end = self.upper_pos(key, true);
        let mut hits: Vec<u32> = self.entries[start..end.max(start)]
            .iter()
            .map(|(_, id)| *id)
            .collect();
        hits.sort_unstable();
        merge_ids(&hits, &self.others)
    }
}

/// Merge two `(key, row_id)` runs sorted by `(cmp_total, row_id)`.
fn merge_entries(a: Vec<(Value, u32)>, b: Vec<(Value, u32)>) -> Vec<(Value, u32)> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut ai, mut bi) = (a.into_iter().peekable(), b.into_iter().peekable());
    loop {
        match (ai.peek(), bi.peek()) {
            (Some(x), Some(y)) => {
                if x.0.cmp_total(&y.0).then(x.1.cmp(&y.1)).is_le() {
                    out.push(ai.next().expect("peeked"));
                } else {
                    out.push(bi.next().expect("peeked"));
                }
            }
            (Some(_), None) => out.push(ai.next().expect("peeked")),
            (None, Some(_)) => out.push(bi.next().expect("peeked")),
            (None, None) => return out,
        }
    }
}

/// Merge two ascending row-id lists into one ascending list.
fn merge_ids(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i] < b[j] {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctable::CRow;
    use pip_core::{DataType, Schema};
    use pip_dist::prelude::builtin;
    use pip_expr::{Equation, RandomVar};

    fn table(keys: &[Option<i64>]) -> CTable {
        let schema = Schema::of(&[("k", DataType::Symbolic), ("v", DataType::Int)]);
        let rows = keys
            .iter()
            .enumerate()
            .map(|(i, k)| {
                let cell = match k {
                    Some(x) => Equation::val(*x),
                    None => {
                        let v = RandomVar::create(builtin::normal(), &[0.0, 1.0]).unwrap();
                        Equation::from(v)
                    }
                };
                CRow::unconditional(vec![cell, Equation::val(i as i64)])
            })
            .collect();
        CTable::new(schema, rows).unwrap()
    }

    #[test]
    fn build_splits_constant_and_symbolic_cells() {
        let t = table(&[Some(5), None, Some(2), Some(9), None]);
        let idx = OrderedIndex::build(&t, 0).unwrap();
        assert_eq!(idx.covered_rows(), 5);
        assert_eq!(idx.others(), &[1, 4]);
        let keys: Vec<i64> = idx
            .entries()
            .iter()
            .map(|(v, _)| match v {
                Value::Int(i) => *i,
                other => panic!("{other:?}"),
            })
            .collect();
        assert_eq!(keys, vec![2, 5, 9]);
    }

    #[test]
    fn seek_ranges_are_ascending_supersets() {
        let t = table(&[Some(5), None, Some(2), Some(9), Some(5)]);
        let idx = OrderedIndex::build(&t, 0).unwrap();
        // k < 5: row 2 (k=2) plus the symbolic row 1.
        let lo = idx.seek(None, Some(&(Value::Int(5), false)));
        assert_eq!(lo, vec![1, 2]);
        // k <= 5: adds both k=5 rows, ascending.
        let le = idx.seek(None, Some(&(Value::Int(5), true)));
        assert_eq!(le, vec![0, 1, 2, 4]);
        // 2 < k <= 9: everything but row 2's key, still ascending.
        let mid = idx.seek(Some(&(Value::Int(2), false)), Some(&(Value::Int(9), true)));
        assert_eq!(mid, vec![0, 1, 3, 4]);
        // Unbounded: every row.
        assert_eq!(idx.seek(None, None), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn equality_probes_match_sql_eq_across_int_and_float() {
        let schema = Schema::of(&[("k", DataType::Symbolic)]);
        let rows = vec![
            CRow::unconditional(vec![Equation::val(1i64)]),
            CRow::unconditional(vec![Equation::val(1.0f64)]),
            CRow::unconditional(vec![Equation::val(2i64)]),
        ];
        let t = CTable::new(schema, rows).unwrap();
        let idx = OrderedIndex::build(&t, 0).unwrap();
        // Int(1) and Float(1.0) are cmp_total-equal — exactly sql_eq.
        assert_eq!(idx.equal_candidates(&Value::Int(1)), vec![0, 1]);
        assert_eq!(idx.equal_candidates(&Value::Float(2.0)), vec![2]);
        assert!(idx.equal_candidates(&Value::Int(7)).is_empty());
    }

    #[test]
    fn with_appended_matches_full_rebuild() {
        let mut t = table(&[Some(5), None, Some(2)]);
        let idx = OrderedIndex::build(&t, 0).unwrap();
        t.push(CRow::unconditional(vec![
            Equation::val(3i64),
            Equation::val(3i64),
        ]))
        .unwrap();
        t.push(CRow::unconditional(vec![
            Equation::val(7i64),
            Equation::val(4i64),
        ]))
        .unwrap();
        let incremental = idx.with_appended(&t, 3).unwrap();
        let rebuilt = OrderedIndex::build(&t, 0).unwrap();
        assert_eq!(incremental, rebuilt);
        // Appending from the wrong watermark is a hard error.
        assert!(idx.with_appended(&t, 4).is_err());
    }

    #[test]
    fn monotone_append_fast_path_stays_sorted() {
        let mut t = table(&[Some(1), Some(2)]);
        let idx = OrderedIndex::build(&t, 0).unwrap();
        t.push(CRow::unconditional(vec![
            Equation::val(3i64),
            Equation::val(2i64),
        ]))
        .unwrap();
        let inc = idx.with_appended(&t, 2).unwrap();
        assert_eq!(inc, OrderedIndex::build(&t, 0).unwrap());
    }

    #[test]
    fn column_out_of_range_rejected() {
        let t = table(&[Some(1)]);
        assert!(OrderedIndex::build(&t, 2).is_err());
    }
}
