//! Interval bounds on random variables, derived from condition atoms.
//!
//! The consistency checker (Algorithm 3.2) maintains a map
//! `variable → [lo, hi]` and repeatedly tightens it; the same map is then
//! reused by the CDF-bounded sampler (Section IV-A(b)) to restrict the
//! uniform input range of inverse-CDF generation.

use std::collections::HashMap;
use std::fmt;

use pip_expr::VarKey;

/// A closed interval `[lo, hi]` (±∞ allowed).
///
/// Strict (`<`) constraints are recorded with closed endpoints: for
/// continuous variables the boundary carries zero probability mass, so
/// the distinction never changes an expectation; an interval is *empty*
/// only when `lo > hi`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    pub lo: f64,
    pub hi: f64,
}

impl Interval {
    /// The unconstrained interval `[−∞, ∞]`.
    pub fn all() -> Self {
        Interval {
            lo: f64::NEG_INFINITY,
            hi: f64::INFINITY,
        }
    }

    pub fn new(lo: f64, hi: f64) -> Self {
        Interval { lo, hi }
    }

    pub fn is_empty(&self) -> bool {
        self.lo > self.hi
    }

    pub fn is_unbounded(&self) -> bool {
        self.lo == f64::NEG_INFINITY && self.hi == f64::INFINITY
    }

    /// True when both endpoints are finite.
    pub fn is_finite(&self) -> bool {
        self.lo.is_finite() && self.hi.is_finite()
    }

    pub fn intersect(&self, other: &Interval) -> Interval {
        Interval {
            lo: self.lo.max(other.lo),
            hi: self.hi.min(other.hi),
        }
    }

    pub fn contains(&self, x: f64) -> bool {
        x >= self.lo && x <= self.hi
    }

    pub fn width(&self) -> f64 {
        (self.hi - self.lo).max(0.0)
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

/// The bounds map `S` of Algorithm 3.2.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BoundsMap {
    map: HashMap<VarKey, Interval>,
}

impl BoundsMap {
    pub fn new() -> Self {
        Self::default()
    }

    /// Bounds for `key` (unconstrained if absent).
    pub fn get(&self, key: VarKey) -> Interval {
        self.map.get(&key).copied().unwrap_or_else(Interval::all)
    }

    pub fn set(&mut self, key: VarKey, iv: Interval) {
        self.map.insert(key, iv);
    }

    /// Intersect the stored interval with `iv`; returns the result.
    pub fn tighten(&mut self, key: VarKey, iv: Interval) -> Interval {
        let cur = self.get(key);
        let next = cur.intersect(&iv);
        self.map.insert(key, next);
        next
    }

    /// True if any variable's interval became empty.
    pub fn any_empty(&self) -> bool {
        self.map.values().any(Interval::is_empty)
    }

    pub fn iter(&self) -> impl Iterator<Item = (&VarKey, &Interval)> {
        self.map.iter()
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pip_expr::{VarId, VarKey};

    fn k(n: u64) -> VarKey {
        VarKey {
            id: VarId(n),
            subscript: 0,
        }
    }

    #[test]
    fn interval_basics() {
        let a = Interval::all();
        assert!(a.is_unbounded() && !a.is_empty() && !a.is_finite());
        let i = Interval::new(1.0, 3.0);
        assert!(i.contains(2.0) && i.contains(1.0) && i.contains(3.0));
        assert!(!i.contains(0.0));
        assert_eq!(i.width(), 2.0);
        let e = Interval::new(3.0, 1.0);
        assert!(e.is_empty());
        assert_eq!(e.width(), 0.0);
    }

    #[test]
    fn intersection() {
        let a = Interval::new(0.0, 10.0);
        let b = Interval::new(5.0, 20.0);
        assert_eq!(a.intersect(&b), Interval::new(5.0, 10.0));
        let c = Interval::new(11.0, 20.0);
        assert!(a.intersect(&c).is_empty());
        assert_eq!(a.intersect(&Interval::all()), a);
    }

    #[test]
    fn bounds_map_tighten() {
        let mut m = BoundsMap::new();
        assert!(m.get(k(1)).is_unbounded());
        m.tighten(k(1), Interval::new(0.0, f64::INFINITY));
        m.tighten(k(1), Interval::new(f64::NEG_INFINITY, 5.0));
        assert_eq!(m.get(k(1)), Interval::new(0.0, 5.0));
        assert!(!m.any_empty());
        m.tighten(k(1), Interval::new(6.0, 7.0));
        assert!(m.any_empty());
        assert_eq!(m.len(), 1);
    }
}
