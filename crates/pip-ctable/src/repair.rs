//! The `repair-key` operator (paper Section V-A, footnote 2): PIP's
//! MayBMS-style constructor for *discrete* probabilistic tables.
//!
//! `repair_key(R, key_cols, weight_col)` interprets `R` as a set of
//! weighted alternatives per key: within each key group exactly one row
//! exists in any possible world, chosen with probability proportional to
//! its weight. Implementation: one fresh `Categorical` variable per key
//! group; alternative `i` gets the condition `X_g = i` appended, which
//! makes the alternatives mutually exclusive and the group's confidences
//! sum to 1 — the block-independent-disjoint building block that (with
//! relational algebra on top) can represent any finite distribution.

use std::sync::Arc;

use pip_core::{PipError, Result, Value};
use pip_dist::prelude::builtin;
use pip_expr::{atoms, Equation, RandomVar, VarId, VarKey};

use crate::ctable::{CRow, CTable};

/// Per-group choice variables produced by [`repair_key`]: group key →
/// the categorical variable selecting that group's surviving row.
pub type GroupVars = Vec<(Vec<Value>, RandomVar)>;

/// Apply repair-key. `key_cols` may be empty (the whole table is one
/// group — a single categorical choice). The weight column must hold
/// deterministic non-negative numbers; it is retained in the output.
///
/// Returns the repaired table plus the per-group variables (group key →
/// variable), so callers can express cross-table correlations.
pub fn repair_key(
    table: &CTable,
    key_cols: &[&str],
    weight_col: &str,
) -> Result<(CTable, GroupVars)> {
    let key_idx = key_cols
        .iter()
        .map(|c| table.schema().index_of(c))
        .collect::<Result<Vec<_>>>()?;
    let w_idx = table.schema().index_of(weight_col)?;

    // Group rows by key, preserving first-appearance order.
    let mut order: Vec<Vec<Value>> = Vec::new();
    let mut groups: std::collections::HashMap<Vec<Value>, Vec<usize>> =
        std::collections::HashMap::new();
    for (i, row) in table.rows().iter().enumerate() {
        if !row.condition.is_trivially_true() {
            return Err(PipError::Unsupported(
                "repair_key over an already-conditioned table".into(),
            ));
        }
        let key = key_idx
            .iter()
            .map(|&k| {
                row.cells[k].as_const().cloned().ok_or_else(|| {
                    PipError::Unsupported("repair_key key columns must be deterministic".into())
                })
            })
            .collect::<Result<Vec<_>>>()?;
        groups
            .entry(key.clone())
            .or_insert_with(|| {
                order.push(key);
                Vec::new()
            })
            .push(i);
    }

    let mut out = CTable::empty(table.schema().clone());
    let mut vars = Vec::with_capacity(order.len());
    for key in order {
        let members = groups.remove(&key).expect("group exists");
        let weights = members
            .iter()
            .map(|&i| {
                let w = table.rows()[i].cells[w_idx]
                    .as_const()
                    .ok_or_else(|| {
                        PipError::Unsupported(
                            "repair_key weight column must be deterministic".into(),
                        )
                    })?
                    .as_f64()?;
                if !(w >= 0.0) || !w.is_finite() {
                    return Err(PipError::InvalidParameter(format!(
                        "repair_key: weight {w} invalid"
                    )));
                }
                Ok(w)
            })
            .collect::<Result<Vec<f64>>>()?;
        let var = RandomVar::create(builtin::categorical(), &weights)?;
        for (alt, &i) in members.iter().enumerate() {
            let row = &table.rows()[i];
            let cond = row
                .condition
                .and_atom(atoms::eq(Equation::from(var.clone()), alt as f64));
            out.push(CRow::new(row.cells.clone(), cond))?;
        }
        vars.push((key, var));
    }
    Ok((out, vars))
}

/// Convenience for tests and callers that need the key of a variable.
pub fn repair_var_key(id: VarId) -> VarKey {
    VarKey { id, subscript: 0 }
}

/// Validate a repaired table: within every group the alternatives'
/// conditions are mutually exclusive and exhaustive by construction;
/// this checks the weights actually normalize (useful after manual edits).
pub fn group_probabilities(vars: &[(Vec<Value>, RandomVar)]) -> Vec<(Vec<Value>, Vec<f64>)> {
    vars.iter()
        .map(|(k, v)| {
            let total: f64 = v.params.iter().sum();
            let probs = v.params.iter().map(|w| w / total).collect();
            (k.clone(), probs)
        })
        .collect()
}

/// Expose the weights of a repaired group's variable (diagnostics).
pub fn weights_of(var: &RandomVar) -> Arc<[f64]> {
    Arc::clone(&var.params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pip_core::{tuple, DataType, Schema};
    use pip_expr::Assignment;

    fn weather_table() -> CTable {
        // The classic MayBMS example: per-city weather alternatives.
        let s = Schema::of(&[
            ("city", DataType::Str),
            ("weather", DataType::Str),
            ("w", DataType::Float),
        ]);
        CTable::from_tuples(
            s,
            &[
                tuple!["nyc", "sun", 3.0],
                tuple!["nyc", "rain", 1.0],
                tuple!["ithaca", "snow", 1.0],
                tuple!["ithaca", "sun", 1.0],
                tuple!["ithaca", "rain", 2.0],
            ],
        )
        .unwrap()
    }

    #[test]
    fn groups_get_one_variable_each() {
        let t = weather_table();
        let (rep, vars) = repair_key(&t, &["city"], "w").unwrap();
        assert_eq!(rep.len(), 5);
        assert_eq!(vars.len(), 2);
        assert_eq!(vars[0].0, vec![Value::str("nyc")]);
        // nyc group weights normalize to 0.75/0.25.
        let probs = group_probabilities(&vars);
        assert_eq!(probs[0].1, vec![0.75, 0.25]);
        assert_eq!(probs[1].1, vec![0.25, 0.25, 0.5]);
        assert_eq!(weights_of(&vars[0].1).len(), 2);
    }

    #[test]
    fn alternatives_are_mutually_exclusive() {
        let t = weather_table();
        let (rep, vars) = repair_key(&t, &["city"], "w").unwrap();
        // Fix a world: nyc picks alternative 1 (rain), ithaca picks 0.
        let mut a = Assignment::new();
        a.set(vars[0].1.key, 1.0);
        a.set(vars[1].1.key, 0.0);
        let world = rep.instantiate(&a).unwrap();
        assert_eq!(world.len(), 2);
        assert_eq!(world[0].get(1).unwrap(), &Value::str("rain"));
        assert_eq!(world[1].get(1).unwrap(), &Value::str("snow"));
    }

    #[test]
    fn confidences_match_normalized_weights() {
        use pip_sampling_stub::conf_exact;
        let t = weather_table();
        let (rep, _) = repair_key(&t, &["city"], "w").unwrap();
        // Exact per-row probability via the Categorical CDF path.
        let p0 = conf_exact(&rep.rows()[0].condition);
        assert!((p0 - 0.75).abs() < 1e-12, "{p0}");
        let p1 = conf_exact(&rep.rows()[1].condition);
        assert!((p1 - 0.25).abs() < 1e-12, "{p1}");
        // Group confidences sum to 1.
        let total: f64 = rep.rows()[..2]
            .iter()
            .map(|r| conf_exact(&r.condition))
            .sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    /// Minimal exact-confidence helper (pip-sampling depends on this
    /// crate, so tests here cannot use it; single-variable equality on a
    /// Categorical has a closed form).
    mod pip_sampling_stub {
        use pip_expr::{CmpOp, Conjunction, Equation};

        pub fn conf_exact(cond: &Conjunction) -> f64 {
            assert_eq!(cond.atoms().len(), 1);
            let a = &cond.atoms()[0];
            assert_eq!(a.op, CmpOp::Eq);
            let v = match &a.left {
                Equation::Var(v) => v,
                other => panic!("unexpected lhs {other:?}"),
            };
            let alt = a.right.as_const().unwrap().as_f64().unwrap();
            v.class.pdf(&v.params, alt).unwrap()
        }
    }

    #[test]
    fn empty_key_is_one_global_group() {
        let s = Schema::of(&[("opt", DataType::Str), ("w", DataType::Float)]);
        let t = CTable::from_tuples(s, &[tuple!["a", 1.0], tuple!["b", 1.0]]).unwrap();
        let (rep, vars) = repair_key(&t, &[], "w").unwrap();
        assert_eq!(vars.len(), 1);
        // Exactly one row exists per world.
        let mut a = Assignment::new();
        a.set(vars[0].1.key, 0.0);
        assert_eq!(rep.instantiate(&a).unwrap().len(), 1);
    }

    #[test]
    fn invalid_inputs_rejected() {
        let s = Schema::of(&[("k", DataType::Str), ("w", DataType::Float)]);
        let bad_w = CTable::from_tuples(s.clone(), &[tuple!["a", -1.0]]).unwrap();
        assert!(repair_key(&bad_w, &["k"], "w").is_err());
        let t = CTable::from_tuples(s, &[tuple!["a", 1.0]]).unwrap();
        assert!(repair_key(&t, &["k"], "nope").is_err());
        assert!(repair_key(&t, &["nope"], "w").is_err());
    }
}
