//! Condition consistency checking — Algorithm 3.2 of the paper.
//!
//! Statically detectable inconsistencies let PIP drop rows during query
//! evaluation; for everything else the Monte Carlo phase enforces the
//! constraints. The algorithm:
//!
//! 1. deterministic atoms and discrete `X=c₁ ∧ X=c₂` contradictions are
//!    resolved immediately (also done by `Conjunction::simplify`);
//! 2. per independent variable group, a bounds map is initialized to
//!    `[−∞, ∞]` (here: intersected with each variable's distribution
//!    support) and tightened to a fixpoint using `tighten1` on every
//!    degree-1 atom;
//! 3. an empty interval proves inconsistency (**strong** result); if any
//!    atom had to be skipped (degree ≥ 2 or non-polynomial) a consistent
//!    verdict is only **weak**.

use pip_expr::{independent_groups, CmpOp, Conjunction, Truth, VarGroup};

use crate::bounds::{BoundsMap, Interval};

/// Verdict of the consistency check.
#[derive(Debug, Clone, PartialEq)]
pub enum Consistency {
    /// Proven unsatisfiable (always a strong verdict).
    Inconsistent,
    /// No inconsistency found. `strong` is true when every atom
    /// participated in bounds propagation, so the bounds map is exact for
    /// box-shaped reasoning; `bounds` is reused by the CDF sampler.
    Consistent { strong: bool, bounds: BoundsMap },
}

impl Consistency {
    pub fn is_inconsistent(&self) -> bool {
        matches!(self, Consistency::Inconsistent)
    }

    /// The bounds map (empty for inconsistent verdicts).
    pub fn bounds(&self) -> BoundsMap {
        match self {
            Consistency::Inconsistent => BoundsMap::new(),
            Consistency::Consistent { bounds, .. } => bounds.clone(),
        }
    }
}

/// Maximum fixpoint sweeps. Linear constraint graphs converge in a few
/// passes; pathological chains (x < y < x − 1 style contradictions that
/// tighten by a constant per round) are cut off and simply yield a weak
/// verdict, matching the paper's "rely on the Monte Carlo phase" escape.
const MAX_SWEEPS: usize = 64;

/// Run Algorithm 3.2 on a (pre-simplified or raw) conjunction.
pub fn consistency_check(condition: &Conjunction) -> Consistency {
    // Lines 1–3: constant-level simplification + discrete contradictions.
    let (cond, truth) = condition.simplify();
    match truth {
        Truth::False => return Consistency::Inconsistent,
        Truth::True => {
            return Consistency::Consistent {
                strong: true,
                bounds: BoundsMap::new(),
            }
        }
        Truth::Unknown => {}
    }

    // Lines 4–13: per-group interval propagation.
    let mut bounds = BoundsMap::new();
    let mut strong = true;
    for group in independent_groups(&cond, &[]) {
        match propagate_group(&group, &mut bounds) {
            GroupVerdict::Empty => return Consistency::Inconsistent,
            GroupVerdict::Done { skipped } => strong &= !skipped,
        }
    }
    Consistency::Consistent { strong, bounds }
}

enum GroupVerdict {
    Empty,
    Done { skipped: bool },
}

fn propagate_group(group: &VarGroup, bounds: &mut BoundsMap) -> GroupVerdict {
    // Initialize with distribution support (a strict improvement over the
    // paper's [−∞,∞] start that costs nothing).
    for v in &group.vars {
        let (lo, hi) = v.class.support(&v.params);
        bounds.tighten(v.key, Interval::new(lo, hi));
    }
    if bounds.any_empty() {
        return GroupVerdict::Empty;
    }

    // Normalize each atom once: expr (op) 0 with affine expr.
    let mut lin = Vec::new();
    let mut skipped = false;
    for atom in &group.atoms {
        let (expr, op) = atom.normalized();
        match (expr.linear_coeffs(), op) {
            // Ne carries no interval information; Eq over continuous vars
            // was already handled by simplify, and over discrete vars we
            // treat it like Le ∧ Ge via two passes below.
            (Some((coeffs, c)), CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge | CmpOp::Eq)
                if !coeffs.is_empty() =>
            {
                lin.push((coeffs, c, op));
            }
            (_, CmpOp::Ne) => {}
            _ => skipped = true,
        }
    }

    // Fixpoint sweeps (Algorithm 3.2 lines 6–12).
    for _ in 0..MAX_SWEEPS {
        let mut changed = false;
        for (coeffs, c, op) in &lin {
            // tighten1: for each variable X with coefficient a, the atom
            //   a·X + Σ_j b_j·Y_j + c (op) 0
            // implies, using current bounds on the Y_j:
            //   X ≥ (−c − max Σ b_j·Y_j)/a  (a > 0, op ∈ {>, ≥, =})
            // and symmetrically for upper bounds.
            for (&xk, &a) in coeffs.iter() {
                if a == 0.0 {
                    continue;
                }
                // Extremes of the rest = c + Σ_{j≠X} b_j·Y_j.
                let mut rest_min = *c;
                let mut rest_max = *c;
                for (&yk, &b) in coeffs.iter() {
                    if yk == xk || b == 0.0 {
                        continue;
                    }
                    let iv = bounds.get(yk);
                    let (lo, hi) = if b > 0.0 {
                        (b * iv.lo, b * iv.hi)
                    } else {
                        (b * iv.hi, b * iv.lo)
                    };
                    rest_min += lo;
                    rest_max += hi;
                }
                // Derive the implied interval for a·X.
                // expr >= 0  →  a·X ≥ −rest_max is NOT valid (existential);
                // the *necessary* bound is a·X ≥ −rest_max, since for the
                // atom to hold at all we need a·X + rest ≥ 0 for the
                // actual rest value, which is ≤ rest_max; hence
                // a·X ≥ −rest_max always. Similarly Le gives a·X ≤ −rest_min.
                let implied = match op {
                    CmpOp::Gt | CmpOp::Ge => Interval::new(-rest_max, f64::INFINITY),
                    CmpOp::Lt | CmpOp::Le => Interval::new(f64::NEG_INFINITY, -rest_min),
                    CmpOp::Eq => Interval::new(-rest_max, -rest_min),
                    CmpOp::Ne => continue,
                };
                // Scale by 1/a (flip on negative a).
                let scaled = if a > 0.0 {
                    Interval::new(implied.lo / a, implied.hi / a)
                } else {
                    Interval::new(implied.hi / a, implied.lo / a)
                };
                // NaN guard: ±∞ / a stays ±∞, but 0·∞ style results from
                // degenerate coefficients would poison the map.
                if scaled.lo.is_nan() || scaled.hi.is_nan() {
                    continue;
                }
                let before = bounds.get(xk);
                let after = bounds.tighten(xk, scaled);
                if after != before {
                    changed = true;
                }
                if after.is_empty() {
                    return GroupVerdict::Empty;
                }
            }
        }
        if !changed {
            break;
        }
    }
    GroupVerdict::Done { skipped }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pip_core::Value;
    use pip_dist::prelude::builtin;
    use pip_expr::{atoms, Equation, RandomVar};

    fn y() -> RandomVar {
        RandomVar::create(builtin::normal(), &[0.0, 1.0]).unwrap()
    }

    fn expo() -> RandomVar {
        RandomVar::create(builtin::exponential(), &[1.0]).unwrap()
    }

    #[test]
    fn trivially_true_and_false() {
        let c = consistency_check(&Conjunction::top());
        assert!(matches!(c, Consistency::Consistent { strong: true, .. }));
        let c = consistency_check(&Conjunction::single(atoms::gt(1.0, 2.0)));
        assert!(c.is_inconsistent());
    }

    #[test]
    fn box_contradiction_detected() {
        let v = y();
        // v > 5 AND v < 3 — inconsistent.
        let cond = Conjunction::of(vec![
            atoms::gt(Equation::from(v.clone()), 5.0),
            atoms::lt(Equation::from(v.clone()), 3.0),
        ]);
        assert!(consistency_check(&cond).is_inconsistent());
    }

    #[test]
    fn satisfiable_box_returns_bounds() {
        let v = y();
        let cond = Conjunction::of(vec![
            atoms::gt(Equation::from(v.clone()), -3.0),
            atoms::lt(Equation::from(v.clone()), 2.0),
        ]);
        match consistency_check(&cond) {
            Consistency::Consistent { strong, bounds } => {
                assert!(strong);
                let iv = bounds.get(v.key);
                assert_eq!(iv.lo, -3.0);
                assert_eq!(iv.hi, 2.0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn support_intersection_strengthens_bounds() {
        // Exponential has support [0, ∞); atom v < 5 then bounds to [0,5].
        let v = expo();
        let cond = Conjunction::single(atoms::lt(Equation::from(v.clone()), 5.0));
        let bounds = consistency_check(&cond).bounds();
        let iv = bounds.get(v.key);
        assert_eq!(iv.lo, 0.0);
        assert_eq!(iv.hi, 5.0);
        // And support alone can refute: v < -1 is impossible.
        let cond = Conjunction::single(atoms::lt(Equation::from(v), -1.0));
        assert!(consistency_check(&cond).is_inconsistent());
    }

    #[test]
    fn cross_variable_propagation() {
        let a = y();
        let b = y();
        // a > 4 AND b > a  →  b > 4 (propagated through tighten1).
        let cond = Conjunction::of(vec![
            atoms::gt(Equation::from(a.clone()), 4.0),
            atoms::gt(Equation::from(b.clone()), Equation::from(a.clone())),
        ]);
        let bounds = consistency_check(&cond).bounds();
        assert!(bounds.get(b.key).lo >= 4.0, "{:?}", bounds.get(b.key));
    }

    #[test]
    fn chain_contradiction_via_propagation() {
        let a = y();
        let b = y();
        // a > 10 AND b > a AND b < 5 — needs one propagation round.
        let cond = Conjunction::of(vec![
            atoms::gt(Equation::from(a.clone()), 10.0),
            atoms::gt(Equation::from(b.clone()), Equation::from(a.clone())),
            atoms::lt(Equation::from(b.clone()), 5.0),
        ]);
        assert!(consistency_check(&cond).is_inconsistent());
    }

    #[test]
    fn coefficients_scale_correctly() {
        let v = y();
        // -2v + 6 >= 0  →  v <= 3
        let cond = Conjunction::single(atoms::ge(Equation::from(v.clone()) * -2.0 + 6.0, 0.0));
        let bounds = consistency_check(&cond).bounds();
        assert_eq!(bounds.get(v.key).hi, 3.0);
    }

    #[test]
    fn nonlinear_atoms_yield_weak_verdict() {
        let a = y();
        let b = y();
        // a·b > 1 is degree 2 → skipped → weak consistent.
        let cond = Conjunction::single(atoms::gt(
            Equation::from(a.clone()) * Equation::from(b.clone()),
            1.0,
        ));
        match consistency_check(&cond) {
            Consistency::Consistent { strong, .. } => assert!(!strong),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn discrete_equality_contradiction() {
        let x = RandomVar::create(builtin::discrete_uniform(), &[0.0, 9.0]).unwrap();
        let cond = Conjunction::of(vec![
            atoms::eq(Equation::from(x.clone()), 1.0),
            atoms::eq(Equation::from(x.clone()), 2.0),
        ]);
        assert!(consistency_check(&cond).is_inconsistent());
    }

    #[test]
    fn equality_pins_interval_for_discrete() {
        let x = RandomVar::create(builtin::discrete_uniform(), &[0.0, 9.0]).unwrap();
        let cond = Conjunction::single(atoms::eq(Equation::from(x.clone()), 4.0));
        let bounds = consistency_check(&cond).bounds();
        let iv = bounds.get(x.key);
        assert_eq!((iv.lo, iv.hi), (4.0, 4.0));
    }

    #[test]
    fn string_conditions_resolved_statically() {
        // Deterministic string atom folds away before propagation.
        let v = y();
        let cond = Conjunction::of(vec![
            pip_expr::Atom::new(
                Equation::val(Value::str("Joe")),
                CmpOp::Eq,
                Equation::val(Value::str("Joe")),
            ),
            atoms::gt(Equation::from(v), 0.0),
        ]);
        assert!(!consistency_check(&cond).is_inconsistent());
        let cond = Conjunction::single(pip_expr::Atom::new(
            Equation::val(Value::str("Joe")),
            CmpOp::Eq,
            Equation::val(Value::str("Bob")),
        ));
        assert!(consistency_check(&cond).is_inconsistent());
    }

    /// Soundness property: a sampled witness that satisfies the condition
    /// implies the checker must NOT call it inconsistent, and the witness
    /// must lie inside the returned bounds.
    #[test]
    fn soundness_against_random_witnesses() {
        use pip_dist::rng_from_seed;
        use pip_expr::Assignment;
        use rand::Rng;
        let mut rng = rng_from_seed(123);
        for trial in 0..50 {
            let a = y();
            let b = y();
            // Random box + one linking constraint.
            let (la, ha) = {
                let l: f64 = rng.gen_range(-5.0..0.0);
                (l, l + rng.gen_range(0.5..5.0))
            };
            let cond = Conjunction::of(vec![
                atoms::ge(Equation::from(a.clone()), la),
                atoms::le(Equation::from(a.clone()), ha),
                atoms::le(Equation::from(b.clone()), Equation::from(a.clone()) + 1.0),
            ]);
            // Witness: pick a in box, b below a+1.
            let wa = rng.gen_range(la..ha);
            let wb = wa + 1.0 - rng.gen_range(0.0..3.0);
            let mut asg = Assignment::new();
            asg.set(a.key, wa);
            asg.set(b.key, wb);
            assert!(cond.eval(&asg).unwrap(), "witness must satisfy");
            match consistency_check(&cond) {
                Consistency::Inconsistent => panic!("trial {trial}: sound witness refuted"),
                Consistency::Consistent { bounds, .. } => {
                    assert!(bounds.get(a.key).contains(wa));
                    assert!(bounds.get(b.key).contains(wb));
                }
            }
        }
    }
}
