//! Row-at-a-time views of the Figure 1 algebra.
//!
//! The operators in [`crate::algebra`] consume and produce whole
//! [`CTable`]s; a pipelined executor instead wants the same condition
//! manipulation one row at a time, so intermediate tables never
//! materialize. The helpers here are the per-row kernels of σ, π and ×
//! — each is definitionally identical to the corresponding whole-table
//! operator applied to a singleton table, which is what the executor
//! equivalence tests rely on.

use pip_expr::{simplify_row_condition, Equation};

use crate::algebra::SelectOutcome;
use crate::ctable::CRow;

/// σ on one row: apply a precomputed [`SelectOutcome`] to an owned row.
///
/// `Keep` passes the row through, `Drop` discards it, and `Conditional`
/// conjoins the hoisted atoms to the row's condition and re-simplifies —
/// rows whose condition collapses to `false` vanish, exactly as in
/// [`crate::algebra::select`].
pub fn filter_row(row: CRow, outcome: SelectOutcome) -> Option<CRow> {
    match outcome {
        SelectOutcome::Keep => Some(row),
        SelectOutcome::Drop => None,
        SelectOutcome::Conditional(atoms) => {
            let mut cond = row.condition;
            for a in atoms {
                cond = cond.and_atom(a);
            }
            simplify_row_condition(cond).map(|cond| CRow::new(row.cells, cond))
        }
    }
}

/// π (generalized) on one row: replace the cells, keep the condition.
pub fn map_row(row: &CRow, cells: Vec<Equation>) -> CRow {
    CRow::new(cells, row.condition.clone())
}

/// × on one row pair: concatenate cells, conjoin conditions.
///
/// Returns `None` when the conjoined condition is statically false, the
/// same dead-row pruning [`crate::algebra::product`] performs.
pub fn join_rows(left: &CRow, right: &CRow) -> Option<CRow> {
    let cond = left.condition.and(&right.condition);
    simplify_row_condition(cond).map(|cond| {
        let mut cells = left.cells.clone();
        cells.extend(right.cells.iter().cloned());
        CRow::new(cells, cond)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra;
    use crate::ctable::CTable;
    use pip_core::{DataType, Schema};
    use pip_dist::prelude::builtin;
    use pip_expr::{atoms, Conjunction, RandomVar};

    fn yvar() -> RandomVar {
        RandomVar::create(builtin::normal(), &[0.0, 1.0]).unwrap()
    }

    #[test]
    fn filter_row_matches_algebra_select() {
        let y = yvar();
        let row = CRow::new(
            vec![Equation::from(y.clone())],
            Conjunction::single(atoms::gt(Equation::from(y.clone()), 0.0)),
        );
        // Keep / Drop.
        assert!(filter_row(row.clone(), SelectOutcome::Keep).is_some());
        assert!(filter_row(row.clone(), SelectOutcome::Drop).is_none());
        // Conditional: conjoined and simplified like algebra::select.
        let atoms_v = vec![atoms::lt(Equation::from(y.clone()), 5.0)];
        let streamed = filter_row(row.clone(), SelectOutcome::Conditional(atoms_v.clone()));
        let table = CTable::new(Schema::of(&[("v", DataType::Symbolic)]), vec![row]).unwrap();
        let full =
            algebra::select(&table, |_| Ok(SelectOutcome::Conditional(atoms_v.clone()))).unwrap();
        assert_eq!(streamed.as_ref(), full.rows().first());
        // A statically-false atom kills the row in both views.
        let dead = filter_row(
            CRow::unconditional(vec![Equation::val(1.0)]),
            SelectOutcome::Conditional(vec![atoms::gt(1.0, 2.0)]),
        );
        assert!(dead.is_none());
    }

    #[test]
    fn join_rows_matches_algebra_product() {
        let y = yvar();
        let z = yvar();
        let l = CRow::new(
            vec![Equation::from(y.clone())],
            Conjunction::single(atoms::gt(Equation::from(y.clone()), 4.0)),
        );
        let r = CRow::new(
            vec![Equation::from(z.clone())],
            Conjunction::single(atoms::gt(Equation::from(z.clone()), 2.0)),
        );
        let joined = join_rows(&l, &r).unwrap();
        let schema = Schema::of(&[("v", DataType::Symbolic)]);
        let lt = CTable::new(schema.clone(), vec![l]).unwrap();
        let rt = CTable::new(schema, vec![r]).unwrap();
        let full = algebra::product(&lt, &rt).unwrap();
        assert_eq!(&joined, &full.rows()[0]);
        // A statically-false condition on either side prunes the pair
        // (matching product's dead-row elimination).
        let a = CRow::new(
            vec![Equation::val(1.0)],
            Conjunction::single(atoms::gt(Equation::from(y), 1.0)),
        );
        let b = CRow::new(
            vec![Equation::val(2.0)],
            Conjunction::single(atoms::gt(1.0, 2.0)),
        );
        assert!(join_rows(&a, &b).is_none());
    }

    #[test]
    fn map_row_keeps_condition() {
        let y = yvar();
        let row = CRow::new(
            vec![Equation::val(3.0)],
            Conjunction::single(atoms::gt(Equation::from(y), 0.0)),
        );
        let mapped = map_row(&row, vec![Equation::val(6.0)]);
        assert_eq!(mapped.condition, row.condition);
        assert_eq!(mapped.cells, vec![Equation::val(6.0)]);
    }
}
