//! Relational algebra on c-tables (paper Figure 1).
//!
//! Every operator manipulates conditions *symbolically* and never touches
//! the probability distribution — that is the key property that lets PIP
//! defer all sampling until the expression to be measured is fully known.
//!
//! Rows whose condition simplifies to `false` (statically detectable
//! inconsistency, Section III-C) are dropped as we go; deeper
//! interval-based inconsistency is the job of [`crate::consistency`].

use std::collections::HashMap;

use pip_core::{PipError, Result, Schema, Value};
use pip_expr::{simplify_row_condition, Atom, Conjunction, Dnf, Equation};

use crate::ctable::{CRow, CTable};

/// Outcome of evaluating a selection predicate on one row's cells.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectOutcome {
    /// Predicate is statically true for this row.
    Keep,
    /// Predicate is statically false — drop the row.
    Drop,
    /// Predicate depends on random variables: conjoin these atoms to the
    /// row's condition (the CTYPE hoisting of Section V-A).
    Conditional(Vec<Atom>),
}

/// σ — selection with a per-row predicate.
///
/// `Cσψ(R) = {| (r, φ ∧ ψ[r]) | (r, φ) ∈ CR |}`
pub fn select<F>(table: &CTable, mut pred: F) -> Result<CTable>
where
    F: FnMut(&[Equation]) -> Result<SelectOutcome>,
{
    let mut out = CTable::empty(table.schema().clone());
    for row in table.rows() {
        match pred(&row.cells)? {
            SelectOutcome::Drop => {}
            SelectOutcome::Keep => out.push(row.clone())?,
            SelectOutcome::Conditional(atoms) => {
                let mut cond = row.condition.clone();
                for a in atoms {
                    cond = cond.and_atom(a);
                }
                if let Some(cond) = simplify_row_condition(cond) {
                    out.push(CRow::new(row.cells.clone(), cond))?;
                }
            }
        }
    }
    Ok(out)
}

/// π — projection onto named columns.
///
/// `Cπ_A(R) = {| (r.A, φ) | (r, φ) ∈ CR |}`
pub fn project(table: &CTable, names: &[&str]) -> Result<CTable> {
    let idx = names
        .iter()
        .map(|n| table.schema().index_of(n))
        .collect::<Result<Vec<_>>>()?;
    let schema = table.schema().project(names)?;
    let mut out = CTable::empty(schema);
    for row in table.rows() {
        let cells = idx.iter().map(|&i| row.cells[i].clone()).collect();
        out.push(CRow::new(cells, row.condition.clone()))?;
    }
    Ok(out)
}

/// Generalized projection: compute new cells from old ones (`SELECT`
/// target lists with arithmetic — `A * B AS C`).
pub fn map<F>(table: &CTable, schema: Schema, mut f: F) -> Result<CTable>
where
    F: FnMut(&[Equation]) -> Result<Vec<Equation>>,
{
    let mut out = CTable::empty(schema);
    for row in table.rows() {
        let cells = f(&row.cells)?;
        out.push(CRow::new(cells, row.condition.clone()))?;
    }
    Ok(out)
}

/// × — cross product.
///
/// `C_{R×S} = {| (r, s, φ ∧ ψ) | (r, φ) ∈ CR, (s, ψ) ∈ CS |}`
pub fn product(left: &CTable, right: &CTable) -> Result<CTable> {
    let schema = left.schema().join(right.schema())?;
    let mut out = CTable::empty(schema);
    for l in left.rows() {
        for r in right.rows() {
            let cond = l.condition.and(&r.condition);
            if let Some(cond) = simplify_row_condition(cond) {
                let mut cells = l.cells.clone();
                cells.extend(r.cells.iter().cloned());
                out.push(CRow::new(cells, cond))?;
            }
        }
    }
    Ok(out)
}

/// ∪ — bag union (list concatenation).
pub fn union(left: &CTable, right: &CTable) -> Result<CTable> {
    if left.schema().len() != right.schema().len() {
        return Err(PipError::Schema(format!(
            "union arity mismatch: {} vs {}",
            left.schema().len(),
            right.schema().len()
        )));
    }
    let mut out = CTable::empty(left.schema().clone());
    for r in left.rows().iter().chain(right.rows()) {
        out.push(r.clone())?;
    }
    Ok(out)
}

/// Group rows by (structurally) identical cell vectors, preserving first-
/// appearance order. The DNF per group is the disjunction of the rows'
/// conditions — the condition Figure 1 assigns to `distinct`.
pub fn distinct_groups(table: &CTable) -> Vec<(Vec<Equation>, Dnf)> {
    let mut order: Vec<Vec<Equation>> = Vec::new();
    let mut groups: HashMap<Vec<Equation>, Dnf> = HashMap::new();
    for row in table.rows() {
        let entry = groups.entry(row.cells.clone()).or_insert_with(|| {
            order.push(row.cells.clone());
            Dnf::bottom()
        });
        entry.or(row.condition.clone());
    }
    order
        .into_iter()
        .map(|cells| {
            let dnf = groups.remove(&cells).expect("group exists");
            (cells, dnf)
        })
        .collect()
}

/// `distinct` — duplicate elimination.
///
/// PIP keeps row conditions conjunctive, so the DNF condition of Figure 1
/// is encoded in *bag* form: one output row per distinct `(cells,
/// disjunct)` pair (Figure 4's internal representation). Probability-
/// aware consumers must use `aconf`-style joint integration over the
/// groups returned by [`distinct_groups`]; a trivially-true disjunct
/// collapses the group to a single unconditional row.
pub fn distinct(table: &CTable) -> Result<CTable> {
    let mut out = CTable::empty(table.schema().clone());
    for (cells, dnf) in distinct_groups(table) {
        if dnf.is_trivially_true() {
            out.push(CRow::unconditional(cells))?;
            continue;
        }
        let mut seen: Vec<&Conjunction> = Vec::new();
        for conj in dnf.disjuncts() {
            if seen.contains(&conj) {
                continue;
            }
            seen.push(conj);
            out.push(CRow::new(cells.clone(), conj.clone()))?;
        }
    }
    Ok(out)
}

/// − — multiset-free difference (Figure 1; both sides deduplicated).
///
/// `C_{R−S} = {| (r, φ ∧ ψ) | (r, φ) ∈ distinct(R), ψ = ¬π if
/// (r, π) ∈ distinct(S) else true |}`
///
/// The negated DNF `¬π` re-expands into DNF, so one logical result row
/// may be encoded as several conjunctive rows (bag semantics again).
pub fn difference(left: &CTable, right: &CTable) -> Result<CTable> {
    if left.schema().len() != right.schema().len() {
        return Err(PipError::Schema(format!(
            "difference arity mismatch: {} vs {}",
            left.schema().len(),
            right.schema().len()
        )));
    }
    let right_groups: HashMap<Vec<Equation>, Dnf> = distinct_groups(right).into_iter().collect();
    let mut out = CTable::empty(left.schema().clone());
    for (cells, phi) in distinct_groups(left) {
        let neg = match right_groups.get(&cells) {
            Some(pi) => pi.negate(),
            None => Dnf::of(vec![Conjunction::top()]), // true
        };
        for phi_disjunct in phi.disjuncts() {
            for nu in neg.disjuncts() {
                let cond = phi_disjunct.and(nu);
                if let Some(cond) = simplify_row_condition(cond) {
                    out.push(CRow::new(cells.clone(), cond))?;
                }
            }
        }
    }
    Ok(out)
}

/// Partition rows by deterministic group-by columns.
///
/// The paper (Section II-C) supports group-by only on nonprobabilistic
/// columns; a symbolic (non-constant) cell in a group column is an error.
/// Returns `(key, sub-table)` pairs in first-appearance order.
pub fn partition_by(table: &CTable, cols: &[&str]) -> Result<Vec<(Vec<Value>, CTable)>> {
    let idx = cols
        .iter()
        .map(|n| table.schema().index_of(n))
        .collect::<Result<Vec<_>>>()?;
    let mut order: Vec<Vec<Value>> = Vec::new();
    let mut parts: HashMap<Vec<Value>, Vec<CRow>> = HashMap::new();
    for row in table.rows() {
        let key = idx
            .iter()
            .map(|&i| {
                row.cells[i].as_const().cloned().ok_or_else(|| {
                    PipError::Unsupported(format!(
                        "group-by on uncertain column '{}'",
                        table.schema().columns()[i].name
                    ))
                })
            })
            .collect::<Result<Vec<Value>>>()?;
        parts
            .entry(key.clone())
            .or_insert_with(|| {
                order.push(key);
                Vec::new()
            })
            .push(row.clone());
    }
    order
        .into_iter()
        .map(|key| {
            let rows = parts.remove(&key).expect("partition exists");
            Ok((key.clone(), CTable::new(table.schema().clone(), rows)?))
        })
        .collect()
}

/// Equi-join on named columns: product + selection, with symbolic cells
/// producing condition atoms and deterministic cells filtering directly.
pub fn equi_join(left: &CTable, right: &CTable, on: &[(&str, &str)]) -> Result<CTable> {
    let l_idx = on
        .iter()
        .map(|(l, _)| left.schema().index_of(l))
        .collect::<Result<Vec<_>>>()?;
    let r_idx = on
        .iter()
        .map(|(_, r)| right.schema().index_of(r))
        .collect::<Result<Vec<_>>>()?;
    let n_left = left.schema().len();
    let prod = product(left, right)?;
    select(&prod, |cells| {
        let mut atoms = Vec::new();
        for (&li, &ri) in l_idx.iter().zip(&r_idx) {
            let l = &cells[li];
            let r = &cells[n_left + ri];
            match (l.as_const(), r.as_const()) {
                (Some(a), Some(b)) => {
                    if !a.sql_eq(b) {
                        return Ok(SelectOutcome::Drop);
                    }
                }
                _ => atoms.push(Atom::new(l.clone(), pip_expr::CmpOp::Eq, r.clone())),
            }
        }
        if atoms.is_empty() {
            Ok(SelectOutcome::Keep)
        } else {
            Ok(SelectOutcome::Conditional(atoms))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pip_core::{tuple, DataType, Tuple};
    use pip_dist::prelude::builtin;
    use pip_expr::{atoms, Assignment, RandomVar};

    fn yvar() -> RandomVar {
        RandomVar::create(builtin::normal(), &[0.0, 1.0]).unwrap()
    }

    /// The paper's running example (Examples 1.1 / 2.1): Orders and
    /// Shipping with symbolic prices and durations.
    fn running_example() -> (CTable, CTable, RandomVar, RandomVar, RandomVar, RandomVar) {
        let x1 = yvar();
        let x2 = yvar();
        let x3 = yvar();
        let x4 = yvar();
        let orders = CTable::new(
            Schema::of(&[
                ("cust", DataType::Str),
                ("ship_to", DataType::Str),
                ("price", DataType::Symbolic),
            ]),
            vec![
                CRow::unconditional(vec![
                    Equation::val("Joe"),
                    Equation::val("NY"),
                    Equation::from(x1.clone()),
                ]),
                CRow::unconditional(vec![
                    Equation::val("Bob"),
                    Equation::val("LA"),
                    Equation::from(x3.clone()),
                ]),
            ],
        )
        .unwrap();
        let shipping = CTable::new(
            Schema::of(&[("dest", DataType::Str), ("duration", DataType::Symbolic)]),
            vec![
                CRow::unconditional(vec![Equation::val("NY"), Equation::from(x2.clone())]),
                CRow::unconditional(vec![Equation::val("LA"), Equation::from(x4.clone())]),
            ],
        )
        .unwrap();
        (orders, shipping, x1, x2, x3, x4)
    }

    #[test]
    fn paper_example_2_1_full_query() {
        let (orders, shipping, x1, x2, _x3, _x4) = running_example();
        // σ_{Cust='Joe'}(Order)
        let joe = select(&orders, |cells| {
            Ok(match cells[0].as_const() {
                Some(v) if v.sql_eq(&Value::str("Joe")) => SelectOutcome::Keep,
                _ => SelectOutcome::Drop,
            })
        })
        .unwrap();
        assert_eq!(joe.len(), 1);

        // σ_{Duration≥7}(Shipping) — symbolic: becomes condition atoms.
        let late = select(&shipping, |cells| {
            Ok(SelectOutcome::Conditional(vec![atoms::ge(
                cells[1].clone(),
                7.0,
            )]))
        })
        .unwrap();
        assert_eq!(late.len(), 2);
        assert_eq!(late.rows()[0].condition.atoms().len(), 1);

        // product + σ_{ShipTo=Dest} + π_Price
        let joined = equi_join(&joe, &late, &[("ship_to", "dest")]).unwrap();
        assert_eq!(joined.len(), 1, "only the NY shipping row matches Joe");
        let result = project(&joined, &["price"]).unwrap();
        let row = &result.rows()[0];
        assert_eq!(row.cells[0], Equation::from(x1.clone()));
        // condition is X2 >= 7
        assert_eq!(row.condition.atoms().len(), 1);
        let c = &row.condition.atoms()[0];
        assert!(c.variables().iter().any(|v| v.key == x2.key));

        // Semantics check: instantiate at X2 = 9 → row present with X1's value.
        let mut a = Assignment::new();
        a.set(x1.key, 100.0);
        a.set(x2.key, 9.0);
        assert_eq!(result.instantiate(&a).unwrap(), vec![tuple![100.0]]);
        a.set(x2.key, 3.0);
        assert!(result.instantiate(&a).unwrap().is_empty());
    }

    #[test]
    fn select_static_false_drops_row() {
        let (orders, ..) = running_example();
        let none = select(&orders, |_| Ok(SelectOutcome::Drop)).unwrap();
        assert!(none.is_empty());
    }

    #[test]
    fn select_simplifies_dead_conditions() {
        let (orders, ..) = running_example();
        // Conjoining a statically-false atom kills the row.
        let dead = select(&orders, |_| {
            Ok(SelectOutcome::Conditional(vec![atoms::gt(1.0, 2.0)]))
        })
        .unwrap();
        assert!(dead.is_empty());
    }

    #[test]
    fn product_conjoins_conditions() {
        let y = yvar();
        let z = yvar();
        let s = Schema::of(&[("v", DataType::Symbolic)]);
        let l = CTable::new(
            s.clone(),
            vec![CRow::new(
                vec![Equation::from(y.clone())],
                Conjunction::single(atoms::gt(Equation::from(y.clone()), 4.0)),
            )],
        )
        .unwrap();
        let r = CTable::new(
            s,
            vec![CRow::new(
                vec![Equation::from(z.clone())],
                Conjunction::single(atoms::gt(Equation::from(z.clone()), 2.0)),
            )],
        )
        .unwrap();
        let p = product(&l, &r).unwrap();
        assert_eq!(p.len(), 1);
        assert_eq!(p.rows()[0].condition.atoms().len(), 2);
        assert_eq!(p.schema().len(), 2);
        assert_eq!(p.schema().columns()[1].name, "v.right");
    }

    #[test]
    fn union_is_bag_concat() {
        let s = Schema::of(&[("a", DataType::Int)]);
        let t1 = CTable::from_tuples(s.clone(), &[tuple![1i64]]).unwrap();
        let t2 = CTable::from_tuples(s.clone(), &[tuple![1i64], tuple![2i64]]).unwrap();
        let u = union(&t1, &t2).unwrap();
        assert_eq!(u.len(), 3);
        let bad = CTable::from_tuples(
            Schema::of(&[("a", DataType::Int), ("b", DataType::Int)]),
            &[],
        )
        .unwrap();
        assert!(union(&t1, &bad).is_err());
    }

    #[test]
    fn distinct_merges_equal_cells() {
        let y = yvar();
        let s = Schema::of(&[("a", DataType::Int)]);
        let mut t = CTable::empty(s);
        // Same cell value under two different conditions plus one
        // unconditional duplicate pair.
        t.push(CRow::new(
            vec![Equation::val(1i64)],
            Conjunction::single(atoms::gt(Equation::from(y.clone()), 0.0)),
        ))
        .unwrap();
        t.push(CRow::new(
            vec![Equation::val(1i64)],
            Conjunction::single(atoms::lt(Equation::from(y.clone()), -1.0)),
        ))
        .unwrap();
        t.push(CRow::unconditional(vec![Equation::val(2i64)]))
            .unwrap();
        t.push(CRow::unconditional(vec![Equation::val(2i64)]))
            .unwrap();

        let groups = distinct_groups(&t);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].1.disjuncts().len(), 2);

        let d = distinct(&t).unwrap();
        // value 1 keeps two disjunct-rows; value 2 collapses to one.
        assert_eq!(d.len(), 3);
        let twos: Vec<_> = d
            .rows()
            .iter()
            .filter(|r| r.cells[0] == Equation::val(2i64))
            .collect();
        assert_eq!(twos.len(), 1);
        assert!(twos[0].condition.is_trivially_true());
    }

    #[test]
    fn difference_unconditional() {
        let s = Schema::of(&[("a", DataType::Int)]);
        let l =
            CTable::from_tuples(s.clone(), &[tuple![1i64], tuple![2i64], tuple![2i64]]).unwrap();
        let r = CTable::from_tuples(s.clone(), &[tuple![2i64]]).unwrap();
        let d = difference(&l, &r).unwrap();
        // 2 is removed entirely (its negated condition is false); 1 stays.
        let world = d.instantiate(&Assignment::new()).unwrap();
        assert_eq!(world, vec![tuple![1i64]]);
    }

    #[test]
    fn difference_with_conditions_matches_world_semantics() {
        let y = yvar();
        let s = Schema::of(&[("a", DataType::Int)]);
        let l = CTable::from_tuples(s.clone(), &[tuple![1i64]]).unwrap();
        let mut r = CTable::empty(s);
        r.push(CRow::new(
            vec![Equation::val(1i64)],
            Conjunction::single(atoms::gt(Equation::from(y.clone()), 0.0)),
        ))
        .unwrap();
        let d = difference(&l, &r).unwrap();
        // World semantics: 1 ∈ R−S iff ¬(y > 0).
        let mut a = Assignment::new();
        a.set(y.key, 5.0);
        assert!(d.instantiate(&a).unwrap().is_empty());
        a.set(y.key, -5.0);
        assert_eq!(d.instantiate(&a).unwrap(), vec![tuple![1i64]]);
    }

    #[test]
    fn partition_by_deterministic_keys() {
        let s = Schema::of(&[("g", DataType::Str), ("v", DataType::Int)]);
        let t = CTable::from_tuples(
            s,
            &[tuple!["a", 1i64], tuple!["b", 2i64], tuple!["a", 3i64]],
        )
        .unwrap();
        let parts = partition_by(&t, &["g"]).unwrap();
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].0, vec![Value::str("a")]);
        assert_eq!(parts[0].1.len(), 2);
        assert_eq!(parts[1].1.len(), 1);
    }

    #[test]
    fn partition_by_rejects_symbolic_keys() {
        let y = yvar();
        let s = Schema::of(&[("g", DataType::Symbolic)]);
        let t = CTable::new(s, vec![CRow::unconditional(vec![Equation::from(y)])]).unwrap();
        assert!(matches!(
            partition_by(&t, &["g"]),
            Err(PipError::Unsupported(_))
        ));
    }

    #[test]
    fn map_computes_new_cells() {
        let s = Schema::of(&[("a", DataType::Int), ("b", DataType::Int)]);
        let t = CTable::from_tuples(s, &[tuple![2i64, 3i64]]).unwrap();
        let out_schema = Schema::of(&[("c", DataType::Symbolic)]);
        let m = map(&t, out_schema, |cells| {
            Ok(vec![(cells[0].clone() * cells[1].clone()).simplify()])
        })
        .unwrap();
        assert_eq!(
            m.rows()[0].cells[0].as_const().unwrap().as_f64().unwrap(),
            6.0
        );
    }

    /// Property-style check of the c-table identity: instantiate-then-
    /// evaluate == evaluate-then-instantiate for the product operator.
    #[test]
    fn product_commutes_with_instantiation() {
        use pip_dist::rng_from_seed;
        use rand::Rng;
        let (orders, shipping, x1, x2, x3, x4) = running_example();
        let sym = product(&orders, &shipping).unwrap();
        let mut rng = rng_from_seed(99);
        for _ in 0..25 {
            let mut a = Assignment::new();
            for v in [&x1, &x2, &x3, &x4] {
                a.set(v.key, rng.gen_range(-10.0..10.0));
            }
            // evaluate symbolically, then instantiate
            let w1 = sym.instantiate(&a).unwrap();
            // instantiate inputs, then cross product on tuples
            let lo = orders.instantiate(&a).unwrap();
            let ro = shipping.instantiate(&a).unwrap();
            let mut w2: Vec<Tuple> = Vec::new();
            for l in &lo {
                for r in &ro {
                    w2.push(l.concat(r));
                }
            }
            assert_eq!(w1, w2);
        }
    }
}
