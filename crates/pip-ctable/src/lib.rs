//! # pip-ctable
//!
//! Probabilistic c-tables and relational algebra over them (paper
//! Sections II and III): the symbolic intermediate representation that
//! PIP query plans manipulate before any sampling happens.
//!
//! * [`ctable`] — the table type: rows of equations plus local conditions.
//! * [`algebra`] — σ, π, ×, ∪, distinct, −, group-by (Figure 1).
//! * [`stream`] — the σ/π/× kernels one row at a time, for the
//!   pipelined executor.
//! * [`bounds`] / [`consistency`] — Algorithm 3.2: interval propagation
//!   that prunes statically inconsistent rows and feeds the CDF sampler.
//! * [`explode`] — finite discrete variables expanded to per-valuation
//!   rows (Section III-C).
//! * [`index`] — ordered secondary indexes over deterministic columns
//!   for the engine's seek-based access paths.

pub mod algebra;
pub mod bounds;
pub mod consistency;
pub mod ctable;
pub mod explode;
pub mod index;
pub mod repair;
pub mod stream;

pub use algebra::{
    difference, distinct, distinct_groups, equi_join, map, partition_by, product, project, select,
    union, SelectOutcome,
};
pub use bounds::{BoundsMap, Interval};
pub use consistency::{consistency_check, Consistency};
pub use ctable::{CRow, CTable};
pub use explode::{discrete_domain, explode_discrete};
pub use index::OrderedIndex;
pub use repair::{group_probabilities, repair_key};
pub use stream::{filter_row, join_rows, map_row};

/// Glob-import surface.
pub mod prelude {
    pub use crate::algebra::{
        difference, distinct, distinct_groups, equi_join, map, partition_by, product, project,
        select, union, SelectOutcome,
    };
    pub use crate::bounds::{BoundsMap, Interval};
    pub use crate::consistency::{consistency_check, Consistency};
    pub use crate::ctable::{CRow, CTable};
    pub use crate::explode::{discrete_domain, explode_discrete};
    pub use crate::index::OrderedIndex;
    pub use crate::repair::{group_probabilities, repair_key};
    pub use crate::stream::{filter_row, join_rows, map_row};
}
