//! Per-group sampling strategies (paper Section IV-A).
//!
//! A [`GroupSampler`] owns one minimal independent subset of constraint
//! atoms and produces joint samples of its variables that satisfy those
//! atoms. It combines, in order of preference:
//!
//! * **exact CDF integration** — single-variable interval constraints
//!   need no sampling at all to compute their probability;
//! * **inverse-CDF bounded sampling** — the uniform input is restricted
//!   to `[CDF(lo), CDF(hi)]` using the consistency checker's bounds map,
//!   so generated values land inside the box by construction;
//! * **rejection sampling** — candidates are always re-checked against
//!   the *exact* atoms, so coarser-than-atom bounds stay correct;
//! * **Metropolis** — engaged when the observed rejection rate crosses
//!   the configured threshold (Algorithm 4.3 lines 19–24).

use pip_core::{PipError, Result};
use pip_dist::PipRng;
use pip_expr::{Assignment, CmpOp, RandomVar, VarGroup};
use rand::Rng;

use pip_ctable::{BoundsMap, Interval};

use crate::config::SamplerConfig;
use crate::metropolis::MetropolisState;

/// Hard cap on consecutive rejections for a single sample; reaching it
/// means the constraint is (numerically) unsatisfiable and the caller
/// receives NAN, mirroring Algorithm 4.3 line 25.
pub(crate) const MAX_ATTEMPTS_PER_SAMPLE: u64 = 200_000;

/// Attempts before the Metropolis switch may engage: the rejection rate
/// needs enough evidence that a high value is not a fluke. Shared with
/// the compiled kernels in [`crate::tape`], which must trip (and bail to
/// this interpreted path) at exactly the same draw.
pub(crate) const METROPOLIS_MIN_ATTEMPTS: u64 = 256;

/// How a single variable is generated inside the rejection loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum VarStrategy {
    /// Plain `Generate` from the distribution class.
    Natural,
    /// Inverse-CDF transform with the uniform input restricted to
    /// `[p_lo, p_hi]`.
    CdfBounded { p_lo: f64, p_hi: f64 },
}

impl GroupSampler {
    /// Per-variable strategies, aligned with `group.vars` — the compiled
    /// kernels replicate exactly these draws.
    pub(crate) fn var_strategies(&self) -> &[VarStrategy] {
        &self.strategies
    }

    /// Probability mass of the CDF-restricted sampling box.
    pub(crate) fn cdf_box_mass(&self) -> f64 {
        self.box_mass
    }
}

/// Sampler for one independent variable group.
#[derive(Debug)]
pub struct GroupSampler {
    pub group: VarGroup,
    strategies: Vec<VarStrategy>,
    /// Probability mass of the CDF-restricted box (product over bounded
    /// variables of `p_hi − p_lo`); 1.0 when nothing is bounded.
    box_mass: f64,
    /// Rejection-loop counters: candidates generated / accepted.
    pub attempts: u64,
    pub accepts: u64,
    metropolis: Option<MetropolisState>,
    /// Metropolis init already failed (no PDF or no feasible start): the
    /// switch is off for good and the attempt cap is the only exit. The
    /// init scan is expensive, so retrying it on every rejected candidate
    /// would stretch the cap from bounded to effectively infinite.
    metropolis_unavailable: bool,
    /// Counters frozen at the moment of the Metropolis switch — the last
    /// unbiased acceptance estimate available for probabilities.
    frozen: Option<(u64, u64)>,
}

/// `P[X ≤ x]` helper that tolerates infinite arguments.
fn cdf_at(v: &RandomVar, x: f64) -> Option<f64> {
    if x == f64::INFINITY {
        return Some(1.0);
    }
    if x == f64::NEG_INFINITY {
        return Some(0.0);
    }
    v.class.cdf(&v.params, x)
}

/// Lower CDF endpoint for interval `[lo, ·]`: for discrete variables the
/// mass strictly below `lo` is `CDF(lo − 1)` on the integer grid.
fn cdf_below(v: &RandomVar, lo: f64) -> Option<f64> {
    if lo == f64::NEG_INFINITY {
        return Some(0.0);
    }
    if v.is_discrete() {
        cdf_at(v, lo.ceil() - 1.0)
    } else {
        cdf_at(v, lo)
    }
}

impl GroupSampler {
    /// Build a sampler for `group`, exploiting `bounds` when the config
    /// allows CDF-bounded generation.
    pub fn new(group: VarGroup, bounds: &BoundsMap, cfg: &SamplerConfig) -> Self {
        let mut strategies = Vec::with_capacity(group.vars.len());
        let mut box_mass = 1.0;
        for v in &group.vars {
            let iv = bounds.get(v.key);
            let strategy = if cfg.use_cdf_sampling && !iv.is_unbounded() {
                match (
                    cdf_below(v, iv.lo),
                    cdf_at(v, iv.hi),
                    v.class.inverse_cdf(&v.params, 0.5),
                ) {
                    (Some(p_lo), Some(p_hi), Some(_)) if p_hi > p_lo => {
                        box_mass *= p_hi - p_lo;
                        VarStrategy::CdfBounded { p_lo, p_hi }
                    }
                    _ => VarStrategy::Natural,
                }
            } else {
                VarStrategy::Natural
            };
            strategies.push(strategy);
        }
        GroupSampler {
            group,
            strategies,
            box_mass,
            attempts: 0,
            accepts: 0,
            metropolis: None,
            metropolis_unavailable: false,
            frozen: None,
        }
    }

    /// True once the sampler has switched to Metropolis.
    pub fn uses_metropolis(&self) -> bool {
        self.metropolis.is_some()
    }

    /// Generate one candidate point (no atom check) into `out`.
    fn generate_candidate(&self, rng: &mut PipRng, out: &mut Assignment) {
        for (v, s) in self.group.vars.iter().zip(&self.strategies) {
            let x = match s {
                VarStrategy::Natural => v.class.generate(&v.params, rng),
                VarStrategy::CdfBounded { p_lo, p_hi } => {
                    let u: f64 = rng.gen();
                    let p = p_lo + u * (p_hi - p_lo);
                    v.class
                        .inverse_cdf(&v.params, p)
                        .expect("strategy guaranteed inverse CDF")
                }
            };
            out.set(v.key, x);
        }
    }

    /// Check the group's atoms at the current contents of `out`.
    fn satisfied(&self, out: &Assignment) -> Result<bool> {
        for atom in &self.group.atoms {
            if !atom.eval(out)? {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Draw one joint sample satisfying the group's atoms into `out`.
    ///
    /// `bounds` is only consulted if a mid-flight Metropolis switch needs
    /// a start point.
    pub fn sample_into(
        &mut self,
        rng: &mut PipRng,
        cfg: &SamplerConfig,
        bounds: &BoundsMap,
        out: &mut Assignment,
    ) -> Result<()> {
        if let Some(m) = self.metropolis.as_mut() {
            return m.sample_into(&self.group, rng, cfg.metropolis_thinning, out);
        }
        let mut local_attempts: u64 = 0;
        loop {
            self.attempts += 1;
            local_attempts += 1;
            self.generate_candidate(rng, out);
            if self.satisfied(out)? {
                self.accepts += 1;
                return Ok(());
            }
            // Metropolis switch (Algorithm 4.3 line 19): when the overall
            // rejection fraction exceeds the threshold and we have enough
            // evidence it isn't a fluke.
            if cfg.use_metropolis
                && !self.metropolis_unavailable
                && self.attempts >= METROPOLIS_MIN_ATTEMPTS
                && self.rejection_rate() > cfg.metropolis_threshold
            {
                match MetropolisState::init(
                    &self.group,
                    bounds,
                    rng,
                    cfg.metropolis_burn_in,
                    100_000,
                ) {
                    Ok(m) => {
                        crate::obs::metrics().metropolis_escalations_total.inc();
                        self.frozen = Some((self.attempts, self.accepts));
                        self.metropolis = Some(m);
                        return self.metropolis.as_mut().expect("just set").sample_into(
                            &self.group,
                            rng,
                            cfg.metropolis_thinning,
                            out,
                        );
                    }
                    Err(_) => {
                        // No PDF or no start point: keep rejecting (the
                        // attempt cap below will eventually fire), and
                        // don't pay for this scan again.
                        self.metropolis_unavailable = true;
                    }
                }
            }
            if local_attempts >= MAX_ATTEMPTS_PER_SAMPLE {
                return Err(PipError::Sampling(format!(
                    "group rejected {MAX_ATTEMPTS_PER_SAMPLE} consecutive candidates"
                )));
            }
        }
    }

    fn rejection_rate(&self) -> f64 {
        if self.attempts == 0 {
            0.0
        } else {
            1.0 - self.accepts as f64 / self.attempts as f64
        }
    }

    /// Monte-Carlo estimate of `P[group atoms]`.
    ///
    /// Sampling happens inside the CDF box, so the estimate is
    /// `box_mass · accepts/attempts`. After a Metropolis switch the
    /// counters frozen at switch time are used (the walk itself carries
    /// no acceptance information).
    pub fn probability_estimate(&self) -> f64 {
        let (attempts, accepts) = self.frozen.unwrap_or((self.attempts, self.accepts));
        if attempts == 0 {
            // No sampling happened: either the group has no atoms
            // (probability 1) or only exact paths were used.
            if self.group.atoms.is_empty() {
                return self.box_mass;
            }
            return f64::NAN;
        }
        self.box_mass * accepts as f64 / attempts as f64
    }

    /// Exact probability via CDF integration, when the group is a single
    /// univariate variable constrained only by affine atoms (Algorithm
    /// 4.3 lines 32–33). Returns `None` when inapplicable.
    pub fn exact_probability(&self) -> Option<f64> {
        exact_group_probability(&self.group)
    }

    /// Estimate `P[group atoms]` with a fixed number of candidate draws
    /// (cheaper than `sample_into` for selective conditions, where one
    /// accepted sample may cost thousands of candidates).
    pub fn estimate_probability(&mut self, rng: &mut PipRng, n_attempts: u64) -> Result<f64> {
        let mut scratch = Assignment::new();
        for _ in 0..n_attempts {
            self.attempts += 1;
            self.generate_candidate(rng, &mut scratch);
            if self.satisfied(&scratch)? {
                self.accepts += 1;
            }
        }
        Ok(self.probability_estimate())
    }
}

/// Exact interval of a single-variable affine constraint set, honouring
/// strictness on the integer grid for discrete variables.
fn single_var_interval(group: &VarGroup) -> Option<(RandomVar, Interval)> {
    if group.vars.len() != 1 {
        return None;
    }
    let v = group.vars[0].clone();
    let discrete = v.is_discrete();
    let mut iv = {
        let (lo, hi) = v.class.support(&v.params);
        Interval::new(lo, hi)
    };
    for atom in &group.atoms {
        let (expr, op) = atom.normalized();
        let (coeffs, c) = expr.linear_coeffs()?;
        if coeffs.len() != 1 {
            return None;
        }
        let (&key, &a) = coeffs.iter().next()?;
        if key != v.key || a == 0.0 {
            return None;
        }
        // a·x + c (op) 0  →  x (op') t
        let t = -c / a;
        let op = if a < 0.0 { op.flip() } else { op };
        let bound = match op {
            CmpOp::Gt => {
                let lo = if discrete { grid_above(t) } else { t };
                Interval::new(lo, f64::INFINITY)
            }
            CmpOp::Ge => {
                let lo = if discrete { t.ceil() } else { t };
                Interval::new(lo, f64::INFINITY)
            }
            CmpOp::Lt => {
                let hi = if discrete { grid_below(t) } else { t };
                Interval::new(f64::NEG_INFINITY, hi)
            }
            CmpOp::Le => {
                let hi = if discrete { t.floor() } else { t };
                Interval::new(f64::NEG_INFINITY, hi)
            }
            CmpOp::Eq => Interval::new(t, t),
            CmpOp::Ne => return None,
        };
        iv = iv.intersect(&bound);
    }
    Some((v, iv))
}

/// Largest integer strictly below `t`.
fn grid_below(t: f64) -> f64 {
    if t.fract() == 0.0 {
        t - 1.0
    } else {
        t.floor()
    }
}

/// Smallest integer strictly above `t`.
fn grid_above(t: f64) -> f64 {
    if t.fract() == 0.0 {
        t + 1.0
    } else {
        t.ceil()
    }
}

/// `P[atoms]` for a single-variable affine group via two CDF evaluations
/// (the paper's headline exact path).
pub fn exact_group_probability(group: &VarGroup) -> Option<f64> {
    let (v, iv) = single_var_interval(group)?;
    if iv.is_empty() {
        return Some(0.0);
    }
    let hi = cdf_at(&v, iv.hi)?;
    let lo = cdf_below(&v, iv.lo)?;
    Some((hi - lo).clamp(0.0, 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pip_ctable::consistency_check;
    use pip_dist::prelude::builtin;
    use pip_dist::{rng_from_seed, special};
    use pip_expr::{atoms, independent_groups, Conjunction, Equation};

    fn make(cond: &Conjunction, cfg: &SamplerConfig) -> (Vec<GroupSampler>, BoundsMap) {
        let bounds = consistency_check(cond).bounds();
        let samplers = independent_groups(cond, &[])
            .into_iter()
            .map(|g| GroupSampler::new(g, &bounds, cfg))
            .collect();
        (samplers, bounds)
    }

    #[test]
    fn unconstrained_group_always_accepts() {
        let y = RandomVar::create(builtin::normal(), &[5.0, 1.0]).unwrap();
        let cfg = SamplerConfig::default();
        let cond = Conjunction::top();
        let groups = independent_groups(&cond, std::slice::from_ref(&y));
        let mut s = GroupSampler::new(groups.into_iter().next().unwrap(), &BoundsMap::new(), &cfg);
        let mut rng = rng_from_seed(1);
        let mut a = Assignment::new();
        for _ in 0..100 {
            s.sample_into(&mut rng, &cfg, &BoundsMap::new(), &mut a)
                .unwrap();
            assert!(a.get(y.key).unwrap().is_finite());
        }
        assert_eq!(s.accepts, 100);
        assert_eq!(s.probability_estimate(), 1.0);
    }

    #[test]
    fn cdf_bounded_sampling_never_rejects_box_constraints() {
        // (Y > -3) AND (Y < 2) on Normal(5,10): Example 4.1 of the paper.
        let y = RandomVar::create(builtin::normal(), &[5.0, 10.0]).unwrap();
        let cond = Conjunction::of(vec![
            atoms::gt(Equation::from(y.clone()), -3.0),
            atoms::lt(Equation::from(y.clone()), 2.0),
        ]);
        let cfg = SamplerConfig::default();
        let (mut samplers, bounds) = make(&cond, &cfg);
        assert_eq!(samplers.len(), 1);
        let s = &mut samplers[0];
        let mut rng = rng_from_seed(2);
        let mut a = Assignment::new();
        let n = 2000;
        let mut sum = 0.0;
        for _ in 0..n {
            s.sample_into(&mut rng, &cfg, &bounds, &mut a).unwrap();
            let x = a.get(y.key).unwrap();
            assert!(x > -3.0 && x < 2.0, "{x}");
            sum += x;
        }
        // With CDF bounds the box is sampled directly: zero rejections.
        assert_eq!(s.accepts, s.attempts);
        // Truncated-normal mean: μ + σ(φ(a)−φ(b))/(Φ(b)−Φ(a)),
        // a = (−3−5)/10 = −0.8, b = (2−5)/10 = −0.3.
        let (za, zb) = (-0.8, -0.3);
        let truth = 5.0
            + 10.0 * (special::normal_pdf(za) - special::normal_pdf(zb))
                / (special::normal_cdf(zb) - special::normal_cdf(za));
        let mean = sum / n as f64;
        assert!((mean - truth).abs() < 0.2, "mean {mean} vs {truth}");
    }

    #[test]
    fn naive_config_rejects_instead() {
        let y = RandomVar::create(builtin::normal(), &[0.0, 1.0]).unwrap();
        let cond = Conjunction::single(atoms::gt(Equation::from(y.clone()), 1.0));
        let cfg = SamplerConfig::naive(100);
        let (mut samplers, bounds) = make(&cond, &cfg);
        let s = &mut samplers[0];
        let mut rng = rng_from_seed(3);
        let mut a = Assignment::new();
        for _ in 0..50 {
            s.sample_into(&mut rng, &cfg, &bounds, &mut a).unwrap();
            assert!(a.get(y.key).unwrap() > 1.0);
        }
        assert!(s.attempts > s.accepts, "rejection must be happening");
        // Estimate approximates P[Y > 1] ≈ 0.1587.
        let est = s.probability_estimate();
        assert!((est - 0.1587).abs() < 0.08, "{est}");
    }

    #[test]
    fn probability_estimate_with_cdf_box_is_consistent() {
        // Constraint exactly a box → estimate == box_mass exactly.
        let y = RandomVar::create(builtin::normal(), &[0.0, 1.0]).unwrap();
        let cond = Conjunction::of(vec![
            atoms::gt(Equation::from(y.clone()), -1.0),
            atoms::lt(Equation::from(y.clone()), 1.0),
        ]);
        let cfg = SamplerConfig::default();
        let (mut samplers, bounds) = make(&cond, &cfg);
        let s = &mut samplers[0];
        let mut rng = rng_from_seed(4);
        let mut a = Assignment::new();
        for _ in 0..500 {
            s.sample_into(&mut rng, &cfg, &bounds, &mut a).unwrap();
        }
        let expected = special::normal_cdf(1.0) - special::normal_cdf(-1.0);
        assert!((s.probability_estimate() - expected).abs() < 1e-9);
    }

    #[test]
    fn exact_probability_single_var_interval() {
        let y = RandomVar::create(builtin::normal(), &[0.0, 1.0]).unwrap();
        let cond = Conjunction::of(vec![
            atoms::ge(Equation::from(y.clone()), -1.0),
            atoms::le(Equation::from(y.clone()), 2.0),
        ]);
        let cfg = SamplerConfig::default();
        let (samplers, _) = make(&cond, &cfg);
        let p = samplers[0].exact_probability().unwrap();
        let truth = special::normal_cdf(2.0) - special::normal_cdf(-1.0);
        assert!((p - truth).abs() < 1e-9, "{p} vs {truth}");
    }

    #[test]
    fn exact_probability_discrete_strictness() {
        // X ~ DiscreteUniform(1,6); P[X < 3] = P[X ≤ 2] = 2/6.
        let x = RandomVar::create(builtin::discrete_uniform(), &[1.0, 6.0]).unwrap();
        let cond = Conjunction::single(atoms::lt(Equation::from(x.clone()), 3.0));
        let g = independent_groups(&cond, &[]).into_iter().next().unwrap();
        let p = exact_group_probability(&g).unwrap();
        assert!((p - 2.0 / 6.0).abs() < 1e-12, "{p}");
        // P[X ≤ 3] = 3/6.
        let cond = Conjunction::single(atoms::le(Equation::from(x.clone()), 3.0));
        let g = independent_groups(&cond, &[]).into_iter().next().unwrap();
        assert!((exact_group_probability(&g).unwrap() - 0.5).abs() < 1e-12);
        // P[X > 6] = 0.
        let cond = Conjunction::single(atoms::gt(Equation::from(x), 6.0));
        let g = independent_groups(&cond, &[]).into_iter().next().unwrap();
        assert_eq!(exact_group_probability(&g), Some(0.0));
    }

    #[test]
    fn exact_probability_refuses_multivar() {
        let a = RandomVar::create(builtin::normal(), &[0.0, 1.0]).unwrap();
        let b = RandomVar::create(builtin::normal(), &[0.0, 1.0]).unwrap();
        let cond = Conjunction::single(atoms::gt(
            Equation::from(a.clone()),
            Equation::from(b.clone()),
        ));
        let g = independent_groups(&cond, &[]).into_iter().next().unwrap();
        assert_eq!(exact_group_probability(&g), None);
    }

    #[test]
    fn metropolis_switch_engages_on_extreme_selectivity() {
        // P[Y > 4] ≈ 3.2e-5 on Normal(0,1) — with CDF sampling disabled,
        // rejection alone would need ~31k tries per sample; the switch
        // must fire.
        let y = RandomVar::create(builtin::normal(), &[0.0, 1.0]).unwrap();
        let cond = Conjunction::single(atoms::gt(Equation::from(y.clone()), 4.0));
        let cfg = SamplerConfig {
            use_cdf_sampling: false,
            ..Default::default()
        };
        let (mut samplers, bounds) = make(&cond, &cfg);
        let s = &mut samplers[0];
        let mut rng = rng_from_seed(5);
        let mut a = Assignment::new();
        for _ in 0..20 {
            s.sample_into(&mut rng, &cfg, &bounds, &mut a).unwrap();
            assert!(a.get(y.key).unwrap() > 4.0);
        }
        assert!(s.uses_metropolis());
    }

    #[test]
    fn impossible_constraint_errors_out() {
        // Uniform[0,1] with Y > 2 and CDF sampling disabled: rejection
        // can never succeed, Metropolis can't start → sampling error.
        let y = RandomVar::create(builtin::uniform(), &[0.0, 1.0]).unwrap();
        let cond = Conjunction::single(atoms::gt(Equation::from(y.clone()), 2.0));
        let cfg = SamplerConfig::naive(10);
        // Bypass consistency (naive config) — build group directly.
        let g = independent_groups(&cond, &[]).into_iter().next().unwrap();
        let mut s = GroupSampler::new(g, &BoundsMap::new(), &cfg);
        let mut rng = rng_from_seed(6);
        let mut a = Assignment::new();
        let err = s.sample_into(&mut rng, &cfg, &BoundsMap::new(), &mut a);
        assert!(err.is_err());
    }

    #[test]
    fn impossible_constraint_with_metropolis_fails_fast() {
        // Uniform[0,5) with Y > 5: zero probability, and the consistency
        // bounds push Metropolis' fallback start point off-support
        // (pdf = 0), so init fails too. The sampler must hit the attempt
        // cap once and error out — not retry the expensive init scan on
        // every rejected candidate (a regression here turns the bounded
        // cap into an effective hang).
        let y = RandomVar::create(builtin::uniform(), &[0.0, 5.0]).unwrap();
        let cond = Conjunction::single(atoms::gt(Equation::from(y.clone()), 5.0));
        let cfg = SamplerConfig::default();
        assert!(
            cfg.use_metropolis,
            "default config must exercise the switch"
        );
        let (mut samplers, bounds) = make(&cond, &cfg);
        let s = &mut samplers[0];
        let mut rng = rng_from_seed(7);
        let mut a = Assignment::new();
        let start = std::time::Instant::now();
        let err = s.sample_into(&mut rng, &cfg, &bounds, &mut a);
        assert!(err.is_err(), "{err:?}");
        assert!(s.metropolis_unavailable, "init failure must be remembered");
        assert!(
            start.elapsed() < std::time::Duration::from_secs(30),
            "attempt cap took {:?} — init scan is being retried",
            start.elapsed()
        );
    }
}
