//! Aggregate sampling operators (paper Sections IV-C and V-C):
//! `expected_sum`, `expected_count`, `expected_avg`, `expected_max`, and
//! their histogram variants.
//!
//! Aggregates use *per-table* sampling semantics: the probability of each
//! row's presence is folded into the aggregate. `sum`/`count` obey
//! linearity of expectation and decompose into per-row expectation ×
//! confidence; `max` does not, and gets either the sorted-scan algorithm
//! of Example 4.4 (constant targets) or naive per-world evaluation
//! (symbolic targets).
//!
//! The per-row fan-out runs each row's `expectation`/`conf` through the
//! sampling compiler when `SamplerConfig::compile` is on (the default):
//! the row's equation and condition lower once into slot-indexed tapes
//! and group kernels ([`crate::tape`]), samples land in columnar blocks
//! ([`crate::blocks`]), and identical `(group, seed-site)` draw
//! sequences — e.g. `expected_count` next to `expected_avg` in one
//! SELECT list, or a re-executed prepared statement — are served from
//! the sample-block cache. All of it bit-identical to the interpreted
//! operators, at every thread count.

use pip_core::{PipError, Result};

use pip_ctable::CTable;

use crate::confidence::conf;
use crate::config::SamplerConfig;
use crate::expectation::expectation;
use crate::worlds::sample_worlds;

/// Result of an aggregate operator.
#[derive(Debug, Clone, PartialEq)]
pub struct AggregateResult {
    /// The aggregate's expected value.
    pub value: f64,
    /// Total samples drawn across all rows/worlds (0 for exact paths).
    pub n_samples: usize,
}

/// Resolve the aggregated column to per-row expressions.
fn column_exprs<'t>(table: &'t CTable, col: &str) -> Result<(usize, &'t CTable)> {
    let idx = table.schema().index_of(col)?;
    Ok((idx, table))
}

/// `expected_sum(col)` — Σ rows E[χ_φ · cell] = Σ E[cell | φ]·P[φ]
/// (linearity of expectation, Section II-C).
///
/// Per-row sample budgets are relaxed by √N (law of large numbers: the
/// per-row errors average out in the sum, Section IV-C).
pub fn expected_sum(table: &CTable, col: &str, cfg: &SamplerConfig) -> Result<AggregateResult> {
    if cfg.threads > 1 {
        return crate::parallel::expected_sum_parallel(
            table,
            col,
            cfg,
            crate::parallel::ParallelSampler::global(),
        );
    }
    let (idx, table) = column_exprs(table, col)?;
    let row_cfg = cfg.scaled_for_rows(table.len());
    let mut total = 0.0;
    let mut n_samples = 0;
    for (i, row) in table.rows().iter().enumerate() {
        let r = expectation(&row.cells[idx], &row.condition, true, &row_cfg, i as u64)?;
        n_samples += r.n_samples;
        if r.expectation.is_nan() {
            continue; // unsatisfiable row: present in no world
        }
        total += r.expectation * r.probability;
    }
    Ok(AggregateResult {
        value: total,
        n_samples,
    })
}

/// `expected_count()` — Σ rows P[φ] (the `h ≡ 1` special case).
pub fn expected_count(table: &CTable, cfg: &SamplerConfig) -> Result<AggregateResult> {
    if cfg.threads > 1 {
        return crate::parallel::expected_count_parallel(
            table,
            cfg,
            crate::parallel::ParallelSampler::global(),
        );
    }
    let mut total = 0.0;
    for (i, row) in table.rows().iter().enumerate() {
        total += conf(&row.condition, cfg, i as u64)?;
    }
    Ok(AggregateResult {
        value: total,
        n_samples: 0,
    })
}

/// `expected_avg(col)` — the ratio estimator `E[sum]/E[count]`.
///
/// This is the standard first-order approximation of `E[sum/count]`
/// (exact only when count is deterministic); documented as such.
pub fn expected_avg(table: &CTable, col: &str, cfg: &SamplerConfig) -> Result<AggregateResult> {
    let s = expected_sum(table, col, cfg)?;
    let c = expected_count(table, cfg)?;
    let value = if c.value == 0.0 {
        f64::NAN
    } else {
        s.value / c.value
    };
    Ok(AggregateResult {
        value,
        n_samples: s.n_samples,
    })
}

/// `expected_max(col)` for *constant* target cells — the sorted-scan
/// algorithm of Example 4.4.
///
/// Rows are sorted descending by value; row `i` is the maximum iff it is
/// present and no larger row is, so (assuming independent row
/// conditions — the caller's responsibility, as in the paper):
///
/// `E[max] = Σᵢ vᵢ · pᵢ · Π_{j<i} (1 − pⱼ)`
///
/// The scan stops early once the largest possible remaining contribution
/// `|vᵢ| · Π_{j<i}(1 − pⱼ)` drops below `precision` — the paper's
/// "maximum any later record can change the result" bound. Worlds in
/// which no row is present contribute 0.
pub fn expected_max_const(
    table: &CTable,
    col: &str,
    cfg: &SamplerConfig,
    precision: f64,
) -> Result<AggregateResult> {
    if cfg.threads > 1 {
        return crate::parallel::expected_max_const_parallel(
            table,
            col,
            cfg,
            precision,
            crate::parallel::ParallelSampler::global(),
        );
    }
    let (idx, table) = column_exprs(table, col)?;
    let mut rows: Vec<(f64, usize)> = Vec::with_capacity(table.len());
    for (i, row) in table.rows().iter().enumerate() {
        let v = row.cells[idx]
            .as_const()
            .ok_or_else(|| {
                PipError::Unsupported(format!(
                    "expected_max_const requires constant '{col}' cells; use expected_max_sampled"
                ))
            })?
            .as_f64()?;
        rows.push((v, i));
    }
    rows.sort_by(|a, b| b.0.total_cmp(&a.0));

    let mut acc = 0.0;
    let mut carry = 1.0; // Π (1 − p_j) over rows scanned so far
    for &(v, i) in &rows {
        if v.abs() * carry <= precision {
            break;
        }
        let p = conf(&table.rows()[i].condition, cfg, i as u64)?;
        acc += v * p * carry;
        carry *= 1.0 - p;
        if carry <= 0.0 {
            break;
        }
    }
    Ok(AggregateResult {
        value: acc,
        n_samples: 0,
    })
}

/// `expected_max(col)` for arbitrary (symbolic) targets: naive per-world
/// evaluation over `n_worlds` jointly-consistent sampled worlds
/// (Section IV-C's worst-case fallback). Empty worlds contribute 0.
pub fn expected_max_sampled(
    table: &CTable,
    col: &str,
    cfg: &SamplerConfig,
    n_worlds: usize,
) -> Result<AggregateResult> {
    let sums = per_world_aggregate(table, col, cfg, n_worlds, WorldAgg::Max)?;
    let value = sums.iter().sum::<f64>() / sums.len().max(1) as f64;
    Ok(AggregateResult {
        value,
        n_samples: n_worlds,
    })
}

/// Which per-world statistic to compute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WorldAgg {
    Sum,
    Max,
}

/// Evaluate `col` in every sampled world, aggregating across present
/// rows. Worlds are independent (world `i` is seeded by `i` alone), so
/// with `cfg.threads > 1` their evaluation fans out onto the shared
/// [`crate::parallel::ParallelSampler`]; outputs stay in world order.
fn per_world_aggregate(
    table: &CTable,
    col: &str,
    cfg: &SamplerConfig,
    n_worlds: usize,
    agg: WorldAgg,
) -> Result<Vec<f64>> {
    let idx = table.schema().index_of(col)?;
    let worlds = sample_worlds(table, n_worlds, cfg)?;
    let eval_world = |w: &pip_expr::Assignment| -> Result<f64> {
        let mut acc: Option<f64> = None;
        for row in table.rows() {
            if !row.condition.eval(w)? {
                continue;
            }
            let v = row.cells[idx].eval_f64(w)?;
            acc = Some(match (acc, agg) {
                (None, _) => v,
                (Some(a), WorldAgg::Sum) => a + v,
                (Some(a), WorldAgg::Max) => a.max(v),
            });
        }
        Ok(acc.unwrap_or(0.0))
    };
    if cfg.threads > 1 {
        let pool = crate::parallel::ParallelSampler::global();
        return pool
            .run(cfg.threads, worlds.len(), |i| eval_world(&worlds[i]))
            .into_iter()
            .collect();
    }
    worlds.iter().map(eval_world).collect()
}

/// `expected_sum_hist(col)` — the raw per-world sums (paper Section V-C:
/// "instead of outputting the average of the results, it instead outputs
/// an array of all the generated samples").
pub fn expected_sum_hist(
    table: &CTable,
    col: &str,
    cfg: &SamplerConfig,
    n_worlds: usize,
) -> Result<Vec<f64>> {
    per_world_aggregate(table, col, cfg, n_worlds, WorldAgg::Sum)
}

/// `expected_max_hist(col)` — the raw per-world maxima.
pub fn expected_max_hist(
    table: &CTable,
    col: &str,
    cfg: &SamplerConfig,
    n_worlds: usize,
) -> Result<Vec<f64>> {
    per_world_aggregate(table, col, cfg, n_worlds, WorldAgg::Max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pip_core::{DataType, Schema};
    use pip_ctable::CRow;
    use pip_dist::prelude::builtin;
    use pip_dist::special;
    use pip_expr::{atoms, Conjunction, Equation, RandomVar};

    fn normal(mu: f64, sigma: f64) -> RandomVar {
        RandomVar::create(builtin::normal(), &[mu, sigma]).unwrap()
    }

    fn sym_schema() -> Schema {
        Schema::of(&[("v", DataType::Symbolic)])
    }

    #[test]
    fn expected_sum_linearity() {
        // Two unconditional normals: E[sum] = 3 + 7.
        let t = CTable::new(
            sym_schema(),
            vec![
                CRow::unconditional(vec![Equation::from(normal(3.0, 1.0))]),
                CRow::unconditional(vec![Equation::from(normal(7.0, 1.0))]),
            ],
        )
        .unwrap();
        let cfg = SamplerConfig::default();
        let r = expected_sum(&t, "v", &cfg).unwrap();
        assert!(
            (r.value - 10.0).abs() < 1e-9,
            "exact mean path: {}",
            r.value
        );
    }

    #[test]
    fn expected_sum_weights_by_confidence() {
        // Constant 10 present iff Y > 0 (P = 1/2): E[sum] = 5.
        let y = normal(0.0, 1.0);
        let t = CTable::new(
            sym_schema(),
            vec![CRow::new(
                vec![Equation::val(10.0)],
                Conjunction::single(atoms::gt(Equation::from(y), 0.0)),
            )],
        )
        .unwrap();
        let cfg = SamplerConfig::default();
        let r = expected_sum(&t, "v", &cfg).unwrap();
        assert!((r.value - 5.0).abs() < 1e-9, "{}", r.value);
    }

    #[test]
    fn expected_sum_skips_unsatisfiable_rows() {
        let y = normal(0.0, 1.0);
        let dead = Conjunction::of(vec![
            atoms::gt(Equation::from(y.clone()), 5.0),
            atoms::lt(Equation::from(y), 3.0),
        ]);
        let t = CTable::new(
            sym_schema(),
            vec![
                CRow::new(vec![Equation::val(100.0)], dead),
                CRow::unconditional(vec![Equation::val(1.0)]),
            ],
        )
        .unwrap();
        let cfg = SamplerConfig::default();
        let r = expected_sum(&t, "v", &cfg).unwrap();
        assert_eq!(r.value, 1.0);
    }

    #[test]
    fn expected_count_sums_confidences() {
        let y = normal(0.0, 1.0);
        let t = CTable::new(
            sym_schema(),
            vec![
                CRow::unconditional(vec![Equation::val(1.0)]),
                CRow::new(
                    vec![Equation::val(2.0)],
                    Conjunction::single(atoms::gt(Equation::from(y), 1.0)),
                ),
            ],
        )
        .unwrap();
        let cfg = SamplerConfig::default();
        let r = expected_count(&t, &cfg).unwrap();
        let truth = 1.0 + (1.0 - special::normal_cdf(1.0));
        assert!((r.value - truth).abs() < 1e-9);
    }

    #[test]
    fn expected_avg_ratio() {
        let t = CTable::new(
            sym_schema(),
            vec![
                CRow::unconditional(vec![Equation::val(2.0)]),
                CRow::unconditional(vec![Equation::val(4.0)]),
            ],
        )
        .unwrap();
        let cfg = SamplerConfig::default();
        let r = expected_avg(&t, "v", &cfg).unwrap();
        assert!((r.value - 3.0).abs() < 1e-9);
        let empty = CTable::empty(sym_schema());
        assert!(expected_avg(&empty, "v", &cfg).unwrap().value.is_nan());
    }

    /// The paper's Example 4.4 table, with conditions replaced by
    /// Normal-tail events of the stated probabilities.
    fn example_4_4() -> CTable {
        // P[N(0,1) > z] = p  →  z = Φ⁻¹(1−p)
        let mk = |v: f64, p: f64| {
            let y = normal(0.0, 1.0);
            let z = special::inverse_normal_cdf(1.0 - p);
            CRow::new(
                vec![Equation::val(v)],
                Conjunction::single(atoms::gt(Equation::from(y), z)),
            )
        };
        CTable::new(
            sym_schema(),
            vec![mk(5.0, 0.7), mk(4.0, 0.8), mk(1.0, 0.3), mk(0.0, 0.6)],
        )
        .unwrap()
    }

    #[test]
    fn expected_max_sorted_scan() {
        let t = example_4_4();
        let cfg = SamplerConfig::default();
        // Correct independent-rows value:
        // 5·0.7 + 4·0.8·0.3 + 1·0.3·0.3·0.2 + 0 = 3.5 + 0.96 + 0.018.
        let truth = 5.0 * 0.7 + 4.0 * 0.8 * 0.3 + 1.0 * 0.3 * 0.3 * 0.2;
        let r = expected_max_const(&t, "v", &cfg, 0.0).unwrap();
        assert!((r.value - truth).abs() < 1e-6, "{} vs {truth}", r.value);
    }

    #[test]
    fn expected_max_early_exit_matches_paper_bound() {
        let t = example_4_4();
        let cfg = SamplerConfig::default();
        // With precision 0.1, the scan may stop after two records: the
        // remaining contribution is bounded by 1·(1−0.7)(1−0.8) = 0.06.
        let exact = expected_max_const(&t, "v", &cfg, 0.0).unwrap().value;
        let approx = expected_max_const(&t, "v", &cfg, 0.1).unwrap().value;
        assert!((exact - approx).abs() <= 0.1, "{exact} vs {approx}");
        assert!(approx <= exact, "early exit only drops positive terms");
    }

    #[test]
    fn expected_max_const_rejects_symbolic_cells() {
        let y = normal(0.0, 1.0);
        let t = CTable::new(
            sym_schema(),
            vec![CRow::unconditional(vec![Equation::from(y)])],
        )
        .unwrap();
        let cfg = SamplerConfig::default();
        assert!(matches!(
            expected_max_const(&t, "v", &cfg, 0.0),
            Err(PipError::Unsupported(_))
        ));
    }

    #[test]
    fn expected_max_sampled_agrees_with_const_path() {
        let t = example_4_4();
        let cfg = SamplerConfig::default();
        let exact = expected_max_const(&t, "v", &cfg, 0.0).unwrap().value;
        let sampled = expected_max_sampled(&t, "v", &cfg, 4000).unwrap().value;
        assert!((exact - sampled).abs() < 0.15, "{exact} vs {sampled}");
    }

    #[test]
    fn expected_max_sampled_symbolic_target() {
        // max over one row: E[max] = E[Y] = 3.
        let y = normal(3.0, 1.0);
        let t = CTable::new(
            sym_schema(),
            vec![CRow::unconditional(vec![Equation::from(y)])],
        )
        .unwrap();
        let cfg = SamplerConfig::default();
        let r = expected_max_sampled(&t, "v", &cfg, 3000).unwrap();
        assert!((r.value - 3.0).abs() < 0.1, "{}", r.value);
    }

    #[test]
    fn thread_count_never_changes_aggregate_results() {
        let y = normal(2.0, 1.0);
        let gate = normal(0.0, 1.0);
        let t = CTable::new(
            sym_schema(),
            vec![
                CRow::unconditional(vec![Equation::from(y.clone())]),
                CRow::new(
                    vec![Equation::from(y)],
                    Conjunction::single(atoms::gt(Equation::from(gate), 0.3)),
                ),
            ],
        )
        .unwrap();
        let serial = SamplerConfig::fixed_samples(300);
        for threads in [2usize, 4, 8] {
            let par = serial.clone().with_threads(threads);
            assert_eq!(
                expected_sum(&t, "v", &serial).unwrap(),
                expected_sum(&t, "v", &par).unwrap(),
                "expected_sum, threads={threads}"
            );
            assert_eq!(
                expected_count(&t, &serial).unwrap(),
                expected_count(&t, &par).unwrap(),
                "expected_count, threads={threads}"
            );
            assert_eq!(
                expected_avg(&t, "v", &serial).unwrap(),
                expected_avg(&t, "v", &par).unwrap(),
                "expected_avg, threads={threads}"
            );
            assert_eq!(
                expected_sum_hist(&t, "v", &serial, 64).unwrap(),
                expected_sum_hist(&t, "v", &par, 64).unwrap(),
                "expected_sum_hist, threads={threads}"
            );
        }
    }

    #[test]
    fn hist_variants_return_raw_samples() {
        let y = normal(0.0, 1.0);
        let t = CTable::new(
            sym_schema(),
            vec![
                CRow::unconditional(vec![Equation::val(1.0)]),
                CRow::new(
                    vec![Equation::val(1.0)],
                    Conjunction::single(atoms::gt(Equation::from(y), 0.0)),
                ),
            ],
        )
        .unwrap();
        let cfg = SamplerConfig::default();
        let sums = expected_sum_hist(&t, "v", &cfg, 1000).unwrap();
        assert_eq!(sums.len(), 1000);
        // Sum is 1 or 2 depending on the condition; mean ≈ 1.5.
        assert!(sums.iter().all(|&s| s == 1.0 || s == 2.0));
        let mean = sums.iter().sum::<f64>() / 1000.0;
        assert!((mean - 1.5).abs() < 0.06, "{mean}");
        let maxes = expected_max_hist(&t, "v", &cfg, 100).unwrap();
        assert!(maxes.iter().all(|&m| m == 1.0));
    }
}
