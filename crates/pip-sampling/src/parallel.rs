//! Deterministic parallel Monte-Carlo runtime.
//!
//! Monte-Carlo integration of PIP's expectation/confidence operators is
//! embarrassingly parallel — every sampled world is independent — but a
//! naive fan-out would make results depend on thread scheduling. This
//! module keeps the paper's reproducibility guarantee (Section III-B:
//! seeds derive from identity, not execution order) under parallelism:
//!
//! * [`ParallelSampler`] — a fixed pool of worker threads executing
//!   index-addressed work items. Output slot `i` is always produced by
//!   work item `i`, so the merged result is a pure function of the
//!   inputs regardless of which thread ran what.
//! * **Row fan-out** — aggregate operators (`expected_sum` et al.)
//!   already seed each row's sampler from `(world_seed, row index)`;
//!   [`expected_sum_parallel`] and friends evaluate rows concurrently
//!   and fold partial results in row order, bit-identical to the serial
//!   loop for every thread count.
//! * **Chunked expectation** — [`expectation_chunked`] splits one
//!   operator's sample budget into fixed-size chunks, each with an RNG
//!   stream seeded from `(world_seed, site, chunk index)`. Chunks merge
//!   in chunk order and the adaptive stopping rule fires at chunk
//!   boundaries, so the estimate is bit-stable from 1 thread to N.
//!
//! The confidence-interval machinery is unchanged — partial sums merge
//! into the same [`ExpectationResult`] CLT statistics the serial
//! operator produces (cf. `confidence.rs`).

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

use pip_core::{PipError, Result};
use pip_dist::{mix64, rng_from_seed};
use pip_expr::{Assignment, Conjunction, Equation};

use pip_ctable::CTable;

use crate::aggregate::AggregateResult;
use crate::confidence::conf;
use crate::config::SamplerConfig;
use crate::expectation::{
    condition_probability, expectation, linear_exact, prepare, ExpectationResult, Prepared,
};

/// Domain-separation constants for per-chunk / per-purpose RNG streams.
const CHUNK_STREAM: u64 = 0x9E37_79B9_7F4A_7C15;
const PROBABILITY_STREAM: u64 = 0x5D8F_21C6_0F14_9A3B;

/// Chunks dispatched per scheduling wave of the chunked executor. The
/// wave size is a *constant*: making it depend on the thread count
/// would move the adaptive stopping point and break bit-stability.
const WAVE_CHUNKS: usize = 8;

// ---------------------------------------------------------------------
// The fixed thread pool.
// ---------------------------------------------------------------------

/// An index-addressed unit of pool work: claim indices, run, mark done.
struct Job {
    /// Total number of work items.
    n: usize,
    /// Next unclaimed index (may overshoot `n`).
    claim: AtomicUsize,
    /// Maximum *helper* threads (the submitting thread always drives).
    helper_limit: usize,
    /// Helpers currently driving this job.
    helpers: AtomicUsize,
    /// The work closure. Lifetime-erased: the submitter keeps the real
    /// closure alive on its stack until `completed == n`, and indices
    /// `>= n` are never executed, so the reference is never dangling
    /// when dereferenced.
    run: &'static (dyn Fn(usize) + Sync),
    /// Completed item count, paired with `done` for the submitter wait.
    completed: Mutex<usize>,
    done: Condvar,
    /// First panic message observed while running items.
    panicked: Mutex<Option<String>>,
}

impl Job {
    fn exhausted(&self) -> bool {
        self.claim.load(Ordering::Relaxed) >= self.n
    }

    /// Claim and run items until none remain.
    fn drive(&self) {
        loop {
            let i = self.claim.fetch_add(1, Ordering::Relaxed);
            if i >= self.n {
                return;
            }
            let outcome = catch_unwind(AssertUnwindSafe(|| (self.run)(i)));
            if let Err(payload) = outcome {
                let msg = payload
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                    .unwrap_or_else(|| "unknown panic".to_string());
                let mut p = self.panicked.lock().unwrap_or_else(|e| e.into_inner());
                p.get_or_insert(msg);
            }
            let mut c = self.completed.lock().unwrap_or_else(|e| e.into_inner());
            *c += 1;
            if *c == self.n {
                self.done.notify_all();
            }
        }
    }
}

struct PoolShared {
    queue: Mutex<VecDeque<Arc<Job>>>,
    work_ready: Condvar,
    shutdown: AtomicBool,
}

/// A fixed pool of sampling worker threads.
///
/// Work is submitted as `n` indexed items; workers and the submitting
/// thread claim indices from a shared counter and each index writes its
/// own output slot, so results are position-stable. Submitting from
/// inside a worker (nested parallelism) is safe: the submitter always
/// participates, so progress never depends on free workers.
pub struct ParallelSampler {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
}

impl ParallelSampler {
    /// A pool able to run `threads` work items concurrently (the
    /// submitting thread counts, so `threads - 1` workers are spawned).
    /// `threads <= 1` spawns no workers and runs everything inline.
    pub fn new(threads: usize) -> Self {
        Self::with_workers(threads.saturating_sub(1))
    }

    /// A pool with exactly `n_workers` background worker threads.
    pub fn with_workers(n_workers: usize) -> Self {
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(VecDeque::new()),
            work_ready: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let workers = (0..n_workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("pip-sampler-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn sampler worker")
            })
            .collect();
        ParallelSampler { shared, workers }
    }

    /// The process-wide shared pool used by the engine and server. Sized
    /// for the machine (at least 3 workers so multi-thread configs can
    /// be exercised even on small containers).
    pub fn global() -> &'static ParallelSampler {
        static GLOBAL: OnceLock<ParallelSampler> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let cores = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1);
            ParallelSampler::with_workers(cores.max(4) - 1)
        })
    }

    /// Background worker threads in this pool.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Evaluate `f(0..n)` with up to `parallelism` concurrent executors
    /// (capped by pool size + 1) and return the outputs in index order.
    ///
    /// Output `i` is always `f(i)`; thread count and scheduling cannot
    /// change the result, only the wall-clock time. Panics in `f` are
    /// re-raised on the submitting thread after all items settle.
    pub fn run<T, F>(&self, parallelism: usize, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if n == 0 {
            return Vec::new();
        }
        let helper_limit = parallelism.max(1).saturating_sub(1).min(self.workers.len());
        if helper_limit == 0 || n == 1 {
            return (0..n).map(f).collect();
        }

        let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let work = |i: usize| {
            let v = f(i);
            *slots[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(v);
        };
        let work_ref: &(dyn Fn(usize) + Sync) = &work;
        // SAFETY: `run` outlives this call only inside queue entries that
        // are already exhausted (`claim >= n`) and therefore never invoke
        // it again; we block below until every claimed index completed.
        let work_static: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(work_ref) };
        let job = Arc::new(Job {
            n,
            claim: AtomicUsize::new(0),
            helper_limit,
            helpers: AtomicUsize::new(0),
            run: work_static,
            completed: Mutex::new(0),
            done: Condvar::new(),
            panicked: Mutex::new(None),
        });
        {
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            q.push_back(Arc::clone(&job));
        }
        self.shared.work_ready.notify_all();

        job.drive();

        let mut completed = job.completed.lock().unwrap_or_else(|e| e.into_inner());
        while *completed < n {
            completed = job.done.wait(completed).unwrap_or_else(|e| e.into_inner());
        }
        drop(completed);

        if let Some(msg) = job
            .panicked
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
        {
            panic!("ParallelSampler work item panicked: {msg}");
        }
        slots
            .into_iter()
            .map(|s| {
                s.into_inner()
                    .unwrap_or_else(|e| e.into_inner())
                    .expect("all items completed")
            })
            .collect()
    }
}

impl Drop for ParallelSampler {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.work_ready.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let job = {
            let mut q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                q.retain(|j| !j.exhausted());
                let mut picked = None;
                for j in q.iter() {
                    let joined = j
                        .helpers
                        .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |h| {
                            (h < j.helper_limit).then_some(h + 1)
                        })
                        .is_ok();
                    if joined {
                        picked = Some(Arc::clone(j));
                        break;
                    }
                }
                if let Some(j) = picked {
                    break j;
                }
                q = shared.work_ready.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        };
        job.drive();
        job.helpers.fetch_sub(1, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------
// Mergeable accumulators.
// ---------------------------------------------------------------------

/// Partial Monte-Carlo sums produced by one chunk of worlds, mergeable
/// in chunk order into the statistics [`ExpectationResult`] reports.
#[derive(Debug, Clone, Default)]
pub struct ChunkAccumulator {
    /// Samples accumulated.
    pub n: usize,
    /// Σ value.
    pub sum: f64,
    /// Σ value².
    pub sum_sq: f64,
    /// Any group fell back to Metropolis inside this chunk.
    pub used_metropolis: bool,
    /// Sampler failure (rejection cap exhausted): the chunk aborted
    /// early and the executor stops consuming chunks, mirroring the
    /// serial operator, which treats it as numerical unsatisfiability
    /// and keeps the samples drawn so far (Algorithm 4.3 line 25).
    pub sampling_error: Option<PipError>,
    /// Expression-evaluation failure: fatal, propagated as `Err` —
    /// exactly like the serial operator's `expr.eval_f64(&a)?`.
    pub eval_error: Option<PipError>,
}

impl ChunkAccumulator {
    /// Fold `other` into `self`. Merging is performed in ascending chunk
    /// order by the executor, which is what pins down the adaptive
    /// stopping point; the sums themselves are order-insensitive.
    pub fn merge(&mut self, other: &ChunkAccumulator) {
        self.n += other.n;
        self.sum += other.sum;
        self.sum_sq += other.sum_sq;
        self.used_metropolis |= other.used_metropolis;
        if self.sampling_error.is_none() {
            self.sampling_error = other.sampling_error.clone();
        }
        if self.eval_error.is_none() {
            self.eval_error = other.eval_error.clone();
        }
    }

    /// Running mean.
    pub fn mean(&self) -> f64 {
        self.sum / self.n as f64
    }

    /// Standard error of the running mean.
    pub fn std_error(&self) -> f64 {
        let mean = self.mean();
        let var = (self.sum_sq / self.n as f64 - mean * mean).max(0.0);
        (var / self.n as f64).sqrt()
    }
}

// ---------------------------------------------------------------------
// Chunked single-operator execution.
// ---------------------------------------------------------------------

/// RNG stream for `(site, chunk)` — depends only on identity.
fn chunk_rng(cfg: &SamplerConfig, site: u64, chunk_idx: u64) -> pip_dist::PipRng {
    rng_from_seed(mix64(
        mix64(cfg.world_seed ^ site) ^ (chunk_idx + 1).wrapping_mul(CHUNK_STREAM),
    ))
}

/// Compiled twin of [`eval_chunk`]: fresh kernels per chunk, one cached
/// columnar block fill (the identical draw sequence — sample-major, per
/// chunk stream), tape evaluation over the block. Returns `None` on a
/// Metropolis escalation, in which case the caller runs the interpreted
/// [`eval_chunk`], whose result this reproduces bit for bit otherwise.
fn eval_chunk_compiled(
    cq: &crate::blocks::CompiledQuery,
    cfg: &SamplerConfig,
    site: u64,
    chunk_idx: u64,
    len: usize,
) -> Option<ChunkAccumulator> {
    let mut kernels = cq.kernels.clone();
    let mut rng = chunk_rng(cfg, site, chunk_idx);
    let block = crate::blocks::fill_block_cached(
        &mut kernels,
        &mut rng,
        cfg,
        cq.slots.len(),
        len,
        cfg.reuse_blocks,
    )?;
    let (mut regs, mut values) = (Vec::new(), Vec::new());
    let first_err = cq.expr.eval_block(
        &block.data,
        block.requested,
        block.filled,
        &mut regs,
        &mut values,
    );
    let mut acc = ChunkAccumulator::default();
    for (s, &v) in values.iter().enumerate().take(block.filled) {
        if first_err == Some(s) {
            acc.eval_error = Some(crate::tape::div_by_zero());
            break;
        }
        acc.n += 1;
        acc.sum += v;
        acc.sum_sq += v * v;
    }
    if acc.eval_error.is_none() {
        acc.sampling_error = block.sampling_error.clone();
    }
    Some(acc)
}

/// Draw `len` conditioned samples of `expr` with a chunk-private RNG
/// stream and fresh sampler state.
fn eval_chunk(
    expr: &Equation,
    prep: &Prepared,
    cfg: &SamplerConfig,
    site: u64,
    chunk_idx: u64,
    len: usize,
) -> ChunkAccumulator {
    let mut samplers = prep.fresh_samplers(cfg);
    let mut rng = chunk_rng(cfg, site, chunk_idx);
    let mut a = Assignment::new();
    let mut acc = ChunkAccumulator::default();
    'sample: for _ in 0..len {
        for &i in &prep.relevant {
            if let Err(e) = samplers[i].sample_into(&mut rng, cfg, &prep.bounds, &mut a) {
                acc.sampling_error = Some(e);
                break 'sample;
            }
        }
        match expr.eval_f64(&a) {
            Ok(v) => {
                acc.n += 1;
                acc.sum += v;
                acc.sum_sq += v * v;
            }
            Err(e) => {
                acc.eval_error = Some(e);
                break 'sample;
            }
        }
    }
    acc.used_metropolis = samplers.iter().any(|s| s.uses_metropolis());
    acc
}

/// `P[condition]` with a dedicated deterministic stream, independent of
/// the averaging loop (unlike the serial operator, which reuses loop
/// acceptance counts — the chunked result must not depend on how many
/// chunks the stopping rule consumed).
fn fresh_condition_probability(prep: &Prepared, cfg: &SamplerConfig, site: u64) -> Result<f64> {
    let mut fresh = Prepared {
        samplers: prep.fresh_samplers(cfg),
        relevant: prep.relevant.clone(),
        bounds: prep.bounds.clone(),
        condition: prep.condition.clone(),
    };
    let mut rng = rng_from_seed(mix64(cfg.world_seed ^ site ^ PROBABILITY_STREAM));
    condition_probability(&mut fresh, &[], cfg, &mut rng)
}

/// Compute `E[expr | condition]` (and optionally `P[condition]`) on the
/// pool, bit-identically for every thread count.
///
/// The operator's sample budget is split into `cfg.chunk_samples`-sized
/// chunks with per-chunk RNG streams seeded by `(world_seed, site,
/// chunk index)`. Chunks are evaluated in waves of [`WAVE_CHUNKS`] and
/// merged strictly in chunk order; the ε–δ stopping rule of Algorithm
/// 4.3 is applied at chunk boundaries. All exact fast paths (constant
/// expressions, linearity of expectation, CDF integration) are shared
/// with the serial operator.
pub fn expectation_chunked(
    expr: &Equation,
    condition: &Conjunction,
    want_probability: bool,
    cfg: &SamplerConfig,
    site: u64,
    pool: &ParallelSampler,
) -> Result<ExpectationResult> {
    let expr = expr.simplify();
    let prep = match prepare(&expr, condition, cfg) {
        None => return Ok(ExpectationResult::nan(want_probability)),
        Some(p) => p,
    };

    if let Some(v) = expr.as_const() {
        let expectation = v.as_f64()?;
        let probability = if want_probability {
            fresh_condition_probability(&prep, cfg, site)?
        } else {
            f64::NAN
        };
        return Ok(ExpectationResult {
            expectation,
            probability,
            n_samples: 0,
            std_error: 0.0,
            used_metropolis: false,
        });
    }

    if let Some(expectation) = linear_exact(&expr, &prep, cfg) {
        return Ok(ExpectationResult {
            expectation,
            probability: if want_probability { 1.0 } else { f64::NAN },
            n_samples: 0,
            std_error: 0.0,
            used_metropolis: false,
        });
    }

    // Compile once per operator; every chunk clones the fresh kernels.
    // A chunk that escalates to Metropolis falls back to the interpreted
    // eval_chunk (identical numbers either way).
    let compiled = if cfg.compile {
        crate::blocks::CompiledQuery::compile(&expr, &prep)
    } else {
        None
    };

    let chunk = cfg.chunk_samples.max(1);
    let budget = cfg.max_samples.max(1);
    let n_chunks = budget.div_ceil(chunk);
    let target = cfg.z_target();

    let mut merged = ChunkAccumulator::default();
    let mut next_chunk = 0usize;
    'waves: while next_chunk < n_chunks {
        let wave = WAVE_CHUNKS.min(n_chunks - next_chunk);
        let base = next_chunk;
        let stats = pool.run(cfg.threads, wave, |k| {
            let ci = base + k;
            let len = chunk.min(budget - ci * chunk);
            compiled
                .as_ref()
                .and_then(|cq| eval_chunk_compiled(cq, cfg, site, ci as u64, len))
                .unwrap_or_else(|| eval_chunk(&expr, &prep, cfg, site, ci as u64, len))
        });
        for st in &stats {
            merged.merge(st);
            if st.sampling_error.is_some() || st.eval_error.is_some() {
                break 'waves;
            }
            // Stopping rule: z·SE ≤ δ·|mean| once past the floor.
            if merged.n >= cfg.min_samples
                && target * merged.std_error() <= cfg.delta * merged.mean().abs()
            {
                break 'waves;
            }
        }
        next_chunk += wave;
    }

    // Expression-evaluation failure is fatal, exactly as in the serial
    // averaging loop; sampler exhaustion is not (the partial estimate —
    // or NaN below — stands, per Algorithm 4.3 line 25).
    if let Some(e) = merged.eval_error {
        return Err(e);
    }

    if merged.n == 0 {
        // Not one satisfying sample: numerically unsatisfiable context
        // (Algorithm 4.3 line 25), as in the serial operator.
        return Ok(ExpectationResult::nan(want_probability));
    }

    let probability = if want_probability {
        fresh_condition_probability(&prep, cfg, site)?
    } else {
        f64::NAN
    };

    Ok(ExpectationResult {
        expectation: merged.mean(),
        probability,
        n_samples: merged.n,
        std_error: merged.std_error(),
        used_metropolis: merged.used_metropolis,
    })
}

// ---------------------------------------------------------------------
// Row-parallel aggregate operators.
// ---------------------------------------------------------------------

/// Parallel `expected_sum`: per-row expectations fan out onto the pool
/// (each row already owns the stream `(world_seed, row index)`), partial
/// results fold in row order — bit-identical to the serial operator.
pub fn expected_sum_parallel(
    table: &CTable,
    col: &str,
    cfg: &SamplerConfig,
    pool: &ParallelSampler,
) -> Result<AggregateResult> {
    let idx = table.schema().index_of(col)?;
    let row_cfg = cfg.scaled_for_rows(table.len());
    let rows = table.rows();
    let per_row = pool.run(cfg.threads, rows.len(), |i| {
        expectation(
            &rows[i].cells[idx],
            &rows[i].condition,
            true,
            &row_cfg,
            i as u64,
        )
    });
    let mut total = 0.0;
    let mut n_samples = 0;
    for r in per_row {
        let r = r?;
        n_samples += r.n_samples;
        if r.expectation.is_nan() {
            continue; // unsatisfiable row: present in no world
        }
        total += r.expectation * r.probability;
    }
    Ok(AggregateResult {
        value: total,
        n_samples,
    })
}

/// Parallel `expected_count`: per-row `conf` fan-out, folded in order.
pub fn expected_count_parallel(
    table: &CTable,
    cfg: &SamplerConfig,
    pool: &ParallelSampler,
) -> Result<AggregateResult> {
    let rows = table.rows();
    let per_row = pool.run(cfg.threads, rows.len(), |i| {
        conf(&rows[i].condition, cfg, i as u64)
    });
    let mut total = 0.0;
    for p in per_row {
        total += p?;
    }
    Ok(AggregateResult {
        value: total,
        n_samples: 0,
    })
}

/// Parallel `expected_avg`: the same ratio estimator as the serial
/// operator, both legs row-parallel.
pub fn expected_avg_parallel(
    table: &CTable,
    col: &str,
    cfg: &SamplerConfig,
    pool: &ParallelSampler,
) -> Result<AggregateResult> {
    let s = expected_sum_parallel(table, col, cfg, pool)?;
    let c = expected_count_parallel(table, cfg, pool)?;
    let value = if c.value == 0.0 {
        f64::NAN
    } else {
        s.value / c.value
    };
    Ok(AggregateResult {
        value,
        n_samples: s.n_samples,
    })
}

/// Rows whose confidences are evaluated per scheduling wave of the
/// parallel `expected_max` scan. Constant, like [`WAVE_CHUNKS`]: the
/// set of rows whose `conf` runs must not depend on the thread count.
const MAX_SCAN_WAVE: usize = 16;

/// Parallel `expected_max` (constant cells): the sorted scan of
/// Example 4.4, with row confidences computed a fixed-size wave at a
/// time on the pool. The scan consumes confidences strictly in sorted
/// order and stops at the serial operator's early-exit bound, so both
/// the value and the error behaviour match the serial operator —
/// `conf` failures in a wave's unconsumed speculative tail are
/// discarded, exactly as if they had never been computed.
pub fn expected_max_const_parallel(
    table: &CTable,
    col: &str,
    cfg: &SamplerConfig,
    precision: f64,
    pool: &ParallelSampler,
) -> Result<AggregateResult> {
    let idx = table.schema().index_of(col)?;
    let mut rows: Vec<(f64, usize)> = Vec::with_capacity(table.len());
    for (i, row) in table.rows().iter().enumerate() {
        let v = row.cells[idx]
            .as_const()
            .ok_or_else(|| {
                PipError::Unsupported(format!(
                    "expected_max_const requires constant '{col}' cells; use expected_max_sampled"
                ))
            })?
            .as_f64()?;
        rows.push((v, i));
    }
    rows.sort_by(|a, b| b.0.total_cmp(&a.0));

    let trows = table.rows();
    let mut acc = 0.0;
    let mut carry = 1.0; // Π (1 − p_j) over rows scanned so far
    let mut next = 0usize;
    'scan: while next < rows.len() {
        let wave = &rows[next..(next + MAX_SCAN_WAVE).min(rows.len())];
        let confs = pool.run(cfg.threads, wave.len(), |k| {
            let (_, i) = wave[k];
            conf(&trows[i].condition, cfg, i as u64)
        });
        for (&(v, _), p) in wave.iter().zip(confs) {
            if v.abs() * carry <= precision {
                break 'scan;
            }
            let p = p?;
            acc += v * p * carry;
            carry *= 1.0 - p;
            if carry <= 0.0 {
                break 'scan;
            }
        }
        next += wave.len();
    }
    Ok(AggregateResult {
        value: acc,
        n_samples: 0,
    })
}

/// Parallel row-level confidence column (the `Plan::Conf` head): one
/// `conf` per row, site = row index, results in row order.
pub fn conf_rows_parallel(
    table: &CTable,
    cfg: &SamplerConfig,
    pool: &ParallelSampler,
) -> Result<Vec<f64>> {
    let rows = table.rows();
    pool.run(cfg.threads, rows.len(), |i| {
        conf(&rows[i].condition, cfg, i as u64)
    })
    .into_iter()
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pip_core::{DataType, Schema};
    use pip_ctable::CRow;
    use pip_dist::prelude::builtin;
    use pip_dist::special;
    use pip_expr::{atoms, RandomVar};

    fn normal(mu: f64, sigma: f64) -> RandomVar {
        RandomVar::create(builtin::normal(), &[mu, sigma]).unwrap()
    }

    #[test]
    fn pool_preserves_index_order() {
        let pool = ParallelSampler::new(4);
        let out = pool.run(4, 100, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn pool_inline_when_serial() {
        let pool = ParallelSampler::new(1);
        assert_eq!(pool.worker_count(), 0);
        assert_eq!(pool.run(1, 5, |i| i + 1), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn pool_supports_nested_submission() {
        let pool = ParallelSampler::new(4);
        let out = pool.run(4, 8, |i| pool.run(4, 4, move |j| i * 10 + j));
        for (i, inner) in out.iter().enumerate() {
            assert_eq!(inner, &vec![i * 10, i * 10 + 1, i * 10 + 2, i * 10 + 3]);
        }
    }

    #[test]
    #[should_panic(expected = "work item panicked")]
    fn pool_propagates_panics() {
        let pool = ParallelSampler::new(4);
        pool.run(4, 16, |i| {
            if i == 7 {
                panic!("boom at {i}");
            }
            i
        });
    }

    #[test]
    fn chunked_expectation_bit_stable_across_thread_counts() {
        let y = normal(0.0, 1.0);
        let cond = Conjunction::single(atoms::gt(Equation::from(y.clone()), 0.5));
        let expr = Equation::from(y);
        let baseline = {
            let cfg = SamplerConfig::fixed_samples(2000).with_threads(1);
            expectation_chunked(&expr, &cond, true, &cfg, 3, &ParallelSampler::new(1)).unwrap()
        };
        for threads in [2usize, 4, 8] {
            let cfg = SamplerConfig::fixed_samples(2000).with_threads(threads);
            let pool = ParallelSampler::new(threads);
            let r = expectation_chunked(&expr, &cond, true, &cfg, 3, &pool).unwrap();
            assert_eq!(r, baseline, "threads={threads} diverged");
        }
    }

    #[test]
    fn chunked_matches_truth() {
        // E[Y | Y > 1] = φ(1)/(1−Φ(1)) ≈ 1.5251 for Y ~ N(0,1).
        let y = normal(0.0, 1.0);
        let cond = Conjunction::single(atoms::gt(Equation::from(y.clone()), 1.0));
        let cfg = SamplerConfig::fixed_samples(4000).with_threads(4);
        let pool = ParallelSampler::new(4);
        let r = expectation_chunked(&Equation::from(y), &cond, true, &cfg, 0, &pool).unwrap();
        assert!((r.expectation - 1.5251).abs() < 0.1, "{}", r.expectation);
        let p_truth = 1.0 - special::normal_cdf(1.0);
        assert!((r.probability - p_truth).abs() < 1e-9, "{}", r.probability);
        assert!(r.n_samples > 0);
    }

    #[test]
    fn chunked_keeps_exact_paths() {
        // Linear fast path: no sampling, exact mean — same as serial.
        let y = normal(5.0, 2.0);
        let cfg = SamplerConfig::default().with_threads(4);
        let pool = ParallelSampler::new(4);
        let r = expectation_chunked(
            &Equation::from(y),
            &Conjunction::top(),
            true,
            &cfg,
            0,
            &pool,
        )
        .unwrap();
        assert_eq!(r.expectation, 5.0);
        assert_eq!(r.n_samples, 0);
        assert_eq!(r.probability, 1.0);
    }

    #[test]
    fn chunked_adaptive_stop_fires() {
        let u = RandomVar::create(builtin::uniform(), &[0.999, 1.001]).unwrap();
        let cfg = SamplerConfig {
            min_samples: 16,
            max_samples: 100_000,
            ..Default::default()
        }
        .with_threads(4);
        let pool = ParallelSampler::new(4);
        let r = expectation_chunked(
            &Equation::from(u),
            &Conjunction::top(),
            false,
            &cfg,
            5,
            &pool,
        )
        .unwrap();
        assert!(r.n_samples < 5000, "stopped after {} samples", r.n_samples);
        assert!((r.expectation - 1.0).abs() < 1e-3);
    }

    #[test]
    fn chunked_inconsistent_is_nan() {
        let y = normal(0.0, 1.0);
        let dead = Conjunction::of(vec![
            atoms::gt(Equation::from(y.clone()), 5.0),
            atoms::lt(Equation::from(y.clone()), 3.0),
        ]);
        let cfg = SamplerConfig::default().with_threads(2);
        let pool = ParallelSampler::new(2);
        let r = expectation_chunked(&Equation::from(y), &dead, true, &cfg, 0, &pool).unwrap();
        assert!(r.expectation.is_nan());
        assert_eq!(r.probability, 0.0);
    }

    fn sum_table(n: usize) -> CTable {
        let schema = Schema::of(&[("v", DataType::Symbolic)]);
        let mut t = CTable::empty(schema);
        for i in 0..n {
            let y = normal(i as f64, 1.0 + (i % 3) as f64);
            let gate = normal(0.0, 1.0);
            t.push(CRow::new(
                vec![Equation::from(y)],
                Conjunction::single(atoms::gt(Equation::from(gate), -0.5)),
            ))
            .unwrap();
        }
        t
    }

    #[test]
    fn row_parallel_aggregates_match_serial_bitwise() {
        use crate::aggregate::{expected_avg, expected_count, expected_sum};
        let t = sum_table(23);
        let serial_cfg = SamplerConfig::fixed_samples(200);
        let par_cfg = serial_cfg.clone().with_threads(4);
        let pool = ParallelSampler::new(4);

        let s0 = expected_sum(&t, "v", &serial_cfg).unwrap();
        let s4 = expected_sum_parallel(&t, "v", &par_cfg, &pool).unwrap();
        assert_eq!(s0, s4);

        let c0 = expected_count(&t, &serial_cfg).unwrap();
        let c4 = expected_count_parallel(&t, &par_cfg, &pool).unwrap();
        assert_eq!(c0, c4);

        let a0 = expected_avg(&t, "v", &serial_cfg).unwrap();
        let a4 = expected_avg_parallel(&t, "v", &par_cfg, &pool).unwrap();
        assert_eq!(a0, a4);
    }

    #[test]
    fn max_parallel_matches_serial_bitwise() {
        use crate::aggregate::expected_max_const;
        let schema = Schema::of(&[("v", DataType::Symbolic)]);
        let mut t = CTable::empty(schema);
        for i in 0..12 {
            let y = normal(0.0, 1.0);
            let z = special::inverse_normal_cdf(1.0 - 0.8 / (1.0 + i as f64 * 0.3));
            t.push(CRow::new(
                vec![Equation::val((12 - i) as f64)],
                Conjunction::single(atoms::gt(Equation::from(y), z)),
            ))
            .unwrap();
        }
        let cfg = SamplerConfig::default();
        let pool = ParallelSampler::new(4);
        for precision in [0.0, 0.1] {
            let serial = expected_max_const(&t, "v", &cfg, precision).unwrap();
            let par = expected_max_const_parallel(
                &t,
                "v",
                &cfg.clone().with_threads(4),
                precision,
                &pool,
            )
            .unwrap();
            assert_eq!(serial, par, "precision {precision}");
        }
    }

    #[test]
    fn conf_rows_match_serial() {
        let t = sum_table(9);
        let cfg = SamplerConfig::default().with_threads(3);
        let pool = ParallelSampler::new(3);
        let par = conf_rows_parallel(&t, &cfg, &pool).unwrap();
        for (i, row) in t.rows().iter().enumerate() {
            assert_eq!(par[i], conf(&row.condition, &cfg, i as u64).unwrap());
        }
    }
}
