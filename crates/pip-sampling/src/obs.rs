//! Sampling-layer metric handles.
//!
//! The structures instrumented here (the sample-block cache, the kernel
//! compiler) are process-wide singletons, so their counters live in the
//! process-global [`pip_obs::Registry::global`] rather than a per-database
//! registry. The server merges both registries into one scrape body.

use pip_obs::{Counter, Registry};
use std::sync::{Arc, OnceLock};

#[derive(Debug)]
pub struct SamplingMetrics {
    /// Successful query-kernel compilations (tape + group kernels).
    pub kernel_compiles_total: Arc<Counter>,
    /// Sample-block cache hits (block or probe entries).
    pub block_cache_hits_total: Arc<Counter>,
    /// Sample-block cache misses.
    pub block_cache_misses_total: Arc<Counter>,
    /// Rejection-sampling groups that escalated to Metropolis-Hastings.
    pub metropolis_escalations_total: Arc<Counter>,
}

/// The sampling layer's metric handles (registered once, on first use).
pub fn metrics() -> &'static SamplingMetrics {
    static METRICS: OnceLock<SamplingMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = Registry::global();
        r.gauge_fn(
            "pip_sampling_block_cache_resident",
            "Resident payload of the process-wide sample-block cache (f64-equivalents).",
            || crate::blocks::block_cache_stats().resident as f64,
        );
        r.gauge_fn(
            "pip_sampling_block_cache_entries",
            "Entries in the process-wide sample-block cache.",
            || crate::blocks::block_cache_stats().entries as f64,
        );
        SamplingMetrics {
            kernel_compiles_total: r.counter(
                "pip_sampling_kernel_compiles_total",
                "Successful sampling-kernel compilations.",
            ),
            block_cache_hits_total: r.counter(
                "pip_sampling_block_cache_hits_total",
                "Sample-block cache hits.",
            ),
            block_cache_misses_total: r.counter(
                "pip_sampling_block_cache_misses_total",
                "Sample-block cache misses.",
            ),
            metropolis_escalations_total: r.counter(
                "pip_sampling_metropolis_escalations_total",
                "Rejection-sampling groups escalated to Metropolis-Hastings.",
            ),
        }
    })
}
