//! Columnar sample blocks, the sample-block cache, and the compiled
//! execution drivers built on [`crate::tape`].
//!
//! A [`SampleBlock`] is an `n_slots × n_samples` structure-of-arrays
//! matrix of accepted joint samples, filled **sample-major** (so the RNG
//! consumption order is exactly the interpreted loop's) but stored
//! **column-major** (so the tape evaluator streams each slot
//! contiguously). Filling stops early on a sampling error — mirroring
//! the interpreted averaging loop — and bails entirely when a kernel
//! hits the Metropolis escalation trigger, in which case the caller
//! reruns the interpreted [`crate::strategy::GroupSampler`] path.
//!
//! The **block cache** memoizes two deterministic draw sequences:
//!
//! * whole blocks, keyed by `(kernel signatures incl. counters, RNG
//!   state, requested length, sampling knobs)` — reused when the same
//!   `(group, seed-site, chunk)` is sampled again (repeated prepared
//!   statements, `expected_sum` + `expected_avg` over the same rows,
//!   re-executed chunks);
//! * probe runs (fixed-budget acceptance estimation for `conf()` /
//!   `P[condition]`), keyed the same way, storing just the counters and
//!   the RNG end state so a hit fast-forwards the generator without
//!   drawing.
//!
//! Both payloads are pure memoization of deterministic functions, so the
//! cache can never change a result — only skip recomputing it. That
//! invariant is what `tests/compiled_equivalence.rs` locks down.

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex, OnceLock};

use pip_core::PipError;
use pip_dist::PipRng;
use pip_expr::{Equation, SlotMap};

use crate::config::SamplerConfig;
use crate::expectation::Prepared;
use crate::tape::{div_by_zero, GroupKernel, KernelStep, Tape};

/// Samples per block in the compiled serial averaging loop. A constant:
/// block boundaries only batch work, they never influence values (the
/// stopping rule is still applied per sample, and overdrawn samples are
/// discarded unconsumed).
pub(crate) const SERIAL_BLOCK: usize = 256;

/// Upper bound on cached sample payload, in `f64`s (~16 MiB).
const CACHE_CAPACITY_F64: usize = 2 << 20;

/// One filled columnar block of accepted samples.
#[derive(Debug)]
pub struct SampleBlock {
    /// Samples requested (the column stride of `data`).
    pub requested: usize,
    /// Samples actually filled (`< requested` only on a sampling error).
    pub filled: usize,
    /// Column-major payload: slot `k`'s samples at
    /// `data[k * requested .. k * requested + filled]`.
    pub data: Vec<f64>,
    /// Sampler failure that stopped the fill (rejection cap, or an atom
    /// evaluation error — both non-fatal, exactly as in the interpreted
    /// averaging loop).
    pub sampling_error: Option<PipError>,
    /// Per-kernel `(attempts, accepts)` after the fill, in kernel order.
    pub counters_after: Vec<(u64, u64)>,
    /// Generator state after the fill (restored on a cache hit).
    pub rng_end: [u64; 4],
}

// ---------------------------------------------------------------------
// The cache.
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CacheKey {
    /// 0 = block, 1 = probe.
    kind: u8,
    /// Structural signature: kernels (slots, params, strategies, atom
    /// tapes, starting counters) plus the sampling knobs that steer the
    /// rejection loop. Exact contents — no lossy hashing decides a hit.
    sig: Vec<u64>,
    /// Distribution class names, compared verbatim.
    names: Vec<&'static str>,
    /// Full RNG state at the start of the draw sequence.
    rng_state: [u64; 4],
    /// Requested samples (block) or candidate budget (probe).
    len: u64,
}

#[derive(Debug, Clone)]
enum CacheEntry {
    Block(Arc<SampleBlock>),
    Probe {
        counters_after: Vec<(u64, u64)>,
        rng_end: [u64; 4],
    },
}

impl CacheEntry {
    fn cost(&self) -> usize {
        match self {
            CacheEntry::Block(b) => b.data.len().max(1),
            CacheEntry::Probe { .. } => 8,
        }
    }
}

#[derive(Debug, Default)]
struct BlockCache {
    map: HashMap<Arc<CacheKey>, CacheEntry>,
    order: VecDeque<Arc<CacheKey>>,
    resident: usize,
    hits: u64,
    misses: u64,
}

impl BlockCache {
    fn get(&mut self, key: &CacheKey) -> Option<CacheEntry> {
        match self.map.get(key) {
            Some(e) => {
                self.hits += 1;
                crate::obs::metrics().block_cache_hits_total.inc();
                Some(e.clone())
            }
            None => {
                self.misses += 1;
                crate::obs::metrics().block_cache_misses_total.inc();
                None
            }
        }
    }

    fn insert(&mut self, key: CacheKey, entry: CacheEntry) {
        let key = Arc::new(key);
        self.resident += entry.cost();
        match self.map.insert(Arc::clone(&key), entry) {
            // Same-key re-insert (e.g. two threads raced on the same
            // miss): the replaced entry's cost leaves the accounting.
            Some(replaced) => self.resident -= replaced.cost(),
            None => self.order.push_back(key),
        }
        while self.resident > CACHE_CAPACITY_F64 {
            let Some(old) = self.order.pop_front() else {
                break;
            };
            if let Some(e) = self.map.remove(&old) {
                self.resident -= e.cost();
            }
        }
    }
}

fn cache() -> &'static Mutex<BlockCache> {
    static CACHE: OnceLock<Mutex<BlockCache>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(BlockCache::default()))
}

/// Counters of the process-wide sample-block cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BlockCacheStats {
    pub hits: u64,
    pub misses: u64,
    pub entries: usize,
    /// Resident payload in `f64`-equivalents.
    pub resident: usize,
}

/// Read the cache counters (benchmarks and tests).
pub fn block_cache_stats() -> BlockCacheStats {
    let c = cache().lock().unwrap_or_else(|e| e.into_inner());
    BlockCacheStats {
        hits: c.hits,
        misses: c.misses,
        entries: c.map.len(),
        resident: c.resident,
    }
}

/// Drop every cached block and reset the counters.
pub fn block_cache_clear() {
    let mut c = cache().lock().unwrap_or_else(|e| e.into_inner());
    *c = BlockCache::default();
}

/// The sampling knobs that steer the rejection loop and therefore
/// belong in every cache key.
fn config_signature(cfg: &SamplerConfig, sig: &mut Vec<u64>) {
    sig.push(cfg.use_metropolis as u64);
    sig.push(cfg.metropolis_threshold.to_bits());
}

fn kernels_key(
    kind: u8,
    kernels: &[GroupKernel],
    cfg: &SamplerConfig,
    rng: &PipRng,
    len: usize,
) -> CacheKey {
    let mut sig = Vec::with_capacity(16 * kernels.len() + 4);
    let mut names = Vec::new();
    config_signature(cfg, &mut sig);
    sig.push(kernels.len() as u64);
    for k in kernels {
        k.signature(&mut sig, &mut names);
    }
    CacheKey {
        kind,
        sig,
        names,
        rng_state: rng.state(),
        len: len as u64,
    }
}

// ---------------------------------------------------------------------
// Block filling.
// ---------------------------------------------------------------------

/// Fill one block: draw `requested` joint samples through the kernels in
/// order, sample-major (the interpreted draw order), storing accepted
/// values column-major. Returns `None` when a kernel hits the Metropolis
/// escalation trigger — the caller must rerun the interpreted path.
fn fill_block(
    kernels: &mut [GroupKernel],
    rng: &mut PipRng,
    cfg: &SamplerConfig,
    n_slots: usize,
    requested: usize,
) -> Option<SampleBlock> {
    let mut data = vec![0.0; n_slots * requested];
    let mut slots = vec![0.0; n_slots];
    let mut regs = Vec::new();
    let mut filled = 0usize;
    let mut sampling_error = None;
    'samples: for s in 0..requested {
        for k in kernels.iter_mut() {
            match k.sample_into_slots(rng, cfg, &mut slots, &mut regs) {
                Ok(KernelStep::Sampled) => {}
                Ok(KernelStep::Escalate) => return None,
                Err(e) => {
                    sampling_error = Some(e);
                    break 'samples;
                }
            }
        }
        for (col, &v) in data.chunks_exact_mut(requested).zip(slots.iter()) {
            col[s] = v;
        }
        filled += 1;
    }
    Some(SampleBlock {
        requested,
        filled,
        data,
        sampling_error,
        counters_after: kernels.iter().map(|k| (k.attempts, k.accepts)).collect(),
        rng_end: rng.state(),
    })
}

/// [`fill_block`] through the cache: a hit skips the draws entirely
/// (counters and RNG state are restored from the stored block), a miss
/// fills and publishes. Pure memoization — hit or miss, the caller
/// observes identical kernels, RNG state, and samples.
pub(crate) fn fill_block_cached(
    kernels: &mut [GroupKernel],
    rng: &mut PipRng,
    cfg: &SamplerConfig,
    n_slots: usize,
    requested: usize,
    reuse: bool,
) -> Option<Arc<SampleBlock>> {
    if !reuse {
        return fill_block(kernels, rng, cfg, n_slots, requested).map(Arc::new);
    }
    let key = kernels_key(0, kernels, cfg, rng, requested);
    let hit = cache().lock().unwrap_or_else(|e| e.into_inner()).get(&key);
    if let Some(CacheEntry::Block(block)) = hit {
        for (k, &(attempts, accepts)) in kernels.iter_mut().zip(&block.counters_after) {
            k.attempts = attempts;
            k.accepts = accepts;
        }
        rng.set_state(block.rng_end);
        return Some(block);
    }
    let block = Arc::new(fill_block(kernels, rng, cfg, n_slots, requested)?);
    cache()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .insert(key, CacheEntry::Block(Arc::clone(&block)));
    Some(block)
}

/// Fixed-budget acceptance probe through the cache — the compiled,
/// memoized form of [`crate::strategy::GroupSampler::estimate_probability`].
pub(crate) fn probe_estimate_cached(
    kernel: &mut GroupKernel,
    rng: &mut PipRng,
    budget: u64,
    n_slots: usize,
    cfg: &SamplerConfig,
    reuse: bool,
) -> pip_core::Result<f64> {
    let mut slots = vec![0.0; n_slots];
    let mut regs = Vec::new();
    if !reuse {
        return kernel.estimate_probability(rng, budget, &mut slots, &mut regs);
    }
    let key = kernels_key(1, std::slice::from_ref(kernel), cfg, rng, budget as usize);
    let hit = cache().lock().unwrap_or_else(|e| e.into_inner()).get(&key);
    if let Some(CacheEntry::Probe {
        counters_after,
        rng_end,
    }) = hit
    {
        kernel.attempts = counters_after[0].0;
        kernel.accepts = counters_after[0].1;
        rng.set_state(rng_end);
        return Ok(kernel.probability_estimate());
    }
    let p = kernel.estimate_probability(rng, budget, &mut slots, &mut regs)?;
    cache().lock().unwrap_or_else(|e| e.into_inner()).insert(
        key,
        CacheEntry::Probe {
            counters_after: vec![(kernel.attempts, kernel.accepts)],
            rng_end: rng.state(),
        },
    );
    Ok(p)
}

// ---------------------------------------------------------------------
// The compiled query and its averaging-loop drivers.
// ---------------------------------------------------------------------

/// Everything [`crate::expectation::expectation`] and the chunked
/// executor need to run Algorithm 4.3's averaging loop compiled: the
/// slot layout, the target-expression tape, and one kernel per relevant
/// group (in `prep.relevant` order).
#[derive(Debug, Clone)]
pub(crate) struct CompiledQuery {
    pub(crate) slots: SlotMap,
    pub(crate) expr: Tape,
    /// Kernels for the relevant groups, aligned with `prep.relevant`.
    pub(crate) kernels: Vec<GroupKernel>,
}

impl CompiledQuery {
    /// Compile `expr` against a prepared operator. `None` when any
    /// relevant group or the expression itself is out of the compiler's
    /// reach — the caller stays on the interpreted path.
    pub(crate) fn compile(expr: &Equation, prep: &Prepared) -> Option<CompiledQuery> {
        let mut slots = SlotMap::new();
        for s in &prep.samplers {
            slots.intern_all(&s.group.vars);
        }
        let kernels = prep
            .relevant
            .iter()
            .map(|&i| GroupKernel::compile(&prep.samplers[i], &slots))
            .collect::<Option<Vec<_>>>()?;
        let expr = Tape::compile(expr, &slots)?;
        crate::obs::metrics().kernel_compiles_total.inc();
        Some(CompiledQuery {
            slots,
            expr,
            kernels,
        })
    }
}

/// Monte-Carlo sums of one compiled averaging loop.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct LoopStats {
    pub(crate) n: usize,
    pub(crate) sum: f64,
    pub(crate) sum_sq: f64,
}

impl LoopStats {
    #[inline]
    fn push(&mut self, value: f64) {
        self.n += 1;
        self.sum += value;
        self.sum_sq += value * value;
    }

    /// The ε–δ stopping rule of Algorithm 4.3, applied after every
    /// sample exactly like the interpreted loop.
    #[inline]
    fn should_stop(&self, cfg: &SamplerConfig, target: f64) -> bool {
        if self.n < cfg.min_samples {
            return false;
        }
        let mean = self.sum / self.n as f64;
        let var = (self.sum_sq / self.n as f64 - mean * mean).max(0.0);
        let se = (var / self.n as f64).sqrt();
        target * se <= cfg.delta * mean.abs()
    }
}

/// Compiled serial averaging loop, sample at a time — used when the
/// caller's RNG must end in exactly the interpreted state (a
/// Monte-Carlo probability pass follows). Returns `None` on escalation.
pub(crate) fn serial_per_sample(
    cq: &mut CompiledQuery,
    cfg: &SamplerConfig,
    rng: &mut PipRng,
) -> pip_core::Result<Option<LoopStats>> {
    let target = cfg.z_target();
    let mut slots = vec![0.0; cq.slots.len()];
    let mut regs = Vec::new();
    let mut stats = LoopStats::default();
    'sampling: while stats.n < cfg.max_samples {
        for k in cq.kernels.iter_mut() {
            match k.sample_into_slots(rng, cfg, &mut slots, &mut regs) {
                Ok(KernelStep::Sampled) => {}
                Ok(KernelStep::Escalate) => return Ok(None),
                // Sampling failure: the partial estimate stands
                // (Algorithm 4.3 line 25), exactly as interpreted.
                Err(_) => break 'sampling,
            }
        }
        let value = cq.expr.eval(&slots, &mut regs)?;
        stats.push(value);
        if stats.should_stop(cfg, target) {
            break;
        }
    }
    Ok(Some(stats))
}

/// Compiled serial averaging loop over cached columnar blocks — used
/// when nothing after the loop reads the RNG (overdrawing a block past
/// the adaptive stopping point is then harmless). Returns `None` on
/// escalation.
pub(crate) fn serial_blocked(
    cq: &mut CompiledQuery,
    cfg: &SamplerConfig,
    rng: &mut PipRng,
    reuse: bool,
) -> pip_core::Result<Option<LoopStats>> {
    let target = cfg.z_target();
    let n_slots = cq.slots.len();
    let mut regs = Vec::new();
    let mut values = Vec::new();
    let mut stats = LoopStats::default();
    'blocks: while stats.n < cfg.max_samples {
        let want = SERIAL_BLOCK.min(cfg.max_samples - stats.n);
        let Some(block) = fill_block_cached(&mut cq.kernels, rng, cfg, n_slots, want, reuse) else {
            return Ok(None);
        };
        let first_err = cq.expr.eval_block(
            &block.data,
            block.requested,
            block.filled,
            &mut regs,
            &mut values,
        );
        for (s, &value) in values.iter().enumerate().take(block.filled) {
            if first_err == Some(s) {
                // The interpreted loop would have hit this evaluation
                // error at exactly this sample: fatal.
                return Err(div_by_zero());
            }
            stats.push(value);
            if stats.should_stop(cfg, target) {
                break 'blocks;
            }
        }
        if block.sampling_error.is_some() || block.filled < want {
            break;
        }
    }
    Ok(Some(stats))
}

/// Compiled driver for [`crate::expectation_samples`]: exactly `n`
/// conditional samples of the target expression, drawn through the
/// kernels over cached columnar blocks. Mirrors the interpreted loop's
/// error discipline — a sampling failure or an evaluation error at
/// sample `k` surfaces as the same `Err` the interpreted loop raises at
/// `k` — and returns `None` on a Metropolis escalation (the caller
/// reruns interpreted from the untouched RNG).
pub(crate) fn serial_samples(
    cq: &mut CompiledQuery,
    n: usize,
    cfg: &SamplerConfig,
    rng: &mut PipRng,
    reuse: bool,
) -> pip_core::Result<Option<Vec<f64>>> {
    let n_slots = cq.slots.len();
    let mut regs = Vec::new();
    let mut values = Vec::new();
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        // Exactly the remaining count is requested, never more: the
        // RNG must end where the interpreted loop's would.
        let want = SERIAL_BLOCK.min(n - out.len());
        let Some(block) = fill_block_cached(&mut cq.kernels, rng, cfg, n_slots, want, reuse) else {
            return Ok(None);
        };
        let first_err = cq.expr.eval_block(
            &block.data,
            block.requested,
            block.filled,
            &mut regs,
            &mut values,
        );
        for (s, &value) in values.iter().enumerate().take(block.filled) {
            if first_err == Some(s) {
                return Err(div_by_zero());
            }
            out.push(value);
        }
        if block.filled < want {
            // The fill only stops short on a sampling failure, which
            // the interpreted loop propagates at this exact sample.
            return Err(block
                .sampling_error
                .clone()
                .unwrap_or_else(|| pip_core::PipError::sampling("sample block underfilled")));
        }
    }
    Ok(Some(out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::GroupSampler;
    use pip_dist::prelude::builtin;
    use pip_dist::rng_from_seed;
    use pip_expr::{atoms, Conjunction, RandomVar};

    fn kernel_for(cond: &Conjunction, cfg: &SamplerConfig) -> (GroupKernel, SlotMap) {
        let bounds = pip_ctable::consistency_check(cond).bounds();
        let group = pip_expr::independent_groups(cond, &[])
            .into_iter()
            .next()
            .unwrap();
        let mut slots = SlotMap::new();
        slots.intern_all(&group.vars);
        let sampler = GroupSampler::new(group, &bounds, cfg);
        (GroupKernel::compile(&sampler, &slots).unwrap(), slots)
    }

    #[test]
    fn cached_block_restores_counters_and_rng() {
        block_cache_clear();
        let y = RandomVar::create(builtin::normal(), &[0.0, 1.0]).unwrap();
        let cond = Conjunction::single(atoms::gt(Equation::from(y.clone()), 0.2));
        let cfg = SamplerConfig::default();
        let (kernel, slots) = kernel_for(&cond, &cfg);

        let mut k1 = kernel.clone();
        let mut rng1 = rng_from_seed(77);
        let b1 = fill_block_cached(
            std::slice::from_mut(&mut k1),
            &mut rng1,
            &cfg,
            slots.len(),
            64,
            true,
        )
        .unwrap();

        let mut k2 = kernel.clone();
        let mut rng2 = rng_from_seed(77);
        let b2 = fill_block_cached(
            std::slice::from_mut(&mut k2),
            &mut rng2,
            &cfg,
            slots.len(),
            64,
            true,
        )
        .unwrap();

        assert!(Arc::ptr_eq(&b1, &b2), "second fill must be a cache hit");
        assert_eq!((k1.attempts, k1.accepts), (k2.attempts, k2.accepts));
        assert_eq!(rng1.state(), rng2.state());
        let stats = block_cache_stats();
        assert!(stats.hits >= 1 && stats.misses >= 1, "{stats:?}");
    }

    #[test]
    fn cache_off_is_bit_identical_to_cache_on() {
        block_cache_clear();
        let y = RandomVar::create(builtin::normal(), &[1.0, 2.0]).unwrap();
        let cond = Conjunction::single(atoms::lt(Equation::from(y.clone()), 2.5));
        let cfg = SamplerConfig::default();
        let (kernel, slots) = kernel_for(&cond, &cfg);
        for reuse in [true, true, false] {
            let mut k = kernel.clone();
            let mut rng = rng_from_seed(3);
            let b = fill_block_cached(
                std::slice::from_mut(&mut k),
                &mut rng,
                &cfg,
                slots.len(),
                32,
                reuse,
            )
            .unwrap();
            let mut k2 = kernel.clone();
            let mut rng2 = rng_from_seed(3);
            let b2 = fill_block_cached(
                std::slice::from_mut(&mut k2),
                &mut rng2,
                &cfg,
                slots.len(),
                32,
                false,
            )
            .unwrap();
            assert_eq!(b.filled, b2.filled);
            assert_eq!(b.data, b2.data);
            assert_eq!(b.counters_after, b2.counters_after);
            assert_eq!(b.rng_end, b2.rng_end);
        }
    }

    #[test]
    fn probe_cache_round_trip() {
        block_cache_clear();
        let y = RandomVar::create(builtin::normal(), &[0.0, 1.0]).unwrap();
        let cond = Conjunction::single(atoms::gt(Equation::from(y.clone()), 1.0));
        let cfg = SamplerConfig::naive(50);
        let (kernel, slots) = kernel_for(&cond, &cfg);

        let mut k1 = kernel.clone();
        let mut rng1 = rng_from_seed(11);
        let p1 = probe_estimate_cached(&mut k1, &mut rng1, 2000, slots.len(), &cfg, true).unwrap();
        let mut k2 = kernel.clone();
        let mut rng2 = rng_from_seed(11);
        let p2 = probe_estimate_cached(&mut k2, &mut rng2, 2000, slots.len(), &cfg, true).unwrap();
        let mut k3 = kernel.clone();
        let mut rng3 = rng_from_seed(11);
        let p3 = probe_estimate_cached(&mut k3, &mut rng3, 2000, slots.len(), &cfg, false).unwrap();
        assert_eq!(p1.to_bits(), p2.to_bits());
        assert_eq!(p1.to_bits(), p3.to_bits());
        assert_eq!(rng1.state(), rng2.state());
        assert_eq!(rng1.state(), rng3.state());
        assert_eq!((k1.attempts, k1.accepts), (k3.attempts, k3.accepts));
    }

    #[test]
    fn different_counters_never_alias_in_the_cache() {
        block_cache_clear();
        let y = RandomVar::create(builtin::normal(), &[0.0, 1.0]).unwrap();
        let cond = Conjunction::single(atoms::gt(Equation::from(y.clone()), 0.0));
        let cfg = SamplerConfig::default();
        let (kernel, slots) = kernel_for(&cond, &cfg);
        // Warm the cache from a zero-counter kernel...
        let mut k1 = kernel.clone();
        let mut rng = rng_from_seed(5);
        fill_block_cached(
            std::slice::from_mut(&mut k1),
            &mut rng,
            &cfg,
            slots.len(),
            16,
            true,
        )
        .unwrap();
        // ...then fill from the advanced kernel at the same RNG state:
        // the starting counters differ, so this must be a miss, not a
        // stale hit.
        let before = block_cache_stats();
        let mut rng2 = rng_from_seed(5);
        fill_block_cached(
            std::slice::from_mut(&mut k1),
            &mut rng2,
            &cfg,
            slots.len(),
            16,
            true,
        )
        .unwrap();
        let after = block_cache_stats();
        assert_eq!(after.hits, before.hits, "stale hit on different counters");
        assert!(after.misses > before.misses);
    }
}
