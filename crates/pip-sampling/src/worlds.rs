//! Whole-table world sampling (per-table sampling semantics).
//!
//! Some aggregates (`max` over symbolic cells, histogram variants) need
//! worlds that are *consistent across rows* — one value per variable per
//! world, shared by every row that mentions it. This module draws such
//! worlds from the unconditioned joint distribution; row conditions are
//! then evaluated per world (`χ_φ`), which is exactly the naive per-world
//! fallback the paper describes for non-linear aggregates (Section IV-C).

use pip_core::Result;
use pip_dist::{mix64, rng_for};
use pip_expr::Assignment;

use pip_ctable::CTable;

use crate::config::SamplerConfig;

/// Sample `n` worlds covering every variable of `table`.
///
/// World `i` uses generator seeds derived from `(cfg.world_seed, i,
/// variable id)`, so a variable shared by many rows gets one consistent
/// value per world, and repeated runs are reproducible.
pub fn sample_worlds(table: &CTable, n: usize, cfg: &SamplerConfig) -> Result<Vec<Assignment>> {
    let vars = table.variables();
    let mut worlds = Vec::with_capacity(n);
    for i in 0..n {
        let world_seed = mix64(cfg.world_seed ^ (i as u64).wrapping_mul(0x9E37_79B9));
        let mut a = Assignment::new();
        for v in &vars {
            let mut rng = rng_for(world_seed, v.key.id.0, v.key.subscript);
            a.set(v.key, v.class.generate(&v.params, &mut rng));
        }
        worlds.push(a);
    }
    Ok(worlds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pip_core::{DataType, Schema};
    use pip_ctable::CRow;
    use pip_dist::prelude::builtin;
    use pip_expr::{atoms, Conjunction, Equation, RandomVar};

    #[test]
    fn worlds_cover_all_variables_consistently() {
        let y = RandomVar::create(builtin::normal(), &[0.0, 1.0]).unwrap();
        let z = RandomVar::create(builtin::uniform(), &[0.0, 1.0]).unwrap();
        let s = Schema::of(&[("a", DataType::Symbolic)]);
        let t = CTable::new(
            s,
            vec![
                // y appears in two rows — same value per world.
                CRow::unconditional(vec![Equation::from(y.clone())]),
                CRow::new(
                    vec![Equation::from(y.clone())],
                    Conjunction::single(atoms::gt(Equation::from(z.clone()), 0.5)),
                ),
            ],
        )
        .unwrap();
        let cfg = SamplerConfig::default();
        let worlds = sample_worlds(&t, 20, &cfg).unwrap();
        assert_eq!(worlds.len(), 20);
        for w in &worlds {
            assert!(w.get(y.key).is_some());
            assert!(w.get(z.key).is_some());
        }
        // Reproducible.
        let again = sample_worlds(&t, 20, &cfg).unwrap();
        for (a, b) in worlds.iter().zip(&again) {
            assert_eq!(a.get(y.key), b.get(y.key));
        }
        // Distinct worlds differ.
        assert_ne!(worlds[0].get(y.key), worlds[1].get(y.key));
    }
}
