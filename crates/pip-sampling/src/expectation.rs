//! The expectation operator — Algorithm 4.3 of the paper.
//!
//! Given an expression `E` and a context condition `C`, compute
//! `E[E | C]` (and optionally `P[C]`) with ε–δ precision:
//!
//! 1. run the consistency check; an inconsistent context yields
//!    `(NAN, 0)` immediately;
//! 2. partition `C` into minimal independent variable groups; only groups
//!    sharing variables with `E` need to be sampled inside the averaging
//!    loop;
//! 3. per group pick a strategy: CDF-bounded inverse transform when
//!    bounds + capabilities allow, else rejection, escalating to
//!    Metropolis past the rejection threshold;
//! 4. adaptively stop when the running confidence interval is within the
//!    relative precision goal;
//! 5. for `P[C]`, multiply the per-group acceptance estimates, finishing
//!    off expression-disjoint groups exactly via CDF where possible
//!    (lines 29–35).

use pip_core::Result;
use pip_dist::{mix64, rng_from_seed, PipRng};
use pip_expr::{independent_groups, Assignment, Conjunction, Equation};

use pip_ctable::{consistency_check, BoundsMap, Consistency};

use crate::config::SamplerConfig;
use crate::strategy::{exact_group_probability, GroupSampler};

/// Result of the expectation operator.
#[derive(Debug, Clone, PartialEq)]
pub struct ExpectationResult {
    /// `E[expr | condition]`; NAN when the condition is unsatisfiable.
    pub expectation: f64,
    /// `P[condition]` (1.0 for a trivially-true condition, 0 for an
    /// unsatisfiable one). Only computed when `want_probability` was
    /// requested — every path returns `f64::NAN` otherwise, so a caller
    /// that forgot to request it cannot mistake the placeholder for a
    /// real probability.
    pub probability: f64,
    /// Samples actually drawn by the averaging loop.
    pub n_samples: usize,
    /// Standard error of the expectation estimate (0 for exact paths).
    pub std_error: f64,
    /// True if any group fell back to Metropolis.
    pub used_metropolis: bool,
}

impl ExpectationResult {
    pub(crate) fn nan(want_probability: bool) -> Self {
        ExpectationResult {
            expectation: f64::NAN,
            probability: if want_probability { 0.0 } else { f64::NAN },
            n_samples: 0,
            std_error: 0.0,
            used_metropolis: false,
        }
    }
}

/// State shared by [`expectation`], the histogram variant, and the
/// chunked parallel executor in [`crate::parallel`].
pub(crate) struct Prepared {
    pub(crate) samplers: Vec<GroupSampler>,
    /// Indices of samplers relevant to the expression (must be sampled in
    /// the averaging loop).
    pub(crate) relevant: Vec<usize>,
    pub(crate) bounds: BoundsMap,
    pub(crate) condition: Conjunction,
}

impl Prepared {
    /// Fresh, state-free samplers over the same groups and bounds — the
    /// chunked executor gives every chunk its own sampler state so chunk
    /// results depend only on the chunk's RNG stream.
    pub(crate) fn fresh_samplers(&self, cfg: &SamplerConfig) -> Vec<GroupSampler> {
        self.samplers
            .iter()
            .map(|s| GroupSampler::new(s.group.clone(), &self.bounds, cfg))
            .collect()
    }
}

/// Consistency + grouping + strategy selection (lines 1–10).
pub(crate) fn prepare(
    expr: &Equation,
    condition: &Conjunction,
    cfg: &SamplerConfig,
) -> Option<Prepared> {
    let (condition, truth) = condition.simplify();
    if truth == pip_expr::Truth::False {
        return None;
    }
    let bounds = if cfg.use_consistency {
        match consistency_check(&condition) {
            Consistency::Inconsistent => return None,
            Consistency::Consistent { bounds, .. } => bounds,
        }
    } else {
        BoundsMap::new()
    };
    let expr_vars = expr.variables();
    let groups = if cfg.use_independence {
        independent_groups(&condition, &expr_vars)
    } else {
        // Ablation: one monolithic group holding everything.
        let mut gs = independent_groups(&Conjunction::top(), &[]);
        debug_assert!(gs.is_empty());
        let mut vars = condition.variables();
        for v in &expr_vars {
            if !vars.iter().any(|o| o.key == v.key) {
                vars.push(v.clone());
            }
        }
        if !vars.is_empty() || !condition.atoms().is_empty() {
            gs.push(pip_expr::VarGroup {
                atoms: condition.atoms().to_vec(),
                vars,
            });
        }
        gs
    };
    let expr_ids: Vec<_> = expr_vars.iter().map(|v| v.key.id).collect();
    let mut samplers = Vec::with_capacity(groups.len());
    let mut relevant = Vec::new();
    for (i, g) in groups.into_iter().enumerate() {
        if g.touches(&expr_ids) {
            relevant.push(i);
        }
        samplers.push(GroupSampler::new(g, &bounds, cfg));
    }
    Some(Prepared {
        samplers,
        relevant,
        bounds,
        condition,
    })
}

/// Deterministic per-call RNG: callers at different sites pass distinct
/// `site` values so results don't correlate across rows.
fn rng_for_site(cfg: &SamplerConfig, site: u64) -> PipRng {
    rng_from_seed(mix64(cfg.world_seed ^ site))
}

/// Exact shortcut (linearity of expectation): an unconstrained affine
/// expression `c + Σ aᵢXᵢ` has expectation `c + Σ aᵢ·E[Xᵢ]` whenever
/// every class exposes its mean — no sampling at all. Shared with the
/// chunked parallel executor, which must take the same fast path to stay
/// bit-identical with the serial operator.
pub(crate) fn linear_exact(expr: &Equation, prep: &Prepared, cfg: &SamplerConfig) -> Option<f64> {
    if !prep.condition.is_trivially_true() || !cfg.use_exact_cdf {
        return None;
    }
    let (coeffs, c) = expr.linear_coeffs()?;
    let mut acc = Some(c);
    let vars = expr.variables();
    for (key, a) in &coeffs {
        let mean = vars
            .iter()
            .find(|v| v.key == *key)
            .and_then(|v| v.class.mean(&v.params));
        acc = match (acc, mean) {
            (Some(t), Some(m)) => Some(t + a * m),
            _ => None,
        };
    }
    acc
}

/// Compute `E[expr | condition]` and optionally `P[condition]`.
///
/// `site` seeds the operator deterministically (use e.g. the row index).
pub fn expectation(
    expr: &Equation,
    condition: &Conjunction,
    want_probability: bool,
    cfg: &SamplerConfig,
    site: u64,
) -> Result<ExpectationResult> {
    // Fast path: deterministic expression under a trivially-true
    // condition (after simplification).
    let expr = expr.simplify();
    let mut prep = match prepare(&expr, condition, cfg) {
        None => return Ok(ExpectationResult::nan(want_probability)),
        Some(p) => p,
    };
    let mut rng = rng_for_site(cfg, site);

    if let Some(v) = expr.as_const() {
        let expectation = v.as_f64()?;
        let probability = if want_probability {
            condition_probability(&mut prep, &[], cfg, &mut rng)?
        } else {
            f64::NAN
        };
        return Ok(ExpectationResult {
            expectation,
            probability,
            n_samples: 0,
            std_error: 0.0,
            used_metropolis: false,
        });
    }

    if let Some(expectation) = linear_exact(&expr, &prep, cfg) {
        return Ok(ExpectationResult {
            expectation,
            // The linear shortcut only applies to trivially-true
            // conditions, whose probability is exactly 1.
            probability: if want_probability { 1.0 } else { f64::NAN },
            n_samples: 0,
            std_error: 0.0,
            used_metropolis: false,
        });
    }

    // Compiled averaging loop: slot-indexed kernels + tapes, bit-identical
    // to the interpreted loop below (which stays the semantics oracle and
    // the fallback for escalations and uncompilable expressions).
    if cfg.compile {
        if let Some(r) = compiled_expectation(&expr, &mut prep, want_probability, cfg, &rng)? {
            return Ok(r);
        }
    }

    // Averaging loop (lines 11–28).
    let target = cfg.z_target();
    let mut a = Assignment::new();
    let (mut n, mut sum, mut sum_sq) = (0usize, 0.0f64, 0.0f64);
    let mut sampling_error: Option<pip_core::PipError> = None;
    while n < cfg.max_samples {
        for &i in &prep.relevant {
            let s = &mut prep.samplers[i];
            if let Err(e) = s.sample_into(&mut rng, cfg, &prep.bounds, &mut a) {
                sampling_error = Some(e);
                break;
            }
        }
        if sampling_error.is_some() {
            break;
        }
        let value = expr.eval_f64(&a)?;
        n += 1;
        sum += value;
        sum_sq += value * value;

        // Stopping rule: z·SE ≤ δ·|mean| once past the floor.
        if n >= cfg.min_samples {
            let mean = sum / n as f64;
            let var = (sum_sq / n as f64 - mean * mean).max(0.0);
            let se = (var / n as f64).sqrt();
            if target * se <= cfg.delta * mean.abs() {
                break;
            }
        }
    }
    if n == 0 {
        // Could not draw a single satisfying sample: treat the context as
        // (numerically) unsatisfiable, per Algorithm 4.3 line 25.
        return Ok(ExpectationResult::nan(want_probability));
    }

    let mean = sum / n as f64;
    let var = (sum_sq / n as f64 - mean * mean).max(0.0);
    let std_error = (var / n as f64).sqrt();
    let used_metropolis = prep.samplers.iter().any(|s| s.uses_metropolis());

    let probability = if want_probability {
        let relevant = prep.relevant.clone();
        condition_probability(&mut prep, &relevant, cfg, &mut rng)?
    } else {
        f64::NAN
    };

    Ok(ExpectationResult {
        expectation: mean,
        probability,
        n_samples: n,
        std_error,
        used_metropolis,
    })
}

/// The compiled averaging loop: kernels draw into slot buffers and the
/// expression evaluates as a tape (columnar over whole sample blocks
/// when nothing downstream needs the RNG). Returns `Ok(None)` when the
/// query is out of the compiler's reach or a group escalates to
/// Metropolis — the caller reruns the interpreted loop, whose results
/// this path reproduces bit for bit (same draws, same float ops, same
/// stopping point, same counters feeding the probability pass).
fn compiled_expectation(
    expr: &Equation,
    prep: &mut Prepared,
    want_probability: bool,
    cfg: &SamplerConfig,
    rng: &PipRng,
) -> Result<Option<ExpectationResult>> {
    use crate::blocks::{serial_blocked, serial_per_sample, CompiledQuery};

    let Some(mut cq) = CompiledQuery::compile(expr, prep) else {
        return Ok(None);
    };
    // Work on a clone of the caller's generator: a bail below leaves the
    // interpreted fallback's stream untouched.
    let mut rng = rng.clone();

    // Does anything after the averaging loop consume the *loop's
    // sampling state*? With `want_probability`, a group without an
    // exact CDF path feeds the probability product either through the
    // generator (Monte-Carlo estimation of expression-disjoint groups)
    // or through the loop's acceptance counters (relevant groups'
    // `probability_estimate`). Either way, overdrawing a columnar block
    // past the adaptive stopping point would perturb the result — so
    // blocked (overdraw-prone) mode is only taken when every atom group
    // resolves exactly, and the per-sample mirror loop otherwise.
    let sampling_state_consumed_after = |s: &GroupSampler| {
        let has_exact_path = cfg.use_exact_cdf && s.exact_probability().is_some();
        !s.group.atoms.is_empty() && !has_exact_path
    };
    let loop_state_needed_after =
        want_probability && prep.samplers.iter().any(sampling_state_consumed_after);
    let stats = if loop_state_needed_after {
        serial_per_sample(&mut cq, cfg, &mut rng)?
    } else {
        serial_blocked(&mut cq, cfg, &mut rng, cfg.reuse_blocks)?
    };
    let Some(stats) = stats else {
        return Ok(None); // Metropolis escalation: interpreted rerun
    };
    if stats.n == 0 {
        return Ok(Some(ExpectationResult::nan(want_probability)));
    }

    // Publish the kernels' acceptance counters so the probability pass
    // sees exactly the interpreted loop's sampler state.
    for (kernel, &i) in cq.kernels.iter().zip(&prep.relevant) {
        prep.samplers[i].attempts = kernel.attempts;
        prep.samplers[i].accepts = kernel.accepts;
    }

    let mean = stats.sum / stats.n as f64;
    let var = (stats.sum_sq / stats.n as f64 - mean * mean).max(0.0);
    let std_error = (var / stats.n as f64).sqrt();
    let probability = if want_probability {
        let relevant = prep.relevant.clone();
        condition_probability(prep, &relevant, cfg, &mut rng)?
    } else {
        f64::NAN
    };
    Ok(Some(ExpectationResult {
        expectation: mean,
        probability,
        n_samples: stats.n,
        std_error,
        used_metropolis: false,
    }))
}

/// `P[C]` as the product over independent groups (lines 29–35):
/// already-sampled groups contribute their acceptance estimate; the rest
/// use the exact CDF path when available and sampling otherwise.
pub(crate) fn condition_probability(
    prep: &mut Prepared,
    already_sampled: &[usize],
    cfg: &SamplerConfig,
    rng: &mut PipRng,
) -> Result<f64> {
    let mut prob = 1.0;
    for (i, s) in prep.samplers.iter_mut().enumerate() {
        if s.group.atoms.is_empty() {
            continue;
        }
        if already_sampled.contains(&i) && !s.uses_metropolis() && s.attempts > 0 {
            // Free by-product of the averaging loop... unless an exact
            // path gives a sharper answer at constant cost.
            if cfg.use_exact_cdf {
                if let Some(p) = s.exact_probability() {
                    prob *= p;
                    continue;
                }
            }
            prob *= s.probability_estimate();
            continue;
        }
        if cfg.use_exact_cdf {
            if let Some(p) = exact_group_probability(&s.group) {
                prob *= p;
                continue;
            }
        }
        // Estimate by direct Monte Carlo over candidates of this group.
        let budget = cfg.max_samples.max(cfg.min_samples).max(1) as u64;
        prob *= s.estimate_probability(rng, budget)?;
    }
    Ok(prob)
}

/// Sampling variant that returns the raw conditional samples of `expr`
/// (the `expected_*_hist` functions of Section V-C build histograms from
/// this).
///
/// Runs compiled through the [`crate::tape::GroupKernel`] path (cached
/// columnar blocks included) when the expression and every relevant
/// group compile, bit-identical to the interpreted loop below — which
/// stays the fallback for escalations and uncompilable queries.
pub fn expectation_samples(
    expr: &Equation,
    condition: &Conjunction,
    n: usize,
    cfg: &SamplerConfig,
    site: u64,
) -> Result<Vec<f64>> {
    let expr = expr.simplify();
    let mut prep = match prepare(&expr, condition, cfg) {
        None => return Ok(Vec::new()),
        Some(p) => p,
    };
    let mut rng = rng_for_site(cfg, site);

    if cfg.compile {
        if let Some(mut cq) = crate::blocks::CompiledQuery::compile(&expr, &prep) {
            // A bail (Metropolis escalation) must leave the interpreted
            // fallback's stream untouched: work on a clone.
            let mut crng = rng.clone();
            if let Some(out) =
                crate::blocks::serial_samples(&mut cq, n, cfg, &mut crng, cfg.reuse_blocks)?
            {
                return Ok(out);
            }
        }
    }
    let mut a = Assignment::new();
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        for &i in &prep.relevant {
            prep.samplers[i].sample_into(&mut rng, cfg, &prep.bounds, &mut a)?;
        }
        // Unconstrained expression variables missing from every group
        // (possible when the condition is empty and use_independence is
        // off with no vars) — prepare() puts them in singleton groups, so
        // by now `a` covers everything expr needs.
        out.push(expr.eval_f64(&a)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pip_dist::prelude::builtin;
    use pip_dist::special;
    use pip_expr::{atoms, RandomVar};

    fn normal(mu: f64, sigma: f64) -> RandomVar {
        RandomVar::create(builtin::normal(), &[mu, sigma]).unwrap()
    }

    #[test]
    fn unconditional_mean_is_exact() {
        let y = normal(5.0, 2.0);
        let cfg = SamplerConfig::default();
        let r = expectation(&Equation::from(y), &Conjunction::top(), true, &cfg, 0).unwrap();
        assert_eq!(r.expectation, 5.0);
        assert_eq!(r.probability, 1.0);
        assert_eq!(r.n_samples, 0, "exact path must not sample");
    }

    #[test]
    fn paper_example_4_1_truncated_mean() {
        // [Y ⇒ Normal(5, σ=10)] with (Y > −3) AND (Y < 2) → E ≈ 0.17… but
        // the exact truncated-normal mean: μ + σ(φ(a)−φ(b))/(Φ(b)−Φ(a))
        // with a=(−3−5)/10=−0.8, b=(2−5)/10=−0.3.
        let y = normal(5.0, 10.0);
        let cond = Conjunction::of(vec![
            atoms::gt(Equation::from(y.clone()), -3.0),
            atoms::lt(Equation::from(y.clone()), 2.0),
        ]);
        let (a, b) = (-0.8, -0.3);
        let truth = 5.0
            + 10.0 * (special::normal_pdf(a) - special::normal_pdf(b))
                / (special::normal_cdf(b) - special::normal_cdf(a));
        let cfg = SamplerConfig::fixed_samples(4000);
        let r = expectation(&Equation::from(y), &cond, true, &cfg, 1).unwrap();
        assert!(
            (r.expectation - truth).abs() < 0.15,
            "{} vs {truth}",
            r.expectation
        );
        // Probability exact via CDF: Φ(−0.3) − Φ(−0.8).
        let p_truth = special::normal_cdf(b) - special::normal_cdf(a);
        assert!((r.probability - p_truth).abs() < 1e-9);
    }

    #[test]
    fn inconsistent_context_yields_nan_zero() {
        let y = normal(0.0, 1.0);
        let cond = Conjunction::of(vec![
            atoms::gt(Equation::from(y.clone()), 5.0),
            atoms::lt(Equation::from(y.clone()), 3.0),
        ]);
        let cfg = SamplerConfig::default();
        let r = expectation(&Equation::from(y), &cond, true, &cfg, 2).unwrap();
        assert!(r.expectation.is_nan());
        assert_eq!(r.probability, 0.0);
    }

    #[test]
    fn independence_means_unrelated_constraint_not_sampled_in_loop() {
        // Paper Example 3.1: price Y1, shipping Y2 independent; condition
        // touches only Y2, expression only Y1. The probability multiplies
        // in exactly (exact CDF), the expectation is just E[Y1].
        let y1 = normal(100.0, 5.0);
        let y2 = normal(4.0, 2.0);
        let cond = Conjunction::single(atoms::ge(Equation::from(y2), 7.0));
        let cfg = SamplerConfig::default();
        let r = expectation(&Equation::from(y1), &cond, true, &cfg, 3).unwrap();
        // E[Y1 | Y2 ≥ 7] = E[Y1] = 100 — exact because the groups are
        // independent and Y1 is unconstrained... but the loop does sample
        // Y1's group (no atoms → no rejection). The estimate converges.
        assert!((r.expectation - 100.0).abs() < 1.5, "{}", r.expectation);
        let p_truth = 1.0 - special::normal_cdf((7.0 - 4.0) / 2.0);
        assert!((r.probability - p_truth).abs() < 1e-9, "{}", r.probability);
    }

    #[test]
    fn composite_expression_expectation() {
        // E[2·Y + 3 | Y > 0] for Y ~ Normal(0,1): 2·E[Y|Y>0] + 3 =
        // 2·φ(0)/ (1−Φ(0)) + 3 = 2·0.79788… + 3 ≈ 4.5958.
        let y = normal(0.0, 1.0);
        let expr = Equation::from(y.clone()) * 2.0 + 3.0;
        let cond = Conjunction::single(atoms::gt(Equation::from(y), 0.0));
        let cfg = SamplerConfig::fixed_samples(4000);
        let r = expectation(&expr, &cond, false, &cfg, 4).unwrap();
        let truth = 2.0 * special::normal_pdf(0.0) / 0.5 + 3.0;
        assert!((r.expectation - truth).abs() < 0.1, "{}", r.expectation);
    }

    #[test]
    fn adaptive_stop_kicks_in_for_low_variance() {
        // Nearly-deterministic expression: Uniform(0.999, 1.001).
        let u = RandomVar::create(builtin::uniform(), &[0.999, 1.001]).unwrap();
        let cfg = SamplerConfig {
            min_samples: 16,
            max_samples: 100_000,
            ..Default::default()
        };
        let r = expectation(&Equation::from(u), &Conjunction::top(), false, &cfg, 5).unwrap();
        assert!(r.n_samples < 1000, "stopped after {} samples", r.n_samples);
        assert!((r.expectation - 1.0).abs() < 1e-3);
    }

    #[test]
    fn deterministic_expression_with_probabilistic_condition() {
        // E[42 | Y > 1] = 42, P = 1−Φ(1).
        let y = normal(0.0, 1.0);
        let cond = Conjunction::single(atoms::gt(Equation::from(y), 1.0));
        let cfg = SamplerConfig::default();
        let r = expectation(&Equation::val(42.0), &cond, true, &cfg, 6).unwrap();
        assert_eq!(r.expectation, 42.0);
        let truth = 1.0 - special::normal_cdf(1.0);
        assert!((r.probability - truth).abs() < 1e-9);
    }

    #[test]
    fn seeded_determinism() {
        let y = normal(0.0, 1.0);
        let cond = Conjunction::single(atoms::gt(Equation::from(y.clone()), 0.5));
        let cfg = SamplerConfig::fixed_samples(200);
        let a = expectation(&Equation::from(y.clone()), &cond, true, &cfg, 7).unwrap();
        let b = expectation(&Equation::from(y.clone()), &cond, true, &cfg, 7).unwrap();
        assert_eq!(a, b);
        let c = expectation(&Equation::from(y), &cond, true, &cfg, 8).unwrap();
        assert_ne!(a.expectation, c.expectation, "different sites decorrelate");
    }

    #[test]
    fn histogram_samples_respect_condition() {
        let y = normal(0.0, 1.0);
        let cond = Conjunction::single(atoms::gt(Equation::from(y.clone()), 1.0));
        let cfg = SamplerConfig::default();
        let xs = expectation_samples(&Equation::from(y), &cond, 500, &cfg, 9).unwrap();
        assert_eq!(xs.len(), 500);
        assert!(xs.iter().all(|&x| x > 1.0));
        // Unsatisfiable → empty.
        let z = normal(0.0, 1.0);
        let dead = Conjunction::of(vec![
            atoms::gt(Equation::from(z.clone()), 5.0),
            atoms::lt(Equation::from(z), 3.0),
        ]);
        assert!(
            expectation_samples(&Equation::val(1.0), &dead, 10, &cfg, 10)
                .unwrap()
                .is_empty()
        );
    }

    #[test]
    fn expectation_samples_compiled_matches_interpreted_bit_for_bit() {
        crate::blocks::block_cache_clear();
        let y = normal(2.0, 3.0);
        let z = normal(-1.0, 0.5);
        let expr = Equation::from(y.clone()) * 2.0 - Equation::from(z.clone());
        let cond = Conjunction::of(vec![
            atoms::gt(Equation::from(y.clone()), 1.0),
            atoms::lt(Equation::from(z.clone()), 0.0),
        ]);
        let compiled = SamplerConfig::default();
        let interpreted = SamplerConfig {
            compile: false,
            ..SamplerConfig::default()
        };
        for site in [0u64, 17, 991] {
            let a = expectation_samples(&expr, &cond, 300, &compiled, site).unwrap();
            let b = expectation_samples(&expr, &cond, 300, &interpreted, site).unwrap();
            assert_eq!(a.len(), 300);
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
            // Warm-cache rerun replays the identical sequence.
            let c = expectation_samples(&expr, &cond, 300, &compiled, site).unwrap();
            assert_eq!(a, c);
            // And with block reuse off.
            let no_reuse = SamplerConfig {
                reuse_blocks: false,
                ..SamplerConfig::default()
            };
            let d = expectation_samples(&expr, &cond, 300, &no_reuse, site).unwrap();
            assert_eq!(a, d);
        }
    }

    #[test]
    fn expectation_samples_error_parity_on_division_by_zero() {
        // x / (y - y) divides by zero on every sample; compiled and
        // interpreted paths must agree that this is an error.
        let y = normal(0.0, 1.0);
        let expr =
            Equation::from(y.clone()) / (Equation::from(y.clone()) - Equation::from(y.clone()));
        let cond = Conjunction::top();
        for compile in [true, false] {
            let cfg = SamplerConfig {
                compile,
                ..SamplerConfig::default()
            };
            let r = expectation_samples(&expr, &cond, 10, &cfg, 5);
            assert!(r.is_err(), "compile={compile}");
        }
    }

    #[test]
    fn naive_ablation_still_converges() {
        let y = normal(0.0, 1.0);
        let cond = Conjunction::single(atoms::gt(Equation::from(y.clone()), 1.0));
        let cfg = SamplerConfig::naive(3000);
        let r = expectation(&Equation::from(y), &cond, true, &cfg, 11).unwrap();
        // E[Y|Y>1] = φ(1)/(1−Φ(1)) ≈ 1.5251.
        assert!((r.expectation - 1.5251).abs() < 0.1, "{}", r.expectation);
        // P estimated by rejection, not exact.
        assert!((r.probability - (1.0 - special::normal_cdf(1.0))).abs() < 0.05);
    }
}
