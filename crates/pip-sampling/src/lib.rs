//! # pip-sampling
//!
//! The sampling and integration engine of PIP (paper Section IV): the
//! expectation operator (Algorithm 4.3), confidence operators, aggregate
//! operators, and the sampling strategies they choose among — exact CDF
//! integration, inverse-CDF bounded sampling, independence-decomposed
//! rejection sampling, and Metropolis.
//!
//! ```
//! use pip_dist::prelude::builtin;
//! use pip_expr::{atoms, Conjunction, Equation, RandomVar};
//! use pip_sampling::{conf, expectation, SamplerConfig};
//!
//! // [Y ⇒ Normal(5, 10)] with condition (Y > -3) AND (Y < 2)
//! let y = RandomVar::create(builtin::normal(), &[5.0, 10.0]).unwrap();
//! let cond = Conjunction::of(vec![
//!     atoms::gt(Equation::from(y.clone()), -3.0),
//!     atoms::lt(Equation::from(y.clone()), 2.0),
//! ]);
//! let cfg = SamplerConfig::default();
//! let r = expectation(&Equation::from(y), &cond, true, &cfg, 0).unwrap();
//! // Paper Example 4.1: the conditional mean is nowhere near the
//! // unconditional mean of 5 — it lies inside the constraint box.
//! assert!(r.expectation > -3.0 && r.expectation < 2.0);
//! let p = conf(&cond, &cfg, 0).unwrap();
//! assert!(p > 0.0 && p < 1.0);
//! ```

pub mod aggregate;
pub mod blocks;
pub mod confidence;
pub mod config;
pub mod expectation;
pub mod histogram;
pub mod metropolis;
pub mod obs;
pub mod parallel;
pub mod strategy;
pub mod streaming;
pub mod tape;
pub mod worlds;

pub use aggregate::{
    expected_avg, expected_count, expected_max_const, expected_max_hist, expected_max_sampled,
    expected_sum, expected_sum_hist, AggregateResult,
};
pub use blocks::{block_cache_clear, block_cache_stats, BlockCacheStats, SampleBlock};
pub use confidence::{aconf, conf};
pub use config::SamplerConfig;
pub use expectation::{expectation, expectation_samples, ExpectationResult};
pub use histogram::{quantile, Histogram};
pub use parallel::{expectation_chunked, ChunkAccumulator, ParallelSampler};
pub use strategy::{exact_group_probability, GroupSampler};
pub use streaming::{ConfStream, StreamingGroups};
pub use tape::{CondTape, Tape, TapeOp};
pub use worlds::sample_worlds;

/// Glob-import surface.
pub mod prelude {
    pub use crate::aggregate::{
        expected_avg, expected_count, expected_max_const, expected_max_hist, expected_max_sampled,
        expected_sum, expected_sum_hist, AggregateResult,
    };
    pub use crate::confidence::{aconf, conf};
    pub use crate::config::SamplerConfig;
    pub use crate::expectation::{expectation, expectation_samples, ExpectationResult};
    pub use crate::histogram::{quantile, Histogram};
    pub use crate::parallel::{expectation_chunked, ChunkAccumulator, ParallelSampler};
    pub use crate::strategy::{exact_group_probability, GroupSampler};
    pub use crate::streaming::{ConfStream, StreamingGroups};
    pub use crate::worlds::sample_worlds;
}
