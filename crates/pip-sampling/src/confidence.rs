//! The confidence operators `conf()` and `aconf()` (paper Section V-C).
//!
//! * `conf` — probability of one row's (conjunctive) condition: product
//!   over independent groups of exact CDF integrals where available and
//!   Monte Carlo acceptance estimates elsewhere.
//! * `aconf` — joint probability of a *disjunction* of conditions (the
//!   coalesced condition of duplicate rows after `distinct`): general
//!   Monte Carlo integration over all variables of the DNF.

use pip_core::Result;
use pip_dist::{mix64, rng_from_seed};
use pip_expr::{independent_groups, Assignment, Conjunction, Dnf};

use pip_ctable::{consistency_check, BoundsMap, Consistency};

use crate::config::SamplerConfig;
use crate::strategy::{exact_group_probability, GroupSampler};

/// `P[condition]` for a conjunctive row condition.
pub fn conf(condition: &Conjunction, cfg: &SamplerConfig, site: u64) -> Result<f64> {
    let (condition, truth) = condition.simplify();
    match truth {
        pip_expr::Truth::False => return Ok(0.0),
        pip_expr::Truth::True => return Ok(1.0),
        pip_expr::Truth::Unknown => {}
    }
    let bounds = if cfg.use_consistency {
        match consistency_check(&condition) {
            Consistency::Inconsistent => return Ok(0.0),
            Consistency::Consistent { bounds, .. } => bounds,
        }
    } else {
        BoundsMap::new()
    };
    let groups = if cfg.use_independence {
        independent_groups(&condition, &[])
    } else {
        vec![pip_expr::VarGroup {
            atoms: condition.atoms().to_vec(),
            vars: condition.variables(),
        }]
    };
    let mut rng = rng_from_seed(mix64(cfg.world_seed ^ site ^ 0xC0FF));
    let mut prob = 1.0;
    for g in groups {
        if g.atoms.is_empty() {
            continue;
        }
        if cfg.use_exact_cdf {
            if let Some(p) = exact_group_probability(&g) {
                prob *= p;
                continue;
            }
        }
        let budget = cfg.max_samples.max(cfg.min_samples).max(1) as u64;
        // Compiled path: the same fixed-budget candidate sequence, drawn
        // through a slot-indexed kernel (and skipped entirely when the
        // sample-block cache already holds this (group, stream) probe).
        if cfg.compile {
            let mut slots = pip_expr::SlotMap::new();
            slots.intern_all(&g.vars);
            if let Some(mut kernel) = crate::tape::GroupKernel::for_group(&g, &bounds, cfg, &slots)
            {
                prob *= crate::blocks::probe_estimate_cached(
                    &mut kernel,
                    &mut rng,
                    budget,
                    slots.len(),
                    cfg,
                    cfg.reuse_blocks,
                )?;
                continue;
            }
        }
        let mut s = GroupSampler::new(g, &bounds, cfg);
        prob *= s.estimate_probability(&mut rng, budget)?;
    }
    Ok(prob)
}

/// `P[φ₁ ∨ … ∨ φₖ]` for the DNF of a distinct group.
///
/// Disjuncts generally share variables, so the factorized per-group path
/// of `conf` does not apply; `aconf` samples all variables of the DNF
/// jointly from their *unconditioned* distributions and counts worlds
/// satisfying any disjunct. With a single disjunct it defers to [`conf`].
pub fn aconf(dnf: &Dnf, cfg: &SamplerConfig, site: u64) -> Result<f64> {
    if dnf.is_trivially_false() {
        return Ok(0.0);
    }
    if dnf.is_trivially_true() {
        return Ok(1.0);
    }
    let disjuncts = dnf.disjuncts();
    if disjuncts.len() == 1 {
        return conf(&disjuncts[0], cfg, site);
    }
    // Prune statically-dead disjuncts first; re-check triviality.
    let mut live: Vec<Conjunction> = Vec::new();
    for d in disjuncts {
        match consistency_check(d) {
            Consistency::Inconsistent => {}
            Consistency::Consistent { .. } => live.push(d.clone()),
        }
    }
    if live.is_empty() {
        return Ok(0.0);
    }
    if live.len() == 1 {
        return conf(&live[0], cfg, site);
    }
    let dnf = Dnf::of(live);
    let vars = dnf.variables();
    let mut rng = rng_from_seed(mix64(cfg.world_seed ^ site ^ 0xACED));
    let mut a = Assignment::new();
    let n = cfg.max_samples.max(cfg.min_samples).max(1);
    let mut hits = 0usize;
    for _ in 0..n {
        for v in &vars {
            a.set(v.key, v.class.generate(&v.params, &mut rng));
        }
        if dnf.eval(&a)? {
            hits += 1;
        }
    }
    Ok(hits as f64 / n as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pip_dist::prelude::builtin;
    use pip_dist::special;
    use pip_expr::{atoms, Equation, RandomVar};

    fn normal() -> RandomVar {
        RandomVar::create(builtin::normal(), &[0.0, 1.0]).unwrap()
    }

    #[test]
    fn conf_trivial_cases() {
        let cfg = SamplerConfig::default();
        assert_eq!(conf(&Conjunction::top(), &cfg, 0).unwrap(), 1.0);
        let dead = Conjunction::single(atoms::gt(1.0, 2.0));
        assert_eq!(conf(&dead, &cfg, 0).unwrap(), 0.0);
    }

    #[test]
    fn conf_exact_via_cdf() {
        let y = normal();
        let cond = Conjunction::single(atoms::gt(Equation::from(y), 1.0));
        let cfg = SamplerConfig::default();
        let p = conf(&cond, &cfg, 1).unwrap();
        assert!((p - (1.0 - special::normal_cdf(1.0))).abs() < 1e-9);
    }

    #[test]
    fn conf_factorizes_independent_groups() {
        // P[(Y1 > 0) ∧ (Y2 > 1)] = P[Y1>0]·P[Y2>1] exactly.
        let y1 = normal();
        let y2 = normal();
        let cond = Conjunction::of(vec![
            atoms::gt(Equation::from(y1), 0.0),
            atoms::gt(Equation::from(y2), 1.0),
        ]);
        let cfg = SamplerConfig::default();
        let p = conf(&cond, &cfg, 2).unwrap();
        let truth = 0.5 * (1.0 - special::normal_cdf(1.0));
        assert!((p - truth).abs() < 1e-9, "{p} vs {truth}");
    }

    #[test]
    fn conf_monte_carlo_for_cross_variable_atoms() {
        // P[Y1 > Y2] for iid normals = 0.5 — needs sampling.
        let y1 = normal();
        let y2 = normal();
        let cond = Conjunction::single(atoms::gt(Equation::from(y1), Equation::from(y2)));
        let cfg = SamplerConfig::fixed_samples(4000);
        let p = conf(&cond, &cfg, 3).unwrap();
        assert!((p - 0.5).abs() < 0.05, "{p}");
    }

    #[test]
    fn aconf_trivia() {
        let cfg = SamplerConfig::default();
        assert_eq!(aconf(&Dnf::bottom(), &cfg, 0).unwrap(), 0.0);
        assert_eq!(
            aconf(&Dnf::of(vec![Conjunction::top()]), &cfg, 0).unwrap(),
            1.0
        );
    }

    #[test]
    fn aconf_single_disjunct_defers_to_conf() {
        let y = normal();
        let d = Dnf::of(vec![Conjunction::single(atoms::gt(Equation::from(y), 1.0))]);
        let cfg = SamplerConfig::default();
        let p = aconf(&d, &cfg, 4).unwrap();
        assert!((p - (1.0 - special::normal_cdf(1.0))).abs() < 1e-9);
    }

    #[test]
    fn aconf_overlapping_disjuncts_not_double_counted() {
        // (Y > 0) ∨ (Y > 1) = (Y > 0): probability 0.5, NOT 0.5 + P[Y>1].
        let y = normal();
        let d = Dnf::of(vec![
            Conjunction::single(atoms::gt(Equation::from(y.clone()), 0.0)),
            Conjunction::single(atoms::gt(Equation::from(y), 1.0)),
        ]);
        let cfg = SamplerConfig::fixed_samples(4000);
        let p = aconf(&d, &cfg, 5).unwrap();
        assert!((p - 0.5).abs() < 0.05, "{p}");
    }

    #[test]
    fn aconf_disjoint_disjuncts_add_up() {
        // (Y < -1) ∨ (Y > 1): 2·(1−Φ(1)) ≈ 0.3173.
        let y = normal();
        let d = Dnf::of(vec![
            Conjunction::single(atoms::lt(Equation::from(y.clone()), -1.0)),
            Conjunction::single(atoms::gt(Equation::from(y), 1.0)),
        ]);
        let cfg = SamplerConfig::fixed_samples(6000);
        let p = aconf(&d, &cfg, 6).unwrap();
        let truth = 2.0 * (1.0 - special::normal_cdf(1.0));
        assert!((p - truth).abs() < 0.05, "{p} vs {truth}");
    }

    #[test]
    fn aconf_prunes_dead_disjuncts() {
        let y = normal();
        let dead = Conjunction::of(vec![
            atoms::gt(Equation::from(y.clone()), 5.0),
            atoms::lt(Equation::from(y.clone()), 3.0),
        ]);
        let live = Conjunction::single(atoms::gt(Equation::from(y), 1.0));
        let d = Dnf::of(vec![dead, live]);
        let cfg = SamplerConfig::default();
        let p = aconf(&d, &cfg, 7).unwrap();
        // Only the live disjunct matters — and it goes through the exact
        // CDF path because pruning leaves a single conjunction.
        assert!((p - (1.0 - special::normal_cdf(1.0))).abs() < 1e-9);
    }
}
