//! Histogram construction from raw sample arrays (the output of the
//! `expected_*_hist` operators, Section V-C).

/// An equi-width histogram over a sample array.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Inclusive lower edge of the first bucket.
    pub lo: f64,
    /// Exclusive upper edge of the last bucket (the max sample is counted
    /// in the final bucket).
    pub hi: f64,
    /// Bucket counts.
    pub counts: Vec<u64>,
    /// Number of samples represented.
    pub n: usize,
}

impl Histogram {
    /// Build from samples with `buckets` equal-width bins spanning the
    /// sample range. Empty input or a degenerate range produces a single
    /// bucket holding everything.
    pub fn from_samples(samples: &[f64], buckets: usize) -> Histogram {
        let n = samples.len();
        if n == 0 {
            return Histogram {
                lo: 0.0,
                hi: 0.0,
                counts: vec![0; buckets.max(1)],
                n: 0,
            };
        }
        let lo = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let buckets = buckets.max(1);
        if !(hi > lo) {
            let mut counts = vec![0u64; buckets];
            counts[0] = n as u64;
            return Histogram { lo, hi, counts, n };
        }
        let width = (hi - lo) / buckets as f64;
        let mut counts = vec![0u64; buckets];
        for &x in samples {
            let b = (((x - lo) / width) as usize).min(buckets - 1);
            counts[b] += 1;
        }
        Histogram { lo, hi, counts, n }
    }

    /// Fraction of mass in bucket `i`.
    pub fn density(&self, i: usize) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.counts[i] as f64 / self.n as f64
        }
    }

    /// Bucket edges `(lo_i, hi_i)`.
    pub fn edges(&self, i: usize) -> (f64, f64) {
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        (self.lo + i as f64 * width, self.lo + (i + 1) as f64 * width)
    }

    /// Sample mean of the represented data (bucket midpoints, so an
    /// approximation).
    pub fn approx_mean(&self) -> f64 {
        if self.n == 0 {
            return f64::NAN;
        }
        let mut acc = 0.0;
        for i in 0..self.counts.len() {
            let (l, h) = self.edges(i);
            acc += 0.5 * (l + h) * self.counts[i] as f64;
        }
        acc / self.n as f64
    }
}

/// Empirical quantile of a sample array (`q` in [0,1], nearest-rank).
pub fn quantile(samples: &[f64], q: f64) -> f64 {
    if samples.is_empty() {
        return f64::NAN;
    }
    let mut xs = samples.to_vec();
    xs.sort_by(f64::total_cmp);
    let idx = ((q.clamp(0.0, 1.0)) * (xs.len() - 1) as f64).round() as usize;
    xs[idx]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_counts_sum_to_n() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let h = Histogram::from_samples(&xs, 10);
        assert_eq!(h.counts.iter().sum::<u64>(), 100);
        assert_eq!(h.counts, vec![10; 10]);
        assert_eq!(h.n, 100);
        assert!((h.density(0) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn max_sample_lands_in_last_bucket() {
        let xs = vec![0.0, 1.0];
        let h = Histogram::from_samples(&xs, 4);
        assert_eq!(h.counts[3], 1);
        assert_eq!(h.counts[0], 1);
    }

    #[test]
    fn degenerate_inputs() {
        let h = Histogram::from_samples(&[], 5);
        assert_eq!(h.n, 0);
        assert!(h.approx_mean().is_nan());
        let h = Histogram::from_samples(&[3.0, 3.0, 3.0], 5);
        assert_eq!(h.counts[0], 3);
    }

    #[test]
    fn approx_mean_close_to_true_mean() {
        let xs: Vec<f64> = (0..1000).map(|i| (i as f64) / 999.0).collect();
        let h = Histogram::from_samples(&xs, 50);
        assert!((h.approx_mean() - 0.5).abs() < 0.02);
    }

    #[test]
    fn quantiles() {
        let xs: Vec<f64> = (0..101).map(|i| i as f64).collect();
        assert_eq!(quantile(&xs, 0.0), 0.0);
        assert_eq!(quantile(&xs, 0.5), 50.0);
        assert_eq!(quantile(&xs, 1.0), 100.0);
        assert!(quantile(&[], 0.5).is_nan());
    }

    #[test]
    fn edges_partition_range() {
        let h = Histogram::from_samples(&[0.0, 10.0], 5);
        assert_eq!(h.edges(0), (0.0, 2.0));
        assert_eq!(h.edges(4), (8.0, 10.0));
    }
}
