//! The Metropolis sampler (paper Section IV-A(d)).
//!
//! When a constraint group's rejection rate is extreme, PIP falls back to
//! a Metropolis random walk over the group's variables, targeting the
//! constrained density `π(x) ∝ Π pdfᵢ(xᵢ) · χ_atoms(x)`. The walk pays a
//! burn-in once, then yields a (correlated) sample every few steps —
//! `W = C_burn_in + n·C_steps_per_sample` versus rejection's
//! `W = n / (1 − P[reject])`.

use pip_core::{PipError, Result};
use pip_dist::{special, PipRng};
use pip_expr::{Assignment, VarGroup};
use rand::Rng;

use pip_ctable::BoundsMap;

/// Metropolis chain state for one variable group.
#[derive(Debug)]
pub struct MetropolisState {
    /// Current point, one slot per group variable (same order as
    /// `group.vars`).
    current: Vec<f64>,
    /// Per-variable proposal step widths.
    step: Vec<f64>,
    /// Cached log-density of `current`.
    log_density: f64,
    /// Steps taken (diagnostics).
    pub steps: u64,
    /// Proposals accepted (diagnostics).
    pub accepted: u64,
}

/// Log of the unconstrained part of the target density at `point`.
fn log_pdf(group: &VarGroup, point: &[f64]) -> Result<f64> {
    let mut acc = 0.0;
    for (v, &x) in group.vars.iter().zip(point) {
        let p = v.class.pdf(&v.params, x).ok_or_else(|| {
            PipError::Sampling(format!(
                "Metropolis requires a PDF for {} ({})",
                v.key.id,
                v.class.name()
            ))
        })?;
        if p <= 0.0 {
            return Ok(f64::NEG_INFINITY);
        }
        acc += p.ln();
    }
    Ok(acc)
}

/// Evaluate the group's atoms at `point`.
fn satisfies(group: &VarGroup, point: &[f64], scratch: &mut Assignment) -> Result<bool> {
    scratch.clear();
    for (v, &x) in group.vars.iter().zip(point) {
        scratch.set(v.key, x);
    }
    for atom in &group.atoms {
        if !atom.eval(scratch)? {
            return Ok(false);
        }
    }
    Ok(true)
}

impl MetropolisState {
    /// Initialize the chain: find a starting point satisfying the atoms
    /// (by bounded rejection scanning), then burn in.
    ///
    /// Returns `Err` when no start point can be found within
    /// `start_attempts` draws — Algorithm 4.3 line 23 then yields NAN.
    pub fn init(
        group: &VarGroup,
        bounds: &BoundsMap,
        rng: &mut PipRng,
        burn_in: usize,
        start_attempts: usize,
    ) -> Result<Self> {
        // Every variable needs a PDF (line 20 of Algorithm 4.3).
        for v in &group.vars {
            if v.class.pdf(&v.params, 0.0).is_none() {
                return Err(PipError::Sampling(format!(
                    "variable {} has no PDF; Metropolis unavailable",
                    v.key.id
                )));
            }
        }
        let mut scratch = Assignment::new();
        let mut point = vec![0.0; group.vars.len()];
        let mut found = false;
        for _ in 0..start_attempts {
            for (slot, v) in point.iter_mut().zip(&group.vars) {
                *slot = v.class.generate(&v.params, rng);
            }
            if satisfies(group, &point, &mut scratch)? {
                found = true;
                break;
            }
        }
        if !found {
            // Second chance: midpoint of the consistency bounds box, which
            // is often feasible when rejection scanning is hopeless.
            for (slot, v) in point.iter_mut().zip(&group.vars) {
                let iv = bounds.get(v.key);
                if iv.is_finite() {
                    *slot = 0.5 * (iv.lo + iv.hi);
                } else if iv.lo.is_finite() {
                    *slot = iv.lo + 1.0;
                } else if iv.hi.is_finite() {
                    *slot = iv.hi - 1.0;
                }
            }
            found = satisfies(group, &point, &mut scratch)?;
        }
        if !found {
            return Err(PipError::Sampling(
                "Metropolis: no satisfying start point found".into(),
            ));
        }

        // Step widths: a fraction of the bounded width, else of the
        // distribution's own scale.
        let step = group
            .vars
            .iter()
            .map(|v| {
                let iv = bounds.get(v.key);
                if iv.is_finite() && iv.width() > 0.0 {
                    0.25 * iv.width()
                } else {
                    v.class
                        .variance(&v.params)
                        .map(|s2| s2.sqrt())
                        .filter(|s| s.is_finite() && *s > 0.0)
                        .unwrap_or(1.0)
                }
            })
            .collect();

        let log_density = log_pdf(group, &point)?;
        let mut state = MetropolisState {
            current: point,
            step,
            log_density,
            steps: 0,
            accepted: 0,
        };
        for _ in 0..burn_in {
            state.step_once(group, rng, &mut scratch)?;
        }
        Ok(state)
    }

    /// One Metropolis transition (symmetric Gaussian proposal).
    fn step_once(
        &mut self,
        group: &VarGroup,
        rng: &mut PipRng,
        scratch: &mut Assignment,
    ) -> Result<()> {
        self.steps += 1;
        let mut proposal = self.current.clone();
        for (slot, s) in proposal.iter_mut().zip(&self.step) {
            let u: f64 = rng.gen();
            *slot += s * special::inverse_normal_cdf(u.clamp(1e-12, 1.0 - 1e-12));
        }
        if !satisfies(group, &proposal, scratch)? {
            return Ok(());
        }
        let ld = log_pdf(group, &proposal)?;
        let accept = if ld >= self.log_density {
            true
        } else {
            let u: f64 = rng.gen();
            u.ln() < ld - self.log_density
        };
        if accept {
            self.current = proposal;
            self.log_density = ld;
            self.accepted += 1;
        }
        Ok(())
    }

    /// Advance `thinning` steps and write the resulting point into `out`.
    pub fn sample_into(
        &mut self,
        group: &VarGroup,
        rng: &mut PipRng,
        thinning: usize,
        out: &mut Assignment,
    ) -> Result<()> {
        let mut scratch = Assignment::new();
        for _ in 0..thinning.max(1) {
            self.step_once(group, rng, &mut scratch)?;
        }
        for (v, &x) in group.vars.iter().zip(&self.current) {
            out.set(v.key, x);
        }
        Ok(())
    }

    /// Fraction of proposals accepted so far (diagnostics).
    pub fn acceptance_rate(&self) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            self.accepted as f64 / self.steps as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pip_ctable::{consistency_check, Consistency};
    use pip_dist::prelude::builtin;
    use pip_dist::rng_from_seed;
    use pip_expr::{atoms, Equation, RandomVar};

    fn group_tail() -> (VarGroup, RandomVar) {
        // Y ~ Normal(0,1), condition Y > 2.3 (P ≈ 0.0107 — heavy rejection).
        let y = RandomVar::create(builtin::normal(), &[0.0, 1.0]).unwrap();
        let cond = pip_expr::Conjunction::single(atoms::gt(Equation::from(y.clone()), 2.3));
        let groups = pip_expr::independent_groups(&cond, &[]);
        (groups.into_iter().next().unwrap(), y)
    }

    #[test]
    fn chain_samples_satisfy_constraint() {
        let (group, y) = group_tail();
        let bounds = match consistency_check(&pip_expr::Conjunction::of(group.atoms.clone())) {
            Consistency::Consistent { bounds, .. } => bounds,
            _ => panic!("consistent"),
        };
        let mut rng = rng_from_seed(7);
        let mut st = MetropolisState::init(&group, &bounds, &mut rng, 200, 10_000).unwrap();
        let mut a = Assignment::new();
        for _ in 0..200 {
            st.sample_into(&group, &mut rng, 4, &mut a).unwrap();
            assert!(a.get(y.key).unwrap() > 2.3);
        }
        assert!(st.acceptance_rate() > 0.0);
    }

    #[test]
    fn chain_mean_approximates_truncated_normal() {
        let (group, y) = group_tail();
        let bounds = consistency_check(&pip_expr::Conjunction::of(group.atoms.clone())).bounds();
        let mut rng = rng_from_seed(8);
        let mut st = MetropolisState::init(&group, &bounds, &mut rng, 500, 10_000).unwrap();
        let mut a = Assignment::new();
        let n = 4000;
        let mut sum = 0.0;
        for _ in 0..n {
            st.sample_into(&group, &mut rng, 4, &mut a).unwrap();
            sum += a.get(y.key).unwrap();
        }
        // E[Y | Y > 2.3] = φ(2.3)/(1−Φ(2.3)) ≈ 2.6468
        let mean = sum / n as f64;
        assert!((mean - 2.6468).abs() < 0.12, "mean {mean}");
    }

    #[test]
    fn init_fails_without_pdf() {
        // A Generate-only black-box class cannot do Metropolis.
        #[derive(Debug)]
        struct BlackBox;
        impl pip_dist::DistributionClass for BlackBox {
            fn name(&self) -> &'static str {
                "BlackBox"
            }
            fn arity(&self) -> usize {
                0
            }
            fn validate(&self, _: &[f64]) -> pip_core::Result<()> {
                Ok(())
            }
            fn generate(&self, _: &[f64], _: &mut PipRng) -> f64 {
                0.5
            }
        }
        let v = RandomVar::create(std::sync::Arc::new(BlackBox), &[]).unwrap();
        let cond = pip_expr::Conjunction::single(atoms::gt(Equation::from(v.clone()), 0.0));
        let group = pip_expr::independent_groups(&cond, &[])
            .into_iter()
            .next()
            .unwrap();
        let mut rng = rng_from_seed(9);
        let r = MetropolisState::init(&group, &BoundsMap::new(), &mut rng, 10, 100);
        assert!(r.is_err());
    }

    #[test]
    fn init_fails_when_unsatisfiable() {
        let y = RandomVar::create(builtin::uniform(), &[0.0, 1.0]).unwrap();
        // Impossible: uniform on [0,1] but atom wants > 2.
        let cond = pip_expr::Conjunction::single(atoms::gt(Equation::from(y.clone()), 2.0));
        let group = pip_expr::independent_groups(&cond, &[])
            .into_iter()
            .next()
            .unwrap();
        let mut rng = rng_from_seed(10);
        let r = MetropolisState::init(&group, &BoundsMap::new(), &mut rng, 10, 200);
        assert!(r.is_err());
    }
}
