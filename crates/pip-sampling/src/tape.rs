//! The sampling compiler: slot-indexed evaluation tapes and compiled
//! group kernels.
//!
//! The interpreted hot loop of Algorithm 4.3 walks `Equation` trees
//! (enum dispatch + `Arc` hops) and resolves every variable through an
//! [`Assignment`] hash map — per sample, per candidate. This module
//! flattens that work once per query:
//!
//! * [`Tape`] — a register-based program compiled from an [`Equation`].
//!   Operands are register indices; variables are reads from a dense
//!   `f64` slot buffer laid out by a [`pip_expr::SlotMap`]. Evaluation
//!   performs exactly the interpreted post-order float operations, so
//!   results are **bit-identical** to [`Equation::eval_f64`] (including
//!   the division-by-zero error).
//! * [`CondTape`] — a compiled conjunction: per atom, the two side tapes
//!   plus the comparison, short-circuiting in atom order exactly like
//!   [`pip_expr::Conjunction::eval`].
//! * [`GroupKernel`] — a compiled [`GroupSampler`]: the same candidate
//!   generation (same RNG draws, same strategies, same rejection loop,
//!   same counters) writing into slots instead of an `Assignment`. The
//!   Metropolis escalation point is detected at exactly the interpreted
//!   trigger; the kernel then *bails* and the caller reruns the
//!   interpreted `GroupSampler` path from scratch, which keeps results
//!   bit-identical in the rare escalation case.
//!
//! Anything the compiler cannot express (non-numeric constants inside
//! arithmetic, exotic atoms) refuses to compile and the caller falls
//! back to the interpreted path — the semantics oracle.

use std::sync::Arc;

use pip_core::{PipError, Result};
use pip_dist::{DistRef, PipRng, PreparedGen, PreparedInverseCdf};
use pip_expr::{Atom, BinOp, CmpOp, Conjunction, Equation, SlotMap, UnOp, VarGroup};
use rand::Rng;

use crate::config::SamplerConfig;
use crate::strategy::{
    GroupSampler, VarStrategy, MAX_ATTEMPTS_PER_SAMPLE, METROPOLIS_MIN_ATTEMPTS,
};

/// One instruction of a [`Tape`]. Instruction `i` writes register `i`;
/// operands are indices of earlier registers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TapeOp {
    /// A numeric constant.
    Const(f64),
    /// Read slot `s` of the sample buffer.
    Load(u32),
    Add(u32, u32),
    Sub(u32, u32),
    Mul(u32, u32),
    Div(u32, u32),
    Neg(u32),
}

/// Opcode of a [`TapeOp`] without its operands, for run segmentation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OpKind {
    Const,
    Load,
    Add,
    Sub,
    Mul,
    Div,
    Neg,
}

/// A maximal run of consecutive instructions sharing one opcode:
/// instructions `start..end` of the tape.
#[derive(Debug, Clone, Copy)]
struct Run {
    kind: OpKind,
    start: u32,
    end: u32,
}

/// A register-based flattening of one [`Equation`].
///
/// Besides the instruction list, a compiled tape carries a sealed
/// *run-segmented* form: operands unpacked into flat arrays plus the
/// maximal runs of identical opcodes, so the scalar evaluation loop
/// dispatches once per run instead of once per instruction. Real
/// expressions compile into long same-opcode stretches (all the loads,
/// then the products, then the sum chain), which turns the per-sample
/// hot loop of a [`GroupKernel`] into a handful of predictable branches.
#[derive(Debug, Clone, Default)]
pub struct Tape {
    ops: Vec<TapeOp>,
    runs: Vec<Run>,
    /// First operand (register index), or slot for `Load`, per instruction.
    a: Vec<u32>,
    /// Second operand (register index) per instruction; 0 when unused.
    b: Vec<u32>,
    /// Constant payload per instruction; 0.0 when unused.
    c: Vec<f64>,
}

/// The one runtime error a tape can raise — identical text to
/// [`pip_expr::BinOp::apply`] so fallback and compiled paths agree.
pub(crate) fn div_by_zero() -> PipError {
    PipError::Eval("division by zero".into())
}

impl Tape {
    /// Compile `expr` against `slots` (every variable must already be
    /// interned). Returns `None` when the expression contains a
    /// non-numeric constant or an unmapped variable — the interpreted
    /// path handles those.
    pub fn compile(expr: &Equation, slots: &SlotMap) -> Option<Tape> {
        let mut tape = Tape::default();
        tape.emit(expr, slots)?;
        tape.seal();
        Some(tape)
    }

    /// Build the run-segmented form from the instruction list.
    fn seal(&mut self) {
        let n = self.ops.len();
        self.a = vec![0; n];
        self.b = vec![0; n];
        self.c = vec![0.0; n];
        self.runs.clear();
        for (i, op) in self.ops.iter().enumerate() {
            let kind = match *op {
                TapeOp::Const(v) => {
                    self.c[i] = v;
                    OpKind::Const
                }
                TapeOp::Load(s) => {
                    self.a[i] = s;
                    OpKind::Load
                }
                TapeOp::Add(x, y) => {
                    self.a[i] = x;
                    self.b[i] = y;
                    OpKind::Add
                }
                TapeOp::Sub(x, y) => {
                    self.a[i] = x;
                    self.b[i] = y;
                    OpKind::Sub
                }
                TapeOp::Mul(x, y) => {
                    self.a[i] = x;
                    self.b[i] = y;
                    OpKind::Mul
                }
                TapeOp::Div(x, y) => {
                    self.a[i] = x;
                    self.b[i] = y;
                    OpKind::Div
                }
                TapeOp::Neg(x) => {
                    self.a[i] = x;
                    OpKind::Neg
                }
            };
            match self.runs.last_mut() {
                Some(r) if r.kind == kind => r.end += 1,
                _ => self.runs.push(Run {
                    kind,
                    start: i as u32,
                    end: i as u32 + 1,
                }),
            }
        }
    }

    fn emit(&mut self, expr: &Equation, slots: &SlotMap) -> Option<u32> {
        let reg = match expr {
            Equation::Const(v) => {
                let x = v.as_f64().ok()?;
                self.push(TapeOp::Const(x))
            }
            Equation::Var(v) => {
                let slot = slots.slot_of(v.key)?;
                self.push(TapeOp::Load(slot))
            }
            Equation::Binary { op, left, right } => {
                let l = self.emit(left, slots)?;
                let r = self.emit(right, slots)?;
                self.push(match op {
                    BinOp::Add => TapeOp::Add(l, r),
                    BinOp::Sub => TapeOp::Sub(l, r),
                    BinOp::Mul => TapeOp::Mul(l, r),
                    BinOp::Div => TapeOp::Div(l, r),
                })
            }
            Equation::Unary {
                op: UnOp::Neg,
                expr,
            } => {
                let e = self.emit(expr, slots)?;
                self.push(TapeOp::Neg(e))
            }
        };
        Some(reg)
    }

    fn push(&mut self, op: TapeOp) -> u32 {
        self.ops.push(op);
        (self.ops.len() - 1) as u32
    }

    /// Number of registers (== instructions) the tape needs.
    pub fn n_regs(&self) -> usize {
        self.ops.len()
    }

    pub fn ops(&self) -> &[TapeOp] {
        &self.ops
    }

    /// Evaluate over one sample. `regs` is caller-provided scratch,
    /// resized as needed. Bit-identical to [`Equation::eval_f64`] on the
    /// assignment the slot buffer encodes.
    ///
    /// The loop walks the run-segmented form: one opcode dispatch per
    /// run, then a tight operand loop. Instructions execute in exactly
    /// the original order (runs partition the tape), so results — and
    /// which division errors first — match the per-instruction loop.
    pub fn eval(&self, slots: &[f64], regs: &mut Vec<f64>) -> Result<f64> {
        let last = self.ops.len().checked_sub(1).expect("non-empty tape");
        regs.clear();
        regs.resize(self.ops.len(), 0.0);
        for run in &self.runs {
            let (s, e) = (run.start as usize, run.end as usize);
            match run.kind {
                OpKind::Const => regs[s..e].copy_from_slice(&self.c[s..e]),
                OpKind::Load => {
                    for i in s..e {
                        regs[i] = slots[self.a[i] as usize];
                    }
                }
                OpKind::Add => {
                    for i in s..e {
                        regs[i] = regs[self.a[i] as usize] + regs[self.b[i] as usize];
                    }
                }
                OpKind::Sub => {
                    for i in s..e {
                        regs[i] = regs[self.a[i] as usize] - regs[self.b[i] as usize];
                    }
                }
                OpKind::Mul => {
                    for i in s..e {
                        regs[i] = regs[self.a[i] as usize] * regs[self.b[i] as usize];
                    }
                }
                OpKind::Div => {
                    for i in s..e {
                        let d = regs[self.b[i] as usize];
                        if d == 0.0 {
                            return Err(div_by_zero());
                        }
                        regs[i] = regs[self.a[i] as usize] / d;
                    }
                }
                OpKind::Neg => {
                    for i in s..e {
                        regs[i] = -regs[self.a[i] as usize];
                    }
                }
            }
        }
        Ok(regs[last])
    }

    /// Evaluate over a columnar sample block: lane `s` reads column
    /// entries `data[slot * stride + s]`. Writes the `len` results into
    /// `out` and returns the earliest lane whose evaluation would have
    /// errored (division by zero), if any — per lane the computation is
    /// the same float op sequence as [`Tape::eval`], so every non-error
    /// lane is bit-identical to the scalar path.
    pub fn eval_block(
        &self,
        data: &[f64],
        stride: usize,
        len: usize,
        regs: &mut Vec<f64>,
        out: &mut Vec<f64>,
    ) -> Option<usize> {
        regs.clear();
        regs.resize(self.ops.len() * len, 0.0);
        let mut first_err: Option<usize> = None;
        for (i, op) in self.ops.iter().enumerate() {
            // Split scratch: everything before op `i` is read-only input.
            let (prev, cur) = regs.split_at_mut(i * len);
            let cur = &mut cur[..len];
            let reg = |r: u32| &prev[r as usize * len..r as usize * len + len];
            match *op {
                TapeOp::Const(c) => cur.fill(c),
                TapeOp::Load(slot) => {
                    cur.copy_from_slice(&data[slot as usize * stride..slot as usize * stride + len])
                }
                TapeOp::Add(a, b) => {
                    let (a, b) = (reg(a), reg(b));
                    for s in 0..len {
                        cur[s] = a[s] + b[s];
                    }
                }
                TapeOp::Sub(a, b) => {
                    let (a, b) = (reg(a), reg(b));
                    for s in 0..len {
                        cur[s] = a[s] - b[s];
                    }
                }
                TapeOp::Mul(a, b) => {
                    let (a, b) = (reg(a), reg(b));
                    for s in 0..len {
                        cur[s] = a[s] * b[s];
                    }
                }
                TapeOp::Div(a, b) => {
                    let (a, b) = (reg(a), reg(b));
                    for s in 0..len {
                        if b[s] == 0.0 {
                            // Record the earliest erroring lane; later
                            // instructions may keep computing garbage in
                            // it, the caller truncates before use.
                            if first_err.is_none_or(|e| s < e) {
                                first_err = Some(s);
                            }
                            cur[s] = 0.0;
                        } else {
                            cur[s] = a[s] / b[s];
                        }
                    }
                }
                TapeOp::Neg(a) => {
                    let a = reg(a);
                    for s in 0..len {
                        cur[s] = -a[s];
                    }
                }
            }
        }
        let last = &regs[(self.ops.len() - 1) * len..];
        out.clear();
        out.extend_from_slice(&last[..len]);
        first_err
    }

    /// Structural signature folded into sample-block cache keys.
    pub(crate) fn signature(&self, sig: &mut Vec<u64>) {
        sig.push(self.ops.len() as u64);
        for op in &self.ops {
            match *op {
                TapeOp::Const(c) => {
                    sig.push(0);
                    sig.push(c.to_bits());
                }
                TapeOp::Load(s) => {
                    sig.push(1);
                    sig.push(s as u64);
                }
                TapeOp::Add(a, b) => sig.extend([2, a as u64, b as u64]),
                TapeOp::Sub(a, b) => sig.extend([3, a as u64, b as u64]),
                TapeOp::Mul(a, b) => sig.extend([4, a as u64, b as u64]),
                TapeOp::Div(a, b) => sig.extend([5, a as u64, b as u64]),
                TapeOp::Neg(a) => sig.extend([6, a as u64]),
            }
        }
    }
}

/// One compiled atom. The common shapes after condition normalization —
/// `slot θ const` and `slot θ slot` — get direct forms with no register
/// traffic at all; everything else runs both side tapes. Both-const
/// atoms keep the `Value`-ordering fast path of [`Atom::eval`] as a
/// precomputed truth value.
#[derive(Debug, Clone)]
enum AtomProgram {
    Const(bool),
    SlotCmpConst {
        slot: u32,
        op: CmpOp,
        c: f64,
    },
    SlotCmpSlot {
        l: u32,
        op: CmpOp,
        r: u32,
    },
    Cmp {
        left: Box<Tape>,
        op: CmpOp,
        right: Box<Tape>,
    },
}

/// A compiled conjunction of atoms, short-circuiting in atom order.
#[derive(Debug, Clone, Default)]
pub struct CondTape {
    atoms: Vec<AtomProgram>,
    n_regs: usize,
}

impl CondTape {
    /// Compile a list of atoms against `slots`. `None` when any atom is
    /// out of the compiler's reach.
    pub fn compile_atoms(atoms: &[Atom], slots: &SlotMap) -> Option<CondTape> {
        let mut programs = Vec::with_capacity(atoms.len());
        let mut n_regs = 0;
        for atom in atoms {
            // Mirror of Atom::eval: two root constants compare under the
            // total Value order (strings included), everything else goes
            // down the numeric path.
            if let (Some(l), Some(r)) = (atom.left.as_const(), atom.right.as_const()) {
                programs.push(AtomProgram::Const(atom.op.eval_value(l, r)));
                continue;
            }
            let left = Tape::compile(&atom.left, slots)?;
            let right = Tape::compile(&atom.right, slots)?;
            // Specialize the one-op shapes (comparison flip is exact for
            // floats, so const-on-the-left reuses the same direct form).
            let program = match (left.ops.as_slice(), right.ops.as_slice()) {
                ([TapeOp::Load(s)], [TapeOp::Const(c)]) => AtomProgram::SlotCmpConst {
                    slot: *s,
                    op: atom.op,
                    c: *c,
                },
                ([TapeOp::Const(c)], [TapeOp::Load(s)]) => AtomProgram::SlotCmpConst {
                    slot: *s,
                    op: atom.op.flip(),
                    c: *c,
                },
                ([TapeOp::Load(l)], [TapeOp::Load(r)]) => AtomProgram::SlotCmpSlot {
                    l: *l,
                    op: atom.op,
                    r: *r,
                },
                _ => {
                    n_regs = n_regs.max(left.n_regs()).max(right.n_regs());
                    AtomProgram::Cmp {
                        left: Box::new(left),
                        op: atom.op,
                        right: Box::new(right),
                    }
                }
            };
            programs.push(program);
        }
        Some(CondTape {
            atoms: programs,
            n_regs,
        })
    }

    /// Compile a whole row condition.
    pub fn compile(cond: &Conjunction, slots: &SlotMap) -> Option<CondTape> {
        Self::compile_atoms(cond.atoms(), slots)
    }

    /// True when every atom holds — bit-identical to
    /// [`Conjunction::eval`] over the assignment the slots encode,
    /// including error propagation order.
    #[inline]
    pub fn eval_bool(&self, slots: &[f64], regs: &mut Vec<f64>) -> Result<bool> {
        for atom in &self.atoms {
            let holds = match atom {
                AtomProgram::Const(t) => *t,
                AtomProgram::SlotCmpConst { slot, op, c } => op.eval_f64(slots[*slot as usize], *c),
                AtomProgram::SlotCmpSlot { l, op, r } => {
                    op.eval_f64(slots[*l as usize], slots[*r as usize])
                }
                AtomProgram::Cmp { left, op, right } => {
                    let l = left.eval(slots, regs)?;
                    let r = right.eval(slots, regs)?;
                    op.eval_f64(l, r)
                }
            };
            if !holds {
                return Ok(false);
            }
        }
        Ok(true)
    }

    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// Scratch registers needed by [`CondTape::eval_bool`].
    pub fn n_regs(&self) -> usize {
        self.n_regs
    }

    pub(crate) fn signature(&self, sig: &mut Vec<u64>) {
        sig.push(self.atoms.len() as u64);
        for atom in &self.atoms {
            match atom {
                AtomProgram::Const(t) => sig.extend([100, *t as u64]),
                AtomProgram::SlotCmpConst { slot, op, c } => {
                    sig.extend([110 + *op as u64, *slot as u64, c.to_bits()])
                }
                AtomProgram::SlotCmpSlot { l, op, r } => {
                    sig.extend([120 + *op as u64, *l as u64, *r as u64])
                }
                AtomProgram::Cmp { left, op, right } => {
                    sig.push(101 + *op as u64);
                    left.signature(sig);
                    right.signature(sig);
                }
            }
        }
    }
}

/// How one variable of a kernel is generated — the compiled twin of
/// [`VarStrategy`], carrying the distribution handle and the target slot.
#[derive(Debug, Clone)]
struct VarGen {
    slot: u32,
    class: DistRef,
    params: Arc<[f64]>,
    kind: GenKind,
    /// Draw-identical prepared sampler (Natural strategy).
    prepared: Option<Arc<dyn PreparedGen>>,
    /// Bit-identical prepared inverse CDF (CdfBounded strategy).
    prepared_inv: Option<Arc<dyn PreparedInverseCdf>>,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum GenKind {
    Natural,
    CdfBounded { p_lo: f64, p_hi: f64 },
}

/// Outcome of one kernel sampling step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelStep {
    /// A satisfying joint sample was written into the slots.
    Sampled,
    /// The interpreted path would attempt the Metropolis switch here:
    /// the kernel stops and the caller must rerun the interpreted
    /// sampler from scratch (bit-identical, just slower).
    Escalate,
}

/// The compiled twin of one [`GroupSampler`]: same candidate draws, same
/// rejection loop, same counters — but slot writes instead of hash-map
/// inserts and tape checks instead of tree walks.
#[derive(Debug, Clone)]
pub struct GroupKernel {
    vars: Vec<VarGen>,
    cond: CondTape,
    box_mass: f64,
    /// Candidates generated, mirroring [`GroupSampler::attempts`].
    pub attempts: u64,
    /// Candidates accepted, mirroring [`GroupSampler::accepts`].
    pub accepts: u64,
}

impl GroupKernel {
    /// Compile the kernel equivalent of `sampler`. `None` when an atom
    /// or constant falls outside the compiler's reach.
    pub(crate) fn compile(sampler: &GroupSampler, slots: &SlotMap) -> Option<GroupKernel> {
        let cond = CondTape::compile_atoms(&sampler.group.atoms, slots)?;
        let mut vars = Vec::with_capacity(sampler.group.vars.len());
        for (v, s) in sampler.group.vars.iter().zip(sampler.var_strategies()) {
            let kind = match *s {
                VarStrategy::Natural => GenKind::Natural,
                VarStrategy::CdfBounded { p_lo, p_hi } => GenKind::CdfBounded { p_lo, p_hi },
            };
            let (prepared, prepared_inv) = match kind {
                GenKind::Natural => (v.class.prepare_generate(&v.params), None),
                GenKind::CdfBounded { .. } => (None, v.class.prepare_inverse_cdf(&v.params)),
            };
            vars.push(VarGen {
                slot: slots.slot_of(v.key)?,
                class: Arc::clone(&v.class),
                params: Arc::clone(&v.params),
                kind,
                prepared,
                prepared_inv,
            });
        }
        Some(GroupKernel {
            vars,
            cond,
            box_mass: sampler.cdf_box_mass(),
            attempts: sampler.attempts,
            accepts: sampler.accepts,
        })
    }

    /// Build a standalone kernel for `group` (the `conf()` path, which
    /// has no [`GroupSampler`] yet): instantiates the interpreted sampler
    /// once to reuse its strategy selection verbatim.
    pub(crate) fn for_group(
        group: &VarGroup,
        bounds: &pip_ctable::BoundsMap,
        cfg: &SamplerConfig,
        slots: &SlotMap,
    ) -> Option<GroupKernel> {
        let sampler = GroupSampler::new(group.clone(), bounds, cfg);
        Self::compile(&sampler, slots)
    }

    fn rejection_rate(&self) -> f64 {
        if self.attempts == 0 {
            0.0
        } else {
            1.0 - self.accepts as f64 / self.attempts as f64
        }
    }

    /// Generate one candidate into the slots — the same draws, in the
    /// same order, as [`GroupSampler`]'s `generate_candidate`.
    #[inline]
    fn generate_candidate(&self, rng: &mut PipRng, slots: &mut [f64]) {
        for vg in &self.vars {
            let x = match vg.kind {
                GenKind::Natural => match &vg.prepared {
                    Some(p) => p.generate(rng),
                    None => vg.class.generate(&vg.params, rng),
                },
                GenKind::CdfBounded { p_lo, p_hi } => {
                    let u: f64 = rng.gen();
                    let p = p_lo + u * (p_hi - p_lo);
                    match &vg.prepared_inv {
                        Some(inv) => inv.inverse_cdf(p),
                        None => vg
                            .class
                            .inverse_cdf(&vg.params, p)
                            .expect("strategy guaranteed inverse CDF"),
                    }
                }
            };
            slots[vg.slot as usize] = x;
        }
    }

    /// Draw one satisfying joint sample into the slots, mirroring
    /// [`GroupSampler::sample_into`] draw for draw (same counters, same
    /// attempt cap, same Metropolis trigger point).
    #[inline]
    pub(crate) fn sample_into_slots(
        &mut self,
        rng: &mut PipRng,
        cfg: &SamplerConfig,
        slots: &mut [f64],
        regs: &mut Vec<f64>,
    ) -> Result<KernelStep> {
        let mut local_attempts: u64 = 0;
        loop {
            self.attempts += 1;
            local_attempts += 1;
            self.generate_candidate(rng, slots);
            if self.cond.eval_bool(slots, regs)? {
                self.accepts += 1;
                return Ok(KernelStep::Sampled);
            }
            if cfg.use_metropolis
                && self.attempts >= METROPOLIS_MIN_ATTEMPTS
                && self.rejection_rate() > cfg.metropolis_threshold
            {
                return Ok(KernelStep::Escalate);
            }
            if local_attempts >= MAX_ATTEMPTS_PER_SAMPLE {
                return Err(PipError::Sampling(format!(
                    "group rejected {MAX_ATTEMPTS_PER_SAMPLE} consecutive candidates"
                )));
            }
        }
    }

    /// Fixed-budget candidate estimation — the compiled twin of
    /// [`GroupSampler::estimate_probability`], drawing the identical
    /// candidate sequence.
    pub(crate) fn estimate_probability(
        &mut self,
        rng: &mut PipRng,
        n_attempts: u64,
        slots: &mut [f64],
        regs: &mut Vec<f64>,
    ) -> Result<f64> {
        for _ in 0..n_attempts {
            self.attempts += 1;
            self.generate_candidate(rng, slots);
            if self.cond.eval_bool(slots, regs)? {
                self.accepts += 1;
            }
        }
        Ok(self.probability_estimate())
    }

    /// Mirror of [`GroupSampler::probability_estimate`] for kernels that
    /// never escalated (escalation bails to the interpreted path).
    pub(crate) fn probability_estimate(&self) -> f64 {
        if self.attempts == 0 {
            if self.cond.is_empty() {
                return self.box_mass;
            }
            return f64::NAN;
        }
        self.box_mass * self.accepts as f64 / self.attempts as f64
    }

    /// Structural signature of everything that determines the kernel's
    /// draw sequence, folded into sample-block cache keys. Distribution
    /// class names go into `names` (exact string compare — no hash
    /// collisions decide cache hits).
    pub(crate) fn signature(&self, sig: &mut Vec<u64>, names: &mut Vec<&'static str>) {
        sig.push(self.vars.len() as u64);
        for vg in &self.vars {
            names.push(vg.class.name());
            sig.push(vg.slot as u64);
            sig.push(vg.params.len() as u64);
            sig.extend(vg.params.iter().map(|p| p.to_bits()));
            match vg.kind {
                GenKind::Natural => sig.push(0),
                GenKind::CdfBounded { p_lo, p_hi } => {
                    sig.extend([1, p_lo.to_bits(), p_hi.to_bits()])
                }
            }
        }
        self.cond.signature(sig);
        sig.extend([self.box_mass.to_bits(), self.attempts, self.accepts]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pip_core::Value;
    use pip_dist::prelude::builtin;
    use pip_dist::rng_from_seed;
    use pip_expr::{atoms, Assignment, RandomVar};

    fn x() -> RandomVar {
        RandomVar::create(builtin::normal(), &[0.0, 1.0]).unwrap()
    }

    fn slots_for(vars: &[RandomVar]) -> SlotMap {
        let mut m = SlotMap::new();
        m.intern_all(vars);
        m
    }

    #[test]
    fn tape_matches_eval_f64_bitwise() {
        let v = x();
        let w = x();
        let expr = (Equation::from(v.clone()) * 3.25 - Equation::from(w.clone()))
            / (Equation::from(w.clone()) + 10.0)
            + (-Equation::from(v.clone()));
        let slots = slots_for(&[v.clone(), w.clone()]);
        let tape = Tape::compile(&expr, &slots).unwrap();
        let mut regs = Vec::new();
        for (a, b) in [(0.5, -1.75), (1e300, 1e-300), (-3.0, 7.0)] {
            let mut asg = Assignment::new();
            asg.set(v.key, a);
            asg.set(w.key, b);
            let buf = [a, b];
            assert_eq!(
                tape.eval(&buf, &mut regs).unwrap().to_bits(),
                expr.eval_f64(&asg).unwrap().to_bits()
            );
        }
    }

    #[test]
    fn tape_division_by_zero_matches_interpreted() {
        let v = x();
        let expr = Equation::val(1.0) / Equation::from(v.clone());
        let slots = slots_for(std::slice::from_ref(&v));
        let tape = Tape::compile(&expr, &slots).unwrap();
        let mut regs = Vec::new();
        assert!(tape.eval(&[0.0], &mut regs).is_err());
        assert_eq!(tape.eval(&[2.0], &mut regs).unwrap(), 0.5);
    }

    #[test]
    fn run_segmentation_partitions_the_tape() {
        let v = x();
        let w = x();
        // Load, Load, Mul, Const, Mul, Add → several multi-op runs.
        let expr =
            Equation::from(v.clone()) * Equation::from(w.clone()) + Equation::from(v.clone()) * 2.0;
        let slots = slots_for(&[v, w]);
        let tape = Tape::compile(&expr, &slots).unwrap();
        // Runs cover every instruction exactly once, in order.
        let mut next = 0u32;
        for run in &tape.runs {
            assert_eq!(run.start, next);
            assert!(run.end > run.start);
            next = run.end;
        }
        assert_eq!(next as usize, tape.ops.len());
        // Adjacent runs never share an opcode (runs are maximal).
        for pair in tape.runs.windows(2) {
            assert_ne!(pair[0].kind, pair[1].kind);
        }
        assert!(tape.runs.len() < tape.ops.len(), "no segmentation at all");
    }

    #[test]
    fn run_segmented_eval_errors_on_earliest_division() {
        let v = x();
        let w = x();
        // Two divisions in one run: the first zero divisor (instruction
        // order) must raise, exactly like the per-instruction loop.
        let expr = Equation::val(1.0) / Equation::from(v.clone())
            + Equation::val(1.0) / Equation::from(w.clone());
        let slots = slots_for(&[v, w]);
        let tape = Tape::compile(&expr, &slots).unwrap();
        let mut regs = Vec::new();
        assert!(tape.eval(&[0.0, 1.0], &mut regs).is_err());
        assert!(tape.eval(&[1.0, 0.0], &mut regs).is_err());
        let ok = tape.eval(&[2.0, 4.0], &mut regs).unwrap();
        assert_eq!(ok, 0.75);
    }

    #[test]
    fn tape_refuses_strings_and_unmapped_vars() {
        let v = x();
        let s = Equation::val(Value::str("hi")) + Equation::val(1.0);
        let slots = slots_for(std::slice::from_ref(&v));
        assert!(Tape::compile(&s, &slots).is_none());
        let other = x();
        assert!(Tape::compile(&Equation::from(other), &slots).is_none());
    }

    #[test]
    fn eval_block_matches_scalar_lanes() {
        let v = x();
        let w = x();
        let expr =
            Equation::from(v.clone()) * Equation::from(w.clone()) + Equation::from(v.clone());
        let slots = slots_for(&[v, w]);
        let tape = Tape::compile(&expr, &slots).unwrap();
        let n = 7;
        // Column-major block: slot 0 then slot 1.
        let mut data = vec![0.0; 2 * n];
        for s in 0..n {
            data[s] = s as f64 * 0.5 - 1.0;
            data[n + s] = 2.0 - s as f64;
        }
        let (mut regs, mut out) = (Vec::new(), Vec::new());
        assert_eq!(tape.eval_block(&data, n, n, &mut regs, &mut out), None);
        let mut scalar_regs = Vec::new();
        for s in 0..n {
            let buf = [data[s], data[n + s]];
            assert_eq!(
                out[s].to_bits(),
                tape.eval(&buf, &mut scalar_regs).unwrap().to_bits()
            );
        }
    }

    #[test]
    fn eval_block_reports_earliest_error_lane() {
        let v = x();
        let expr = Equation::val(1.0) / Equation::from(v.clone());
        let slots = slots_for(&[v]);
        let tape = Tape::compile(&expr, &slots).unwrap();
        let data = vec![1.0, 0.0, 2.0, 0.0];
        let (mut regs, mut out) = (Vec::new(), Vec::new());
        assert_eq!(tape.eval_block(&data, 4, 4, &mut regs, &mut out), Some(1));
    }

    #[test]
    fn cond_tape_matches_conjunction_eval() {
        let v = x();
        let w = x();
        let cond = Conjunction::of(vec![
            atoms::gt(Equation::from(v.clone()), -0.5),
            atoms::le(
                Equation::from(v.clone()) * 2.0,
                Equation::from(w.clone()) + 1.0,
            ),
            atoms::lt(1.0, 2.0), // deterministic: Value-ordering path
        ]);
        let slots = slots_for(&[v.clone(), w.clone()]);
        let tape = CondTape::compile(&cond, &slots).unwrap();
        let mut regs = Vec::new();
        for (a, b) in [(0.0, 0.0), (-1.0, 0.0), (1.0, 0.5), (0.25, -0.5)] {
            let mut asg = Assignment::new();
            asg.set(v.key, a);
            asg.set(w.key, b);
            assert_eq!(
                tape.eval_bool(&[a, b], &mut regs).unwrap(),
                cond.eval(&asg).unwrap(),
                "at ({a}, {b})"
            );
        }
    }

    #[test]
    fn kernel_draws_identically_to_group_sampler() {
        use pip_ctable::consistency_check;
        let y = RandomVar::create(builtin::normal(), &[5.0, 10.0]).unwrap();
        let cond = Conjunction::of(vec![
            atoms::gt(Equation::from(y.clone()), -3.0),
            atoms::lt(Equation::from(y.clone()), 2.0),
        ]);
        let cfg = SamplerConfig::default();
        let bounds = consistency_check(&cond).bounds();
        let group = pip_expr::independent_groups(&cond, &[])
            .into_iter()
            .next()
            .unwrap();
        let mut sampler = GroupSampler::new(group.clone(), &bounds, &cfg);
        let mut slots_map = SlotMap::new();
        slots_map.intern_all(&group.vars);
        let mut kernel = GroupKernel::compile(&sampler, &slots_map).unwrap();

        let mut rng_a = rng_from_seed(42);
        let mut rng_b = rng_from_seed(42);
        let mut asg = Assignment::new();
        let mut buf = vec![0.0; slots_map.len()];
        let mut regs = Vec::new();
        for _ in 0..500 {
            sampler
                .sample_into(&mut rng_a, &cfg, &bounds, &mut asg)
                .unwrap();
            let step = kernel
                .sample_into_slots(&mut rng_b, &cfg, &mut buf, &mut regs)
                .unwrap();
            assert_eq!(step, KernelStep::Sampled);
            assert_eq!(
                asg.get(y.key).unwrap().to_bits(),
                buf[0].to_bits(),
                "kernel diverged from sampler"
            );
        }
        assert_eq!(sampler.attempts, kernel.attempts);
        assert_eq!(sampler.accepts, kernel.accepts);
        assert_eq!(
            sampler.probability_estimate().to_bits(),
            kernel.probability_estimate().to_bits()
        );
    }

    #[test]
    fn kernel_escalates_at_interpreted_trigger() {
        // Same setup as strategy.rs's metropolis_switch test: the kernel
        // must report Escalate instead of switching.
        let y = x();
        let cond = Conjunction::single(atoms::gt(Equation::from(y.clone()), 4.0));
        let cfg = SamplerConfig {
            use_cdf_sampling: false,
            ..Default::default()
        };
        let bounds = pip_ctable::consistency_check(&cond).bounds();
        let group = pip_expr::independent_groups(&cond, &[])
            .into_iter()
            .next()
            .unwrap();
        let sampler = GroupSampler::new(group.clone(), &bounds, &cfg);
        let mut slots_map = SlotMap::new();
        slots_map.intern_all(&group.vars);
        let mut kernel = GroupKernel::compile(&sampler, &slots_map).unwrap();
        let mut rng = rng_from_seed(5);
        let mut buf = vec![0.0; 1];
        let mut regs = Vec::new();
        let mut escalated = false;
        for _ in 0..400 {
            match kernel
                .sample_into_slots(&mut rng, &cfg, &mut buf, &mut regs)
                .unwrap()
            {
                KernelStep::Sampled => {}
                KernelStep::Escalate => {
                    escalated = true;
                    break;
                }
            }
        }
        assert!(escalated, "kernel never hit the Metropolis trigger");
    }

    #[test]
    fn kernel_estimate_matches_sampler_estimate() {
        let y = x();
        let cond = Conjunction::single(atoms::gt(Equation::from(y.clone()), 1.0));
        let cfg = SamplerConfig::naive(100);
        let group = pip_expr::independent_groups(&cond, &[])
            .into_iter()
            .next()
            .unwrap();
        let bounds = pip_ctable::BoundsMap::new();
        let mut sampler = GroupSampler::new(group.clone(), &bounds, &cfg);
        let mut slots_map = SlotMap::new();
        slots_map.intern_all(&group.vars);
        let mut kernel = GroupKernel::compile(&sampler, &slots_map).unwrap();
        let mut rng_a = rng_from_seed(9);
        let mut rng_b = rng_from_seed(9);
        let pa = sampler.estimate_probability(&mut rng_a, 5000).unwrap();
        let mut buf = vec![0.0; 1];
        let mut regs = Vec::new();
        let pb = kernel
            .estimate_probability(&mut rng_b, 5000, &mut buf, &mut regs)
            .unwrap();
        assert_eq!(pa.to_bits(), pb.to_bits());
        assert_eq!(rng_a.state(), rng_b.state(), "draw counts diverged");
    }
}
