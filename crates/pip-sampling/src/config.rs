//! Sampler configuration: the ε–δ precision goal of Algorithm 4.3 plus
//! strategy toggles used by the ablation benchmarks.

/// Configuration of the expectation operator and all samplers.
#[derive(Debug, Clone)]
pub struct SamplerConfig {
    /// Confidence parameter ε of the precision goal `{ε, δ}`: the
    /// adaptive loop targets `P[|estimate − truth| > δ·|truth|] < ε`.
    pub epsilon: f64,
    /// Relative-error parameter δ.
    pub delta: f64,
    /// Floor on sample count before the stopping rule may fire (variance
    /// estimates from a handful of samples are too noisy to trust).
    pub min_samples: usize,
    /// Hard cap on samples per expectation (the paper caps at `1/δ`).
    pub max_samples: usize,
    /// Rejection-rate threshold beyond which a group switches to
    /// Metropolis, per Algorithm 4.3 line 19 ("Metropolis Threshold").
    pub metropolis_threshold: f64,
    /// Metropolis burn-in steps (`C_burn_in` in the paper's cost model).
    pub metropolis_burn_in: usize,
    /// Random-walk steps between retained Metropolis samples.
    pub metropolis_thinning: usize,
    /// Strategy toggle: use inverse-CDF sampling restricted to
    /// consistency-derived bounds (Section IV-A(b)). Off = ablation.
    pub use_cdf_sampling: bool,
    /// Strategy toggle: decompose conditions into minimal independent
    /// subsets (Section IV-A(c)). Off = one monolithic group.
    pub use_independence: bool,
    /// Strategy toggle: run Algorithm 3.2 and exploit its bounds map.
    pub use_consistency: bool,
    /// Strategy toggle: permit the Metropolis fallback (Section IV-A(d)).
    pub use_metropolis: bool,
    /// Strategy toggle: use exact CDF integration where available, which
    /// can sidestep sampling entirely (Section III-A).
    pub use_exact_cdf: bool,
    /// Seed from which all per-world, per-variable generator seeds derive.
    pub world_seed: u64,
    /// Worker threads for the parallel Monte-Carlo runtime. `1` keeps
    /// every operator on the caller's thread; `> 1` routes aggregate and
    /// confidence heads through [`crate::parallel`]. Results are
    /// bit-identical for every thread count (per-row / per-chunk RNG
    /// streams are derived from `(world_seed, site)` alone).
    pub threads: usize,
    /// Samples per work chunk in the chunked expectation executor
    /// ([`crate::parallel::expectation_chunked`]). Chunk boundaries are
    /// part of the result's definition: the adaptive stopping rule is
    /// evaluated at chunk granularity, in chunk order.
    pub chunk_samples: usize,
    /// Run the sampling phase through the compiled kernels of
    /// [`crate::tape`] (slot-indexed evaluation tapes + columnar sample
    /// blocks) instead of the interpreted tree-walking loop. The two
    /// paths are bit-identical at every seed and thread count — the
    /// interpreted path remains the semantics oracle, and anything the
    /// compiler cannot express (or a Metropolis escalation) falls back
    /// to it automatically. Off = the pre-compiler engine, kept for
    /// benchmarks and the equivalence test suite.
    pub compile: bool,
    /// Let compiled execution reuse cached sample blocks
    /// ([`crate::blocks`]) when the identical `(group, seed-site,
    /// counters)` draw sequence recurs. Pure memoization: toggling this
    /// can never change any result, only skip redundant resampling.
    pub reuse_blocks: bool,
}

impl Default for SamplerConfig {
    fn default() -> Self {
        SamplerConfig {
            epsilon: 0.05,
            delta: 0.01,
            min_samples: 32,
            max_samples: 10_000,
            metropolis_threshold: 0.995,
            metropolis_burn_in: 500,
            metropolis_thinning: 8,
            use_cdf_sampling: true,
            use_independence: true,
            use_consistency: true,
            use_metropolis: true,
            use_exact_cdf: true,
            world_seed: 0x5151_5151,
            threads: 1,
            chunk_samples: 128,
            compile: true,
            reuse_blocks: true,
        }
    }
}

impl SamplerConfig {
    /// A configuration that runs a *fixed* number of samples, disabling
    /// the adaptive stop (used by the figure benchmarks, which sweep the
    /// sample count explicitly).
    pub fn fixed_samples(n: usize) -> Self {
        SamplerConfig {
            min_samples: n,
            max_samples: n,
            ..Default::default()
        }
    }

    /// Change the seed (distinct trials in the benchmarks).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.world_seed = seed;
        self
    }

    /// Change the worker-thread count for the parallel runtime. Thread
    /// count never changes results, only wall-clock time.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Toggle the sampling compiler. Both settings produce bit-identical
    /// results; `false` forces the interpreted reference path.
    pub fn with_compile(mut self, compile: bool) -> Self {
        self.compile = compile;
        self
    }

    /// Toggle sample-block reuse (pure memoization, value-neutral).
    pub fn with_block_reuse(mut self, reuse: bool) -> Self {
        self.reuse_blocks = reuse;
        self
    }

    /// Baseline configuration with every PIP-specific optimization off —
    /// pure rejection sampling through the interpreted engine, no
    /// compiled kernels and no sample-block reuse: the ablation
    /// reference point.
    pub fn naive(n: usize) -> Self {
        SamplerConfig {
            use_cdf_sampling: false,
            use_independence: false,
            use_consistency: false,
            use_metropolis: false,
            use_exact_cdf: false,
            compile: false,
            reuse_blocks: false,
            ..Self::fixed_samples(n)
        }
    }

    /// Per-row budget when estimating a sum over `n_rows` rows.
    ///
    /// By the law of large numbers the variance of a sum of `N`
    /// independent per-row estimates with equal σ scales like `σ/√N`
    /// (paper Section IV-C), so each row can tolerate a δ relaxed by √N
    /// at unchanged total precision.
    pub fn scaled_for_rows(&self, n_rows: usize) -> Self {
        let factor = (n_rows.max(1) as f64).sqrt();
        SamplerConfig {
            delta: self.delta * factor,
            max_samples: ((self.max_samples as f64 / factor).ceil() as usize).max(self.min_samples),
            ..self.clone()
        }
    }

    /// The z-score `target = √2·erf⁻¹(1−ε)` from Algorithm 4.3 line 3.
    pub fn z_target(&self) -> f64 {
        std::f64::consts::SQRT_2 * pip_dist::special::erf_inv(1.0 - self.epsilon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_sane() {
        let c = SamplerConfig::default();
        assert!(c.epsilon > 0.0 && c.epsilon < 1.0);
        assert!(c.min_samples <= c.max_samples);
        assert!(c.use_cdf_sampling && c.use_independence);
    }

    #[test]
    fn fixed_pins_both_bounds() {
        let c = SamplerConfig::fixed_samples(77);
        assert_eq!(c.min_samples, 77);
        assert_eq!(c.max_samples, 77);
    }

    #[test]
    fn naive_disables_everything() {
        let c = SamplerConfig::naive(10);
        assert!(!c.use_cdf_sampling);
        assert!(!c.use_independence);
        assert!(!c.use_consistency);
        assert!(!c.use_metropolis);
        assert!(!c.use_exact_cdf);
        assert!(!c.compile, "ablation baseline must run interpreted");
        assert!(!c.reuse_blocks);
    }

    #[test]
    fn row_scaling_relaxes_delta() {
        let c = SamplerConfig::default();
        let s = c.scaled_for_rows(100);
        assert!((s.delta - c.delta * 10.0).abs() < 1e-12);
        assert!(s.max_samples <= c.max_samples);
        assert!(s.max_samples >= s.min_samples);
    }

    #[test]
    fn threads_default_serial_and_clamped() {
        let c = SamplerConfig::default();
        assert_eq!(c.threads, 1);
        assert!(c.chunk_samples > 0);
        assert_eq!(c.clone().with_threads(0).threads, 1);
        assert_eq!(c.clone().with_threads(8).threads, 8);
    }

    #[test]
    fn compiler_knobs_default_on_and_toggle() {
        let c = SamplerConfig::default();
        assert!(c.compile && c.reuse_blocks);
        let c = c.with_compile(false).with_block_reuse(false);
        assert!(!c.compile && !c.reuse_blocks);
    }

    #[test]
    fn z_target_matches_normal_quantile() {
        // ε = 0.05 → two-sided 95% → z ≈ 1.96
        let c = SamplerConfig::default();
        assert!((c.z_target() - 1.96).abs() < 0.01, "{}", c.z_target());
    }
}
