//! Streaming sampling heads for the pipelined executor.
//!
//! The table-based operators in [`crate::aggregate`] and
//! [`crate::confidence`] take a fully materialized [`CTable`]; a
//! pull-based physical plan instead produces rows one at a time. The
//! heads here consume that stream while reproducing the table-based
//! operators *bit for bit*:
//!
//! * [`ConfStream`] — the row-level `conf()` head. Rows are admitted in
//!   arrival order and their confidences computed a fixed-size wave at a
//!   time on the shared pool. Each row's sampler is seeded by its global
//!   row index (never by wave or thread), so every wave size and thread
//!   count produces the serial operator's numbers. With
//!   `SamplerConfig::compile` (the default) each `conf` runs through the
//!   compiled kernels of [`crate::tape`] and the probe cache of
//!   [`crate::blocks`] — join fan-outs that re-evaluate one gate group
//!   at the same seed-site skip the re-draw entirely, bit-identically.
//! * [`StreamingGroups`] — incremental group-by partitioning with the
//!   exact key semantics of [`pip_ctable::partition_by`]: deterministic
//!   keys only, groups emitted in first-appearance order. With no group
//!   columns it yields the single (possibly empty) whole-input group the
//!   aggregate executor expects.

use std::collections::HashMap;

use pip_core::{PipError, Result, Schema, Value};

use pip_ctable::{CRow, CTable};

use crate::confidence::conf;
use crate::config::SamplerConfig;
use crate::parallel::ParallelSampler;

/// Rows whose confidences are evaluated per wave of [`ConfStream`]. A
/// constant, like the chunked executor's wave size: the *values* are
/// wave-size independent (each row's stream derives from its global
/// index), this only bounds latency and batch overhead.
pub const CONF_WAVE: usize = 16;

/// Streaming row-level confidence head: push rows, pop `(row, conf)`
/// pairs in row order.
pub struct ConfStream<'p> {
    cfg: SamplerConfig,
    pool: &'p ParallelSampler,
    pending: Vec<CRow>,
    /// Global index of `pending[0]` (rows admitted so far minus pending).
    base_index: u64,
}

impl<'p> ConfStream<'p> {
    pub fn new(cfg: &SamplerConfig, pool: &'p ParallelSampler) -> Self {
        ConfStream {
            cfg: cfg.clone(),
            pool,
            pending: Vec::new(),
            base_index: 0,
        }
    }

    /// Evaluate every pending row's confidence (one wave).
    fn drain_wave(&mut self) -> Result<Vec<(CRow, f64)>> {
        let rows = std::mem::take(&mut self.pending);
        let base = self.base_index;
        self.base_index += rows.len() as u64;
        let confs: Vec<Result<f64>> = self.pool.run(self.cfg.threads, rows.len(), |i| {
            conf(&rows[i].condition, &self.cfg, base + i as u64)
        });
        rows.into_iter()
            .zip(confs)
            .map(|(r, p)| Ok((r, p?)))
            .collect()
    }

    /// Admit one row. Returns a completed wave's `(row, conf)` pairs
    /// when the wave fills, an empty vec otherwise.
    pub fn push(&mut self, row: CRow) -> Result<Vec<(CRow, f64)>> {
        self.pending.push(row);
        if self.pending.len() >= CONF_WAVE {
            self.drain_wave()
        } else {
            Ok(Vec::new())
        }
    }

    /// Flush the final partial wave.
    pub fn finish(&mut self) -> Result<Vec<(CRow, f64)>> {
        if self.pending.is_empty() {
            return Ok(Vec::new());
        }
        self.drain_wave()
    }
}

/// Incremental deterministic-key partitioning for the aggregate head.
pub struct StreamingGroups {
    schema: Schema,
    idx: Vec<usize>,
    names: Vec<String>,
    order: Vec<Vec<Value>>,
    parts: HashMap<Vec<Value>, Vec<CRow>>,
}

impl StreamingGroups {
    /// Partition incoming rows of `schema` by the named columns.
    pub fn new(schema: Schema, cols: &[String]) -> Result<Self> {
        let idx = cols
            .iter()
            .map(|n| schema.index_of(n))
            .collect::<Result<Vec<_>>>()?;
        Ok(StreamingGroups {
            schema,
            idx,
            names: cols.to_vec(),
            order: Vec::new(),
            parts: HashMap::new(),
        })
    }

    /// Admit one row; errors on a symbolic (non-constant) key cell, the
    /// same restriction as [`pip_ctable::partition_by`].
    pub fn push(&mut self, row: CRow) -> Result<()> {
        let key = self
            .idx
            .iter()
            .zip(&self.names)
            .map(|(&i, name)| {
                row.cells[i].as_const().cloned().ok_or_else(|| {
                    PipError::Unsupported(format!("group-by on uncertain column '{name}'"))
                })
            })
            .collect::<Result<Vec<Value>>>()?;
        self.parts
            .entry(key.clone())
            .or_insert_with(|| {
                self.order.push(key);
                Vec::new()
            })
            .push(row);
        Ok(())
    }

    /// Emit `(key, sub-table)` pairs in first-appearance order. With no
    /// group columns the result is always exactly one group — the whole
    /// input, possibly empty — matching the scalar-aggregate convention.
    pub fn finish(mut self) -> Result<Vec<(Vec<Value>, CTable)>> {
        if self.idx.is_empty() {
            let rows = self.parts.remove(&Vec::new()).unwrap_or_default();
            return Ok(vec![(Vec::new(), CTable::new(self.schema, rows)?)]);
        }
        self.order
            .into_iter()
            .map(|key| {
                let rows = self.parts.remove(&key).expect("partition exists");
                Ok((key.clone(), CTable::new(self.schema.clone(), rows)?))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pip_core::{tuple, DataType};
    use pip_ctable::partition_by;
    use pip_dist::prelude::builtin;
    use pip_expr::{atoms, Conjunction, Equation, RandomVar};

    fn normal(mu: f64, sigma: f64) -> RandomVar {
        RandomVar::create(builtin::normal(), &[mu, sigma]).unwrap()
    }

    fn gated_table(n: usize) -> CTable {
        let schema = Schema::of(&[("v", DataType::Symbolic)]);
        let mut t = CTable::empty(schema);
        for i in 0..n {
            let y = normal(i as f64, 1.0);
            t.push(CRow::new(
                vec![Equation::val(i as f64)],
                Conjunction::single(atoms::gt(Equation::from(y), 0.5)),
            ))
            .unwrap();
        }
        t
    }

    #[test]
    fn conf_stream_matches_serial_conf_across_wave_boundaries() {
        // 37 rows: crosses two wave boundaries plus a partial tail.
        let t = gated_table(37);
        let cfg = SamplerConfig::default();
        let pool = ParallelSampler::new(4);
        let mut stream = ConfStream::new(&cfg.clone().with_threads(4), &pool);
        let mut got: Vec<(CRow, f64)> = Vec::new();
        for row in t.rows() {
            got.extend(stream.push(row.clone()).unwrap());
        }
        got.extend(stream.finish().unwrap());
        assert_eq!(got.len(), t.len());
        for (i, (row, p)) in got.iter().enumerate() {
            assert_eq!(row, &t.rows()[i], "row order preserved");
            assert_eq!(*p, conf(&row.condition, &cfg, i as u64).unwrap());
        }
        // finish() on an empty tail is a no-op.
        assert!(stream.finish().unwrap().is_empty());
    }

    #[test]
    fn streaming_groups_match_partition_by() {
        let schema = Schema::of(&[("g", DataType::Str), ("v", DataType::Int)]);
        let t = CTable::from_tuples(
            schema.clone(),
            &[
                tuple!["a", 1i64],
                tuple!["b", 2i64],
                tuple!["a", 3i64],
                tuple!["c", 4i64],
                tuple!["b", 5i64],
            ],
        )
        .unwrap();
        let mut g = StreamingGroups::new(schema, &["g".to_string()]).unwrap();
        for row in t.rows() {
            g.push(row.clone()).unwrap();
        }
        let streamed = g.finish().unwrap();
        let reference = partition_by(&t, &["g"]).unwrap();
        assert_eq!(streamed.len(), reference.len());
        for ((k1, t1), (k2, t2)) in streamed.iter().zip(&reference) {
            assert_eq!(k1, k2);
            assert_eq!(t1.rows(), t2.rows());
        }
    }

    #[test]
    fn streaming_groups_scalar_convention_and_symbolic_keys() {
        let schema = Schema::of(&[("v", DataType::Symbolic)]);
        // No group columns, no rows: still one (empty) group.
        let g = StreamingGroups::new(schema.clone(), &[]).unwrap();
        let out = g.finish().unwrap();
        assert_eq!(out.len(), 1);
        assert!(out[0].0.is_empty());
        assert!(out[0].1.is_empty());
        // Symbolic key cells are rejected at push time.
        let mut g = StreamingGroups::new(schema, &["v".to_string()]).unwrap();
        let y = normal(0.0, 1.0);
        let err = g.push(CRow::unconditional(vec![Equation::from(y)]));
        assert!(matches!(err, Err(PipError::Unsupported(_))));
    }
}
