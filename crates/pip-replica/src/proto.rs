//! The replication wire protocol: a length-prefixed, checksummed message
//! stream over one TCP connection per follower.
//!
//! ```text
//! connection :=  MAGIC(8 = "PIPREPL2")  message*      (follower writes first)
//! message    :=  kind(u8) len(u32 LE) crc32(u32 LE) payload(len bytes)
//! ```
//!
//! | kind | name      | direction          | payload                                            |
//! |------|-----------|--------------------|----------------------------------------------------|
//! | 1    | HELLO     | follower → primary | gen(u64) version(u64) epoch(u64) watermark(u64)    |
//! | 2    | SNAPSHOT  | primary → follower | one snapshot JSON document                         |
//! | 3    | FRAME     | primary → follower | epoch(u64 LE) + one WAL-entry JSON document        |
//! | 4    | HEARTBEAT | primary → follower | epoch(u64) version(u64) watermark(u64)             |
//! | 5    | ACK       | follower → primary | version(u64) watermark(u64)                        |
//!
//! All integers are little-endian. Three fields were added over the v1
//! protocol (hence the magic bump — a v1 peer is refused cleanly at the
//! preamble instead of misparsing payloads):
//!
//! * **epoch** — the replication generation minted by `PROMOTE`. The
//!   primary announces its epoch in the first HEARTBEAT and stamps it
//!   into every FRAME; a follower refuses a primary whose epoch is
//!   behind its own (it is talking to a deposed node) and a primary that
//!   hears a *higher* epoch in HELLO fences itself — that HELLO is the
//!   new primary's deposition notice.
//! * **watermark** — the sender's variable-id allocator position
//!   ([`pip_expr::VarId::watermark`]). Each side reserves through the
//!   other's watermark, which closes the unreferenced-variable-id
//!   collision the catch-up prefix-skip used to leave open (see
//!   `primary.rs`).
//!
//! `SNAPSHOT` and `FRAME` payloads are exactly the byte strings the
//! store's codecs produce ([`pip_store::snapshot_to_bytes`] and the WAL
//! frame payload respectively) — the follower feeds them to the same
//! decode path recovery uses, which is what keeps replicated state
//! bit-identical to locally recovered state. The CRC guards transport
//! integrity; a mismatch is a protocol error that drops the connection
//! (the follower reconnects and resumes from its applied version).

use std::io::{Read, Write};

use pip_core::{PipError, Result};
use pip_store::crc32;

/// Connection preamble, written by the follower before its HELLO.
pub const REPL_MAGIC: &[u8; 8] = b"PIPREPL2";

/// Upper bound on one message payload (mirrors the WAL frame cap; a
/// snapshot over this would have been refused at write time too).
const MAX_PAYLOAD: u32 = 1 << 30;

/// One replication protocol message.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Follower's opening: its active local WAL generation, applied
    /// catalog version, replication epoch, and variable-id watermark.
    /// The primary decides frame vs snapshot catch-up from the version;
    /// an epoch *ahead* of the primary's fences the primary (this is
    /// how a freshly promoted node deposes its predecessor); the
    /// generation is informational.
    Hello {
        gen: u64,
        version: u64,
        epoch: u64,
        watermark: u64,
    },
    /// Full-catalog state; the follower replaces everything with it.
    Snapshot(Vec<u8>),
    /// One WAL entry in log order, stamped with the primary's epoch.
    Frame { epoch: u64, payload: Vec<u8> },
    /// Primary's epoch, current catalog version, and variable-id
    /// watermark. Sent immediately after HELLO (the epoch announcement)
    /// and when the feed is idle, so the follower can measure staleness
    /// without traffic.
    Heartbeat {
        epoch: u64,
        version: u64,
        watermark: u64,
    },
    /// Follower's applied catalog version and variable-id watermark.
    Ack { version: u64, watermark: u64 },
}

impl Message {
    fn kind(&self) -> u8 {
        match self {
            Message::Hello { .. } => 1,
            Message::Snapshot(_) => 2,
            Message::Frame { .. } => 3,
            Message::Heartbeat { .. } => 4,
            Message::Ack { .. } => 5,
        }
    }
}

fn u64s(fields: &[u64]) -> Vec<u8> {
    let mut p = Vec::with_capacity(fields.len() * 8);
    for f in fields {
        p.extend_from_slice(&f.to_le_bytes());
    }
    p
}

fn payload_u64s<const N: usize>(payload: &[u8], what: &str) -> Result<[u64; N]> {
    if payload.len() != N * 8 {
        return Err(PipError::corrupt(format!(
            "replication {what} payload is not {} bytes",
            N * 8
        )));
    }
    let mut out = [0u64; N];
    for (i, v) in out.iter_mut().enumerate() {
        *v = u64::from_le_bytes(payload[i * 8..(i + 1) * 8].try_into().unwrap());
    }
    Ok(out)
}

/// Write one message (kind + length + checksum + payload).
pub fn write_message(w: &mut impl Write, msg: &Message) -> Result<()> {
    let payload: Vec<u8> = match msg {
        Message::Hello {
            gen,
            version,
            epoch,
            watermark,
        } => u64s(&[*gen, *version, *epoch, *watermark]),
        Message::Snapshot(bytes) => bytes.clone(),
        Message::Frame { epoch, payload } => {
            let mut p = Vec::with_capacity(8 + payload.len());
            p.extend_from_slice(&epoch.to_le_bytes());
            p.extend_from_slice(payload);
            p
        }
        Message::Heartbeat {
            epoch,
            version,
            watermark,
        } => u64s(&[*epoch, *version, *watermark]),
        Message::Ack { version, watermark } => u64s(&[*version, *watermark]),
    };
    if payload.len() > MAX_PAYLOAD as usize {
        return Err(PipError::io(format!(
            "replication message payload of {} bytes exceeds the {MAX_PAYLOAD} byte cap",
            payload.len()
        )));
    }
    let mut header = [0u8; 9];
    header[0] = msg.kind();
    header[1..5].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    header[5..9].copy_from_slice(&crc32(&payload).to_le_bytes());
    w.write_all(&header)?;
    w.write_all(&payload)?;
    Ok(())
}

/// Read one message. An unknown kind, oversized length, or checksum
/// mismatch is corruption (the caller drops the connection); a clean EOF
/// before the first header byte surfaces as the underlying I/O error.
pub fn read_message(r: &mut impl Read) -> Result<Message> {
    let mut header = [0u8; 9];
    r.read_exact(&mut header)?;
    let kind = header[0];
    let len = u32::from_le_bytes(header[1..5].try_into().unwrap());
    let crc = u32::from_le_bytes(header[5..9].try_into().unwrap());
    if len > MAX_PAYLOAD {
        return Err(PipError::corrupt(format!(
            "replication message claims a {len} byte payload, over the {MAX_PAYLOAD} byte cap"
        )));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    if crc32(&payload) != crc {
        return Err(PipError::corrupt("replication message fails its checksum"));
    }
    match kind {
        1 => {
            let [gen, version, epoch, watermark] = payload_u64s::<4>(&payload, "HELLO")?;
            Ok(Message::Hello {
                gen,
                version,
                epoch,
                watermark,
            })
        }
        2 => Ok(Message::Snapshot(payload)),
        3 => {
            if payload.len() < 8 {
                return Err(PipError::corrupt(
                    "replication FRAME payload is shorter than its epoch stamp",
                ));
            }
            let epoch = u64::from_le_bytes(payload[..8].try_into().unwrap());
            Ok(Message::Frame {
                epoch,
                payload: payload[8..].to_vec(),
            })
        }
        4 => {
            let [epoch, version, watermark] = payload_u64s::<3>(&payload, "HEARTBEAT")?;
            Ok(Message::Heartbeat {
                epoch,
                version,
                watermark,
            })
        }
        5 => {
            let [version, watermark] = payload_u64s::<2>(&payload, "ACK")?;
            Ok(Message::Ack { version, watermark })
        }
        other => Err(PipError::corrupt(format!(
            "unknown replication message kind {other}"
        ))),
    }
}

/// Write the connection preamble (follower side).
pub fn write_preamble(w: &mut impl Write) -> Result<()> {
    w.write_all(REPL_MAGIC)?;
    Ok(())
}

/// Read and verify the connection preamble (primary side).
pub fn read_preamble(r: &mut impl Read) -> Result<()> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != REPL_MAGIC {
        return Err(PipError::corrupt(
            "connection does not speak the replication protocol",
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(msg: Message) -> Message {
        let mut buf = Vec::new();
        write_message(&mut buf, &msg).unwrap();
        read_message(&mut &buf[..]).unwrap()
    }

    #[test]
    fn messages_round_trip() {
        for msg in [
            Message::Hello {
                gen: 3,
                version: 17,
                epoch: 2,
                watermark: 41,
            },
            Message::Snapshot(b"{\"format\":1}".to_vec()),
            Message::Frame {
                epoch: 7,
                payload: b"{\"v\":9,\"op\":{}}".to_vec(),
            },
            Message::Heartbeat {
                epoch: 7,
                version: 42,
                watermark: 13,
            },
            Message::Ack {
                version: 41,
                watermark: 13,
            },
        ] {
            assert_eq!(round_trip(msg.clone()), msg);
        }
    }

    #[test]
    fn corruption_is_detected() {
        let mut buf = Vec::new();
        write_message(
            &mut buf,
            &Message::Frame {
                epoch: 1,
                payload: b"payload".to_vec(),
            },
        )
        .unwrap();
        let last = buf.len() - 1;
        buf[last] ^= 0x01;
        assert!(matches!(
            read_message(&mut &buf[..]),
            Err(PipError::Corrupt(_))
        ));
        // Unknown kind.
        let mut buf = Vec::new();
        write_message(
            &mut buf,
            &Message::Ack {
                version: 1,
                watermark: 0,
            },
        )
        .unwrap();
        buf[0] = 99;
        assert!(matches!(
            read_message(&mut &buf[..]),
            Err(PipError::Corrupt(_))
        ));
        // Truncated stream.
        let mut buf = Vec::new();
        write_message(&mut buf, &Message::Snapshot(vec![1, 2, 3])).unwrap();
        buf.truncate(buf.len() - 2);
        assert!(read_message(&mut &buf[..]).is_err());
        // FRAME shorter than its epoch stamp.
        let mut buf = Vec::new();
        let short = [3u8].to_vec(); // kind FRAME, 3-byte payload
        let mut msg = vec![3u8];
        msg.extend_from_slice(&(short.len() as u32).to_le_bytes());
        msg.extend_from_slice(&crc32(&short).to_le_bytes());
        msg.extend_from_slice(&short);
        buf.extend_from_slice(&msg);
        assert!(matches!(
            read_message(&mut &buf[..]),
            Err(PipError::Corrupt(_))
        ));
    }

    #[test]
    fn preamble_round_trips_and_rejects_strangers() {
        let mut buf = Vec::new();
        write_preamble(&mut buf).unwrap();
        read_preamble(&mut &buf[..]).unwrap();
        assert!(matches!(
            read_preamble(&mut &b"GET / HT"[..]),
            Err(PipError::Corrupt(_))
        ));
        // The v1 magic is refused too — the field layout changed.
        assert!(matches!(
            read_preamble(&mut &b"PIPREPL1"[..]),
            Err(PipError::Corrupt(_))
        ));
    }
}
