//! The replication wire protocol: a length-prefixed, checksummed message
//! stream over one TCP connection per follower.
//!
//! ```text
//! connection :=  MAGIC(8 = "PIPREPL1")  message*      (follower writes first)
//! message    :=  kind(u8) len(u32 LE) crc32(u32 LE) payload(len bytes)
//! ```
//!
//! | kind | name      | direction          | payload                         |
//! |------|-----------|--------------------|---------------------------------|
//! | 1    | HELLO     | follower → primary | gen(u64 LE) version(u64 LE)     |
//! | 2    | SNAPSHOT  | primary → follower | one snapshot JSON document      |
//! | 3    | FRAME     | primary → follower | one WAL-entry JSON document     |
//! | 4    | HEARTBEAT | primary → follower | primary version(u64 LE)         |
//! | 5    | ACK       | follower → primary | applied version(u64 LE)         |
//!
//! `SNAPSHOT` and `FRAME` payloads are exactly the byte strings the
//! store's codecs produce ([`pip_store::snapshot_to_bytes`] and the WAL
//! frame payload respectively) — the follower feeds them to the same
//! decode path recovery uses, which is what keeps replicated state
//! bit-identical to locally recovered state. The CRC guards transport
//! integrity; a mismatch is a protocol error that drops the connection
//! (the follower reconnects and resumes from its applied version).

use std::io::{Read, Write};

use pip_core::{PipError, Result};
use pip_store::crc32;

/// Connection preamble, written by the follower before its HELLO.
pub const REPL_MAGIC: &[u8; 8] = b"PIPREPL1";

/// Upper bound on one message payload (mirrors the WAL frame cap; a
/// snapshot over this would have been refused at write time too).
const MAX_PAYLOAD: u32 = 1 << 30;

/// One replication protocol message.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Follower's opening: its active local WAL generation and applied
    /// catalog version. The primary decides frame vs snapshot catch-up
    /// from the version; the generation is informational (logged, and
    /// room for smarter retention negotiation later).
    Hello { gen: u64, version: u64 },
    /// Full-catalog state; the follower replaces everything with it.
    Snapshot(Vec<u8>),
    /// One WAL entry in log order.
    Frame(Vec<u8>),
    /// Primary's current catalog version, sent when the feed is idle so
    /// the follower can measure staleness without traffic.
    Heartbeat(u64),
    /// Follower's applied catalog version.
    Ack(u64),
}

impl Message {
    fn kind(&self) -> u8 {
        match self {
            Message::Hello { .. } => 1,
            Message::Snapshot(_) => 2,
            Message::Frame(_) => 3,
            Message::Heartbeat(_) => 4,
            Message::Ack(_) => 5,
        }
    }
}

fn u64_payload(v: u64) -> Vec<u8> {
    v.to_le_bytes().to_vec()
}

fn payload_u64(payload: &[u8], what: &str) -> Result<u64> {
    let bytes: [u8; 8] = payload
        .try_into()
        .map_err(|_| PipError::corrupt(format!("replication {what} payload is not 8 bytes")))?;
    Ok(u64::from_le_bytes(bytes))
}

/// Write one message (kind + length + checksum + payload).
pub fn write_message(w: &mut impl Write, msg: &Message) -> Result<()> {
    let payload: Vec<u8> = match msg {
        Message::Hello { gen, version } => {
            let mut p = Vec::with_capacity(16);
            p.extend_from_slice(&gen.to_le_bytes());
            p.extend_from_slice(&version.to_le_bytes());
            p
        }
        Message::Snapshot(bytes) | Message::Frame(bytes) => bytes.clone(),
        Message::Heartbeat(v) | Message::Ack(v) => u64_payload(*v),
    };
    if payload.len() > MAX_PAYLOAD as usize {
        return Err(PipError::io(format!(
            "replication message payload of {} bytes exceeds the {MAX_PAYLOAD} byte cap",
            payload.len()
        )));
    }
    let mut header = [0u8; 9];
    header[0] = msg.kind();
    header[1..5].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    header[5..9].copy_from_slice(&crc32(&payload).to_le_bytes());
    w.write_all(&header)?;
    w.write_all(&payload)?;
    Ok(())
}

/// Read one message. An unknown kind, oversized length, or checksum
/// mismatch is corruption (the caller drops the connection); a clean EOF
/// before the first header byte surfaces as the underlying I/O error.
pub fn read_message(r: &mut impl Read) -> Result<Message> {
    let mut header = [0u8; 9];
    r.read_exact(&mut header)?;
    let kind = header[0];
    let len = u32::from_le_bytes(header[1..5].try_into().unwrap());
    let crc = u32::from_le_bytes(header[5..9].try_into().unwrap());
    if len > MAX_PAYLOAD {
        return Err(PipError::corrupt(format!(
            "replication message claims a {len} byte payload, over the {MAX_PAYLOAD} byte cap"
        )));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    if crc32(&payload) != crc {
        return Err(PipError::corrupt("replication message fails its checksum"));
    }
    match kind {
        1 => {
            if payload.len() != 16 {
                return Err(PipError::corrupt(
                    "replication HELLO payload is not 16 bytes",
                ));
            }
            Ok(Message::Hello {
                gen: u64::from_le_bytes(payload[..8].try_into().unwrap()),
                version: u64::from_le_bytes(payload[8..].try_into().unwrap()),
            })
        }
        2 => Ok(Message::Snapshot(payload)),
        3 => Ok(Message::Frame(payload)),
        4 => Ok(Message::Heartbeat(payload_u64(&payload, "HEARTBEAT")?)),
        5 => Ok(Message::Ack(payload_u64(&payload, "ACK")?)),
        other => Err(PipError::corrupt(format!(
            "unknown replication message kind {other}"
        ))),
    }
}

/// Write the connection preamble (follower side).
pub fn write_preamble(w: &mut impl Write) -> Result<()> {
    w.write_all(REPL_MAGIC)?;
    Ok(())
}

/// Read and verify the connection preamble (primary side).
pub fn read_preamble(r: &mut impl Read) -> Result<()> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != REPL_MAGIC {
        return Err(PipError::corrupt(
            "connection does not speak the replication protocol",
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(msg: Message) -> Message {
        let mut buf = Vec::new();
        write_message(&mut buf, &msg).unwrap();
        read_message(&mut &buf[..]).unwrap()
    }

    #[test]
    fn messages_round_trip() {
        for msg in [
            Message::Hello {
                gen: 3,
                version: 17,
            },
            Message::Snapshot(b"{\"format\":1}".to_vec()),
            Message::Frame(b"{\"v\":9,\"op\":{}}".to_vec()),
            Message::Heartbeat(42),
            Message::Ack(41),
        ] {
            assert_eq!(round_trip(msg.clone()), msg);
        }
    }

    #[test]
    fn corruption_is_detected() {
        let mut buf = Vec::new();
        write_message(&mut buf, &Message::Frame(b"payload".to_vec())).unwrap();
        let last = buf.len() - 1;
        buf[last] ^= 0x01;
        assert!(matches!(
            read_message(&mut &buf[..]),
            Err(PipError::Corrupt(_))
        ));
        // Unknown kind.
        let mut buf = Vec::new();
        write_message(&mut buf, &Message::Ack(1)).unwrap();
        buf[0] = 99;
        assert!(matches!(
            read_message(&mut &buf[..]),
            Err(PipError::Corrupt(_))
        ));
        // Truncated stream.
        let mut buf = Vec::new();
        write_message(&mut buf, &Message::Snapshot(vec![1, 2, 3])).unwrap();
        buf.truncate(buf.len() - 2);
        assert!(read_message(&mut &buf[..]).is_err());
    }

    #[test]
    fn preamble_round_trips_and_rejects_strangers() {
        let mut buf = Vec::new();
        write_preamble(&mut buf).unwrap();
        read_preamble(&mut &buf[..]).unwrap();
        assert!(matches!(
            read_preamble(&mut &b"GET / HT"[..]),
            Err(PipError::Corrupt(_))
        ));
    }
}
