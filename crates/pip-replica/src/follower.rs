//! The follower side: a background applier that connects to a primary,
//! catches up (snapshot and/or frames), and then applies the live tail,
//! acknowledging progress.
//!
//! The applier reconnects with capped exponential backoff whenever the
//! connection drops, and **re-points**: it is configured with a list of
//! candidate primary addresses and rotates through them on every failed
//! attempt, so after a failover it finds the promoted node by itself —
//! no restart, no operator. Each HELLO reports the follower's current
//! applied version, so a reconnect resumes exactly where the last
//! connection left off (frames are applied one at a time and each apply
//! is durable before the next, so the applied version is always an
//! exact log prefix — a SIGKILL mid-catch-up loses nothing but unacked
//! work the primary will re-send).
//!
//! **Epochs.** The primary announces its epoch in the heartbeat that
//! opens every connection. A primary whose epoch is *behind* the
//! follower's is a deposed node still talking — the follower drops it
//! and rotates on. A higher epoch is adopted (and persisted when the
//! catalog is durable): a failover happened and this is the new
//! lineage. Every frame must carry the adopted epoch.
//!
//! **Contiguity.** The apply path enforces the WAL stamp contract —
//! `CREATE_VARIABLE` records arrive at the current version, every other
//! record at exactly `current + 1`. A violation means the transport
//! dropped, duplicated or reordered a frame (the fault injector does
//! all three on purpose); the connection is dropped as corrupt and the
//! reconnect re-ships the suffix. Divergence is detected, never applied.
//!
//! **Heartbeat loss.** The feed idles with a heartbeat every
//! [`HEARTBEAT_EVERY`]; a follower that hears nothing for 3 intervals
//! declares the primary lost (STATS `connected=false`) and begins
//! re-point/backoff.
//!
//! `promote()` seals the feed: the applier thread exits, never
//! reconnects, and the catalog's read-only gate opens. From that moment
//! the node is a primary in every observable way (STATS role included).

use std::io::BufWriter;
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use pip_core::Result;
use pip_engine::Database;
use pip_expr::VarId;
use pip_store::{codec, snapshot_from_bytes, CatalogRecord};

use crate::primary::HEARTBEAT_EVERY;
use crate::proto::{read_message, write_message, write_preamble, Message};
use crate::waiters::WaitHub;

/// First reconnect delay; doubles per failure up to [`MAX_BACKOFF`].
const INITIAL_BACKOFF: Duration = Duration::from_millis(50);
/// Reconnect delay cap.
const MAX_BACKOFF: Duration = Duration::from_secs(2);
/// ACK at least every this many applied frames during bulk catch-up, so
/// the primary's lag view stays fresh without an ack per frame. (At the
/// tip — applied version caught up to the primary's announced one — the
/// follower acks every frame immediately instead: that ack is what
/// releases a `SET REPLICATION WAIT` write parked on the primary, so
/// its latency is the sync-commit latency.)
const ACK_EVERY_FRAMES: usize = 64;
/// Missed-heartbeat horizon: silence past this long drops the
/// connection (3 heartbeat intervals).
const HEARTBEAT_LOSS: Duration = Duration::from_millis(3 * 200);

/// Shared state of a replication follower.
pub(crate) struct FollowerState {
    pub(crate) db: Arc<Database>,
    /// Candidate primary addresses; the applier rotates through them on
    /// connection failure (the re-point machinery).
    pub(crate) candidates: Vec<String>,
    /// Index of the candidate currently (or last) tried.
    current: AtomicUsize,
    /// Replication epoch adopted from the primary's announcements.
    pub(crate) epoch: AtomicU64,
    /// Highest version the primary has reported (via heartbeats and
    /// applied frames); staleness = this minus the local version.
    pub(crate) primary_version: AtomicU64,
    /// True while a connection to the primary is live.
    pub(crate) connected: AtomicBool,
    /// Set by `promote()`/`shutdown()`: stop applying, never reconnect.
    pub(crate) sealed: AtomicBool,
    /// Live socket, kept so sealing can unblock a parked read.
    stream: Mutex<Option<TcpStream>>,
    /// Parked `WAIT VERSION` waits, poked on every apply.
    pub(crate) hub: Arc<WaitHub>,
    /// Apply/reconnect event counters and wait latency histograms.
    pub(crate) metrics: crate::obs::ReplicaMetrics,
}

impl FollowerState {
    /// Mark the catalog read-only and start the applier thread. The
    /// thread owns the connection lifecycle; this never blocks.
    /// `candidates` must be non-empty; the first entry is tried first.
    pub(crate) fn start(db: Arc<Database>, candidates: Vec<String>) -> Arc<FollowerState> {
        assert!(
            !candidates.is_empty(),
            "follower needs at least one primary address"
        );
        db.set_read_only(true);
        let epoch = db.store().map_or(0, |s| s.epoch());
        let metrics = crate::obs::ReplicaMetrics::register(db.obs_registry());
        let hub = WaitHub::new();
        hub.attach_metrics(
            Arc::clone(&metrics.wait_park_seconds),
            Arc::clone(&metrics.wait_timeouts_total),
        );
        let state = Arc::new(FollowerState {
            db,
            candidates,
            current: AtomicUsize::new(0),
            epoch: AtomicU64::new(epoch),
            primary_version: AtomicU64::new(0),
            connected: AtomicBool::new(false),
            sealed: AtomicBool::new(false),
            stream: Mutex::new(None),
            hub,
            metrics,
        });
        let run_state = Arc::clone(&state);
        std::thread::Builder::new()
            .name("pip-repl-apply".into())
            .spawn(move || apply_loop(run_state))
            .expect("spawn replication apply thread");
        state
    }

    /// Version distance behind the primary, as of the last heartbeat or
    /// frame (0 until the first contact, and 0 once caught up).
    pub(crate) fn lag(&self) -> u64 {
        self.primary_version
            .load(Ordering::Acquire)
            .saturating_sub(self.db.version())
    }

    /// The candidate address the applier is currently pointed at.
    pub(crate) fn target(&self) -> &str {
        &self.candidates[self.current.load(Ordering::Acquire) % self.candidates.len()]
    }

    /// Rotate to the next candidate (called after a failed attempt or a
    /// dropped connection).
    fn rotate(&self) {
        self.current.fetch_add(1, Ordering::AcqRel);
    }

    /// Register a parked wait for `applied_version >= version`. Returns
    /// `true` when already satisfied (nothing parked); otherwise the
    /// callback fires from the hub.
    pub(crate) fn register_version_wait(
        self: &Arc<Self>,
        version: u64,
        timeout: Duration,
        done: crate::waiters::WaitDone,
    ) -> bool {
        let db = Arc::clone(&self.db);
        self.hub
            .register(Box::new(move || db.version() >= version), timeout, done)
    }

    /// Seal the feed and stop the applier. Does not touch the read-only
    /// gate — `promote()` and `shutdown()` differ only there. Parked
    /// `WAIT VERSION` waits fail (their version may never arrive now).
    pub(crate) fn seal(&self) {
        self.sealed.store(true, Ordering::Release);
        self.hub.shutdown();
        let guard = self.stream.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(stream) = guard.as_ref() {
            let _ = stream.shutdown(Shutdown::Both);
        }
    }
}

fn apply_loop(state: Arc<FollowerState>) {
    let mut backoff = INITIAL_BACKOFF;
    while !state.sealed.load(Ordering::Acquire) {
        let stream = match TcpStream::connect(state.target()) {
            Ok(s) => s,
            Err(_) => {
                state.metrics.reconnects_total.inc();
                state.rotate();
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(MAX_BACKOFF);
                continue;
            }
        };
        *state.stream.lock().unwrap_or_else(|e| e.into_inner()) =
            Some(stream.try_clone().expect("clone replication stream"));
        state.connected.store(true, Ordering::Release);
        let served = serve_connection(&state, stream);
        state.connected.store(false, Ordering::Release);
        *state.stream.lock().unwrap_or_else(|e| e.into_inner()) = None;
        match served {
            // A connection that made progress earns the next attempt a
            // fresh backoff; one refused at (or before) the handshake —
            // a fenced or stale primary — rotates to the next candidate.
            Ok(progressed) => {
                if progressed {
                    backoff = INITIAL_BACKOFF;
                } else {
                    state.rotate();
                }
            }
            Err(e) => {
                if !state.sealed.load(Ordering::Acquire) {
                    pip_obs::warn!("replication: connection to primary lost: {e}");
                }
                state.metrics.reconnects_total.inc();
                state.rotate();
            }
        }
        if !state.sealed.load(Ordering::Acquire) {
            std::thread::sleep(backoff);
            backoff = (backoff * 2).min(MAX_BACKOFF);
        }
    }
}

/// Drive one connection: HELLO, then apply whatever the primary sends
/// until the stream breaks, the heartbeat horizon passes, or the feed
/// is sealed. `Ok(true)` means the connection made apply progress.
fn serve_connection(state: &Arc<FollowerState>, stream: TcpStream) -> Result<bool> {
    let mut reader = stream.try_clone()?;
    // Bound reads so silence is observable: wake at heartbeat cadence
    // and give up at the loss horizon.
    stream.set_read_timeout(Some(HEARTBEAT_EVERY))?;
    let mut out = BufWriter::new(stream);
    write_preamble(&mut out)?;
    write_message(
        &mut out,
        &Message::Hello {
            gen: state.db.store().map_or(0, |s| s.generation()),
            version: state.db.version(),
            epoch: state.epoch.load(Ordering::Acquire),
            watermark: VarId::watermark(),
        },
    )?;
    use std::io::Write as _;
    out.flush()?;

    let mut progressed = false;
    let mut since_ack = 0usize;
    let mut last_heard = Instant::now();
    // Consecutive heartbeats whose version is ahead of ours with no
    // frame in between. One can be a benign race (a write landing after
    // the primary's batch read but before its heartbeat); two in a row
    // means frames went missing on the wire with the feed now idle —
    // the one loss shape the contiguity check can't see, because the
    // next frame never comes. Resync instead of stalling.
    let mut stale_heartbeats = 0u32;
    loop {
        let msg = match read_message(&mut reader) {
            Ok(m) => m,
            Err(pip_core::PipError::Io(_)) if last_heard.elapsed() < HEARTBEAT_LOSS => {
                // Most likely the read timeout: keep listening until the
                // loss horizon. (A genuinely broken socket keeps failing
                // and trips the horizon ~600ms later at the worst.)
                if state.sealed.load(Ordering::Acquire) {
                    return Ok(progressed);
                }
                continue;
            }
            Err(e) => {
                return if last_heard.elapsed() >= HEARTBEAT_LOSS {
                    Err(pip_core::PipError::io(format!(
                        "heartbeat lost ({}ms of silence)",
                        last_heard.elapsed().as_millis()
                    )))
                } else {
                    Err(e)
                };
            }
        };
        last_heard = Instant::now();
        if state.sealed.load(Ordering::Acquire) {
            return Ok(progressed);
        }
        match msg {
            Message::Snapshot(bytes) => {
                let snapshot = snapshot_from_bytes(&bytes, state.db.registry())?;
                let version = snapshot.version;
                state.db.install_snapshot(snapshot)?;
                state.metrics.snapshots_installed_total.inc();
                bump_primary_floor(state, version);
                progressed = true;
                stale_heartbeats = 0;
                state.hub.poke();
                ack(state, &mut out)?;
                since_ack = 0;
            }
            Message::Frame { epoch, payload } => {
                let ours = state.epoch.load(Ordering::Acquire);
                if epoch != ours {
                    return Err(pip_core::PipError::corrupt(format!(
                        "replicated frame stamped epoch {epoch}, expected {ours}"
                    )));
                }
                let text = std::str::from_utf8(&payload).map_err(|_| {
                    pip_core::PipError::corrupt("replicated WAL frame is not UTF-8")
                })?;
                let json = serde_json::from_str(text).map_err(|e| {
                    pip_core::PipError::corrupt(format!("replicated WAL frame: {e}"))
                })?;
                let entry = codec::decode_entry(&json, state.db.registry())?;
                check_contiguous(state.db.version(), &entry)?;
                bump_primary_floor(state, entry.version);
                state.db.apply_replicated(&entry)?;
                state.metrics.frames_applied_total.inc();
                progressed = true;
                stale_heartbeats = 0;
                state.hub.poke();
                since_ack += 1;
                let at_tip = state.db.version() >= state.primary_version.load(Ordering::Acquire);
                if at_tip || since_ack >= ACK_EVERY_FRAMES {
                    ack(state, &mut out)?;
                    since_ack = 0;
                }
            }
            Message::Heartbeat {
                epoch,
                version,
                watermark,
            } => {
                let ours = state.epoch.load(Ordering::Acquire);
                if epoch < ours {
                    // A deposed primary still talking. Not an error loud
                    // enough to log — just leave and rotate.
                    return Ok(false);
                }
                if epoch > ours {
                    // Failover happened: adopt (and persist) the new
                    // lineage's epoch.
                    if let Some(store) = state.db.store() {
                        store.set_epoch(epoch)?;
                    }
                    state.epoch.store(epoch, Ordering::Release);
                }
                // The primary's allocator position covers ids its
                // catch-up skip may never ship (the unreferenced-id fix).
                VarId::reserve_through(watermark.saturating_sub(1));
                bump_primary_floor(state, version);
                if version > state.db.version() {
                    stale_heartbeats += 1;
                    if stale_heartbeats >= 2 {
                        return Err(pip_core::PipError::corrupt(format!(
                            "primary idles at version {version} but only {} arrived — \
                             frames were lost in transit",
                            state.db.version()
                        )));
                    }
                } else {
                    stale_heartbeats = 0;
                }
                ack(state, &mut out)?;
                since_ack = 0;
            }
            other => {
                return Err(pip_core::PipError::corrupt(format!(
                    "unexpected replication message from primary: {other:?}"
                )));
            }
        }
    }
}

/// Enforce the WAL stamp contract on an arriving frame (see module
/// docs): `CREATE_VARIABLE` at the current version, everything else at
/// exactly `current + 1`. Catches transport drops, duplicates and
/// reorders before they can touch the catalog.
fn check_contiguous(current: u64, entry: &codec::WalEntry) -> Result<()> {
    let expected_ok = match entry.record {
        CatalogRecord::CreateVariable { .. } => entry.version == current,
        _ => entry.version == current + 1,
    };
    if expected_ok {
        Ok(())
    } else {
        Err(pip_core::PipError::corrupt(format!(
            "replication feed not contiguous: entry version {} against applied version {current}",
            entry.version
        )))
    }
}

fn ack(state: &FollowerState, out: &mut impl std::io::Write) -> Result<()> {
    write_message(
        out,
        &Message::Ack {
            version: state.db.version(),
            watermark: VarId::watermark(),
        },
    )?;
    out.flush()?;
    Ok(())
}

/// Raise the observed primary version (never lower it — heartbeats and
/// frames race only in the direction of progress).
fn bump_primary_floor(state: &FollowerState, v: u64) {
    state.primary_version.fetch_max(v, Ordering::AcqRel);
}
