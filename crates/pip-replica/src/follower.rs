//! The follower side: a background applier that connects to the
//! primary, catches up (snapshot and/or frames), and then applies the
//! live tail, acknowledging progress.
//!
//! The applier reconnects with capped exponential backoff whenever the
//! connection drops; each HELLO reports the follower's current applied
//! version, so a reconnect resumes exactly where the last connection
//! left off (frames are applied one at a time and each apply is durable
//! before the next, so the applied version is always an exact log
//! prefix — a SIGKILL mid-catch-up loses nothing but unacked work the
//! primary will re-send).
//!
//! `promote()` seals the feed: the applier thread exits, never
//! reconnects, and the catalog's read-only gate opens. From that moment
//! the node is a primary in every observable way (STATS role included).

use std::io::BufWriter;
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use pip_core::Result;
use pip_engine::Database;
use pip_store::{codec, snapshot_from_bytes};

use crate::proto::{read_message, write_message, write_preamble, Message};

/// First reconnect delay; doubles per failure up to [`MAX_BACKOFF`].
const INITIAL_BACKOFF: Duration = Duration::from_millis(50);
/// Reconnect delay cap.
const MAX_BACKOFF: Duration = Duration::from_secs(2);
/// ACK at least every this many applied frames even without a heartbeat,
/// so the primary's lag view stays fresh during bulk catch-up.
const ACK_EVERY_FRAMES: usize = 64;

/// Shared state of a replication follower.
pub(crate) struct FollowerState {
    pub(crate) db: Arc<Database>,
    pub(crate) primary_addr: String,
    /// Highest version the primary has reported (via heartbeats and
    /// applied frames); staleness = this minus the local version.
    pub(crate) primary_version: AtomicU64,
    /// True while a connection to the primary is live.
    pub(crate) connected: AtomicBool,
    /// Set by `promote()`/`shutdown()`: stop applying, never reconnect.
    pub(crate) sealed: AtomicBool,
    /// Live socket, kept so sealing can unblock a parked read.
    stream: Mutex<Option<TcpStream>>,
}

impl FollowerState {
    /// Mark the catalog read-only and start the applier thread. The
    /// thread owns the connection lifecycle; this never blocks.
    pub(crate) fn start(db: Arc<Database>, primary_addr: &str) -> Arc<FollowerState> {
        db.set_read_only(true);
        let state = Arc::new(FollowerState {
            db,
            primary_addr: primary_addr.to_string(),
            primary_version: AtomicU64::new(0),
            connected: AtomicBool::new(false),
            sealed: AtomicBool::new(false),
            stream: Mutex::new(None),
        });
        let run_state = Arc::clone(&state);
        std::thread::Builder::new()
            .name("pip-repl-apply".into())
            .spawn(move || apply_loop(run_state))
            .expect("spawn replication apply thread");
        state
    }

    /// Version distance behind the primary, as of the last heartbeat or
    /// frame (0 until the first contact, and 0 once caught up).
    pub(crate) fn lag(&self) -> u64 {
        self.primary_version
            .load(Ordering::Acquire)
            .saturating_sub(self.db.version())
    }

    /// Seal the feed and stop the applier. Does not touch the read-only
    /// gate — `promote()` and `shutdown()` differ only there.
    pub(crate) fn seal(&self) {
        self.sealed.store(true, Ordering::Release);
        let guard = self.stream.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(stream) = guard.as_ref() {
            let _ = stream.shutdown(Shutdown::Both);
        }
    }
}

fn apply_loop(state: Arc<FollowerState>) {
    let mut backoff = INITIAL_BACKOFF;
    while !state.sealed.load(Ordering::Acquire) {
        let stream = match TcpStream::connect(&state.primary_addr) {
            Ok(s) => s,
            Err(_) => {
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(MAX_BACKOFF);
                continue;
            }
        };
        backoff = INITIAL_BACKOFF;
        *state.stream.lock().unwrap_or_else(|e| e.into_inner()) =
            Some(stream.try_clone().expect("clone replication stream"));
        state.connected.store(true, Ordering::Release);
        if let Err(e) = serve_connection(&state, stream) {
            if !state.sealed.load(Ordering::Acquire) {
                eprintln!("replication: connection to primary lost: {e}");
            }
        }
        state.connected.store(false, Ordering::Release);
        *state.stream.lock().unwrap_or_else(|e| e.into_inner()) = None;
    }
}

/// Drive one connection: HELLO, then apply whatever the primary sends
/// until the stream breaks or the feed is sealed.
fn serve_connection(state: &Arc<FollowerState>, stream: TcpStream) -> Result<()> {
    let mut reader = stream.try_clone()?;
    let mut out = BufWriter::new(stream);
    write_preamble(&mut out)?;
    write_message(
        &mut out,
        &Message::Hello {
            gen: state.db.store().map_or(0, |s| s.generation()),
            version: state.db.version(),
        },
    )?;
    use std::io::Write as _;
    out.flush()?;

    let mut since_ack = 0usize;
    loop {
        let msg = read_message(&mut reader)?;
        if state.sealed.load(Ordering::Acquire) {
            return Ok(());
        }
        match msg {
            Message::Snapshot(bytes) => {
                let snapshot = snapshot_from_bytes(&bytes, state.db.registry())?;
                let version = snapshot.version;
                state.db.install_snapshot(snapshot)?;
                bump_primary_floor(state, version);
                write_message(&mut out, &Message::Ack(state.db.version()))?;
                out.flush()?;
                since_ack = 0;
            }
            Message::Frame(bytes) => {
                let text = std::str::from_utf8(&bytes).map_err(|_| {
                    pip_core::PipError::corrupt("replicated WAL frame is not UTF-8")
                })?;
                let json = serde_json::from_str(text).map_err(|e| {
                    pip_core::PipError::corrupt(format!("replicated WAL frame: {e}"))
                })?;
                let entry = codec::decode_entry(&json, state.db.registry())?;
                bump_primary_floor(state, entry.version);
                state.db.apply_replicated(&entry)?;
                since_ack += 1;
                if since_ack >= ACK_EVERY_FRAMES {
                    write_message(&mut out, &Message::Ack(state.db.version()))?;
                    out.flush()?;
                    since_ack = 0;
                }
            }
            Message::Heartbeat(v) => {
                bump_primary_floor(state, v);
                write_message(&mut out, &Message::Ack(state.db.version()))?;
                out.flush()?;
                since_ack = 0;
            }
            other => {
                return Err(pip_core::PipError::corrupt(format!(
                    "unexpected replication message from primary: {other:?}"
                )));
            }
        }
    }
}

/// Raise the observed primary version (never lower it — heartbeats and
/// frames race only in the direction of progress).
fn bump_primary_floor(state: &FollowerState, v: u64) {
    state.primary_version.fetch_max(v, Ordering::AcqRel);
}
