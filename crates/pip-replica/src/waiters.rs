//! A small registry of parked waits with deadlines, shared by the
//! primary (ACK-quorum waits behind `SET REPLICATION WAIT n`) and the
//! follower (`WAIT VERSION` read-your-writes waits).
//!
//! A waiter is a *predicate* over replication state plus a completion
//! callback. Callers register; replication progress (`ACK` drained,
//! frame applied) pokes the hub; a lazily spawned monitor thread
//! re-evaluates predicates and enforces deadlines, firing each callback
//! exactly once — `true` when the predicate held, `false` on deadline
//! (or hub shutdown). Callbacks run on the monitor thread, outside the
//! hub lock, so they may do real work (stage a reply, re-enqueue a
//! connection) but must not re-enter the hub synchronously.
//!
//! This is what lets a server session *park* instead of blocking: the
//! scheduler worker registers the waiter and moves on; nothing sits on
//! a thread while the quorum assembles.

use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

use pip_obs::{Counter, Histogram};

/// Completion callback: `true` = predicate satisfied, `false` =
/// deadline passed (or the hub shut down). Re-exported at the crate
/// root for callers registering parked waits.
pub type WaitDone = Box<dyn FnOnce(bool) + Send>;

struct Waiter {
    pred: Box<dyn Fn() -> bool + Send>,
    parked_at: Instant,
    deadline: Instant,
    done: WaitDone,
}

/// Metric handles the hub reports into once attached (park duration for
/// every fired wait, a counter for the ones that fired `false`).
struct HubObs {
    park: Arc<Histogram>,
    timeouts: Arc<Counter>,
}

#[derive(Default)]
struct HubInner {
    waiters: Vec<Waiter>,
    monitor_running: bool,
    shutdown: bool,
}

/// The wait registry. Cheap when idle: no thread exists until the first
/// waiter actually has to park.
#[derive(Default)]
pub(crate) struct WaitHub {
    inner: Mutex<HubInner>,
    poked: Condvar,
    obs: OnceLock<HubObs>,
}

impl WaitHub {
    pub(crate) fn new() -> Arc<WaitHub> {
        Arc::new(WaitHub::default())
    }

    /// Attach metric handles (first attachment wins; a node promoted
    /// from follower to primary keeps its original hub handles).
    pub(crate) fn attach_metrics(&self, park: Arc<Histogram>, timeouts: Arc<Counter>) {
        let _ = self.obs.set(HubObs { park, timeouts });
    }

    /// Record one fired wait: how long it parked, and whether it failed.
    fn note_fired(&self, parked_at: Instant, ok: bool) {
        if let Some(obs) = self.obs.get() {
            obs.park.observe_since(parked_at);
            if !ok {
                obs.timeouts.inc();
            }
        }
    }

    /// Register a wait. If `pred` already holds (checked under the hub
    /// lock, so no poke can slip between check and registration),
    /// returns `true` WITHOUT storing the waiter — the caller completes
    /// inline. Otherwise the waiter parks and `done` will be fired by
    /// the monitor thread; returns `false`.
    pub(crate) fn register(
        self: &Arc<Self>,
        pred: Box<dyn Fn() -> bool + Send>,
        timeout: Duration,
        done: WaitDone,
    ) -> bool {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if pred() {
            return true;
        }
        if inner.shutdown {
            drop(inner);
            if let Some(obs) = self.obs.get() {
                obs.timeouts.inc();
            }
            done(false);
            return false;
        }
        let now = Instant::now();
        inner.waiters.push(Waiter {
            pred,
            parked_at: now,
            deadline: now + timeout,
            done,
        });
        if !inner.monitor_running {
            inner.monitor_running = true;
            let hub = Arc::clone(self);
            std::thread::Builder::new()
                .name("pip-repl-wait".into())
                .spawn(move || monitor_loop(&hub))
                .expect("spawn replication wait monitor");
        }
        self.poked.notify_all();
        false
    }

    /// Blocking convenience for callers without a parking mechanism:
    /// true iff the predicate held before timeout.
    #[cfg(test)]
    pub(crate) fn wait_blocking(
        self: &Arc<Self>,
        pred: Box<dyn Fn() -> bool + Send>,
        timeout: Duration,
    ) -> bool {
        let (tx, rx) = std::sync::mpsc::channel();
        if self.register(
            pred,
            timeout,
            Box::new(move |ok| {
                let _ = tx.send(ok);
            }),
        ) {
            return true;
        }
        rx.recv().unwrap_or(false)
    }

    /// Replication made progress: wake the monitor to re-check.
    pub(crate) fn poke(&self) {
        self.poked.notify_all();
    }

    /// Fail every parked waiter and refuse new ones.
    pub(crate) fn shutdown(&self) {
        let drained = {
            let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            inner.shutdown = true;
            std::mem::take(&mut inner.waiters)
        };
        self.poked.notify_all();
        for w in drained {
            self.note_fired(w.parked_at, false);
            (w.done)(false);
        }
    }
}

fn monitor_loop(hub: &Arc<WaitHub>) {
    let mut inner = hub.inner.lock().unwrap_or_else(|e| e.into_inner());
    loop {
        // Fire what can fire: satisfied predicates and blown deadlines.
        let now = Instant::now();
        let mut fired: Vec<(WaitDone, Instant, bool)> = Vec::new();
        let mut keep = Vec::with_capacity(inner.waiters.len());
        for w in inner.waiters.drain(..) {
            if (w.pred)() {
                fired.push((w.done, w.parked_at, true));
            } else if now >= w.deadline {
                fired.push((w.done, w.parked_at, false));
            } else {
                keep.push(w);
            }
        }
        inner.waiters = keep;
        if !fired.is_empty() {
            drop(inner);
            for (done, parked_at, ok) in fired {
                hub.note_fired(parked_at, ok);
                done(ok);
            }
            inner = hub.inner.lock().unwrap_or_else(|e| e.into_inner());
        }
        if inner.shutdown || inner.waiters.is_empty() {
            // Retire the thread; the next register respawns one.
            inner.monitor_running = false;
            return;
        }
        let next_deadline = inner
            .waiters
            .iter()
            .map(|w| w.deadline)
            .min()
            .expect("non-empty");
        // Cap the sleep: predicates observe state (acked counters)
        // whose every change pokes us, but a capped wait costs little
        // and shrugs off a lost notification.
        let sleep = next_deadline
            .saturating_duration_since(Instant::now())
            .min(Duration::from_millis(50));
        let (next, _) = self_wait(hub, inner, sleep);
        inner = next;
    }
}

fn self_wait<'a>(
    hub: &'a WaitHub,
    guard: std::sync::MutexGuard<'a, HubInner>,
    dur: Duration,
) -> (std::sync::MutexGuard<'a, HubInner>, bool) {
    let (g, t) = hub
        .poked
        .wait_timeout(guard, dur)
        .unwrap_or_else(|e| e.into_inner());
    (g, t.timed_out())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

    #[test]
    fn satisfied_at_registration_completes_inline() {
        let hub = WaitHub::new();
        let fired = Arc::new(AtomicUsize::new(0));
        let f = Arc::clone(&fired);
        let inline = hub.register(
            Box::new(|| true),
            Duration::from_secs(5),
            Box::new(move |_| {
                f.fetch_add(1, Ordering::SeqCst);
            }),
        );
        assert!(inline, "pre-satisfied wait must not park");
        assert_eq!(fired.load(Ordering::SeqCst), 0, "callback not consumed");
    }

    #[test]
    fn poke_fires_a_parked_waiter() {
        let hub = WaitHub::new();
        let flag = Arc::new(AtomicBool::new(false));
        let (tx, rx) = std::sync::mpsc::channel();
        let pred_flag = Arc::clone(&flag);
        let inline = hub.register(
            Box::new(move || pred_flag.load(Ordering::SeqCst)),
            Duration::from_secs(10),
            Box::new(move |ok| {
                let _ = tx.send(ok);
            }),
        );
        assert!(!inline);
        flag.store(true, Ordering::SeqCst);
        hub.poke();
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(true));
    }

    #[test]
    fn deadline_fires_false() {
        let hub = WaitHub::new();
        let (tx, rx) = std::sync::mpsc::channel();
        hub.register(
            Box::new(|| false),
            Duration::from_millis(30),
            Box::new(move |ok| {
                let _ = tx.send(ok);
            }),
        );
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(false));
    }

    #[test]
    fn blocking_wait_round_trips() {
        let hub = WaitHub::new();
        assert!(hub.wait_blocking(Box::new(|| true), Duration::from_secs(1)));
        assert!(!hub.wait_blocking(Box::new(|| false), Duration::from_millis(20)));
    }

    #[test]
    fn shutdown_fails_parked_waiters() {
        let hub = WaitHub::new();
        let (tx, rx) = std::sync::mpsc::channel();
        hub.register(
            Box::new(|| false),
            Duration::from_secs(30),
            Box::new(move |ok| {
                let _ = tx.send(ok);
            }),
        );
        hub.shutdown();
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(false));
        // New registrations fail immediately.
        assert!(!hub.wait_blocking(Box::new(|| false), Duration::from_secs(30)));
    }
}
