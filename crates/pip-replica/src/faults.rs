//! Deterministic, seed-driven fault injection for the replication feed.
//!
//! The chaos suite needs failures that are *reproducible*: same seed,
//! same schedule of dropped, delayed, duplicated and severed messages.
//! A [`FaultInjector`] is consulted by the primary's feed threads once
//! per outgoing protocol message; its decisions come from a SplitMix64
//! stream seeded at construction, so a failing run is replayed exactly
//! by its seed. On top of the probabilistic stream sits an explicit
//! **partition** switch: while partitioned, every send (and every new
//! feed connection) fails, which models a network cut between primary
//! and followers — heal it and the followers' reconnect/backoff
//! machinery re-attaches and resumes from their applied versions.
//!
//! Injected *storage* failures ride on [`pip_store::FaultHook`] instead
//! ([`wal_fault_hook`] builds a seeded one), so WAL append/sync failures
//! are exercised through the exact production rollback paths.
//!
//! Dropped frames are not silent data loss: the follower's apply path
//! enforces contiguous version stamps, so a missing frame surfaces as a
//! detected gap, the connection drops, and the reconnect re-ships the
//! missing suffix. That detect-and-resync loop is precisely what the
//! chaos suite proves out.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// What to do with one outgoing feed message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendPlan {
    /// Ship it normally.
    Deliver,
    /// Silently discard it (the follower detects the gap and resyncs).
    Drop,
    /// Ship it twice (the follower rejects the replay and resyncs).
    Duplicate,
    /// Sleep this long, then ship it (stalls heartbeats too — the
    /// follower's heartbeat-loss detector is driven by exactly this).
    Delay(Duration),
    /// Fail the send: the connection is torn down as if the network
    /// broke mid-write.
    Sever,
}

/// Per-message fault probabilities, in permille (0–1000).
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultConfig {
    pub drop_per_mille: u16,
    pub duplicate_per_mille: u16,
    pub delay_per_mille: u16,
    /// Injected delays are uniform in `1..=max_delay_ms`.
    pub max_delay_ms: u64,
    pub sever_per_mille: u16,
}

/// SplitMix64: tiny, seedable, and plenty for fault schedules.
#[derive(Debug)]
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next() % n
        }
    }
}

/// The seed-driven decision stream plus the partition switch.
#[derive(Debug)]
pub struct FaultInjector {
    cfg: FaultConfig,
    rng: Mutex<SplitMix64>,
    partitioned: AtomicBool,
}

impl FaultInjector {
    pub fn new(seed: u64, cfg: FaultConfig) -> Arc<FaultInjector> {
        Arc::new(FaultInjector {
            cfg,
            rng: Mutex::new(SplitMix64(seed)),
            partitioned: AtomicBool::new(false),
        })
    }

    /// Cut the feed: every send fails and new feed connections are
    /// refused until [`FaultInjector::heal`].
    pub fn partition(&self) {
        self.partitioned.store(true, Ordering::Release);
    }

    /// Reconnect the network halves.
    pub fn heal(&self) {
        self.partitioned.store(false, Ordering::Release);
    }

    pub fn is_partitioned(&self) -> bool {
        self.partitioned.load(Ordering::Acquire)
    }

    /// Decide the fate of one outgoing message. Consumes RNG state —
    /// deterministic for a fixed seed and call sequence.
    pub fn plan_send(&self) -> SendPlan {
        if self.is_partitioned() {
            return SendPlan::Sever;
        }
        let mut rng = self.rng.lock().unwrap_or_else(|e| e.into_inner());
        let roll = rng.below(1000) as u16;
        let c = &self.cfg;
        if roll < c.drop_per_mille {
            SendPlan::Drop
        } else if roll < c.drop_per_mille + c.duplicate_per_mille {
            SendPlan::Duplicate
        } else if roll < c.drop_per_mille + c.duplicate_per_mille + c.delay_per_mille {
            let ms = 1 + rng.below(c.max_delay_ms.max(1));
            SendPlan::Delay(Duration::from_millis(ms))
        } else if roll
            < c.drop_per_mille + c.duplicate_per_mille + c.delay_per_mille + c.sever_per_mille
        {
            SendPlan::Sever
        } else {
            SendPlan::Deliver
        }
    }
}

/// Build a seeded [`pip_store::FaultHook`] that fails WAL appends /
/// syncs with the given permille probabilities. Install with
/// [`pip_store::Store::set_fault_hook`]; the store turns a firing into
/// the same refusal / rollback a real disk error takes.
pub fn wal_fault_hook(
    seed: u64,
    append_per_mille: u16,
    sync_per_mille: u16,
) -> pip_store::FaultHook {
    let rng = Mutex::new(SplitMix64(seed));
    Arc::new(move |point| {
        let mut rng = rng.lock().unwrap_or_else(|e| e.into_inner());
        let roll = rng.below(1000) as u16;
        match point {
            pip_store::FaultPoint::Append => roll < append_per_mille,
            pip_store::FaultPoint::Sync => roll < sync_per_mille,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plans(seed: u64, cfg: FaultConfig, n: usize) -> Vec<SendPlan> {
        let inj = FaultInjector::new(seed, cfg);
        (0..n).map(|_| inj.plan_send()).collect()
    }

    #[test]
    fn same_seed_same_schedule() {
        let cfg = FaultConfig {
            drop_per_mille: 100,
            duplicate_per_mille: 100,
            delay_per_mille: 100,
            max_delay_ms: 5,
            sever_per_mille: 50,
        };
        assert_eq!(plans(42, cfg, 500), plans(42, cfg, 500));
        assert_ne!(
            plans(42, cfg, 500),
            plans(43, cfg, 500),
            "different seeds should diverge"
        );
    }

    #[test]
    fn zero_config_always_delivers() {
        for p in plans(7, FaultConfig::default(), 200) {
            assert_eq!(p, SendPlan::Deliver);
        }
    }

    #[test]
    fn partition_overrides_everything() {
        let inj = FaultInjector::new(1, FaultConfig::default());
        inj.partition();
        assert!(inj.is_partitioned());
        assert_eq!(inj.plan_send(), SendPlan::Sever);
        inj.heal();
        assert_eq!(inj.plan_send(), SendPlan::Deliver);
    }

    #[test]
    fn wal_hook_is_deterministic() {
        let a: Vec<bool> = {
            let h = wal_fault_hook(9, 300, 300);
            (0..100)
                .map(|i| {
                    h(if i % 2 == 0 {
                        pip_store::FaultPoint::Append
                    } else {
                        pip_store::FaultPoint::Sync
                    })
                })
                .collect()
        };
        let b: Vec<bool> = {
            let h = wal_fault_hook(9, 300, 300);
            (0..100)
                .map(|i| {
                    h(if i % 2 == 0 {
                        pip_store::FaultPoint::Append
                    } else {
                        pip_store::FaultPoint::Sync
                    })
                })
                .collect()
        };
        assert_eq!(a, b);
        assert!(a.iter().any(|&x| x), "300 permille should fire sometimes");
        assert!(!a.iter().all(|&x| x), "and not always");
    }
}
