//! The primary side: a TCP listener that tails the node's own WAL and
//! fans acknowledged frames out to followers.
//!
//! One handler thread per follower runs the catch-up decision and the
//! tail loop; a companion thread drains the follower's ACKs. The
//! catch-up decision on HELLO `{gen, version: W}`:
//!
//! * `W >=` the retained base's version ([`Store::oldest_retained`]) —
//!   the WAL chain still reaches the follower's state: tail from the
//!   retained generation's first frame, dropping frames stamped `<= W`
//!   (stamps are non-decreasing along the chain, so this drops exactly
//!   the prefix the follower already applied — see the note below);
//! * otherwise the frames that would bring the follower forward were
//!   deleted by a checkpoint: capture a fresh
//!   [`Database::capture_replication_snapshot`], send it, and tail from
//!   its paired cursor (no filter — the cursor is positional and exact).
//!
//! The same snapshot fallback handles [`TailRead::Gap`] mid-stream (a
//! checkpoint retiring the generation under the tailer's feet).
//!
//! **The `<= W` prefix-skip and same-version entries.** Versions are
//! non-decreasing but not strictly increasing: `CREATE_VARIABLE` records
//! are stamped at the version current when they were allocated, without
//! a bump. A follower reporting `W` has applied the mutation that set
//! version `W` but possibly not trailing `CREATE_VARIABLE` records also
//! stamped `W`; the skip drops those records for that follower. That is
//! safe for every variable that any shipped row ever references (the
//! follower's apply path re-reserves ids embedded in rows), and the
//! residual case — a variable allocated on the primary, never referenced
//! by any later mutation, straddling the reconnect boundary — can at
//! worst let a *promoted* follower hand out an id the old primary had
//! allocated but never used. Re-sending `<= W` instead would re-apply
//! the version-`W` mutation itself (a double insert): strictly worse.

use std::io::{BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use pip_core::Result;
use pip_engine::Database;
use pip_store::{snapshot_to_bytes, Store, TailRead, WalCursor};

use crate::proto::{read_message, read_preamble, write_message, Message};

/// Frames per tail read; bounds per-batch memory and ACK latency.
const BATCH_FRAMES: usize = 256;
/// Idle poll interval when fully caught up.
const IDLE_POLL: Duration = Duration::from_millis(10);
/// Heartbeat cadence while idle.
const HEARTBEAT_EVERY: Duration = Duration::from_millis(200);

/// One attached follower, as the primary sees it.
pub(crate) struct FollowerConn {
    /// Highest version the follower has acknowledged applying.
    pub(crate) acked: AtomicU64,
    /// Socket handle kept for shutdown (unblocks the handler threads).
    stream: TcpStream,
}

/// Shared state of a replicating primary.
pub(crate) struct PrimaryState {
    pub(crate) db: Arc<Database>,
    pub(crate) addr: SocketAddr,
    pub(crate) shutdown: AtomicBool,
    pub(crate) followers: Mutex<Vec<Arc<FollowerConn>>>,
}

impl PrimaryState {
    /// Bind the replication listener and start the accept loop. The
    /// catalog must be durable — the WAL is the feed.
    pub(crate) fn start(db: Arc<Database>, addr: &str) -> Result<Arc<PrimaryState>> {
        let store = Arc::clone(db.store().ok_or_else(|| {
            pip_core::PipError::Unsupported(
                "replication requires a durable catalog (open it with --data-dir)".into(),
            )
        })?);
        // Unlogged mutations would silently never reach followers.
        db.pin_durability();
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let state = Arc::new(PrimaryState {
            db,
            addr: local,
            shutdown: AtomicBool::new(false),
            followers: Mutex::new(Vec::new()),
        });
        let accept_state = Arc::clone(&state);
        std::thread::Builder::new()
            .name("pip-repl-accept".into())
            .spawn(move || accept_loop(accept_state, listener, store))
            .expect("spawn replication accept thread");
        Ok(state)
    }

    /// Stop accepting and unblock every handler.
    pub(crate) fn shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
        for conn in self
            .followers
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
        {
            let _ = conn.stream.shutdown(std::net::Shutdown::Both);
        }
    }

    /// Connected follower count.
    pub(crate) fn follower_count(&self) -> usize {
        self.followers
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .len()
    }

    /// Version distance between this primary and its slowest follower
    /// (0 with no followers attached).
    pub(crate) fn max_lag(&self) -> u64 {
        let version = self.db.version();
        self.followers
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|f| version.saturating_sub(f.acked.load(Ordering::Acquire)))
            .max()
            .unwrap_or(0)
    }
}

fn accept_loop(state: Arc<PrimaryState>, listener: TcpListener, store: Arc<Store>) {
    while !state.shutdown.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, peer)) => {
                let state = Arc::clone(&state);
                let store = Arc::clone(&store);
                std::thread::Builder::new()
                    .name("pip-repl-feed".into())
                    .spawn(move || {
                        if let Err(e) = serve_follower(&state, &store, stream) {
                            if !state.shutdown.load(Ordering::Acquire) {
                                eprintln!("replication: follower {peer} dropped: {e}");
                            }
                        }
                    })
                    .expect("spawn replication feed thread");
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(_) => break,
        }
    }
}

/// Feed one follower until it disconnects or the primary shuts down.
fn serve_follower(state: &Arc<PrimaryState>, store: &Arc<Store>, stream: TcpStream) -> Result<()> {
    let mut reader = stream.try_clone()?;
    read_preamble(&mut reader)?;
    let hello = read_message(&mut reader)?;
    let Message::Hello {
        version: wire_w, ..
    } = hello
    else {
        return Err(pip_core::PipError::corrupt(
            "replication connection did not open with HELLO",
        ));
    };

    let conn = Arc::new(FollowerConn {
        acked: AtomicU64::new(wire_w),
        stream: stream.try_clone()?,
    });
    state
        .followers
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push(Arc::clone(&conn));
    // Drain ACKs on a dedicated thread so slow frame writes never stall
    // acknowledgement bookkeeping (and vice versa).
    let ack_conn = Arc::clone(&conn);
    std::thread::Builder::new()
        .name("pip-repl-acks".into())
        .spawn(move || {
            while let Ok(msg) = read_message(&mut reader) {
                if let Message::Ack(v) = msg {
                    ack_conn.acked.store(v, Ordering::Release);
                }
            }
        })
        .expect("spawn replication ack thread");

    let result = feed_loop(state, store, &stream, wire_w);
    let mut followers = state.followers.lock().unwrap_or_else(|e| e.into_inner());
    followers.retain(|c| !Arc::ptr_eq(c, &conn));
    drop(followers);
    let _ = stream.shutdown(std::net::Shutdown::Both);
    result
}

fn feed_loop(
    state: &Arc<PrimaryState>,
    store: &Arc<Store>,
    stream: &TcpStream,
    hello_version: u64,
) -> Result<()> {
    let mut out = BufWriter::new(stream.try_clone()?);
    let (mut cursor, mut skip_through) = catch_up_plan(state, store, &mut out, hello_version)?;
    // Tell the follower where the primary stands right away, so lag is
    // measurable before the first idle heartbeat.
    write_message(&mut out, &Message::Heartbeat(state.db.version()))?;
    out.flush()?;

    let mut last_heartbeat = Instant::now();
    while !state.shutdown.load(Ordering::Acquire) {
        match store.read_wal_frames(cursor, BATCH_FRAMES) {
            Ok(TailRead::Frames {
                frames,
                cursor: next,
            }) => {
                let idle = frames.is_empty();
                for f in &frames {
                    if f.version <= skip_through {
                        continue; // prefix the follower already applied
                    }
                    write_message(&mut out, &Message::Frame(f.payload.clone()))?;
                }
                out.flush()?;
                cursor = next;
                if idle {
                    if last_heartbeat.elapsed() >= HEARTBEAT_EVERY {
                        write_message(&mut out, &Message::Heartbeat(state.db.version()))?;
                        out.flush()?;
                        last_heartbeat = Instant::now();
                    }
                    std::thread::sleep(IDLE_POLL);
                }
            }
            // The chain was retired under us (checkpoint race) or turned
            // unreadable: fall back to a fresh snapshot.
            Ok(TailRead::Gap) | Err(_) => {
                let (c, s) = send_snapshot(state, &mut out)?;
                cursor = c;
                skip_through = s;
            }
        }
    }
    Ok(())
}

/// Decide how a follower at version `w` catches up; returns the cursor
/// to tail from and the version to skip frames through (0 = none).
fn catch_up_plan(
    state: &Arc<PrimaryState>,
    store: &Arc<Store>,
    out: &mut impl Write,
    w: u64,
) -> Result<(WalCursor, u64)> {
    let (retained_gen, retained_version) = store.oldest_retained();
    if w >= retained_version {
        return Ok((WalCursor::start(retained_gen), w));
    }
    send_snapshot(state, out)
}

/// Capture and send a fresh snapshot; returns its paired cursor (no
/// skip filter — the cursor is positionally exact).
fn send_snapshot(state: &Arc<PrimaryState>, out: &mut impl Write) -> Result<(WalCursor, u64)> {
    let (snapshot, cursor) = state.db.capture_replication_snapshot()?;
    let bytes = snapshot_to_bytes(&snapshot)?;
    write_message(out, &Message::Snapshot(bytes))?;
    out.flush()?;
    Ok((cursor, 0))
}
