//! The primary side: a TCP listener that tails the node's own WAL and
//! fans acknowledged frames out to followers.
//!
//! One handler thread per follower runs the catch-up decision and the
//! tail loop; a companion thread drains the follower's ACKs. The
//! catch-up decision on HELLO `{gen, version: W, ..}`:
//!
//! * `W >=` the retained base's version ([`Store::oldest_retained`]) —
//!   the WAL chain still reaches the follower's state: tail from the
//!   retained generation's first frame, dropping frames stamped `<= W`
//!   (stamps are non-decreasing along the chain, so this drops exactly
//!   the prefix the follower already applied — see the note below);
//! * otherwise the frames that would bring the follower forward were
//!   deleted by a checkpoint: capture a fresh
//!   [`Database::capture_replication_snapshot`], send it, and tail from
//!   its paired cursor (no filter — the cursor is positional and exact).
//!
//! The same snapshot fallback handles [`TailRead::Gap`] mid-stream (a
//! checkpoint retiring the generation under the tailer's feet).
//!
//! **The `<= W` prefix-skip and same-version entries.** Versions are
//! non-decreasing but not strictly increasing: `CREATE_VARIABLE` records
//! are stamped at the version current when they were allocated, without
//! a bump. A follower reporting `W` has applied the mutation that set
//! version `W` but possibly not trailing `CREATE_VARIABLE` records also
//! stamped `W`; the skip drops those records for that follower. Dropping
//! the *record* is safe — every variable any shipped row references is
//! re-reserved by the apply path — and the residual id-collision risk
//! (a variable allocated on the primary, never referenced by any later
//! mutation, straddling the reconnect boundary) is closed by the
//! **watermark exchange**: every HEARTBEAT carries the primary's
//! [`VarId::watermark`], and the follower reserves through it, so even a
//! promoted follower can never re-hand-out an id the old primary
//! allocated but never used. (HELLO/ACK carry the follower's watermark
//! for the mirror-image case of an old primary rejoining as a
//! follower.)
//!
//! **Epoch fencing.** The primary announces its replication epoch in the
//! heartbeat sent right after HELLO and stamps it into every frame. A
//! HELLO carrying a *higher* epoch is a deposition notice from a freshly
//! promoted node: the primary fences itself — the catalog refuses writes
//! with `ERR fenced`, every attached follower is disconnected so its
//! re-point machinery finds the new primary, and the higher epoch is
//! persisted so a restart stays fenced.
//!
//! **Synchronous acknowledgement.** Per-follower acked-version counters
//! feed the [`WaitHub`]: `SET REPLICATION WAIT n` parks a session's
//! reply until `n` followers have acked the write's version (see
//! [`PrimaryState::register_ack_wait`]).

use std::collections::VecDeque;
use std::io::{BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use pip_core::Result;
use pip_engine::Database;
use pip_expr::VarId;
use pip_store::{snapshot_to_bytes, Store, TailRead, WalCursor};

use crate::faults::{FaultInjector, SendPlan};
use crate::proto::{read_message, read_preamble, write_message, Message};
use crate::waiters::WaitHub;

/// Frames per tail read; bounds per-batch memory and ACK latency.
const BATCH_FRAMES: usize = 256;
/// Idle poll interval when fully caught up.
const IDLE_POLL: Duration = Duration::from_millis(10);
/// Heartbeat cadence while idle. The follower treats 3 missed intervals
/// as a lost primary (see `follower.rs`), so this is one third of the
/// failure-detection horizon.
pub(crate) const HEARTBEAT_EVERY: Duration = Duration::from_millis(200);

/// Sent-frame timestamps retained for ACK round-trip measurement; past
/// this many unacked frames new sends just go unmeasured (bulk catch-up
/// RTTs would say more about batching than the wire anyway).
const RTT_INFLIGHT_CAP: usize = 1024;

/// One attached follower, as the primary sees it.
pub(crate) struct FollowerConn {
    /// Highest version the follower has acknowledged applying.
    pub(crate) acked: AtomicU64,
    /// Socket handle kept for shutdown (unblocks the handler threads).
    stream: TcpStream,
    /// (version, sent-at) pairs awaiting acknowledgement, for RTT.
    inflight: Mutex<VecDeque<(u64, Instant)>>,
}

impl FollowerConn {
    /// Remember when a frame left, so its ACK can be timed.
    fn note_sent(&self, version: u64) {
        if !pip_obs::enabled() {
            return;
        }
        let mut q = self.inflight.lock().unwrap_or_else(|e| e.into_inner());
        if q.len() < RTT_INFLIGHT_CAP {
            q.push_back((version, Instant::now()));
        }
    }

    /// Record the round trip of every sent frame `version` covers.
    fn note_acked(&self, version: u64, rtt: &pip_obs::Histogram) {
        let mut q = self.inflight.lock().unwrap_or_else(|e| e.into_inner());
        while let Some(&(v, sent_at)) = q.front() {
            if v > version {
                break;
            }
            q.pop_front();
            rtt.observe_since(sent_at);
        }
    }
}

/// Shared state of a replicating primary.
pub(crate) struct PrimaryState {
    pub(crate) db: Arc<Database>,
    pub(crate) store: Arc<Store>,
    pub(crate) addr: SocketAddr,
    pub(crate) shutdown: AtomicBool,
    /// Replication epoch this primary serves under (mirrors the store's
    /// persisted epoch; cached for the hot feed path).
    pub(crate) epoch: AtomicU64,
    /// Set when a higher epoch deposed this primary (see module docs).
    pub(crate) fenced: AtomicBool,
    pub(crate) followers: Mutex<Vec<Arc<FollowerConn>>>,
    /// Parked ACK-quorum waits (`SET REPLICATION WAIT n`).
    pub(crate) hub: Arc<WaitHub>,
    /// Chaos-suite fault injection on the feed; `None` in production.
    pub(crate) faults: Mutex<Option<Arc<FaultInjector>>>,
    /// Feed event counters and latency histograms.
    pub(crate) metrics: crate::obs::ReplicaMetrics,
}

impl PrimaryState {
    /// Bind the replication listener and start the accept loop. The
    /// catalog must be durable — the WAL is the feed. The epoch served
    /// is whatever the store has persisted (0 for a never-promoted
    /// lineage).
    pub(crate) fn start(db: Arc<Database>, addr: &str) -> Result<Arc<PrimaryState>> {
        let store = Arc::clone(db.store().ok_or_else(|| {
            pip_core::PipError::Unsupported(
                "replication requires a durable catalog (open it with --data-dir)".into(),
            )
        })?);
        // Unlogged mutations would silently never reach followers.
        db.pin_durability();
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let epoch = store.epoch();
        let metrics = crate::obs::ReplicaMetrics::register(db.obs_registry());
        let hub = WaitHub::new();
        hub.attach_metrics(
            Arc::clone(&metrics.wait_park_seconds),
            Arc::clone(&metrics.wait_timeouts_total),
        );
        let state = Arc::new(PrimaryState {
            db,
            store: Arc::clone(&store),
            addr: local,
            shutdown: AtomicBool::new(false),
            epoch: AtomicU64::new(epoch),
            fenced: AtomicBool::new(false),
            followers: Mutex::new(Vec::new()),
            hub,
            faults: Mutex::new(None),
            metrics,
        });
        let accept_state = Arc::clone(&state);
        std::thread::Builder::new()
            .name("pip-repl-accept".into())
            .spawn(move || accept_loop(accept_state, listener, store))
            .expect("spawn replication accept thread");
        Ok(state)
    }

    /// Stop accepting and unblock every handler; parked waits fail.
    pub(crate) fn shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
        self.hub.shutdown();
        for conn in self
            .followers
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
        {
            let _ = conn.stream.shutdown(std::net::Shutdown::Both);
        }
    }

    /// Connected follower count.
    pub(crate) fn follower_count(&self) -> usize {
        self.followers
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .len()
    }

    /// Version distance between this primary and its slowest follower
    /// (0 with no followers attached).
    pub(crate) fn max_lag(&self) -> u64 {
        let version = self.db.version();
        self.followers
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|f| version.saturating_sub(f.acked.load(Ordering::Acquire)))
            .max()
            .unwrap_or(0)
    }

    /// The lowest version every attached follower has acked (equals the
    /// primary's own version when no follower is attached).
    pub(crate) fn acked_min(&self) -> u64 {
        self.followers
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|f| f.acked.load(Ordering::Acquire))
            .min()
            .unwrap_or_else(|| self.db.version())
    }

    /// Followers whose acked version has reached `version`.
    pub(crate) fn count_acked(&self, version: u64) -> usize {
        self.followers
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .filter(|f| f.acked.load(Ordering::Acquire) >= version)
            .count()
    }

    /// Register a parked wait for `need` follower ACKs at `version`.
    /// Returns `true` when already satisfied (no parking happened; the
    /// callback was NOT consumed is not possible — it is consumed only
    /// when parked). Otherwise `done(true)` fires when the quorum
    /// assembles, `done(false)` on timeout or shutdown.
    pub(crate) fn register_ack_wait(
        self: &Arc<Self>,
        version: u64,
        need: usize,
        timeout: Duration,
        done: crate::waiters::WaitDone,
    ) -> bool {
        let state = Arc::clone(self);
        self.hub.register(
            Box::new(move || state.count_acked(version) >= need),
            timeout,
            done,
        )
    }

    /// Depose this primary: a node with `epoch` higher than ours owns
    /// the feed now. Persist the higher epoch, refuse further writes
    /// with `ERR fenced`, and disconnect every follower so their
    /// re-point machinery finds the new primary.
    pub(crate) fn fence(&self, epoch: u64) {
        self.metrics.fencing_events_total.inc();
        pip_obs::warn!("replication: deposed by epoch {epoch}; fencing writes");
        let _ = self.store.set_epoch(epoch);
        self.epoch.fetch_max(epoch, Ordering::AcqRel);
        self.fenced.store(true, Ordering::Release);
        self.db.set_fenced(true);
        for conn in self
            .followers
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
        {
            let _ = conn.stream.shutdown(std::net::Shutdown::Both);
        }
    }

    fn injector(&self) -> Option<Arc<FaultInjector>> {
        self.faults
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }
}

fn accept_loop(state: Arc<PrimaryState>, listener: TcpListener, store: Arc<Store>) {
    while !state.shutdown.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, peer)) => {
                let state = Arc::clone(&state);
                let store = Arc::clone(&store);
                std::thread::Builder::new()
                    .name("pip-repl-feed".into())
                    .spawn(move || {
                        if let Err(e) = serve_follower(&state, &store, stream) {
                            if !state.shutdown.load(Ordering::Acquire) {
                                pip_obs::warn!("replication: follower {peer} dropped: {e}");
                            }
                        }
                    })
                    .expect("spawn replication feed thread");
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(_) => break,
        }
    }
}

/// Feed one follower until it disconnects or the primary shuts down.
fn serve_follower(state: &Arc<PrimaryState>, store: &Arc<Store>, stream: TcpStream) -> Result<()> {
    let mut reader = stream.try_clone()?;
    read_preamble(&mut reader)?;
    let hello = read_message(&mut reader)?;
    let Message::Hello {
        version: wire_w,
        epoch: peer_epoch,
        watermark: peer_watermark,
        ..
    } = hello
    else {
        return Err(pip_core::PipError::corrupt(
            "replication connection did not open with HELLO",
        ));
    };
    // The peer may be (or have fed) a primary in a past life; ids it
    // allocated must never be re-handed-out here.
    VarId::reserve_through(peer_watermark.saturating_sub(1));
    if peer_epoch > state.epoch.load(Ordering::Acquire) {
        // A newer primary exists: this HELLO is its deposition notice.
        state.fence(peer_epoch);
        return Err(pip_core::PipError::fenced(format!(
            "deposed by replication epoch {peer_epoch}"
        )));
    }
    if state.fenced.load(Ordering::Acquire) {
        // A fenced primary's unshipped suffix may diverge from the new
        // lineage — it must not feed anyone.
        return Err(pip_core::PipError::fenced(
            "this node was deposed; it no longer serves the feed",
        ));
    }
    if let Some(inj) = state.injector() {
        if inj.is_partitioned() {
            return Err(pip_core::PipError::io(
                "injected partition refuses the connection",
            ));
        }
    }

    let conn = Arc::new(FollowerConn {
        acked: AtomicU64::new(wire_w),
        stream: stream.try_clone()?,
        inflight: Mutex::new(VecDeque::new()),
    });
    state
        .followers
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push(Arc::clone(&conn));
    // Drain ACKs on a dedicated thread so slow frame writes never stall
    // acknowledgement bookkeeping (and vice versa).
    let ack_conn = Arc::clone(&conn);
    let ack_hub = Arc::clone(&state.hub);
    let acks_total = Arc::clone(&state.metrics.acks_total);
    let ack_rtt = Arc::clone(&state.metrics.ack_rtt_seconds);
    std::thread::Builder::new()
        .name("pip-repl-acks".into())
        .spawn(move || {
            while let Ok(msg) = read_message(&mut reader) {
                if let Message::Ack { version, watermark } = msg {
                    acks_total.inc();
                    ack_conn.acked.fetch_max(version, Ordering::AcqRel);
                    ack_conn.note_acked(version, &ack_rtt);
                    VarId::reserve_through(watermark.saturating_sub(1));
                    ack_hub.poke();
                }
            }
        })
        .expect("spawn replication ack thread");

    let result = feed_loop(state, store, &stream, &conn, wire_w);
    let mut followers = state.followers.lock().unwrap_or_else(|e| e.into_inner());
    followers.retain(|c| !Arc::ptr_eq(c, &conn));
    drop(followers);
    let _ = stream.shutdown(std::net::Shutdown::Both);
    result
}

/// Send one message through the fault injector (when installed).
fn send(state: &PrimaryState, out: &mut impl Write, msg: &Message) -> Result<()> {
    let Some(inj) = state.injector() else {
        return write_message(out, msg);
    };
    match inj.plan_send() {
        SendPlan::Deliver => write_message(out, msg),
        SendPlan::Drop => Ok(()),
        SendPlan::Duplicate => {
            write_message(out, msg)?;
            write_message(out, msg)
        }
        SendPlan::Delay(d) => {
            std::thread::sleep(d);
            write_message(out, msg)
        }
        SendPlan::Sever => Err(pip_core::PipError::io("injected feed failure")),
    }
}

fn feed_loop(
    state: &Arc<PrimaryState>,
    store: &Arc<Store>,
    stream: &TcpStream,
    conn: &Arc<FollowerConn>,
    hello_version: u64,
) -> Result<()> {
    let mut out = BufWriter::new(stream.try_clone()?);
    let (mut cursor, mut skip_through) = catch_up_plan(state, store, &mut out, hello_version)?;
    // Announce the epoch and where the primary stands right away, so
    // the follower adopts the epoch before any frame and lag is
    // measurable before the first idle heartbeat.
    send(state, &mut out, &heartbeat(state))?;
    out.flush()?;

    let mut last_heartbeat = Instant::now();
    while !state.shutdown.load(Ordering::Acquire) {
        if state.fenced.load(Ordering::Acquire) {
            return Err(pip_core::PipError::fenced(
                "this node was deposed; the feed stops",
            ));
        }
        match store.read_wal_frames(cursor, BATCH_FRAMES) {
            Ok(TailRead::Frames {
                frames,
                cursor: next,
            }) => {
                let idle = frames.is_empty();
                let epoch = state.epoch.load(Ordering::Acquire);
                for f in &frames {
                    if f.version <= skip_through {
                        continue; // prefix the follower already applied
                    }
                    send(
                        state,
                        &mut out,
                        &Message::Frame {
                            epoch,
                            payload: f.payload.clone(),
                        },
                    )?;
                    state.metrics.frames_shipped_total.inc();
                    conn.note_sent(f.version);
                }
                out.flush()?;
                cursor = next;
                if idle {
                    if last_heartbeat.elapsed() >= HEARTBEAT_EVERY {
                        send(state, &mut out, &heartbeat(state))?;
                        out.flush()?;
                        last_heartbeat = Instant::now();
                    }
                    std::thread::sleep(IDLE_POLL);
                }
            }
            // The chain was retired under us (checkpoint race) or turned
            // unreadable: fall back to a fresh snapshot.
            Ok(TailRead::Gap) | Err(_) => {
                let (c, s) = send_snapshot(state, &mut out)?;
                cursor = c;
                skip_through = s;
            }
        }
    }
    Ok(())
}

fn heartbeat(state: &PrimaryState) -> Message {
    Message::Heartbeat {
        epoch: state.epoch.load(Ordering::Acquire),
        version: state.db.version(),
        watermark: VarId::watermark(),
    }
}

/// Decide how a follower at version `w` catches up; returns the cursor
/// to tail from and the version to skip frames through (0 = none).
fn catch_up_plan(
    state: &Arc<PrimaryState>,
    store: &Arc<Store>,
    out: &mut impl Write,
    w: u64,
) -> Result<(WalCursor, u64)> {
    let (retained_gen, retained_version) = store.oldest_retained();
    if w >= retained_version {
        return Ok((WalCursor::start(retained_gen), w));
    }
    send_snapshot(state, out)
}

/// Capture and send a fresh snapshot; returns its paired cursor (no
/// skip filter — the cursor is positionally exact).
fn send_snapshot(state: &Arc<PrimaryState>, out: &mut impl Write) -> Result<(WalCursor, u64)> {
    let (snapshot, cursor) = state.db.capture_replication_snapshot()?;
    let bytes = snapshot_to_bytes(&snapshot)?;
    send(state, out, &Message::Snapshot(bytes))?;
    out.flush()?;
    state.metrics.snapshots_sent_total.inc();
    Ok((cursor, 0))
}
