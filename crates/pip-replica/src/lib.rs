//! # pip-replica — WAL-shipping replication for the PIP query service
//!
//! Horizontal read scaling by shipping the durable catalog's write-ahead
//! log from one writable **primary** to any number of read-only
//! **followers**:
//!
//! ```text
//!              ┌────────────┐   FRAME/SNAPSHOT    ┌────────────┐
//!   writes ──▶ │  primary   │ ──────────────────▶ │ follower 1 │ ──▶ reads
//!              │ (tails its │ ◀────────────────── │ (replays   │
//!              │  own WAL)  │        ACK          │  the log)  │
//!              └────────────┘ ──▶ follower 2 …    └────────────┘
//! ```
//!
//! The primary tails its own acknowledged WAL bytes (see
//! [`pip_store::tail`]) and streams frames over the wire protocol in
//! [`proto`]. A follower that is too far behind — the frames it needs
//! were retired by a checkpoint — first receives a full snapshot, then
//! the live tail. Because followers replay the *same* log the primary's
//! own crash recovery replays, in the same order, a caught-up follower
//! is bit-identical to the primary: same f64 bits, same variable
//! identities, same version counter.
//!
//! **Staleness model.** Replication is asynchronous: a read on a
//! follower sees some exact prefix of the primary's history, never a
//! torn state. The follower's applied version (in its STATS) tells
//! clients *which* prefix; read-your-writes routing is "remember the
//! version your write returned, query a replica whose applied version
//! has reached it".
//!
//! **Promotion.** [`Replication::promote`] seals the feed and opens the
//! follower's write gate. Its durable log is an exact prefix of the old
//! primary's, so no acknowledged-and-replicated mutation is lost; any
//! acknowledged-but-unshipped suffix stays in the old primary's data
//! directory (asynchronous replication's usual contract).

pub mod proto;

mod follower;
mod primary;

use std::net::SocketAddr;
use std::sync::Arc;

use pip_core::{PipError, Result};
use pip_engine::Database;

use follower::FollowerState;
use primary::PrimaryState;

/// A running replication role attached to a [`Database`]. Dropping the
/// handle does not stop the background threads — call
/// [`Replication::shutdown`].
pub struct Replication {
    inner: Inner,
}

enum Inner {
    Primary(Arc<PrimaryState>),
    Follower(Arc<FollowerState>),
}

impl Replication {
    /// Start a primary: bind `addr` and fan the database's WAL out to
    /// whoever connects. Requires a durable catalog; pins durability on
    /// (unlogged mutations could never reach followers).
    pub fn primary(db: Arc<Database>, addr: &str) -> Result<Replication> {
        Ok(Replication {
            inner: Inner::Primary(PrimaryState::start(db, addr)?),
        })
    }

    /// Start a follower of the primary at `primary_addr`: marks the
    /// database read-only and begins catching up in the background,
    /// reconnecting with backoff for as long as the primary is away.
    pub fn follower(db: Arc<Database>, primary_addr: &str) -> Replication {
        Replication {
            inner: Inner::Follower(FollowerState::start(db, primary_addr)),
        }
    }

    /// The primary's bound replication address (`None` on a follower).
    pub fn local_addr(&self) -> Option<SocketAddr> {
        match &self.inner {
            Inner::Primary(p) => Some(p.addr),
            Inner::Follower(_) => None,
        }
    }

    /// `"primary"` or `"replica"`; a promoted follower reports
    /// `"primary"` from the moment [`Replication::promote`] returns.
    pub fn role(&self) -> &'static str {
        match &self.inner {
            Inner::Primary(_) => "primary",
            Inner::Follower(f) => {
                if f.sealed.load(std::sync::atomic::Ordering::Acquire) {
                    "primary"
                } else {
                    "replica"
                }
            }
        }
    }

    /// True while this node is an (unpromoted) follower.
    pub fn is_replica(&self) -> bool {
        self.role() == "replica"
    }

    /// Seal the feed and flip a follower writable. Everything applied so
    /// far — an exact prefix of the primary's log — stays; the node
    /// accepts writes before this returns. Errors on a primary.
    pub fn promote(&self) -> Result<()> {
        match &self.inner {
            Inner::Primary(_) => Err(PipError::Unsupported(
                "PROMOTE: this node is already the primary".into(),
            )),
            Inner::Follower(f) => {
                f.seal();
                f.db.set_read_only(false);
                Ok(())
            }
        }
    }

    /// Followers currently attached (always 0 on a follower).
    pub fn follower_count(&self) -> usize {
        match &self.inner {
            Inner::Primary(p) => p.follower_count(),
            Inner::Follower(_) => 0,
        }
    }

    /// The catalog version this node has applied.
    pub fn applied_version(&self) -> u64 {
        match &self.inner {
            Inner::Primary(p) => p.db.version(),
            Inner::Follower(f) => f.db.version(),
        }
    }

    /// Version distance to worry about: on a follower, how far behind
    /// the primary it is; on a primary, how far behind its slowest
    /// attached follower is. 0 when fully caught up (or alone).
    pub fn replication_lag(&self) -> u64 {
        match &self.inner {
            Inner::Primary(p) => p.max_lag(),
            Inner::Follower(f) => f.lag(),
        }
    }

    /// True while a follower has a live connection to its primary
    /// (always true on a primary — it is its own feed).
    pub fn connected(&self) -> bool {
        match &self.inner {
            Inner::Primary(_) => true,
            Inner::Follower(f) => f.connected.load(std::sync::atomic::Ordering::Acquire),
        }
    }

    /// Stop the background threads: a primary stops accepting and drops
    /// every follower; a follower seals its feed (read-only gate is left
    /// as-is — this is shutdown, not promotion).
    pub fn shutdown(&self) {
        match &self.inner {
            Inner::Primary(p) => p.shutdown(),
            Inner::Follower(f) => f.seal(),
        }
    }
}
