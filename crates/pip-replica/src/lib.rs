//! # pip-replica — WAL-shipping replication for the PIP query service
//!
//! Horizontal read scaling by shipping the durable catalog's write-ahead
//! log from one writable **primary** to any number of read-only
//! **followers**:
//!
//! ```text
//!              ┌────────────┐   FRAME/SNAPSHOT    ┌────────────┐
//!   writes ──▶ │  primary   │ ──────────────────▶ │ follower 1 │ ──▶ reads
//!              │ (tails its │ ◀────────────────── │ (replays   │
//!              │  own WAL)  │        ACK          │  the log)  │
//!              └────────────┘ ──▶ follower 2 …    └────────────┘
//! ```
//!
//! The primary tails its own acknowledged WAL bytes (see
//! [`pip_store::tail`]) and streams frames over the wire protocol in
//! [`proto`]. A follower that is too far behind — the frames it needs
//! were retired by a checkpoint — first receives a full snapshot, then
//! the live tail. Because followers replay the *same* log the primary's
//! own crash recovery replays, in the same order, a caught-up follower
//! is bit-identical to the primary: same f64 bits, same variable
//! identities, same version counter.
//!
//! **Staleness model.** Replication is asynchronous by default: a read
//! on a follower sees some exact prefix of the primary's history, never
//! a torn state. Two opt-in strengthenings sit on top:
//!
//! * `SET REPLICATION WAIT n` (or `MAJORITY`) on the primary withholds a
//!   mutation's reply until *n* followers have ACKed its version — see
//!   [`Replication::register_ack_wait`]. A timeout degrades to an error
//!   reply, never a hang.
//! * `WAIT VERSION v` on a follower blocks until its applied version
//!   reaches `v` — read-your-writes routing is "remember the version
//!   your write returned, `WAIT VERSION` it on the replica you query".
//!
//! **Failover.** [`Replication::promote`] seals the feed, opens the
//! write gate, and mints a new **replication epoch** (persisted in the
//! data directory). When the node was built with a listen address
//! ([`Replication::follower_promotable`]) it starts serving the feed
//! itself and announces the new epoch to its old candidate primaries —
//! a deposed primary that hears the higher epoch **fences** itself
//! (writes answer `ERR fenced`, the feed stops, followers are kicked so
//! they re-point). Followers rotate through their candidate list on
//! every connection failure, so the cluster converges on the promoted
//! node without restarts.

pub mod faults;
pub mod proto;

mod follower;
mod obs;
mod primary;
mod waiters;

use std::net::SocketAddr;
use std::sync::atomic::Ordering;
use std::sync::{Arc, RwLock};
use std::time::Duration;

use pip_core::{PipError, Result};
use pip_engine::Database;
use pip_expr::VarId;

use faults::FaultInjector;
use follower::FollowerState;
use primary::PrimaryState;
pub use waiters::WaitDone;

/// How long the post-promotion courtesy HELLO gives each old candidate.
const DEPOSE_DIAL_TIMEOUT: Duration = Duration::from_millis(500);

/// A running replication role attached to a [`Database`]. The role can
/// change at runtime — [`Replication::promote`] swaps a follower into a
/// primary in place. Dropping the handle does not stop the background
/// threads — call [`Replication::shutdown`].
pub struct Replication {
    inner: RwLock<Inner>,
    /// Address a promoted follower will serve the feed on (from
    /// [`Replication::follower_promotable`]).
    promote_listen: Option<String>,
}

enum Inner {
    Primary(Arc<PrimaryState>),
    Follower(Arc<FollowerState>),
}

impl Replication {
    /// Start a primary: bind `addr` and fan the database's WAL out to
    /// whoever connects. Requires a durable catalog; pins durability on
    /// (unlogged mutations could never reach followers).
    pub fn primary(db: Arc<Database>, addr: &str) -> Result<Replication> {
        Ok(Replication {
            inner: RwLock::new(Inner::Primary(PrimaryState::start(db, addr)?)),
            promote_listen: None,
        })
    }

    /// Start a follower: marks the database read-only and begins
    /// catching up in the background, reconnecting with backoff for as
    /// long as the primary is away. `primary_addrs` is a comma-separated
    /// candidate list; the follower rotates through it on every failed
    /// connection, which is how it finds a promoted node after failover.
    pub fn follower(db: Arc<Database>, primary_addrs: &str) -> Replication {
        Self::follower_promotable(db, primary_addrs, None)
    }

    /// [`Replication::follower`], plus a listen address the node will
    /// bind if it is ever promoted — without one, `PROMOTE` still opens
    /// the write gate but the node cannot feed followers of its own.
    pub fn follower_promotable(
        db: Arc<Database>,
        primary_addrs: &str,
        listen_addr: Option<&str>,
    ) -> Replication {
        let candidates: Vec<String> = primary_addrs
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect();
        Replication {
            inner: RwLock::new(Inner::Follower(FollowerState::start(db, candidates))),
            promote_listen: listen_addr.map(str::to_string),
        }
    }

    fn read(&self) -> std::sync::RwLockReadGuard<'_, Inner> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// The primary's bound replication address (`None` on a follower).
    pub fn local_addr(&self) -> Option<SocketAddr> {
        match &*self.read() {
            Inner::Primary(p) => Some(p.addr),
            Inner::Follower(_) => None,
        }
    }

    /// `"primary"` or `"replica"`; a promoted follower reports
    /// `"primary"` from the moment [`Replication::promote`] returns.
    pub fn role(&self) -> &'static str {
        match &*self.read() {
            Inner::Primary(_) => "primary",
            Inner::Follower(f) => {
                if f.sealed.load(Ordering::Acquire) {
                    "primary"
                } else {
                    "replica"
                }
            }
        }
    }

    /// True while this node is an (unpromoted) follower.
    pub fn is_replica(&self) -> bool {
        self.role() == "replica"
    }

    /// The replication epoch this node currently serves or follows.
    pub fn epoch(&self) -> u64 {
        match &*self.read() {
            Inner::Primary(p) => p.epoch.load(Ordering::Acquire),
            Inner::Follower(f) => f.epoch.load(Ordering::Acquire),
        }
    }

    /// True once a higher epoch deposed this primary (always false on a
    /// follower — a deposed follower just switches primaries).
    pub fn is_fenced(&self) -> bool {
        match &*self.read() {
            Inner::Primary(p) => p.fenced.load(Ordering::Acquire),
            Inner::Follower(_) => false,
        }
    }

    /// Promote a follower: seal the feed, mint and persist a new epoch,
    /// open the write gate, and — when a listen address was configured —
    /// start serving the feed and notify the old candidates so the
    /// deposed primary fences itself. Errors on a node that is already
    /// the primary.
    pub fn promote(&self) -> Result<()> {
        let mut inner = self.inner.write().unwrap_or_else(|e| e.into_inner());
        let follower = match &*inner {
            Inner::Primary(_) => {
                return Err(PipError::Unsupported(
                    "PROMOTE: this node is already the primary".into(),
                ))
            }
            Inner::Follower(f) => Arc::clone(f),
        };
        follower.seal();
        let db = Arc::clone(&follower.db);
        let new_epoch = follower.epoch.load(Ordering::Acquire) + 1;
        if let Some(store) = db.store() {
            store.set_epoch(new_epoch)?;
        }
        db.set_fenced(false);
        db.set_read_only(false);
        let Some(listen) = self.promote_listen.as_deref() else {
            // No feed address: the node is writable but cannot replicate
            // onward. Keep the sealed follower (role() says "primary").
            return Ok(());
        };
        if db.store().is_none() {
            return Ok(());
        }
        let primary = PrimaryState::start(db, listen)?;
        *inner = Inner::Primary(primary);
        drop(inner);
        // Courtesy deposition notice: tell the old candidates the epoch
        // moved on, so the deposed primary fences *now* instead of when
        // a re-pointing follower happens to tell it. Best-effort — a
        // dead primary learns on restart from any HELLO it receives.
        let candidates = follower.candidates.clone();
        std::thread::Builder::new()
            .name("pip-repl-depose".into())
            .spawn(move || depose_old_primaries(&candidates, new_epoch))
            .expect("spawn deposition thread");
        Ok(())
    }

    /// Followers currently attached (always 0 on a follower).
    pub fn follower_count(&self) -> usize {
        match &*self.read() {
            Inner::Primary(p) => p.follower_count(),
            Inner::Follower(_) => 0,
        }
    }

    /// The catalog version this node has applied.
    pub fn applied_version(&self) -> u64 {
        match &*self.read() {
            Inner::Primary(p) => p.db.version(),
            Inner::Follower(f) => f.db.version(),
        }
    }

    /// Version distance to worry about: on a follower, how far behind
    /// the primary it is; on a primary, how far behind its slowest
    /// attached follower is. 0 when fully caught up (or alone).
    pub fn replication_lag(&self) -> u64 {
        match &*self.read() {
            Inner::Primary(p) => p.max_lag(),
            Inner::Follower(f) => f.lag(),
        }
    }

    /// True while a follower has a live connection to its primary
    /// (always true on a primary — it is its own feed).
    pub fn connected(&self) -> bool {
        match &*self.read() {
            Inner::Primary(_) => true,
            Inner::Follower(f) => f.connected.load(Ordering::Acquire),
        }
    }

    /// The lowest version every attached follower has acked; `None` on a
    /// follower (shown as STATS `acked_min=` on primaries).
    pub fn acked_min(&self) -> Option<u64> {
        match &*self.read() {
            Inner::Primary(p) => Some(p.acked_min()),
            Inner::Follower(_) => None,
        }
    }

    /// Follower ACKs that constitute a majority of the cluster (this
    /// node plus its attached followers): with f followers the cluster
    /// has f+1 voters, a majority is ⌊(f+1)/2⌋+1 of them, and the
    /// primary's own vote is free — leaving ⌊(f+1)/2⌋ follower ACKs.
    pub fn majority_need(&self) -> usize {
        self.follower_count().div_ceil(2)
    }

    /// Park a wait for `need` follower ACKs at `version` (the machinery
    /// behind `SET REPLICATION WAIT n`). Returns `true` when the quorum
    /// already holds — nothing parked, `done` not consumed. Otherwise
    /// `done(true)` fires when it assembles, `done(false)` on timeout or
    /// shutdown. On a follower the wait is vacuously satisfied.
    pub fn register_ack_wait(
        &self,
        version: u64,
        need: usize,
        timeout: Duration,
        done: WaitDone,
    ) -> bool {
        match &*self.read() {
            Inner::Primary(p) => p.register_ack_wait(version, need, timeout, done),
            Inner::Follower(_) => true,
        }
    }

    /// Park a wait for this node's applied version to reach `version`
    /// (the machinery behind `WAIT VERSION`). Same contract as
    /// [`Replication::register_ack_wait`]. Works on either role; on a
    /// primary the version only advances with local writes.
    pub fn register_version_wait(&self, version: u64, timeout: Duration, done: WaitDone) -> bool {
        match &*self.read() {
            Inner::Primary(p) => {
                let db = Arc::clone(&p.db);
                p.hub
                    .register(Box::new(move || db.version() >= version), timeout, done)
            }
            Inner::Follower(f) => f.register_version_wait(version, timeout, done),
        }
    }

    /// Blocking form of [`Replication::register_version_wait`] for
    /// callers without a parking mechanism (embedded sessions): true iff
    /// the version arrived before the timeout.
    pub fn wait_version_blocking(&self, version: u64, timeout: Duration) -> bool {
        let (tx, rx) = std::sync::mpsc::channel();
        let done: WaitDone = Box::new(move |ok| {
            let _ = tx.send(ok);
        });
        if self.register_version_wait(version, timeout, done) {
            return true;
        }
        rx.recv().unwrap_or(false)
    }

    /// Install (or clear) a fault injector on the primary's feed. The
    /// chaos suite's hook; a no-op on a follower.
    pub fn set_fault_injector(&self, injector: Option<Arc<FaultInjector>>) {
        if let Inner::Primary(p) = &*self.read() {
            *p.faults.lock().unwrap_or_else(|e| e.into_inner()) = injector;
        }
    }

    /// Stop the background threads: a primary stops accepting and drops
    /// every follower; a follower seals its feed (read-only gate is left
    /// as-is — this is shutdown, not promotion). Parked waits fail.
    pub fn shutdown(&self) {
        match &*self.read() {
            Inner::Primary(p) => p.shutdown(),
            Inner::Follower(f) => f.seal(),
        }
    }
}

/// Dial each old candidate and present a HELLO carrying the new epoch;
/// a live deposed primary fences itself on receipt. Errors are ignored
/// — an unreachable candidate is dead or partitioned, and the epoch
/// check on its next HELLO exchange fences it anyway.
fn depose_old_primaries(candidates: &[String], epoch: u64) {
    use std::io::Write as _;
    for addr in candidates {
        let Ok(sock_addrs) = std::net::ToSocketAddrs::to_socket_addrs(&addr.as_str()) else {
            continue;
        };
        for sock in sock_addrs {
            let Ok(stream) = std::net::TcpStream::connect_timeout(&sock, DEPOSE_DIAL_TIMEOUT)
            else {
                continue;
            };
            let mut out = std::io::BufWriter::new(stream);
            let sent = proto::write_preamble(&mut out)
                .and_then(|()| {
                    proto::write_message(
                        &mut out,
                        &proto::Message::Hello {
                            gen: 0,
                            version: 0,
                            epoch,
                            watermark: VarId::watermark(),
                        },
                    )
                })
                .and_then(|()| out.flush().map_err(PipError::from));
            if sent.is_ok() {
                break;
            }
        }
    }
}
