//! Replication-layer metric handles.
//!
//! One bundle per node role instance, registered into the database's
//! registry. Registration is idempotent on (name, labels), so a node
//! that lives through `FOLLOWER → PROMOTE → primary` keeps accumulating
//! into the same series rather than forking new ones.
//!
//! The *derived* replication gauges (role, epoch, lag, applied version,
//! follower count) are registered at the server layer against a
//! `Weak<Replication>` — they outlive promote and must never create a
//! registry → state cycle. This module only owns event counters and
//! latency histograms tied to concrete feed activity.

use std::sync::Arc;

use pip_obs::{Counter, Histogram, Registry};

/// Event counters and latency histograms for the replication feed.
#[derive(Debug, Clone)]
pub(crate) struct ReplicaMetrics {
    /// WAL frames shipped to followers (all followers combined).
    pub(crate) frames_shipped_total: Arc<Counter>,
    /// Catch-up snapshots captured and sent by the primary.
    pub(crate) snapshots_sent_total: Arc<Counter>,
    /// ACK messages drained from followers.
    pub(crate) acks_total: Arc<Counter>,
    /// Frame-send to ACK round trip, per acknowledged frame.
    pub(crate) ack_rtt_seconds: Arc<Histogram>,
    /// Times this node was fenced by a higher epoch.
    pub(crate) fencing_events_total: Arc<Counter>,
    /// Follower connection attempts that failed or connections lost.
    pub(crate) reconnects_total: Arc<Counter>,
    /// WAL frames applied by the follower.
    pub(crate) frames_applied_total: Arc<Counter>,
    /// Catch-up snapshots installed by the follower.
    pub(crate) snapshots_installed_total: Arc<Counter>,
    /// Time parked in the wait hub (ACK-quorum and WAIT VERSION waits).
    pub(crate) wait_park_seconds: Arc<Histogram>,
    /// Parked waits that hit their deadline (or died at shutdown).
    pub(crate) wait_timeouts_total: Arc<Counter>,
}

impl ReplicaMetrics {
    pub(crate) fn register(r: &Registry) -> ReplicaMetrics {
        ReplicaMetrics {
            frames_shipped_total: r.counter(
                "pip_replica_frames_shipped_total",
                "WAL frames shipped to followers.",
            ),
            snapshots_sent_total: r.counter(
                "pip_replica_snapshots_sent_total",
                "Catch-up snapshots sent to followers.",
            ),
            acks_total: r.counter(
                "pip_replica_acks_total",
                "ACK messages received from followers.",
            ),
            ack_rtt_seconds: r.histogram(
                "pip_replica_ack_rtt_seconds",
                "Frame-send to ACK round-trip time.",
            ),
            fencing_events_total: r.counter(
                "pip_replica_fencing_events_total",
                "Times this node was fenced by a higher replication epoch.",
            ),
            reconnects_total: r.counter(
                "pip_replica_reconnects_total",
                "Follower connection attempts that failed or connections lost.",
            ),
            frames_applied_total: r.counter(
                "pip_replica_frames_applied_total",
                "Replicated WAL frames applied on this follower.",
            ),
            snapshots_installed_total: r.counter(
                "pip_replica_snapshots_installed_total",
                "Catch-up snapshots installed on this follower.",
            ),
            wait_park_seconds: r.histogram(
                "pip_replica_wait_park_seconds",
                "Time replication waits (ACK quorum, WAIT VERSION) spent parked.",
            ),
            wait_timeouts_total: r.counter(
                "pip_replica_wait_timeouts_total",
                "Parked replication waits that timed out or died at shutdown.",
            ),
        }
    }
}
