//! Helpers shared by the replication and chaos test suites: scratch
//! dirs, a deterministic mutation generator, and the bit-identity probe
//! that is the load-bearing assertion throughout — a caught-up follower
//! must answer the probe-query suite with exactly the bytes the primary
//! produces, at 1, 2, and 4 sampler threads.

// Each test binary compiles its own copy; not all of them use every
// helper.
#![allow(dead_code)]

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use pip_core::{tuple, DataType, Schema};
use pip_ctable::CRow;
use pip_engine::{execute, scalar_result, AggFunc, Database, PlanBuilder};
use pip_expr::{atoms, Conjunction, Equation};
use pip_replica::Replication;
use pip_sampling::SamplerConfig;

/// Unique scratch directory per call (tests run in parallel threads of
/// one process, so a static counter disambiguates within the pid).
pub fn tmp_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("pip-replica-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

pub fn open(dir: &PathBuf) -> Arc<Database> {
    Arc::new(Database::open(dir).unwrap())
}

/// One deterministic mutation, varied by `i`: plain tuples, conditional
/// rows over fresh variables, and the occasional new table.
pub fn mutate(db: &Database, i: u64) {
    match i % 4 {
        0 => db
            .insert_tuples("obs", &[tuple![i as f64 * 0.5, i as i64]])
            .unwrap(),
        1 => {
            let v = db
                .create_variable("Normal", &[i as f64, 1.0 + (i % 3) as f64])
                .unwrap();
            db.insert_rows(
                "obs",
                vec![CRow::new(
                    vec![Equation::from(v.clone()), Equation::val(i as f64)],
                    Conjunction::single(atoms::gt(Equation::from(v), i as f64 - 0.5)),
                )],
            )
            .unwrap();
        }
        2 => db
            .insert_tuples(
                "obs",
                &[tuple![-(i as f64), (i * 7) as i64], tuple![0.25, i as i64]],
            )
            .unwrap(),
        _ => {
            let v = db
                .create_variable("Uniform", &[0.0, 1.0 + i as f64])
                .unwrap();
            db.insert_rows(
                "obs",
                vec![CRow::new(
                    vec![Equation::from(v.clone()), Equation::val(-1.0)],
                    Conjunction::single(atoms::lt(Equation::from(v), 0.75 * i as f64)),
                )],
            )
            .unwrap();
        }
    }
}

pub fn seed_primary(dir: &PathBuf, mutations: u64) -> Arc<Database> {
    let db = open(dir);
    db.create_table(
        "obs",
        Schema::of(&[("x", DataType::Symbolic), ("k", DataType::Int)]),
    )
    .unwrap();
    for i in 0..mutations {
        mutate(&db, i);
    }
    db
}

/// The probe suite: an expectation aggregate and a confidence head, both
/// Monte-Carlo sampled. Returns the f64 bit patterns of every cell that
/// could possibly wobble.
pub fn probe_bits(db: &Database, threads: usize) -> Vec<u64> {
    let cfg = SamplerConfig::default().with_threads(threads);
    let mut bits = Vec::new();
    let sum = PlanBuilder::scan("obs")
        .aggregate(
            vec![],
            vec![AggFunc::ExpectedSum("x".into()), AggFunc::ExpectedCount],
        )
        .build();
    let t = execute(db, &sum, &cfg).unwrap();
    for row in t.rows() {
        for cell in &row.cells {
            bits.push(
                cell.as_const()
                    .and_then(|v| v.as_f64().ok())
                    .map_or(u64::MAX, f64::to_bits),
            );
        }
    }
    bits.push(scalar_result(&execute(db, &sum, &cfg).unwrap()).map_or(u64::MAX, f64::to_bits));
    let conf = PlanBuilder::scan("obs").conf().build();
    let t = execute(db, &conf, &cfg).unwrap();
    for row in t.rows() {
        for cell in &row.cells {
            bits.push(
                cell.as_const()
                    .and_then(|v| v.as_f64().ok())
                    .map_or(u64::MAX, f64::to_bits),
            );
        }
    }
    bits
}

/// Assert the follower is indistinguishable from the primary: version,
/// table bits, variable identities, and probe answers at 1/2/4 threads.
pub fn assert_bit_identical(primary: &Database, follower: &Database) {
    assert_eq!(follower.version(), primary.version(), "version counter");
    let (pt, ft) = (
        primary.table("obs").unwrap(),
        follower.table("obs").unwrap(),
    );
    assert_eq!(*pt, *ft, "c-table state");
    assert_eq!(
        pt.variables(),
        ft.variables(),
        "variable identities survive the wire"
    );
    for threads in [1, 2, 4] {
        assert_eq!(
            probe_bits(primary, threads),
            probe_bits(follower, threads),
            "probe suite diverges at {threads} sampler threads"
        );
    }
}

/// Wait until the follower has applied the primary's current version.
pub fn wait_caught_up(repl: &Replication, primary: &Database) {
    let target = primary.version();
    let deadline = Instant::now() + Duration::from_secs(30);
    while repl.applied_version() < target {
        assert!(
            Instant::now() < deadline,
            "follower stuck at version {} (primary at {target})",
            repl.applied_version()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Spin until `cond` holds or the deadline passes; panics with `what`.
pub fn wait_until(what: &str, timeout: Duration, cond: impl Fn() -> bool) {
    let deadline = Instant::now() + timeout;
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Blocking ACK-quorum wait (the test-side stand-in for a parked server
/// session under `SET REPLICATION WAIT n`).
pub fn wait_acks(repl: &Replication, version: u64, need: usize, timeout: Duration) -> bool {
    let (tx, rx) = std::sync::mpsc::channel();
    let done: pip_replica::WaitDone = Box::new(move |ok| {
        let _ = tx.send(ok);
    });
    if repl.register_ack_wait(version, need, timeout, done) {
        return true;
    }
    rx.recv().unwrap_or(false)
}

pub fn cleanup(dirs: &[&PathBuf]) {
    for d in dirs {
        let _ = std::fs::remove_dir_all(d);
    }
}
