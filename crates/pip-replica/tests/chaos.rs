//! The chaos suite: deterministic fault injection, failover, fencing,
//! and the synchronous-acknowledgement machinery, all over real TCP on
//! loopback.
//!
//! The headline invariant (proptested under randomized fault schedules
//! and partition/heal/kill/promote sequences): **no write acknowledged
//! under `WAIT n ≥ 1` is ever absent after a single-node failure plus
//! failover**, and the surviving state answers the probe suite
//! bit-identically at 1, 2 and 4 sampler threads.
//!
//! Every schedule is seed-driven ([`pip_replica::faults`]); a failing
//! case reports its seed, and re-running with that seed replays the
//! exact same fault plan.

use std::sync::Arc;
use std::time::Duration;

use pip_core::tuple;
use pip_expr::VarId;
use pip_replica::faults::{FaultConfig, FaultInjector};
use pip_replica::{proto, Replication};

mod common;
use common::*;

/// Pick a loopback address that is free right now. There is a window
/// between probing and binding, but distinct ephemeral ports per probe
/// make collisions vanishingly rare for a test process.
fn free_addr() -> String {
    let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    l.local_addr().unwrap().to_string()
}

/// Fault rates aggressive enough to exercise every plan kind within a
/// ~50-message exchange, mild enough that convergence stays quick.
fn chaotic() -> FaultConfig {
    FaultConfig {
        drop_per_mille: 90,
        duplicate_per_mille: 100,
        delay_per_mille: 60,
        max_delay_ms: 25,
        sever_per_mille: 30,
    }
}

// ---------------------------------------------------------------------
// Acknowledged-write durability across failover, under chaos
// ---------------------------------------------------------------------

/// One full chaos scenario for a given seed: write under `WAIT 1`
/// through an injected-fault feed with a partition/heal cycle and
/// checkpoints mixed in, then kill the primary, promote the follower,
/// and check every acknowledged write survived.
fn acked_writes_survive_failover(seed: u64) {
    let (pd, fd) = (tmp_dir("chaos-p"), tmp_dir("chaos-f"));
    let primary = seed_primary(&pd, 4);
    let repl = Replication::primary(Arc::clone(&primary), "127.0.0.1:0").unwrap();
    let addr = repl.local_addr().unwrap().to_string();
    let injector = FaultInjector::new(seed, chaotic());
    repl.set_fault_injector(Some(Arc::clone(&injector)));

    let follower = open(&fd);
    let frepl = Replication::follower(Arc::clone(&follower), &addr);

    let mut highest_acked = 0u64;
    let mut acked = 0usize;
    for i in 4..16 {
        mutate(&primary, i);
        let version = primary.version();
        // A generous deadline when the feed is (nominally) up: injected
        // severs force reconnects that re-ship the suffix, so the ACK
        // always arrives eventually. While partitioned the wait *must*
        // time out — don't sit through the full deadline proving it.
        let deadline = if injector.is_partitioned() {
            Duration::from_millis(700)
        } else {
            Duration::from_secs(10)
        };
        let got = wait_acks(&repl, version, 1, deadline);
        if got {
            highest_acked = highest_acked.max(version);
            acked += 1;
        }
        assert!(
            !(got && injector.is_partitioned()),
            "seed {seed}: a write was acked across an active partition"
        );
        match i {
            9 => injector.partition(),
            11 => injector.heal(),
            7 | 13 => {
                primary.checkpoint().unwrap();
            }
            _ => {}
        }
    }
    injector.heal();
    assert!(acked > 0, "seed {seed}: no write ever acknowledged");

    // Even with faults still firing, detect-and-resync must converge.
    wait_caught_up(&frepl, &primary);
    assert_bit_identical(&primary, &follower);

    // Single-node failure: the primary dies. Promote the follower.
    repl.shutdown();
    frepl.promote().unwrap();
    assert_eq!(frepl.role(), "primary");
    assert!(
        follower.version() >= highest_acked,
        "seed {seed}: write acked at version {highest_acked} is absent after failover \
         (survivor stops at {})",
        follower.version()
    );
    // The survivor keeps serving: writes version forward from here.
    let before = follower.version();
    follower
        .insert_tuples("obs", &[tuple![3.5, 77i64]])
        .unwrap();
    assert!(follower.version() > before);

    frepl.shutdown();
    cleanup(&[&pd, &fd]);
}

#[test]
fn acked_writes_survive_failover_fixed_seeds() {
    // The CI fixed-seed set; each replays an exact fault schedule.
    for seed in [2, 7, 1984] {
        acked_writes_survive_failover(seed);
    }
}

/// CI's randomized round: the workflow picks a fresh seed per run, logs
/// it, and passes it in through `PIP_CHAOS_SEED` — so a red run is
/// replayable locally with the exact same fault schedule. A no-op when
/// the variable is unset (the fixed-seed and proptest rounds cover
/// local runs).
#[test]
fn logged_random_seed_survives_failover() {
    if let Ok(seed) = std::env::var("PIP_CHAOS_SEED") {
        let seed: u64 = seed.parse().expect("PIP_CHAOS_SEED must be a u64");
        eprintln!("chaos: replaying logged seed {seed}");
        acked_writes_survive_failover(seed);
    }
}

mod randomized {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(2))]

        /// Same scenario, randomized seed — proptest prints the seed on
        /// failure, and `acked_writes_survive_failover(seed)` replays it.
        #[test]
        fn acked_writes_survive_failover_random_seed(seed in 0u64..1_000_000) {
            acked_writes_survive_failover(seed);
        }
    }
}

// ---------------------------------------------------------------------
// Epoch fencing and follower re-point
// ---------------------------------------------------------------------

/// The full failover minuet: primary A, promotable follower B, bystander
/// follower C. Promoting B mints a new epoch; A fences itself the moment
/// it hears it (writes answer `ERR fenced`), and C re-points to B
/// without a restart.
#[test]
fn promotion_fences_the_deposed_primary_and_repoints_followers() {
    let (ad, bd, cd) = (tmp_dir("fence-a"), tmp_dir("fence-b"), tmp_dir("fence-c"));
    let a = seed_primary(&ad, 8);
    let arepl = Replication::primary(Arc::clone(&a), "127.0.0.1:0").unwrap();
    let a_addr = arepl.local_addr().unwrap().to_string();
    let b_addr = free_addr();

    let b = open(&bd);
    let brepl = Replication::follower_promotable(Arc::clone(&b), &a_addr, Some(&b_addr));
    let c = open(&cd);
    // C knows both candidates; it attaches to A first.
    let crepl = Replication::follower(Arc::clone(&c), &format!("{a_addr},{b_addr}"));
    wait_caught_up(&brepl, &a);
    wait_caught_up(&crepl, &a);
    assert_eq!(arepl.epoch(), 0);

    // Failover: B takes over (A is still up — the deposition notice must
    // fence it, not a crash).
    brepl.promote().unwrap();
    assert_eq!(brepl.role(), "primary");
    assert_eq!(brepl.epoch(), 1, "promotion mints the next epoch");
    assert_eq!(
        brepl.local_addr().unwrap().to_string(),
        b_addr,
        "promoted node serves the feed on its configured address"
    );

    // A hears the higher epoch and seals itself.
    wait_until(
        "the deposed primary to fence itself",
        Duration::from_secs(10),
        || arepl.is_fenced(),
    );
    let err = a.insert_tuples("obs", &[tuple![1.0, 1i64]]).unwrap_err();
    assert!(
        err.to_string().starts_with("fenced"),
        "deposed primary must answer writes with a fenced error, got: {err}"
    );
    // Reads still work on the fenced node.
    assert!(probe_bits(&a, 1).len() > 1);

    // B accepts writes; C re-points to B and applies them — no restart.
    for i in 8..14 {
        mutate(&b, i);
    }
    wait_until(
        "the bystander to re-point to the new primary",
        Duration::from_secs(20),
        || crepl.applied_version() >= b.version() && crepl.epoch() == 1,
    );
    assert_bit_identical(&b, &c);

    // Split-brain attempt: the deposed primary cannot feed anyone. A
    // follower pointed only at A connects, is refused, and never applies
    // a thing past A's sealed state.
    let dd = tmp_dir("fence-d");
    let d = open(&dd);
    let drepl = Replication::follower(Arc::clone(&d), &a_addr);
    std::thread::sleep(Duration::from_millis(400));
    assert_eq!(d.version(), 0, "a fenced primary must not serve the feed");
    drepl.shutdown();

    crepl.shutdown();
    brepl.shutdown();
    arepl.shutdown();
    cleanup(&[&ad, &bd, &cd, &dd]);
}

/// A dead first candidate is skipped: the follower rotates through its
/// candidate list until it finds a live primary.
#[test]
fn follower_rotates_past_dead_candidates() {
    let (pd, fd) = (tmp_dir("rotate-p"), tmp_dir("rotate-f"));
    let primary = seed_primary(&pd, 6);
    let repl = Replication::primary(Arc::clone(&primary), "127.0.0.1:0").unwrap();
    let live = repl.local_addr().unwrap().to_string();
    let dead = free_addr(); // nothing listens here

    let follower = open(&fd);
    let frepl = Replication::follower(Arc::clone(&follower), &format!("{dead},{live}"));
    wait_caught_up(&frepl, &primary);
    assert_bit_identical(&primary, &follower);

    frepl.shutdown();
    repl.shutdown();
    cleanup(&[&pd, &fd]);
}

// ---------------------------------------------------------------------
// Heartbeat-loss detection
// ---------------------------------------------------------------------

/// A feed that goes silent (every message held by an injected delay
/// longer than the 3-interval loss horizon) must flip the follower to
/// `connected=false` and into re-point/backoff — and once the faults
/// stop, the follower must reconnect and converge.
#[test]
fn heartbeat_loss_disconnects_and_recovers() {
    let (pd, fd) = (tmp_dir("hb-p"), tmp_dir("hb-f"));
    let primary = seed_primary(&pd, 6);
    let repl = Replication::primary(Arc::clone(&primary), "127.0.0.1:0").unwrap();
    let addr = repl.local_addr().unwrap().to_string();

    let follower = open(&fd);
    let frepl = Replication::follower(Arc::clone(&follower), &addr);
    wait_caught_up(&frepl, &primary);
    wait_until(
        "the follower to report connected",
        Duration::from_secs(5),
        || frepl.connected(),
    );

    // Every send now sleeps 1.5–2.5s — well past the 600ms loss horizon
    // — so from the follower's side the primary simply goes quiet.
    repl.set_fault_injector(Some(FaultInjector::new(
        11,
        FaultConfig {
            delay_per_mille: 1000,
            max_delay_ms: 2500,
            ..FaultConfig::default()
        },
    )));
    // (The delay plan floors at 1ms; force the long tail by waiting for
    // the disconnect rather than asserting a specific delay.)
    wait_until(
        "heartbeat loss to disconnect the follower",
        Duration::from_secs(20),
        || !frepl.connected(),
    );

    // Faults off: the reconnect loop finds the primary again and drains
    // whatever landed meanwhile.
    repl.set_fault_injector(None);
    for i in 6..12 {
        mutate(&primary, i);
    }
    wait_caught_up(&frepl, &primary);
    wait_until("the follower to reconnect", Duration::from_secs(10), || {
        frepl.connected()
    });
    assert_bit_identical(&primary, &follower);

    frepl.shutdown();
    repl.shutdown();
    cleanup(&[&pd, &fd]);
}

// ---------------------------------------------------------------------
// Synchronous acknowledgement: WAIT n / MAJORITY / WAIT VERSION
// ---------------------------------------------------------------------

#[test]
fn ack_waits_complete_time_out_and_count_majorities() {
    let (pd, f1d, f2d) = (tmp_dir("wait-p"), tmp_dir("wait-f1"), tmp_dir("wait-f2"));
    let primary = seed_primary(&pd, 4);
    let repl = Replication::primary(Arc::clone(&primary), "127.0.0.1:0").unwrap();
    let addr = repl.local_addr().unwrap().to_string();

    // No followers: WAIT 1 can never be satisfied — it must time out
    // with `false`, not hang.
    mutate(&primary, 4);
    assert!(
        !wait_acks(&repl, primary.version(), 1, Duration::from_millis(200)),
        "WAIT 1 with zero followers must time out"
    );
    // Degenerate quorum: a majority of a single-node cluster is the
    // primary itself — zero follower ACKs, satisfied inline.
    assert_eq!(repl.majority_need(), 0);
    assert!(wait_acks(
        &repl,
        primary.version(),
        repl.majority_need(),
        Duration::from_millis(200)
    ));

    let f1 = open(&f1d);
    let r1 = Replication::follower(Arc::clone(&f1), &addr);
    wait_caught_up(&r1, &primary);
    wait_until("one follower attached", Duration::from_secs(5), || {
        repl.follower_count() == 1
    });

    // One follower: WAIT 1 and WAIT MAJORITY (= 1) complete.
    mutate(&primary, 5);
    let v = primary.version();
    assert!(wait_acks(&repl, v, 1, Duration::from_secs(10)));
    assert_eq!(repl.majority_need(), 1);
    assert!(wait_acks(
        &repl,
        v,
        repl.majority_need(),
        Duration::from_secs(10)
    ));
    // WAIT 2 exceeds the fleet: times out.
    assert!(!wait_acks(&repl, v, 2, Duration::from_millis(300)));
    // acked_min surfaces the slowest follower's progress (here: caught
    // up, so it equals the primary's version).
    wait_until(
        "acked_min to reach the write",
        Duration::from_secs(10),
        || repl.acked_min() == Some(v),
    );

    let f2 = open(&f2d);
    let r2 = Replication::follower(Arc::clone(&f2), &addr);
    wait_caught_up(&r2, &primary);
    wait_until("two followers attached", Duration::from_secs(5), || {
        repl.follower_count() == 2
    });
    // Three-node cluster: majority is 2 voters, one of them the primary.
    assert_eq!(repl.majority_need(), 1);
    mutate(&primary, 6);
    assert!(wait_acks(
        &repl,
        primary.version(),
        2,
        Duration::from_secs(10)
    ));

    // WAIT VERSION on a follower: read-your-writes routing. Already
    // applied → inline true; future version → blocks until it arrives.
    let target = primary.version();
    assert!(r1.wait_version_blocking(target, Duration::from_secs(10)));
    let future = target + 1;
    let waiter = {
        let r1 = Arc::new(r1);
        let handle = Arc::clone(&r1);
        let j = std::thread::spawn(move || {
            handle.wait_version_blocking(future, Duration::from_secs(10))
        });
        mutate(&primary, 7);
        assert!(
            j.join().unwrap(),
            "WAIT VERSION must fire when the write ships"
        );
        r1
    };
    // And a version that never comes times out false.
    assert!(!waiter.wait_version_blocking(primary.version() + 50, Duration::from_millis(250)));

    waiter.shutdown();
    r2.shutdown();
    repl.shutdown();
    cleanup(&[&pd, &f1d, &f2d]);
}

// ---------------------------------------------------------------------
// Variable-id watermark exchange (the catch-up skip collision fix)
// ---------------------------------------------------------------------

/// A heartbeat's watermark must advance the local allocator: speak the
/// protocol as a fake primary and announce an allocator position far
/// ahead — the follower must never hand out ids below it again.
#[test]
fn heartbeat_watermark_reserves_follower_ids() {
    let fd = tmp_dir("wm-f");
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let follower = open(&fd);
    let frepl = Replication::follower(Arc::clone(&follower), &addr);

    let (mut conn, _) = listener.accept().unwrap();
    proto::read_preamble(&mut conn).unwrap();
    let hello = proto::read_message(&mut conn).unwrap();
    let proto::Message::Hello { watermark, .. } = hello else {
        panic!("follower must open with HELLO, got {hello:?}");
    };
    assert!(watermark >= 1, "HELLO carries the allocator position");

    let far_ahead = VarId::watermark() + 10_000;
    proto::write_message(
        &mut conn,
        &proto::Message::Heartbeat {
            epoch: 0,
            version: 0,
            watermark: far_ahead,
        },
    )
    .unwrap();
    // The ACK round-trip proves the heartbeat was processed.
    let ack = proto::read_message(&mut conn).unwrap();
    assert!(matches!(ack, proto::Message::Ack { .. }));
    assert!(
        VarId::watermark() >= far_ahead,
        "follower must reserve through the primary's announced watermark"
    );

    frepl.shutdown();
    cleanup(&[&fd]);
}

/// The mirror image: a HELLO's watermark must advance the primary's
/// allocator (an old primary rejoining as a follower brings ids nobody
/// else has seen).
#[test]
fn hello_watermark_reserves_primary_ids() {
    let pd = tmp_dir("wm-p");
    let primary = seed_primary(&pd, 2);
    let repl = Replication::primary(Arc::clone(&primary), "127.0.0.1:0").unwrap();
    let addr = repl.local_addr().unwrap();

    let far_ahead = VarId::watermark() + 10_000;
    let mut conn = std::net::TcpStream::connect(addr).unwrap();
    proto::write_preamble(&mut conn).unwrap();
    proto::write_message(
        &mut conn,
        &proto::Message::Hello {
            gen: 1,
            version: primary.version(),
            epoch: 0,
            watermark: far_ahead,
        },
    )
    .unwrap();
    // The opening heartbeat proves the HELLO was accepted and processed.
    let first = proto::read_message(&mut conn).unwrap();
    assert!(matches!(first, proto::Message::Heartbeat { .. }));
    assert!(
        VarId::watermark() >= far_ahead,
        "primary must reserve through a rejoining peer's watermark"
    );

    repl.shutdown();
    cleanup(&[&pd]);
}
