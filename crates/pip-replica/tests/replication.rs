//! End-to-end replication tests: a real primary and real followers over
//! TCP on loopback, exercising frame tailing, snapshot catch-up,
//! checkpoint races, abrupt follower restarts, and promotion.
//!
//! The load-bearing assertion throughout is *bit-identity*: a caught-up
//! follower must answer the probe-query suite with exactly the bytes the
//! primary produces — same f64 bits (compared via `to_bits`), same
//! variable identities, same version counter — at 1, 2, and 4 sampler
//! threads.

use std::sync::Arc;
use std::time::{Duration, Instant};

use pip_core::tuple;
use pip_replica::Replication;

mod common;
use common::*;

#[test]
fn empty_follower_catches_up_over_the_live_tail() {
    let (pd, fd) = (tmp_dir("live-p"), tmp_dir("live-f"));
    let primary = seed_primary(&pd, 6);
    let repl = Replication::primary(Arc::clone(&primary), "127.0.0.1:0").unwrap();
    let addr = repl.local_addr().unwrap().to_string();

    let follower = open(&fd);
    let frepl = Replication::follower(Arc::clone(&follower), &addr);
    assert_eq!(frepl.role(), "replica");
    assert!(follower.is_read_only());

    // Keep writing while the follower attaches — the tail is live.
    for i in 6..20 {
        mutate(&primary, i);
    }
    wait_caught_up(&frepl, &primary);
    assert_bit_identical(&primary, &follower);
    assert_eq!(repl.follower_count(), 1);

    // STATS inputs: the primary sees the follower's progress via ACKs.
    let deadline = Instant::now() + Duration::from_secs(10);
    while repl.replication_lag() != 0 {
        assert!(Instant::now() < deadline, "ACKs never drained the lag");
        std::thread::sleep(Duration::from_millis(10));
    }

    frepl.shutdown();
    repl.shutdown();
    cleanup(&[&pd, &fd]);
}

#[test]
fn follower_replays_index_ddl_byte_identically() {
    let (pd, fd) = (tmp_dir("idx-p"), tmp_dir("idx-f"));
    let primary = seed_primary(&pd, 5);
    // Live index DDL in the replicated stream: one index that stays,
    // one created and dropped, with inserts landing before and after
    // the CREATE so the follower exercises both build and maintenance.
    primary.create_index("idx_k", "obs", "k").unwrap();
    primary.create_index("idx_gone", "obs", "k").unwrap();
    primary.drop_index("idx_gone").unwrap();
    let repl = Replication::primary(Arc::clone(&primary), "127.0.0.1:0").unwrap();
    let addr = repl.local_addr().unwrap().to_string();

    let follower = open(&fd);
    let frepl = Replication::follower(Arc::clone(&follower), &addr);
    for i in 5..24 {
        mutate(&primary, i);
    }
    wait_caught_up(&frepl, &primary);
    assert_bit_identical(&primary, &follower);

    assert_eq!(follower.index_names(), vec!["idx_k".to_string()]);
    let (p, f) = (
        primary.index("idx_k").unwrap().index,
        follower.index("idx_k").unwrap().index,
    );
    assert_eq!(p.column(), f.column(), "indexed column position");
    assert_eq!(p.covered_rows(), f.covered_rows(), "coverage");
    assert_eq!(p.entries(), f.entries(), "ordered (key, row) entries");
    assert_eq!(p.others(), f.others(), "always-candidate rows");

    frepl.shutdown();
    repl.shutdown();
    cleanup(&[&pd, &fd]);
}

#[test]
fn checkpointed_primary_serves_snapshot_catch_up() {
    let (pd, fd) = (tmp_dir("snap-p"), tmp_dir("snap-f"));
    let primary = seed_primary(&pd, 8);
    // Two checkpoints retire the chain the follower would have needed:
    // a fresh follower (version 0) is behind the retained base, so the
    // primary must open with a snapshot.
    primary.checkpoint().unwrap();
    for i in 8..14 {
        mutate(&primary, i);
    }
    primary.checkpoint().unwrap();
    for i in 14..17 {
        mutate(&primary, i);
    }
    assert!(
        primary.store().unwrap().oldest_retained().1 > 0,
        "precondition: the follower's prefix is gone"
    );

    let repl = Replication::primary(Arc::clone(&primary), "127.0.0.1:0").unwrap();
    let addr = repl.local_addr().unwrap().to_string();
    let follower = open(&fd);
    let frepl = Replication::follower(Arc::clone(&follower), &addr);
    wait_caught_up(&frepl, &primary);
    assert_bit_identical(&primary, &follower);

    // The snapshot was persisted as a local checkpoint: a restart
    // recovers without re-transfer and still matches the primary.
    frepl.shutdown();
    drop(follower);
    let recovered = open(&fd);
    assert_bit_identical(&primary, &recovered);

    repl.shutdown();
    cleanup(&[&pd, &fd]);
}

#[test]
fn checkpoint_rotation_races_an_attached_follower() {
    let (pd, fd) = (tmp_dir("race-p"), tmp_dir("race-f"));
    let primary = seed_primary(&pd, 2);
    let repl = Replication::primary(Arc::clone(&primary), "127.0.0.1:0").unwrap();
    let addr = repl.local_addr().unwrap().to_string();
    let follower = open(&fd);
    let frepl = Replication::follower(Arc::clone(&follower), &addr);

    // Interleave mutations with checkpoints (generation rotations and
    // old-chain deletions) while the follower tails. Whatever mix of
    // frames, gaps, and mid-stream snapshots results, the follower must
    // converge to the same bits.
    for i in 2..40 {
        mutate(&primary, i);
        if i % 7 == 0 {
            primary.checkpoint().unwrap();
        }
    }
    wait_caught_up(&frepl, &primary);
    assert_bit_identical(&primary, &follower);

    frepl.shutdown();
    repl.shutdown();
    cleanup(&[&pd, &fd]);
}

#[test]
fn follower_stopped_mid_catch_up_rejoins_from_its_durable_prefix() {
    let (pd, fd) = (tmp_dir("rejoin-p"), tmp_dir("rejoin-f"));
    let primary = seed_primary(&pd, 30);
    let repl = Replication::primary(Arc::clone(&primary), "127.0.0.1:0").unwrap();
    let addr = repl.local_addr().unwrap().to_string();

    // First attachment is cut short: seal the feed without waiting for
    // catch-up, then drop the handle — an abrupt stop at an arbitrary
    // applied prefix, like a crash (each applied frame was durable
    // before the next, so recovery sees an exact prefix).
    let follower = open(&fd);
    let frepl = Replication::follower(Arc::clone(&follower), &addr);
    while frepl.applied_version() == 0 && !frepl.connected() {
        std::thread::sleep(Duration::from_millis(1));
    }
    frepl.shutdown();
    let stopped_at = follower.version();
    drop(frepl);
    drop(follower);

    // Rejoin from whatever prefix survived; more writes land meanwhile.
    for i in 30..36 {
        mutate(&primary, i);
    }
    let follower = open(&fd);
    assert!(
        follower.version() >= stopped_at,
        "recovery lost an applied prefix"
    );
    follower.set_read_only(true); // recovery reopened it writable
    let frepl = Replication::follower(Arc::clone(&follower), &addr);
    wait_caught_up(&frepl, &primary);
    assert_bit_identical(&primary, &follower);

    frepl.shutdown();
    repl.shutdown();
    cleanup(&[&pd, &fd]);
}

#[test]
fn promote_seals_the_feed_and_accepts_writes() {
    let (pd, fd) = (tmp_dir("promo-p"), tmp_dir("promo-f"));
    let primary = seed_primary(&pd, 10);
    let repl = Replication::primary(Arc::clone(&primary), "127.0.0.1:0").unwrap();
    let addr = repl.local_addr().unwrap().to_string();
    let follower = open(&fd);
    let frepl = Replication::follower(Arc::clone(&follower), &addr);
    wait_caught_up(&frepl, &primary);

    // Writes are refused until promotion…
    assert!(follower.insert_tuples("obs", &[tuple![1.0, 1i64]]).is_err());
    assert!(repl.promote().is_err(), "a primary cannot be promoted");

    // …the primary dies, the follower takes over.
    repl.shutdown();
    frepl.promote().unwrap();
    assert_eq!(frepl.role(), "primary");
    assert!(!follower.is_read_only());
    let before = follower.version();
    follower
        .insert_tuples("obs", &[tuple![9.5, 99i64]])
        .unwrap();
    assert!(follower.version() > before, "promoted node versions writes");

    // Nothing acknowledged-and-replicated was lost across the failover.
    assert_eq!(before, primary.version());

    frepl.shutdown();
    cleanup(&[&pd, &fd]);
}

mod random_join_prefix {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]

        /// A follower joining at a random mutation prefix — sometimes
        /// after checkpoints have retired its prefix (snapshot path),
        /// sometimes not (frame path) — always converges bit-identically
        /// once the live tail drains.
        #[test]
        fn follower_joins_at_any_prefix(
            prefix in 0u64..18,
            checkpoint_at in 0u64..18,
            suffix in 1u64..10,
        ) {
            let (pd, fd) = (tmp_dir("prop-p"), tmp_dir("prop-f"));
            let primary = seed_primary(&pd, 0);
            for i in 0..prefix {
                mutate(&primary, i);
                if i == checkpoint_at {
                    primary.checkpoint().unwrap();
                }
            }
            let repl =
                Replication::primary(Arc::clone(&primary), "127.0.0.1:0").unwrap();
            let addr = repl.local_addr().unwrap().to_string();
            let follower = open(&fd);
            let frepl = Replication::follower(Arc::clone(&follower), &addr);
            for i in prefix..prefix + suffix {
                mutate(&primary, i);
            }
            wait_caught_up(&frepl, &primary);
            assert_bit_identical(&primary, &follower);
            frepl.shutdown();
            repl.shutdown();
            cleanup(&[&pd, &fd]);
        }
    }
}
