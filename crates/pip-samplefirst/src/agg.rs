//! Aggregation over tuple bundles: the end of a Sample-First pipeline.
//!
//! All estimates are simple Monte Carlo means over the sampled worlds;
//! worlds discarded by upstream selections contribute nothing, so the
//! *effective* sample count is `n_worlds × selectivity` — the source of
//! the accuracy gap Figures 5 and 7 of the paper measure.

use pip_core::Result;

use crate::bundle::BundleTable;

/// Per-world sums of a column over present bundles.
pub fn per_world_sums(t: &BundleTable, col: &str) -> Result<Vec<f64>> {
    let c = t.col(col)?;
    let mut sums = vec![0.0; t.n_worlds()];
    for b in t.bundles() {
        for w in b.presence.iter_ones() {
            sums[w] += b.cells[c].f64_at(w)?;
        }
    }
    Ok(sums)
}

/// Per-world maxima of a column over present bundles (0 when no bundle is
/// present in a world, matching PIP's convention).
pub fn per_world_maxes(t: &BundleTable, col: &str) -> Result<Vec<f64>> {
    let c = t.col(col)?;
    let mut maxes: Vec<Option<f64>> = vec![None; t.n_worlds()];
    for b in t.bundles() {
        for w in b.presence.iter_ones() {
            let v = b.cells[c].f64_at(w)?;
            maxes[w] = Some(match maxes[w] {
                None => v,
                Some(m) => m.max(v),
            });
        }
    }
    Ok(maxes.into_iter().map(|m| m.unwrap_or(0.0)).collect())
}

/// `expected_sum(col)` — mean of the per-world sums.
pub fn expected_sum(t: &BundleTable, col: &str) -> Result<f64> {
    let sums = per_world_sums(t, col)?;
    if sums.is_empty() {
        return Ok(0.0);
    }
    Ok(sums.iter().sum::<f64>() / sums.len() as f64)
}

/// `expected_max(col)` — mean of the per-world maxima.
pub fn expected_max(t: &BundleTable, col: &str) -> Result<f64> {
    let maxes = per_world_maxes(t, col)?;
    if maxes.is_empty() {
        return Ok(0.0);
    }
    Ok(maxes.iter().sum::<f64>() / maxes.len() as f64)
}

/// `expected_count()` — mean number of present bundles per world.
pub fn expected_count(t: &BundleTable) -> f64 {
    if t.n_worlds() == 0 {
        return 0.0;
    }
    let present: usize = t.bundles().iter().map(|b| b.presence.count()).sum();
    present as f64 / t.n_worlds() as f64
}

/// Per-bundle conditional mean: `E[col | present]`, estimated over the
/// surviving worlds only. Returns NaN for a bundle present nowhere —
/// the sample-first failure mode on selective queries (the estimate rests
/// on `selectivity × n_worlds` effective samples).
pub fn conditional_mean(t: &BundleTable, col: &str) -> Result<Vec<f64>> {
    let c = t.col(col)?;
    let mut out = Vec::with_capacity(t.len());
    for b in t.bundles() {
        let mut sum = 0.0;
        let mut n = 0usize;
        for w in b.presence.iter_ones() {
            sum += b.cells[c].f64_at(w)?;
            n += 1;
        }
        out.push(if n == 0 { f64::NAN } else { sum / n as f64 });
    }
    Ok(out)
}

/// Per-bundle presence probability estimate (`conf()` equivalent).
pub fn presence_probability(t: &BundleTable) -> Vec<f64> {
    t.bundles()
        .iter()
        .map(|b| b.presence.count() as f64 / t.n_worlds().max(1) as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bundle::BundleTable;
    use crate::ops::filter_cmp_const;
    use pip_core::{DataType, Schema, Value};
    use pip_ctable::{CRow, CTable};
    use pip_dist::prelude::builtin;
    use pip_expr::{atoms, Conjunction, Equation, RandomVar};

    fn uniform_table(n_worlds: usize) -> (BundleTable, RandomVar) {
        let y = RandomVar::create(builtin::uniform(), &[0.0, 1.0]).unwrap();
        let s = Schema::of(&[("v", DataType::Symbolic)]);
        let ct = CTable::new(
            s,
            vec![CRow::unconditional(vec![Equation::from(y.clone())])],
        )
        .unwrap();
        (BundleTable::instantiate(&ct, n_worlds, 21).unwrap(), y)
    }

    #[test]
    fn expected_sum_of_uniform() {
        let (t, _) = uniform_table(4000);
        let s = expected_sum(&t, "v").unwrap();
        assert!((s - 0.5).abs() < 0.03, "{s}");
    }

    #[test]
    fn selective_filter_reduces_effective_samples() {
        let (t, _) = uniform_table(4000);
        let f = filter_cmp_const(&t, "v", pip_expr::CmpOp::Gt, 0.9).unwrap();
        let means = conditional_mean(&f, "v").unwrap();
        // E[U | U > 0.9] = 0.95, estimated from ~400 surviving worlds.
        assert!((means[0] - 0.95).abs() < 0.02, "{}", means[0]);
        let p = presence_probability(&f);
        assert!((p[0] - 0.1).abs() < 0.03, "{}", p[0]);
        // Count: ~0.1 present bundles per world.
        assert!((expected_count(&f) - 0.1).abs() < 0.03);
    }

    #[test]
    fn conditional_mean_nan_when_never_present() {
        let y = RandomVar::create(builtin::uniform(), &[0.0, 1.0]).unwrap();
        let s = Schema::of(&[("v", DataType::Symbolic)]);
        let ct = CTable::new(
            s,
            vec![CRow::new(
                vec![Equation::from(y.clone())],
                // impossible condition
                Conjunction::single(atoms::gt(Equation::from(y.clone()), 2.0)),
            )],
        )
        .unwrap();
        let t = BundleTable::instantiate(&ct, 64, 5).unwrap();
        let means = conditional_mean(&t, "v").unwrap();
        assert!(means[0].is_nan());
        assert_eq!(presence_probability(&t)[0], 0.0);
    }

    #[test]
    fn per_world_max_with_absent_rows() {
        let y = RandomVar::create(builtin::uniform(), &[0.0, 1.0]).unwrap();
        let s = Schema::of(&[("v", DataType::Symbolic)]);
        let ct = CTable::new(
            s,
            vec![
                CRow::unconditional(vec![Equation::val(Value::Float(0.25))]),
                CRow::new(
                    vec![Equation::val(Value::Float(10.0))],
                    Conjunction::single(atoms::gt(Equation::from(y.clone()), 0.5)),
                ),
            ],
        )
        .unwrap();
        let t = BundleTable::instantiate(&ct, 2000, 9).unwrap();
        let m = expected_max(&t, "v").unwrap();
        // E[max] = 0.5·10 + 0.5·0.25 = 5.125.
        assert!((m - 5.125).abs() < 0.3, "{m}");
    }

    #[test]
    fn empty_table_aggregates() {
        let t = BundleTable::new(Schema::of(&[("v", DataType::Float)]), 0);
        assert_eq!(expected_sum(&t, "v").unwrap(), 0.0);
        assert_eq!(expected_count(&t), 0.0);
    }
}
