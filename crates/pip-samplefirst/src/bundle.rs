//! Tuple bundles: the Sample-First data representation.
//!
//! "A sampled variable is represented using an array of floats, while the
//! tuple bundle's presence in each sampled world is represented using a
//! densely packed array of booleans" (paper Section VI). A
//! [`BundleTable`] is a deterministic skeleton whose uncertain cells are
//! such arrays — sampling happened *first*, before any query processing,
//! which is exactly the property PIP improves on.

use std::sync::Arc;

use pip_core::{PipError, Result, Schema, Value};
use pip_dist::{mix64, rng_for};
use pip_expr::Assignment;

use pip_ctable::CTable;

use crate::bitmap::Bitmap;

/// One cell of a bundle: deterministic or one value per sampled world.
#[derive(Debug, Clone, PartialEq)]
pub enum BundleCell {
    Det(Value),
    Sampled(Arc<Vec<f64>>),
}

impl BundleCell {
    /// Numeric view of the cell in world `w`.
    pub fn f64_at(&self, w: usize) -> Result<f64> {
        match self {
            BundleCell::Det(v) => v.as_f64(),
            BundleCell::Sampled(xs) => Ok(xs[w]),
        }
    }

    /// Deterministic view (errors on sampled cells).
    pub fn as_det(&self) -> Result<&Value> {
        match self {
            BundleCell::Det(v) => Ok(v),
            BundleCell::Sampled(_) => {
                Err(PipError::Type("cell is sampled, not deterministic".into()))
            }
        }
    }
}

/// One tuple bundle: cells plus per-world presence.
#[derive(Debug, Clone, PartialEq)]
pub struct Bundle {
    pub cells: Vec<BundleCell>,
    pub presence: Bitmap,
}

/// A table of tuple bundles over `n_worlds` sampled worlds.
#[derive(Debug, Clone, PartialEq)]
pub struct BundleTable {
    schema: Schema,
    n_worlds: usize,
    bundles: Vec<Bundle>,
}

impl BundleTable {
    pub fn new(schema: Schema, n_worlds: usize) -> Self {
        BundleTable {
            schema,
            n_worlds,
            bundles: Vec::new(),
        }
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    pub fn n_worlds(&self) -> usize {
        self.n_worlds
    }

    pub fn bundles(&self) -> &[Bundle] {
        &self.bundles
    }

    pub fn len(&self) -> usize {
        self.bundles.len()
    }

    pub fn is_empty(&self) -> bool {
        self.bundles.is_empty()
    }

    pub fn push(&mut self, b: Bundle) -> Result<()> {
        if b.cells.len() != self.schema.len() {
            return Err(PipError::Schema(format!(
                "bundle has {} cells, schema {} columns",
                b.cells.len(),
                self.schema.len()
            )));
        }
        if b.presence.len() != self.n_worlds {
            return Err(PipError::Schema(format!(
                "bundle presence covers {} worlds, table has {}",
                b.presence.len(),
                self.n_worlds
            )));
        }
        self.bundles.push(b);
        Ok(())
    }

    /// **Sample first**: instantiate a (probabilistic) c-table into tuple
    /// bundles by drawing every variable for every world up front.
    ///
    /// This is the step whose cost PIP avoids paying for doomed samples:
    /// variables are materialized for all `n_worlds` regardless of
    /// whether later predicates discard those worlds.
    pub fn instantiate(table: &CTable, n_worlds: usize, seed: u64) -> Result<BundleTable> {
        // Values are a pure function of (world seed, variable id), so a
        // variable shared by many rows still takes one consistent value
        // per world — and we can generate per *row* instead of holding
        // n_worlds full assignments in memory at once.
        let world_seeds: Vec<u64> = (0..n_worlds)
            .map(|w| mix64(seed ^ (w as u64).wrapping_mul(0x9E37_79B9)))
            .collect();

        let mut out = BundleTable::new(table.schema().clone(), n_worlds);
        let mut a = Assignment::new();
        for row in table.rows() {
            let vars = row.variables();
            let mut presence = Bitmap::ones(n_worlds);
            // Non-constant cells get a value array; constant cells stay
            // deterministic.
            let mut arrays: Vec<Option<Vec<f64>>> = row
                .cells
                .iter()
                .map(|c| {
                    if c.as_const().is_some() {
                        None
                    } else {
                        Some(Vec::with_capacity(n_worlds))
                    }
                })
                .collect();
            for (w, &ws) in world_seeds.iter().enumerate() {
                a.clear();
                for v in &vars {
                    let mut rng = rng_for(ws, v.key.id.0, v.key.subscript);
                    a.set(v.key, v.class.generate(&v.params, &mut rng));
                }
                if !row.condition.is_trivially_true() && !row.condition.eval(&a)? {
                    presence.set(w, false);
                }
                for (cell, arr) in row.cells.iter().zip(arrays.iter_mut()) {
                    if let Some(arr) = arr {
                        arr.push(cell.eval_f64(&a)?);
                    }
                }
            }
            let cells = row
                .cells
                .iter()
                .zip(arrays)
                .map(|(cell, arr)| match arr {
                    None => BundleCell::Det(cell.as_const().expect("checked").clone()),
                    Some(xs) => BundleCell::Sampled(Arc::new(xs)),
                })
                .collect();
            out.push(Bundle { cells, presence })?;
        }
        Ok(out)
    }

    /// Index of a named column.
    pub fn col(&self, name: &str) -> Result<usize> {
        self.schema.index_of(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pip_core::{tuple, DataType};
    use pip_ctable::CRow;
    use pip_dist::prelude::builtin;
    use pip_expr::{atoms, Conjunction, Equation, RandomVar};

    #[test]
    fn instantiate_deterministic_table() {
        let s = Schema::of(&[("a", DataType::Int)]);
        let ct = CTable::from_tuples(s, &[tuple![1i64], tuple![2i64]]).unwrap();
        let bt = BundleTable::instantiate(&ct, 8, 42).unwrap();
        assert_eq!(bt.len(), 2);
        assert_eq!(bt.n_worlds(), 8);
        assert_eq!(bt.bundles()[0].presence.count(), 8);
        assert_eq!(bt.bundles()[0].cells[0], BundleCell::Det(Value::Int(1)));
    }

    #[test]
    fn instantiate_samples_variables_consistently() {
        let y = RandomVar::create(builtin::normal(), &[0.0, 1.0]).unwrap();
        let s = Schema::of(&[("v", DataType::Symbolic), ("w", DataType::Symbolic)]);
        // Same variable in two columns: arrays must match per world.
        let ct = CTable::new(
            s,
            vec![CRow::unconditional(vec![
                Equation::from(y.clone()),
                (Equation::from(y.clone()) * 2.0).simplify(),
            ])],
        )
        .unwrap();
        let bt = BundleTable::instantiate(&ct, 16, 7).unwrap();
        let b = &bt.bundles()[0];
        for w in 0..16 {
            let a = b.cells[0].f64_at(w).unwrap();
            let d = b.cells[1].f64_at(w).unwrap();
            assert!((d - 2.0 * a).abs() < 1e-12);
        }
        // Reproducible under the same seed, different under another.
        let bt2 = BundleTable::instantiate(&ct, 16, 7).unwrap();
        assert_eq!(bt, bt2);
        let bt3 = BundleTable::instantiate(&ct, 16, 8).unwrap();
        assert_ne!(bt, bt3);
    }

    #[test]
    fn conditions_become_presence_bits() {
        let y = RandomVar::create(builtin::uniform(), &[0.0, 1.0]).unwrap();
        let s = Schema::of(&[("v", DataType::Symbolic)]);
        let ct = CTable::new(
            s,
            vec![CRow::new(
                vec![Equation::from(y.clone())],
                Conjunction::single(atoms::gt(Equation::from(y.clone()), 0.5)),
            )],
        )
        .unwrap();
        let n = 512;
        let bt = BundleTable::instantiate(&ct, n, 3).unwrap();
        let b = &bt.bundles()[0];
        let present = b.presence.count();
        // About half the worlds survive.
        assert!((present as f64 / n as f64 - 0.5).abs() < 0.1);
        // Present worlds really satisfy the predicate.
        for w in b.presence.iter_ones() {
            assert!(b.cells[0].f64_at(w).unwrap() > 0.5);
        }
    }

    #[test]
    fn push_validates_shape() {
        let mut bt = BundleTable::new(Schema::of(&[("a", DataType::Int)]), 4);
        let bad_cells = Bundle {
            cells: vec![],
            presence: Bitmap::ones(4),
        };
        assert!(bt.push(bad_cells).is_err());
        let bad_worlds = Bundle {
            cells: vec![BundleCell::Det(Value::Int(1))],
            presence: Bitmap::ones(5),
        };
        assert!(bt.push(bad_worlds).is_err());
    }

    #[test]
    fn cell_accessors() {
        let c = BundleCell::Det(Value::Int(3));
        assert_eq!(c.f64_at(0).unwrap(), 3.0);
        assert!(c.as_det().is_ok());
        let s = BundleCell::Sampled(Arc::new(vec![1.0, 2.0]));
        assert_eq!(s.f64_at(1).unwrap(), 2.0);
        assert!(s.as_det().is_err());
    }
}
