//! Relational operators over tuple bundles.
//!
//! Mirrors the hand-constructed query pipelines of the paper's Section VI
//! evaluation: selections update presence bitmaps (or drop whole
//! bundles), joins AND bitmaps together, and arithmetic produces new
//! sampled arrays. Worlds discarded by a selection are *gone* — the
//! sample-first approach must re-run the whole pipeline with more worlds
//! to regain accuracy, which is precisely the behaviour Figures 5–7 of
//! the paper measure.

use std::sync::Arc;

use pip_core::{Column, DataType, PipError, Result, Schema, Value};
use pip_expr::CmpOp;

use crate::bundle::{Bundle, BundleCell, BundleTable};

/// σ on a deterministic column: whole bundles survive or drop.
pub fn filter_det<F>(t: &BundleTable, col: &str, pred: F) -> Result<BundleTable>
where
    F: Fn(&Value) -> bool,
{
    let c = t.col(col)?;
    let mut out = BundleTable::new(t.schema().clone(), t.n_worlds());
    for b in t.bundles() {
        if pred(b.cells[c].as_det()?) {
            out.push(b.clone())?;
        }
    }
    Ok(out)
}

/// σ comparing a column against a constant: presence bits are cleared in
/// worlds where the predicate fails; bundles absent everywhere drop.
pub fn filter_cmp_const(
    t: &BundleTable,
    col: &str,
    op: CmpOp,
    threshold: f64,
) -> Result<BundleTable> {
    let c = t.col(col)?;
    filter_worlds(t, |b, w| Ok(op.eval_f64(b.cells[c].f64_at(w)?, threshold)))
}

/// σ comparing two columns per world.
pub fn filter_cmp_cols(t: &BundleTable, left: &str, op: CmpOp, right: &str) -> Result<BundleTable> {
    let l = t.col(left)?;
    let r = t.col(right)?;
    filter_worlds(t, |b, w| {
        Ok(op.eval_f64(b.cells[l].f64_at(w)?, b.cells[r].f64_at(w)?))
    })
}

/// Generic per-world filter.
pub fn filter_worlds<F>(t: &BundleTable, pred: F) -> Result<BundleTable>
where
    F: Fn(&Bundle, usize) -> Result<bool>,
{
    let mut out = BundleTable::new(t.schema().clone(), t.n_worlds());
    for b in t.bundles() {
        let mut presence = b.presence.clone();
        for w in b.presence.iter_ones() {
            if !pred(b, w)? {
                presence.set(w, false);
            }
        }
        if !presence.all_zero() {
            out.push(Bundle {
                cells: b.cells.clone(),
                presence,
            })?;
        }
    }
    Ok(out)
}

/// Equi-join on deterministic columns; presence bitmaps AND together.
pub fn equi_join(
    left: &BundleTable,
    right: &BundleTable,
    on: &[(&str, &str)],
) -> Result<BundleTable> {
    if left.n_worlds() != right.n_worlds() {
        return Err(PipError::Schema(
            "joining bundle tables with different world counts".into(),
        ));
    }
    let l_idx = on
        .iter()
        .map(|(l, _)| left.col(l))
        .collect::<Result<Vec<_>>>()?;
    let r_idx = on
        .iter()
        .map(|(_, r)| right.col(r))
        .collect::<Result<Vec<_>>>()?;
    let schema = left.schema().join(right.schema())?;
    let mut out = BundleTable::new(schema, left.n_worlds());
    for lb in left.bundles() {
        for rb in right.bundles() {
            let matches = l_idx
                .iter()
                .zip(&r_idx)
                .map(|(&li, &ri)| Ok(lb.cells[li].as_det()?.sql_eq(rb.cells[ri].as_det()?)))
                .collect::<Result<Vec<bool>>>()?
                .into_iter()
                .all(|m| m);
            if !matches {
                continue;
            }
            let mut presence = lb.presence.clone();
            presence.and_with(&rb.presence);
            if presence.all_zero() {
                continue;
            }
            let mut cells = lb.cells.clone();
            cells.extend(rb.cells.iter().cloned());
            out.push(Bundle { cells, presence })?;
        }
    }
    Ok(out)
}

/// Append a computed numeric column (`f` sees the bundle and the world).
pub fn with_column<F>(t: &BundleTable, name: &str, f: F) -> Result<BundleTable>
where
    F: Fn(&Bundle, usize) -> Result<f64>,
{
    let mut cols = t.schema().columns().to_vec();
    cols.push(Column::new(name, DataType::Symbolic));
    let schema = Schema::new(cols)?;
    let mut out = BundleTable::new(schema, t.n_worlds());
    for b in t.bundles() {
        let mut xs = vec![0.0; t.n_worlds()];
        for (w, x) in xs.iter_mut().enumerate() {
            // Values are computed for every world, present or not —
            // faithfully paying the sample-first cost.
            *x = f(b, w)?;
        }
        let mut cells = b.cells.clone();
        cells.push(BundleCell::Sampled(Arc::new(xs)));
        out.push(Bundle {
            cells,
            presence: b.presence.clone(),
        })?;
    }
    Ok(out)
}

/// Keep only the named columns.
pub fn project(t: &BundleTable, cols: &[&str]) -> Result<BundleTable> {
    let idx = cols.iter().map(|c| t.col(c)).collect::<Result<Vec<_>>>()?;
    let schema = t.schema().project(cols)?;
    let mut out = BundleTable::new(schema, t.n_worlds());
    for b in t.bundles() {
        out.push(Bundle {
            cells: idx.iter().map(|&i| b.cells[i].clone()).collect(),
            presence: b.presence.clone(),
        })?;
    }
    Ok(out)
}

/// Partition by a deterministic column, preserving first-appearance order.
pub fn partition_det(t: &BundleTable, col: &str) -> Result<Vec<(Value, BundleTable)>> {
    let c = t.col(col)?;
    let mut order: Vec<Value> = Vec::new();
    let mut parts: std::collections::HashMap<Value, BundleTable> = std::collections::HashMap::new();
    for b in t.bundles() {
        let key = b.cells[c].as_det()?.clone();
        let part = parts.entry(key.clone()).or_insert_with(|| {
            order.push(key);
            BundleTable::new(t.schema().clone(), t.n_worlds())
        });
        part.push(b.clone())?;
    }
    Ok(order
        .into_iter()
        .map(|k| {
            let t = parts.remove(&k).expect("partition exists");
            (k, t)
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pip_core::tuple;
    use pip_ctable::{CRow, CTable};
    use pip_dist::prelude::builtin;
    use pip_expr::{Equation, RandomVar};

    fn sampled_table(n_worlds: usize) -> (BundleTable, RandomVar) {
        let y = RandomVar::create(builtin::uniform(), &[0.0, 1.0]).unwrap();
        let s = Schema::of(&[("name", DataType::Str), ("v", DataType::Symbolic)]);
        let ct = CTable::new(
            s,
            vec![
                CRow::unconditional(vec![
                    Equation::val(Value::str("a")),
                    Equation::from(y.clone()),
                ]),
                CRow::unconditional(vec![
                    Equation::val(Value::str("b")),
                    (Equation::from(y.clone()) + 1.0).simplify(),
                ]),
            ],
        )
        .unwrap();
        (BundleTable::instantiate(&ct, n_worlds, 11).unwrap(), y)
    }

    #[test]
    fn det_filter_drops_whole_bundles() {
        let (t, _) = sampled_table(8);
        let f = filter_det(&t, "name", |v| v.sql_eq(&Value::str("a"))).unwrap();
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn world_filter_clears_bits() {
        let (t, _) = sampled_table(256);
        let f = filter_cmp_const(&t, "v", CmpOp::Gt, 0.5).unwrap();
        // Row "a" ~ U(0,1): about half the worlds survive.
        let a = &f.bundles()[0];
        let frac = a.presence.count() as f64 / 256.0;
        assert!((frac - 0.5).abs() < 0.15, "{frac}");
        // Row "b" = v+1 > 0.5 always: all survive.
        let b = &f.bundles()[1];
        assert_eq!(b.presence.count(), 256);
    }

    #[test]
    fn col_vs_col_filter() {
        let (t, _) = sampled_table(64);
        // v < v+1 always true.
        let f = filter_cmp_cols(&t, "v", CmpOp::Lt, "v").unwrap();
        // comparing a column against itself with < is always false →
        // every bundle's presence empties and all are dropped.
        assert_eq!(f.len(), 0);
    }

    #[test]
    fn join_ands_presence() {
        let s = Schema::of(&[("k", DataType::Str)]);
        let ct = CTable::from_tuples(s, &[tuple!["x"]]).unwrap();
        let l = BundleTable::instantiate(&ct, 8, 1).unwrap();
        let r = BundleTable::instantiate(&ct, 8, 2).unwrap();
        let j = equi_join(&l, &r, &[("k", "k")]).unwrap();
        assert_eq!(j.len(), 1);
        assert_eq!(j.schema().len(), 2);
        assert_eq!(j.bundles()[0].presence.count(), 8);
        let bad = BundleTable::instantiate(
            &CTable::from_tuples(Schema::of(&[("k", DataType::Str)]), &[]).unwrap(),
            4,
            3,
        )
        .unwrap();
        assert!(equi_join(&l, &bad, &[("k", "k")]).is_err());
    }

    #[test]
    fn computed_columns_and_projection() {
        let (t, _) = sampled_table(16);
        let c = t.col("v").unwrap();
        let t2 = with_column(&t, "double", |b, w| Ok(2.0 * b.cells[c].f64_at(w)?)).unwrap();
        assert_eq!(t2.schema().len(), 3);
        for b in t2.bundles() {
            for w in 0..16 {
                assert!(
                    (b.cells[2].f64_at(w).unwrap() - 2.0 * b.cells[1].f64_at(w).unwrap()).abs()
                        < 1e-12
                );
            }
        }
        let p = project(&t2, &["double"]).unwrap();
        assert_eq!(p.schema().len(), 1);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn partition_by_det_column() {
        let (t, _) = sampled_table(8);
        let parts = partition_det(&t, "name").unwrap();
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].0, Value::str("a"));
        assert_eq!(parts[0].1.len(), 1);
    }
}
