//! Densely packed per-world presence bitmaps.
//!
//! The paper's Sample-First implementation represents "the tuple bundle's
//! presence in each sampled world … using a densely packed array of
//! booleans" (Section VI). This is that array.

/// A fixed-length bitmap, one bit per sampled world.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// All-ones bitmap of length `len` (present in every world).
    pub fn ones(len: usize) -> Self {
        let mut words = vec![u64::MAX; len.div_ceil(64)];
        if !len.is_multiple_of(64) {
            if let Some(last) = words.last_mut() {
                *last = (1u64 << (len % 64)) - 1;
            }
        }
        Bitmap { words, len }
    }

    /// All-zeros bitmap.
    pub fn zeros(len: usize) -> Self {
        Bitmap {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    #[inline]
    pub fn set(&mut self, i: usize, v: bool) {
        debug_assert!(i < self.len);
        if v {
            self.words[i / 64] |= 1u64 << (i % 64);
        } else {
            self.words[i / 64] &= !(1u64 << (i % 64));
        }
    }

    /// In-place intersection (`self &= other`): presence under a
    /// conjunction of conditions.
    pub fn and_with(&mut self, other: &Bitmap) {
        debug_assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// Number of worlds in which the tuple is present.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True if present in no world (the bundle can be discarded).
    pub fn all_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterate over the indices of set bits.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len).filter(move |&i| self.get(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ones_and_zeros() {
        let o = Bitmap::ones(70);
        assert_eq!(o.count(), 70);
        assert!(o.get(0) && o.get(69));
        let z = Bitmap::zeros(70);
        assert_eq!(z.count(), 0);
        assert!(z.all_zero());
        assert!(!o.all_zero());
        assert_eq!(o.len(), 70);
    }

    #[test]
    fn padding_bits_are_clear() {
        // ones(70) must not count the 58 padding bits of the last word.
        let o = Bitmap::ones(70);
        assert_eq!(o.iter_ones().count(), 70);
        // Exactly divisible case.
        let o64 = Bitmap::ones(64);
        assert_eq!(o64.count(), 64);
    }

    #[test]
    fn set_get_and() {
        let mut a = Bitmap::ones(10);
        a.set(3, false);
        assert!(!a.get(3));
        assert_eq!(a.count(), 9);
        let mut b = Bitmap::zeros(10);
        b.set(3, true);
        b.set(4, true);
        a.and_with(&b);
        assert_eq!(a.count(), 1);
        assert!(a.get(4));
        assert_eq!(a.iter_ones().collect::<Vec<_>>(), vec![4]);
    }
}
