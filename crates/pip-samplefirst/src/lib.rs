//! # pip-samplefirst
//!
//! The **Sample-First** baseline of the paper's evaluation (Section VI):
//! a reimplementation of MCDB's tuple-bundle approach on the same
//! substrate as PIP, for fair comparison. Sampling happens *before*
//! query processing — every variable is drawn for every world up front —
//! so selective predicates discard work and shrink the effective sample
//! count, which is exactly the effect Figures 5–8 measure.
//!
//! ```
//! use pip_core::{DataType, Schema};
//! use pip_dist::prelude::builtin;
//! use pip_expr::{Equation, RandomVar, CmpOp};
//! use pip_ctable::{CRow, CTable};
//! use pip_samplefirst::{BundleTable, ops, agg};
//!
//! let y = RandomVar::create(builtin::uniform(), &[0.0, 1.0]).unwrap();
//! let ct = CTable::new(
//!     Schema::of(&[("v", DataType::Symbolic)]),
//!     vec![CRow::unconditional(vec![Equation::from(y)])],
//! ).unwrap();
//! let t = BundleTable::instantiate(&ct, 1000, 42).unwrap();
//! let f = ops::filter_cmp_const(&t, "v", CmpOp::Gt, 0.5).unwrap();
//! let mean = agg::conditional_mean(&f, "v").unwrap()[0];
//! assert!((mean - 0.75).abs() < 0.05);
//! ```

pub mod agg;
pub mod bitmap;
pub mod bundle;
pub mod ops;

pub use bitmap::Bitmap;
pub use bundle::{Bundle, BundleCell, BundleTable};

/// Glob-import surface.
pub mod prelude {
    pub use crate::agg;
    pub use crate::bitmap::Bitmap;
    pub use crate::bundle::{Bundle, BundleCell, BundleTable};
    pub use crate::ops;
}
