//! The write-ahead log: an append-only file of length+checksum framed
//! catalog mutations.
//!
//! ```text
//! wal-<gen>.pipwal :=  MAGIC(8) gen(u64 LE)  frame*
//! frame            :=  len(u32 LE) crc32(u32 LE) payload(len bytes)
//! ```
//!
//! `payload` is one [`WalEntry`](crate::codec::WalEntry) JSON document.
//! Replay distinguishes two failure classes:
//!
//! * **frame integrity** (file ends mid-frame, length overruns the file,
//!   CRC mismatch) — the classic torn tail of a crash mid-append. Replay
//!   stops at the last intact frame and the file is truncated there, so
//!   the log is append-clean again;
//! * **payload decode** (an intact, checksummed frame whose payload is
//!   not valid UTF-8/JSON or whose record does not decode — e.g. a
//!   distribution class missing from the recovering registry). The CRC
//!   already vouches the bytes are exactly what was written, so this is
//!   *committed* data the store cannot honour — it surfaces as a hard
//!   [`PipError::Corrupt`] instead of being dropped as a torn tail.
//!
//! Append enforces the reader's acceptance bounds up front — both the
//! frame-size cap ([`frame_too_large`]) and the JSON nesting cap
//! ([`json_too_deep`]) — so a record the reader would refuse can never
//! be acknowledged as durable in the first place.

use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use pip_core::{PipError, Result};
use pip_dist::DistributionRegistry;

use crate::codec::{decode_entry, encode_entry, WalEntry};

pub(crate) const WAL_MAGIC: &[u8; 8] = b"PIPWAL01";
pub(crate) const HEADER_LEN: u64 = 16;

/// Appends grow the file in chunks of this size instead of per frame, so
/// a per-record `fdatasync` ([`Durability::Sync`](crate::Durability)) no
/// longer pays the file-growth metadata cost on every append — the size
/// change (and its metadata flush) happens once per chunk. The padding
/// past the last frame is zero bytes, which replay recognises as the
/// clean end of the log (a frame header can never be all-zero: an empty
/// payload is impossible, the shortest JSON document is two bytes).
const PREALLOC_CHUNK: u64 = 256 * 1024;

/// Upper bound on one frame's payload; anything larger on disk is
/// treated as a torn/corrupt length field rather than allocated, so
/// appends reject such payloads up front (see [`frame_too_large`]).
pub(crate) const MAX_FRAME_BYTES: u32 = 1 << 30;

/// Would a payload of `len` bytes exceed what replay accepts as a
/// legitimate frame? Checked before writing — a frame the reader would
/// refuse must never reach the log (and past `u32::MAX` the length
/// field itself would wrap and corrupt everything after it).
pub(crate) fn frame_too_large(len: usize) -> bool {
    len > MAX_FRAME_BYTES as usize
}

/// The shim `serde_json` parser refuses documents whose nodes nest
/// deeper than 128 levels (its `MAX_DEPTH`; the real `serde_json` has
/// the same default recursion limit). A payload the parser would refuse
/// must never be written — see [`json_too_deep`].
pub(crate) const MAX_JSON_DEPTH: usize = 128;

/// Depth headroom the mutation-side guard keeps below the parser cap:
/// an `Insert` row sits one JSON level deeper in a snapshot document
/// (`tables` array → entry → `table` → rows) than in its WAL frame
/// (`op` → body → rows), so every accepted record must stay readable
/// one level below the cap — otherwise the catalog could hold rows that
/// log fine but make every later checkpoint fail.
pub(crate) const SNAPSHOT_DEPTH_HEADROOM: usize = 1;

/// Does any node of `v` sit at depth ≥ `budget` (root at depth 0)? With
/// `budget = MAX_JSON_DEPTH` this is an exact mirror of the parser's
/// refusal. Recursion stops at the budget, so it probes at most
/// `budget` frames deep.
pub(crate) fn json_deeper_than(v: &serde_json::Value, budget: usize) -> bool {
    if budget == 0 {
        return true;
    }
    match v {
        serde_json::Value::Array(items) => items.iter().any(|i| json_deeper_than(i, budget - 1)),
        serde_json::Value::Object(fields) => {
            fields.iter().any(|(_, f)| json_deeper_than(f, budget - 1))
        }
        _ => false,
    }
}

/// Would the parser refuse `v` for nesting too deeply? Checked at
/// encode time (see [`encode_payload`] and snapshot writes), so a
/// record that could not be read back fails loudly instead of being
/// acknowledged and then misread as a torn tail (truncating it — and
/// everything after it — on recovery).
pub(crate) fn json_too_deep(v: &serde_json::Value) -> bool {
    json_deeper_than(v, MAX_JSON_DEPTH)
}

/// The mutation-side depth guard: refuse any record whose encoding —
/// or whose one-level-deeper snapshot re-encoding — the parser would
/// not read back. A CRC-valid frame nested past the cap would fail
/// recovery outright as committed-but-unreadable.
fn check_depth(encoded: &serde_json::Value) -> Result<()> {
    if json_deeper_than(encoded, MAX_JSON_DEPTH - SNAPSHOT_DEPTH_HEADROOM) {
        return Err(PipError::io(format!(
            "catalog mutation serializes to JSON nested deeper than the \
             {}-level WAL payload limit",
            MAX_JSON_DEPTH - SNAPSHOT_DEPTH_HEADROOM
        )));
    }
    Ok(())
}

/// Enforce the write contract on `entry` without serializing it: the
/// durability-`OFF` path, where nothing is written but state the store
/// could never snapshot must still be refused up front — or the next
/// checkpoint (e.g. the `OFF`→`ON` transition) would keep failing for
/// as long as that state exists. Per-frame size is moot here: unlogged
/// state only ever reaches disk through a snapshot, which carries its
/// own size guard.
pub(crate) fn validate_entry(entry: &WalEntry) -> Result<()> {
    check_depth(&encode_entry(entry))
}

/// Encode one entry and enforce the write contract — the JSON nesting
/// cap (with snapshot headroom) and the frame-size cap. A record the
/// reader would refuse must fail the *mutation*, not be written: replay
/// would classify an oversized frame (or, past u32, a lying length
/// field) as a torn tail and silently truncate a record the caller was
/// told is durable.
pub(crate) fn encode_payload(entry: &WalEntry) -> Result<String> {
    let encoded = encode_entry(entry);
    check_depth(&encoded)?;
    let payload =
        serde_json::to_string(&encoded).map_err(|e| PipError::io(format!("WAL encode: {e}")))?;
    if frame_too_large(payload.len()) {
        return Err(PipError::io(format!(
            "catalog mutation serializes to {} bytes, over the {} byte WAL frame limit",
            payload.len(),
            MAX_FRAME_BYTES
        )));
    }
    Ok(payload)
}

/// CRC-32 (IEEE 802.3 polynomial, reflected), table-driven.
pub fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB88320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *e = c;
        }
        t
    });
    let mut c = !0u32;
    for &b in bytes {
        c = table[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// Frame one payload (length + checksum + bytes).
pub(crate) fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Path of generation `gen`'s WAL file.
pub(crate) fn wal_path(dir: &Path, gen: u64) -> PathBuf {
    dir.join(format!("wal-{gen:06}.pipwal"))
}

/// An open, append-position WAL file.
#[derive(Debug)]
pub(crate) struct WalWriter {
    file: File,
    pub(crate) gen: u64,
    /// Bytes of framed records past the header (the checkpoint trigger).
    /// Together with the header this is the expected end-of-log offset —
    /// the authority on where the next frame belongs, independent of the
    /// file cursor a failed write may have left mid-frame.
    pub(crate) record_bytes: u64,
    /// Current on-disk file length, `>= HEADER_LEN + record_bytes`; the
    /// surplus is zeroed preallocation the next appends overwrite.
    allocated: u64,
    /// Set when a failed append left bytes of unknown content at the
    /// tail *and* truncating them back off also failed. Every further
    /// append is refused: a successful frame landing after garbage would
    /// replay as a torn tail and be silently dropped along with it.
    poisoned: bool,
}

impl WalWriter {
    /// Create generation `gen`'s log (fresh file, header written).
    pub(crate) fn create(dir: &Path, gen: u64) -> Result<WalWriter> {
        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(wal_path(dir, gen))?;
        file.write_all(WAL_MAGIC)?;
        file.write_all(&gen.to_le_bytes())?;
        file.sync_data()?;
        Ok(WalWriter {
            file,
            gen,
            record_bytes: 0,
            allocated: HEADER_LEN,
            poisoned: false,
        })
    }

    /// Reopen generation `gen`'s log for appending, truncating to
    /// `valid_bytes` first (dropping any torn tail — and any zeroed
    /// preallocation — found by replay).
    pub(crate) fn reopen(dir: &Path, gen: u64, valid_bytes: u64) -> Result<WalWriter> {
        let file = OpenOptions::new().write(true).open(wal_path(dir, gen))?;
        file.set_len(valid_bytes)?;
        let mut file = file;
        file.seek(SeekFrom::End(0))?;
        Ok(WalWriter {
            file,
            gen,
            record_bytes: valid_bytes.saturating_sub(HEADER_LEN),
            allocated: valid_bytes,
            poisoned: false,
        })
    }

    /// Make room for `need` more bytes at the tail, extending the file in
    /// [`PREALLOC_CHUNK`] steps. The extension does not move the write
    /// cursor — the padding bytes are zeros until frames overwrite them —
    /// so the subsequent `write_all`/`sync_data` of a frame no longer
    /// changes the file's size (the metadata cost lands here, once per
    /// chunk). Failure is benign: the writer state is untouched and the
    /// zeros past the tail replay as a clean end of log.
    fn ensure_capacity(&mut self, need: u64) -> Result<()> {
        let end = HEADER_LEN + self.record_bytes + need;
        if end > self.allocated {
            let target = end.div_ceil(PREALLOC_CHUNK) * PREALLOC_CHUNK;
            self.file.set_len(target)?;
            self.allocated = target;
        }
        Ok(())
    }

    /// Append one entry. `sync` additionally forces the frame to stable
    /// storage before returning (the `SYNC` durability level).
    #[cfg(test)]
    pub(crate) fn append(&mut self, entry: &WalEntry, sync: bool) -> Result<()> {
        self.append_faulty(entry, sync, false).map(|_| ())
    }

    /// [`WalWriter::append`] with an injectable sync failure: when
    /// `inject_sync_failure` is set and `sync` is requested, the frame is
    /// written and then rolled back exactly as a real failed `sync_data`
    /// would be — the chaos suite's way of exercising the rollback path
    /// on a healthy disk. Returns the appended frame size and the
    /// nanoseconds the fsync took (0 when not syncing), which the store
    /// feeds into its WAL metrics.
    pub(crate) fn append_faulty(
        &mut self,
        entry: &WalEntry,
        sync: bool,
        inject_sync_failure: bool,
    ) -> Result<(u64, u64)> {
        self.ensure_clean_tail()?;
        let payload = encode_payload(entry)?;
        let framed = frame(payload.as_bytes());
        self.ensure_capacity(framed.len() as u64)?;
        if let Err(e) = self.file.write_all(&framed) {
            // A partial write (ENOSPC mid-frame, …) leaves garbage after
            // the last good frame. Roll the tail back before anything
            // else may append: a later acknowledged frame landing after
            // the garbage would replay as part of a torn tail and be
            // silently dropped with it.
            self.truncate_to_tail();
            return Err(e.into());
        }
        let mut fsync_nanos = 0u64;
        if sync {
            if inject_sync_failure {
                self.truncate_to_tail();
                return Err(PipError::Io("injected WAL sync failure".into()));
            }
            let fsync_start = std::time::Instant::now();
            if let Err(e) = self.file.sync_data() {
                // The frame's bytes are complete but their durability is
                // unknown and the caller will abort the mutation — drop
                // the unacknowledged frame so log and catalog agree.
                self.truncate_to_tail();
                return Err(e.into());
            }
            fsync_nanos = fsync_start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        }
        self.record_bytes += framed.len() as u64;
        Ok((framed.len() as u64, fsync_nanos))
    }

    /// Restore the file to the last acknowledged frame boundary
    /// (`record_bytes` past the header), discarding whatever a failed
    /// append left behind. Poisons the writer if that itself fails —
    /// and clears the poison when a retry succeeds (e.g. space freed
    /// after a transient ENOSPC).
    fn truncate_to_tail(&mut self) {
        let end = HEADER_LEN + self.record_bytes;
        let restored = self
            .file
            .set_len(end)
            .and_then(|()| self.file.seek(SeekFrom::Start(end)).map(|_| ()));
        if restored.is_ok() {
            // Preallocation was dropped along with the garbage; the next
            // append re-extends.
            self.allocated = end;
        }
        self.poisoned = restored.is_err();
    }

    /// Seal this generation: clean tail enforced, zeroed preallocation
    /// trimmed off, everything synced. After this the file is exactly its
    /// frames — readers (recovery, the replication tailer) can take its
    /// length as the end of the record stream.
    pub(crate) fn seal(&mut self) -> Result<()> {
        self.ensure_clean_tail()?;
        let end = HEADER_LEN + self.record_bytes;
        if self.allocated > end {
            self.file.set_len(end)?;
            self.allocated = end;
        }
        self.sync()
    }

    /// Make sure the file ends exactly at the last acknowledged frame —
    /// re-attempting the rollback a failed append could not complete.
    /// Both appends and checkpoint rotation ([`crate::store::Store`])
    /// go through this: sealing a generation whose tail holds garbage
    /// would let acknowledged frames land after it (in this or the next
    /// generation) and replay as a droppable torn tail.
    pub(crate) fn ensure_clean_tail(&mut self) -> Result<()> {
        if self.poisoned {
            self.truncate_to_tail();
        }
        if self.poisoned {
            return Err(PipError::io(
                "WAL writer is poisoned: a failed append left unknown bytes at the \
                 tail and truncating them failed; reopen the data directory to recover",
            ));
        }
        Ok(())
    }

    /// Force everything appended so far to stable storage.
    pub(crate) fn sync(&mut self) -> Result<()> {
        self.file.sync_data()?;
        Ok(())
    }
}

/// One replayed WAL file: its intact entries, the byte offset up to
/// which frames were intact, and whether a torn tail was dropped.
#[derive(Debug)]
pub(crate) struct WalReplay {
    pub(crate) entries: Vec<WalEntry>,
    pub(crate) valid_bytes: u64,
    pub(crate) torn_tail: bool,
}

/// Read and verify one WAL file (see the module docs for the failure
/// taxonomy). A missing file replays as empty.
pub(crate) fn replay_wal(
    dir: &Path,
    gen: u64,
    registry: &DistributionRegistry,
) -> Result<WalReplay> {
    let path = wal_path(dir, gen);
    let bytes = match std::fs::read(&path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok(WalReplay {
                entries: Vec::new(),
                valid_bytes: HEADER_LEN,
                torn_tail: false,
            })
        }
        Err(e) => return Err(e.into()),
    };
    if bytes.len() < HEADER_LEN as usize || &bytes[..8] != WAL_MAGIC {
        return Err(PipError::corrupt(format!(
            "{} has no valid WAL header",
            path.display()
        )));
    }
    let header_gen = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    if header_gen != gen {
        return Err(PipError::corrupt(format!(
            "{} claims generation {header_gen}, expected {gen}",
            path.display()
        )));
    }
    let mut entries = Vec::new();
    let mut pos = HEADER_LEN as usize;
    let mut torn_tail = false;
    while pos < bytes.len() {
        let Some(header) = bytes.get(pos..pos + 8) else {
            torn_tail = true;
            break;
        };
        if header.iter().all(|&b| b == 0) {
            // Zeroed bytes where a frame header would start: the file's
            // preallocated (or crash-abandoned, nothing-yet-written)
            // region past the last frame — the clean end of the log, not
            // a tear. A real frame header can never be all-zero: the
            // shortest payload is two bytes.
            break;
        }
        let len = u32::from_le_bytes(header[..4].try_into().unwrap());
        let crc = u32::from_le_bytes(header[4..8].try_into().unwrap());
        if len > MAX_FRAME_BYTES {
            torn_tail = true;
            break;
        }
        let Some(payload) = bytes.get(pos + 8..pos + 8 + len as usize) else {
            torn_tail = true;
            break;
        };
        if crc32(payload) != crc {
            torn_tail = true;
            break;
        }
        // The CRC vouches these are exactly the bytes that were written,
        // so from here on any failure is committed-but-unreadable data —
        // a hard error, never a torn tail to be silently truncated.
        let text = std::str::from_utf8(payload).map_err(|_| {
            PipError::corrupt(format!(
                "{}: checksummed frame at byte {pos} is not UTF-8",
                path.display()
            ))
        })?;
        let json = serde_json::from_str(text).map_err(|e| {
            PipError::corrupt(format!(
                "{}: checksummed frame at byte {pos} is not valid JSON: {e}",
                path.display()
            ))
        })?;
        entries.push(decode_entry(&json, registry)?);
        pos += 8 + len as usize;
    }
    Ok(WalReplay {
        entries,
        valid_bytes: pos as u64,
        torn_tail,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::CatalogRecord;
    use pip_core::Schema;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("pip-store-waltest-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn entry(version: u64) -> WalEntry {
        WalEntry {
            version,
            record: CatalogRecord::CreateTable {
                name: format!("t{version}"),
                schema: Schema::empty(),
            },
        }
    }

    #[test]
    fn crc32_reference_vector() {
        // The canonical IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF43926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn append_and_replay() {
        let dir = tmp_dir("append");
        let reg = DistributionRegistry::with_builtins();
        let mut w = WalWriter::create(&dir, 0).unwrap();
        for v in 1..=5 {
            w.append(&entry(v), v % 2 == 0).unwrap();
        }
        w.sync().unwrap();
        let r = replay_wal(&dir, 0, &reg).unwrap();
        assert_eq!(r.entries.len(), 5);
        assert!(!r.torn_tail);
        assert_eq!(r.entries[4], entry(5));
        // Reopen at the valid offset and keep appending.
        let mut w = WalWriter::reopen(&dir, 0, r.valid_bytes).unwrap();
        w.append(&entry(6), true).unwrap();
        let r = replay_wal(&dir, 0, &reg).unwrap();
        assert_eq!(r.entries.len(), 6);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let dir = tmp_dir("torn");
        let reg = DistributionRegistry::with_builtins();
        let mut w = WalWriter::create(&dir, 3).unwrap();
        for v in 1..=3 {
            w.append(&entry(v), false).unwrap();
        }
        w.sync().unwrap();
        let clean = replay_wal(&dir, 3, &reg).unwrap();
        let path = wal_path(&dir, 3);

        // A crash mid-append: half a frame of garbage at the write
        // cursor (the end of the acknowledged frames — any preallocation
        // padding sits *after* the tear).
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.truncate(clean.valid_bytes as usize);
        bytes.extend_from_slice(&[0x99, 0x12, 0x00, 0x00, 0xAB]);
        std::fs::write(&path, &bytes).unwrap();
        let r = replay_wal(&dir, 3, &reg).unwrap();
        assert!(r.torn_tail);
        assert_eq!(r.entries.len(), 3, "intact prefix survives");
        assert_eq!(r.valid_bytes, clean.valid_bytes);

        // A flipped bit inside the last frame: CRC rejects that frame,
        // earlier frames stand.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.truncate(clean.valid_bytes as usize); // drop the garbage tail
        let inside_last_frame = bytes.len() - 12;
        bytes[inside_last_frame] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let r = replay_wal(&dir, 3, &reg).unwrap();
        assert!(r.torn_tail);
        assert_eq!(r.entries.len(), 2);

        // Reopening for append truncates the bad tail away.
        let w = WalWriter::reopen(&dir, 3, r.valid_bytes).unwrap();
        drop(w);
        let r2 = replay_wal(&dir, 3, &reg).unwrap();
        assert!(!r2.torn_tail);
        assert_eq!(r2.entries.len(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn depth_cap_mirrors_the_parser() {
        use serde_json::Value as Json;
        // `n` containers around a scalar put the scalar at depth `n`.
        fn nested(n: usize) -> Json {
            let mut v = Json::Number("1".into());
            for _ in 0..n {
                v = Json::Array(vec![v]);
            }
            v
        }
        for n in [0, 1, 64, MAX_JSON_DEPTH - 1] {
            let v = nested(n);
            assert!(!json_too_deep(&v), "checker refuses depth {n}");
            let text = serde_json::to_string(&v).unwrap();
            assert!(
                serde_json::from_str(&text).is_ok(),
                "parser refuses depth {n}"
            );
        }
        for n in [MAX_JSON_DEPTH, MAX_JSON_DEPTH + 1, 300] {
            let v = nested(n);
            assert!(json_too_deep(&v), "checker accepts depth {n}");
            let text = serde_json::to_string(&v).unwrap();
            assert!(
                serde_json::from_str(&text).is_err(),
                "parser accepts depth {n} the checker refuses"
            );
        }
    }

    #[test]
    fn too_deep_records_fail_the_append_loudly() {
        use pip_core::Value;
        use pip_ctable::CRow;
        use pip_expr::Equation;

        let dir = tmp_dir("deep");
        let reg = DistributionRegistry::with_builtins();
        let deep_insert = |ops: usize| {
            let mut eq = Equation::val(Value::Float(1.0));
            for _ in 0..ops {
                eq = eq + Equation::val(Value::Float(1.0));
            }
            WalEntry {
                version: 1,
                record: CatalogRecord::Insert {
                    name: "t".into(),
                    rows: vec![CRow::unconditional(vec![eq])],
                },
            }
        };
        let mut w = WalWriter::create(&dir, 0).unwrap();
        w.append(&entry(1), false).unwrap();
        // Each chained binary op adds two JSON levels (object + array);
        // ~80 of them sail past the parser's cap. The reviewer's trap was
        // that this frame *wrote* fine, CRC-verified on replay, then
        // failed the parse and was truncated as a "torn tail" along with
        // every record after it.
        assert!(matches!(
            w.append(&deep_insert(80), false),
            Err(PipError::Io(_))
        ));
        // A deep-but-legal record still fits: the guard mirrors the
        // parser, it does not undercut it.
        w.append(&deep_insert(40), false).unwrap();
        // The refused record reached neither the file nor the counter;
        // the log stays append-clean and replays in full.
        w.append(&entry(2), true).unwrap();
        let r = replay_wal(&dir, 0, &reg).unwrap();
        assert!(!r.torn_tail);
        assert_eq!(r.entries.len(), 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checksummed_garbage_is_corrupt_not_torn() {
        let dir = tmp_dir("garbage");
        let reg = DistributionRegistry::with_builtins();
        let mut w = WalWriter::create(&dir, 0).unwrap();
        w.append(&entry(1), true).unwrap();
        // A CRC-valid frame whose payload is not JSON: the checksum
        // vouches these bytes are exactly what was written, so this is
        // committed-but-unreadable data — a hard error, not a torn tail
        // that silently truncates the record (and everything after it).
        let path = wal_path(&dir, 0);
        let clean = replay_wal(&dir, 0, &reg).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.truncate(clean.valid_bytes as usize);
        bytes.extend_from_slice(&frame(b"not json"));
        bytes.extend_from_slice(&frame(b"\xff\xfe"));
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            replay_wal(&dir, 0, &reg),
            Err(PipError::Corrupt(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_append_rolls_the_tail_back() {
        let dir = tmp_dir("rollback");
        let reg = DistributionRegistry::with_builtins();
        let mut w = WalWriter::create(&dir, 0).unwrap();
        w.append(&entry(1), false).unwrap();
        // Simulate ENOSPC mid-frame: a failed write_all leaves part of a
        // frame after the last good one, with the cursor past it.
        w.file.write_all(&[0xDE, 0xAD, 0xBE]).unwrap();
        w.truncate_to_tail();
        // Appends continue at the good boundary — were the garbage left
        // in place, this acknowledged record would land after it and
        // replay would drop both as a torn tail.
        w.append(&entry(2), true).unwrap();
        let r = replay_wal(&dir, 0, &reg).unwrap();
        assert!(!r.torn_tail);
        assert_eq!(r.entries.len(), 2);
        assert_eq!(r.entries[1], entry(2));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn poisoned_writer_heals_once_truncation_succeeds() {
        let dir = tmp_dir("heal");
        let reg = DistributionRegistry::with_builtins();
        let mut w = WalWriter::create(&dir, 0).unwrap();
        w.append(&entry(1), false).unwrap();
        // A failed append left garbage *and* the rollback failed too
        // (e.g. ENOSPC for both); the poison sticks until a rollback
        // lands.
        w.file.write_all(&[0xBA, 0xD0]).unwrap();
        w.poisoned = true;
        // The next append re-attempts the rollback, heals, and appends
        // cleanly — checkpoint rotation goes through the same gate.
        w.append(&entry(2), true).unwrap();
        w.ensure_clean_tail().unwrap();
        let r = replay_wal(&dir, 0, &reg).unwrap();
        assert!(!r.torn_tail);
        assert_eq!(r.entries.len(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_file_replays_empty_but_bad_header_is_corrupt() {
        let dir = tmp_dir("header");
        let reg = DistributionRegistry::with_builtins();
        let r = replay_wal(&dir, 9, &reg).unwrap();
        assert!(r.entries.is_empty());
        std::fs::write(wal_path(&dir, 9), b"not a wal").unwrap();
        assert!(matches!(
            replay_wal(&dir, 9, &reg),
            Err(PipError::Corrupt(_))
        ));
        // Wrong generation stamp in an otherwise valid header.
        let mut hdr = WAL_MAGIC.to_vec();
        hdr.extend_from_slice(&7u64.to_le_bytes());
        std::fs::write(wal_path(&dir, 9), &hdr).unwrap();
        assert!(matches!(
            replay_wal(&dir, 9, &reg),
            Err(PipError::Corrupt(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
