//! The write-ahead log: an append-only file of length+checksum framed
//! catalog mutations.
//!
//! ```text
//! wal-<gen>.pipwal :=  MAGIC(8) gen(u64 LE)  frame*
//! frame            :=  len(u32 LE) crc32(u32 LE) payload(len bytes)
//! ```
//!
//! `payload` is one [`WalEntry`](crate::codec::WalEntry) JSON document.
//! Replay distinguishes two failure classes:
//!
//! * **frame integrity** (file ends mid-frame, length overruns the file,
//!   CRC mismatch, unparseable JSON) — the classic torn tail of a crash
//!   mid-append. Replay stops at the last intact frame and the file is
//!   truncated there, so the log is append-clean again;
//! * **payload decode** (an intact, checksummed frame whose record does
//!   not decode — e.g. a distribution class missing from the recovering
//!   registry). That is *committed* data the store cannot honour, so it
//!   surfaces as a hard [`PipError::Corrupt`] instead of being dropped.

use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use pip_core::{PipError, Result};
use pip_dist::DistributionRegistry;

use crate::codec::{decode_entry, encode_entry, WalEntry};

pub(crate) const WAL_MAGIC: &[u8; 8] = b"PIPWAL01";
const HEADER_LEN: u64 = 16;

/// Upper bound on one frame's payload; anything larger on disk is
/// treated as a torn/corrupt length field rather than allocated, so
/// appends reject such payloads up front (see [`frame_too_large`]).
const MAX_FRAME_BYTES: u32 = 1 << 30;

/// Would a payload of `len` bytes exceed what replay accepts as a
/// legitimate frame? Checked before writing — a frame the reader would
/// refuse must never reach the log (and past `u32::MAX` the length
/// field itself would wrap and corrupt everything after it).
pub(crate) fn frame_too_large(len: usize) -> bool {
    len > MAX_FRAME_BYTES as usize
}

/// CRC-32 (IEEE 802.3 polynomial, reflected), table-driven.
pub fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB88320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *e = c;
        }
        t
    });
    let mut c = !0u32;
    for &b in bytes {
        c = table[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// Frame one payload (length + checksum + bytes).
pub(crate) fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Path of generation `gen`'s WAL file.
pub(crate) fn wal_path(dir: &Path, gen: u64) -> PathBuf {
    dir.join(format!("wal-{gen:06}.pipwal"))
}

/// An open, append-position WAL file.
#[derive(Debug)]
pub(crate) struct WalWriter {
    file: File,
    pub(crate) gen: u64,
    /// Bytes of framed records past the header (the checkpoint trigger).
    pub(crate) record_bytes: u64,
}

impl WalWriter {
    /// Create generation `gen`'s log (fresh file, header written).
    pub(crate) fn create(dir: &Path, gen: u64) -> Result<WalWriter> {
        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(wal_path(dir, gen))?;
        file.write_all(WAL_MAGIC)?;
        file.write_all(&gen.to_le_bytes())?;
        file.sync_data()?;
        Ok(WalWriter {
            file,
            gen,
            record_bytes: 0,
        })
    }

    /// Reopen generation `gen`'s log for appending, truncating to
    /// `valid_bytes` first (dropping any torn tail found by replay).
    pub(crate) fn reopen(dir: &Path, gen: u64, valid_bytes: u64) -> Result<WalWriter> {
        let file = OpenOptions::new().write(true).open(wal_path(dir, gen))?;
        file.set_len(valid_bytes)?;
        let mut file = file;
        file.seek(SeekFrom::End(0))?;
        Ok(WalWriter {
            file,
            gen,
            record_bytes: valid_bytes.saturating_sub(HEADER_LEN),
        })
    }

    /// Append one entry. `sync` additionally forces the frame to stable
    /// storage before returning (the `SYNC` durability level).
    pub(crate) fn append(&mut self, entry: &WalEntry, sync: bool) -> Result<()> {
        let payload = serde_json::to_string(&encode_entry(entry))
            .map_err(|e| PipError::io(format!("WAL encode: {e}")))?;
        // An oversized frame must fail the *mutation*, not be written:
        // replay would classify it as a torn tail (or, past u32, a lying
        // length field) and silently truncate a record the caller was
        // told is durable.
        if frame_too_large(payload.len()) {
            return Err(PipError::io(format!(
                "catalog mutation serializes to {} bytes, over the {} byte WAL frame limit",
                payload.len(),
                MAX_FRAME_BYTES
            )));
        }
        let framed = frame(payload.as_bytes());
        self.file.write_all(&framed)?;
        if sync {
            self.file.sync_data()?;
        }
        self.record_bytes += framed.len() as u64;
        Ok(())
    }

    /// Force everything appended so far to stable storage.
    pub(crate) fn sync(&mut self) -> Result<()> {
        self.file.sync_data()?;
        Ok(())
    }
}

/// One replayed WAL file: its intact entries, the byte offset up to
/// which frames were intact, and whether a torn tail was dropped.
#[derive(Debug)]
pub(crate) struct WalReplay {
    pub(crate) entries: Vec<WalEntry>,
    pub(crate) valid_bytes: u64,
    pub(crate) torn_tail: bool,
}

/// Read and verify one WAL file (see the module docs for the failure
/// taxonomy). A missing file replays as empty.
pub(crate) fn replay_wal(
    dir: &Path,
    gen: u64,
    registry: &DistributionRegistry,
) -> Result<WalReplay> {
    let path = wal_path(dir, gen);
    let bytes = match std::fs::read(&path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok(WalReplay {
                entries: Vec::new(),
                valid_bytes: HEADER_LEN,
                torn_tail: false,
            })
        }
        Err(e) => return Err(e.into()),
    };
    if bytes.len() < HEADER_LEN as usize || &bytes[..8] != WAL_MAGIC {
        return Err(PipError::corrupt(format!(
            "{} has no valid WAL header",
            path.display()
        )));
    }
    let header_gen = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    if header_gen != gen {
        return Err(PipError::corrupt(format!(
            "{} claims generation {header_gen}, expected {gen}",
            path.display()
        )));
    }
    let mut entries = Vec::new();
    let mut pos = HEADER_LEN as usize;
    let mut torn_tail = false;
    while pos < bytes.len() {
        let Some(header) = bytes.get(pos..pos + 8) else {
            torn_tail = true;
            break;
        };
        let len = u32::from_le_bytes(header[..4].try_into().unwrap());
        let crc = u32::from_le_bytes(header[4..8].try_into().unwrap());
        if len > MAX_FRAME_BYTES {
            torn_tail = true;
            break;
        }
        let Some(payload) = bytes.get(pos + 8..pos + 8 + len as usize) else {
            torn_tail = true;
            break;
        };
        if crc32(payload) != crc {
            torn_tail = true;
            break;
        }
        let Ok(text) = std::str::from_utf8(payload) else {
            torn_tail = true;
            break;
        };
        let Ok(json) = serde_json::from_str(text) else {
            torn_tail = true;
            break;
        };
        // The frame is intact: a record that does not decode is
        // committed-but-unreadable, which must not be dropped silently.
        entries.push(decode_entry(&json, registry)?);
        pos += 8 + len as usize;
    }
    Ok(WalReplay {
        entries,
        valid_bytes: pos as u64,
        torn_tail,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::CatalogRecord;
    use pip_core::Schema;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("pip-store-waltest-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn entry(version: u64) -> WalEntry {
        WalEntry {
            version,
            record: CatalogRecord::CreateTable {
                name: format!("t{version}"),
                schema: Schema::empty(),
            },
        }
    }

    #[test]
    fn crc32_reference_vector() {
        // The canonical IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF43926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn append_and_replay() {
        let dir = tmp_dir("append");
        let reg = DistributionRegistry::with_builtins();
        let mut w = WalWriter::create(&dir, 0).unwrap();
        for v in 1..=5 {
            w.append(&entry(v), v % 2 == 0).unwrap();
        }
        w.sync().unwrap();
        let r = replay_wal(&dir, 0, &reg).unwrap();
        assert_eq!(r.entries.len(), 5);
        assert!(!r.torn_tail);
        assert_eq!(r.entries[4], entry(5));
        // Reopen at the valid offset and keep appending.
        let mut w = WalWriter::reopen(&dir, 0, r.valid_bytes).unwrap();
        w.append(&entry(6), true).unwrap();
        let r = replay_wal(&dir, 0, &reg).unwrap();
        assert_eq!(r.entries.len(), 6);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let dir = tmp_dir("torn");
        let reg = DistributionRegistry::with_builtins();
        let mut w = WalWriter::create(&dir, 3).unwrap();
        for v in 1..=3 {
            w.append(&entry(v), false).unwrap();
        }
        w.sync().unwrap();
        let clean = replay_wal(&dir, 3, &reg).unwrap();
        let path = wal_path(&dir, 3);

        // A crash mid-append: half a frame of garbage at the end.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&[0x99, 0x12, 0x00, 0x00, 0xAB]);
        std::fs::write(&path, &bytes).unwrap();
        let r = replay_wal(&dir, 3, &reg).unwrap();
        assert!(r.torn_tail);
        assert_eq!(r.entries.len(), 3, "intact prefix survives");
        assert_eq!(r.valid_bytes, clean.valid_bytes);

        // A flipped bit inside the last frame: CRC rejects that frame,
        // earlier frames stand.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.truncate(clean.valid_bytes as usize); // drop the garbage tail
        let inside_last_frame = bytes.len() - 12;
        bytes[inside_last_frame] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let r = replay_wal(&dir, 3, &reg).unwrap();
        assert!(r.torn_tail);
        assert_eq!(r.entries.len(), 2);

        // Reopening for append truncates the bad tail away.
        let w = WalWriter::reopen(&dir, 3, r.valid_bytes).unwrap();
        drop(w);
        let r2 = replay_wal(&dir, 3, &reg).unwrap();
        assert!(!r2.torn_tail);
        assert_eq!(r2.entries.len(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_file_replays_empty_but_bad_header_is_corrupt() {
        let dir = tmp_dir("header");
        let reg = DistributionRegistry::with_builtins();
        let r = replay_wal(&dir, 9, &reg).unwrap();
        assert!(r.entries.is_empty());
        std::fs::write(wal_path(&dir, 9), b"not a wal").unwrap();
        assert!(matches!(
            replay_wal(&dir, 9, &reg),
            Err(PipError::Corrupt(_))
        ));
        // Wrong generation stamp in an otherwise valid header.
        let mut hdr = WAL_MAGIC.to_vec();
        hdr.extend_from_slice(&7u64.to_le_bytes());
        std::fs::write(wal_path(&dir, 9), &hdr).unwrap();
        assert!(matches!(
            replay_wal(&dir, 9, &reg),
            Err(PipError::Corrupt(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
