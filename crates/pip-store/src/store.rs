//! The data-directory manager: generations of snapshot + WAL pairs, the
//! recovery protocol, and the append/checkpoint API the engine's catalog
//! drives.
//!
//! A data directory holds, per **generation** `g`:
//!
//! * `snapshot-<g>.pipsnap` — the full catalog at the instant generation
//!   `g` began (generation 0 has no snapshot: the empty catalog);
//! * `wal-<g>.pipwal` — every logical mutation since that instant.
//!
//! **Recovery** picks the newest snapshot that passes verification,
//! then replays every WAL generation ≥ it in ascending order, torn tails
//! truncated (see [`crate::wal`]). Replaying older WAL generations under
//! a newer snapshot is never allowed — their records are already folded
//! into the snapshot. **Checkpoint** runs in two phases: first seal
//! `wal-<g>` and switch appends to `wal-<g+1>` (under the caller's
//! mutation lock), then — with mutations flowing again — write snapshot
//! `g+1` (temp file + rename, so a crash mid-checkpoint leaves
//! generation `g` as the recovery base with the `g`/`g+1` WAL chain
//! intact) and delete generation ≤ `g` files best-effort; leftover old
//! files are ignored (and re-deleted) by the next recovery.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use pip_core::{PipError, Result};
use pip_ctable::CTable;
use pip_dist::DistributionRegistry;
use serde_json::Value as Json;

use crate::codec::{CatalogRecord, WalEntry};
use crate::snapshot::{read_snapshot, snapshot_path, write_snapshot, Snapshot};
use crate::wal::{replay_wal, wal_path, WalWriter};

/// How hard an append pushes each record toward stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Durability {
    /// No logging at all — the in-memory fast path. Re-enabling logging
    /// requires a checkpoint first (the engine does this automatically).
    Off,
    /// Append + OS write on every record; fsync only at checkpoints.
    /// Survives process crashes; an OS crash may lose the last records.
    Wal,
    /// Append + fsync on every record. Survives power loss.
    Sync,
}

impl Durability {
    fn as_u8(self) -> u8 {
        match self {
            Durability::Off => 0,
            Durability::Wal => 1,
            Durability::Sync => 2,
        }
    }

    fn from_u8(b: u8) -> Durability {
        match b {
            0 => Durability::Off,
            2 => Durability::Sync,
            _ => Durability::Wal,
        }
    }

    /// Parse the `SET DURABILITY` argument.
    pub fn parse(s: &str) -> Option<Durability> {
        match s.to_ascii_uppercase().as_str() {
            "OFF" => Some(Durability::Off),
            "WAL" => Some(Durability::Wal),
            "SYNC" => Some(Durability::Sync),
            _ => None,
        }
    }
}

impl std::fmt::Display for Durability {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Durability::Off => "OFF",
            Durability::Wal => "WAL",
            Durability::Sync => "SYNC",
        })
    }
}

/// Where inside a WAL append an injected fault fires. Used by the
/// replication chaos suite to make storage fail deterministically at the
/// two points a real disk can: before any bytes land ([`FaultPoint::Append`],
/// the clean-refusal path) and after the frame is written but before it is
/// stable ([`FaultPoint::Sync`], the rollback path — the writer truncates
/// the unacknowledged frame back off so log and catalog agree).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultPoint {
    /// The `write_all` of a framed record.
    Append,
    /// The `sync_data` after a successful write (only reached at
    /// [`Durability::Sync`]).
    Sync,
}

/// A fault-injection hook consulted on every durable append. Returning
/// `true` makes the store behave as if the corresponding I/O operation
/// failed. Production code never installs one.
pub type FaultHook = Arc<dyn Fn(FaultPoint) -> bool + Send + Sync>;

/// The catalog state reconstructed by [`Store::open`].
#[derive(Debug)]
pub struct Recovered {
    /// Tables sorted by name, each with the optimizer-statistics blob
    /// persisted at the last checkpoint (absent when the WAL suffix
    /// mutated the table — those statistics would be stale).
    pub tables: Vec<(String, CTable, Option<Json>)>,
    /// Secondary-index definitions as `(name, table, column)` tuples,
    /// sorted by index name. Only the *definitions* are durable; index
    /// contents are rebuilt from the recovered tables by the engine.
    pub indexes: Vec<(String, String, String)>,
    /// Catalog version at the recovery point (highest stamp seen).
    pub version: u64,
    /// Highest variable id in use anywhere in the recovered catalog;
    /// the id allocator must be reserved through it.
    pub max_var_id: u64,
    /// Snapshot generation recovery started from.
    pub snapshot_gen: u64,
    /// WAL entries replayed on top of the snapshot.
    pub replayed: usize,
    /// True when a torn tail was truncated from the active WAL.
    pub torn_tail: bool,
}

/// WAL and checkpoint metric handles, registered into the owning
/// database's [`pip_obs::Registry`] by [`Store::attach_metrics`]. Until
/// attachment (bare stores in unit tests) nothing is recorded.
#[derive(Debug)]
pub struct StoreMetrics {
    /// Full durable-append latency (lock + frame write + optional fsync).
    pub wal_append_seconds: Arc<pip_obs::Histogram>,
    /// Latency of the per-record `sync_data` at `Durability::Sync`.
    pub wal_fsync_seconds: Arc<pip_obs::Histogram>,
    /// Framed bytes appended to the WAL.
    pub wal_appended_bytes_total: Arc<pip_obs::Counter>,
    /// Completed checkpoints (both phases).
    pub checkpoints_total: Arc<pip_obs::Counter>,
    /// Checkpoint phase 1: seal the old generation, rotate to the new one
    /// (runs under the engine's mutation lock).
    pub checkpoint_seal_seconds: Arc<pip_obs::Histogram>,
    /// Checkpoint phase 2: snapshot write + old-generation retirement.
    pub checkpoint_snapshot_seconds: Arc<pip_obs::Histogram>,
    /// Bytes of snapshot files written by checkpoints.
    pub checkpoint_bytes_total: Arc<pip_obs::Counter>,
}

impl StoreMetrics {
    fn register(r: &pip_obs::Registry) -> StoreMetrics {
        StoreMetrics {
            wal_append_seconds: r.histogram(
                "pip_store_wal_append_seconds",
                "Durable WAL append latency (write + fsync at SYNC).",
            ),
            wal_fsync_seconds: r.histogram(
                "pip_store_wal_fsync_seconds",
                "Per-record fsync latency at SYNC durability.",
            ),
            wal_appended_bytes_total: r.counter(
                "pip_store_wal_appended_bytes_total",
                "Framed bytes appended to the write-ahead log.",
            ),
            checkpoints_total: r.counter(
                "pip_store_checkpoints_total",
                "Completed checkpoints (seal + snapshot phases).",
            ),
            checkpoint_seal_seconds: r.histogram(
                "pip_store_checkpoint_seal_seconds",
                "Checkpoint phase 1 latency: seal old WAL generation and rotate.",
            ),
            checkpoint_snapshot_seconds: r.histogram(
                "pip_store_checkpoint_snapshot_seconds",
                "Checkpoint phase 2 latency: snapshot write and retirement.",
            ),
            checkpoint_bytes_total: r.counter(
                "pip_store_checkpoint_bytes_total",
                "Bytes of checkpoint snapshot files written.",
            ),
        }
    }
}

/// A durable catalog store bound to one data directory.
pub struct Store {
    dir: PathBuf,
    durability: AtomicU8,
    wal: Mutex<WalWriter>,
    /// Base of the retained WAL chain: the newest snapshot's generation
    /// and the catalog version it captured (`(0, 0)` when recovery found
    /// no snapshot — the chain reaches back to the empty catalog). The
    /// replication primary compares a follower's applied version against
    /// this to decide frame catch-up vs snapshot catch-up; see
    /// [`Store::oldest_retained`].
    retained: Mutex<(u64, u64)>,
    /// Replication epoch this data directory last served under (see
    /// [`Store::epoch`]). Persisted in the `epoch` file; `0` until a
    /// promotion ever minted one.
    epoch: AtomicU64,
    /// Optional fault-injection hook (see [`FaultHook`]).
    fault_hook: Mutex<Option<FaultHook>>,
    /// Metric handles, set once by [`Store::attach_metrics`].
    metrics: OnceLock<StoreMetrics>,
}

/// Path of the replication-epoch file.
fn epoch_path(dir: &Path) -> PathBuf {
    dir.join("epoch")
}

/// Read the persisted replication epoch, `0` when the file is absent.
fn read_epoch(dir: &Path) -> Result<u64> {
    match std::fs::read_to_string(epoch_path(dir)) {
        Ok(s) => s
            .trim()
            .parse::<u64>()
            .map_err(|_| PipError::corrupt(format!("epoch file holds non-numeric data: {s:?}"))),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(0),
        Err(e) => Err(e.into()),
    }
}

impl std::fmt::Debug for Store {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Store")
            .field("dir", &self.dir)
            .field("durability", &self.durability())
            .field("epoch", &self.epoch())
            .finish_non_exhaustive()
    }
}

/// Generations present in a data directory, from its file names.
fn scan_generations(dir: &Path) -> Result<(Vec<u64>, Vec<u64>)> {
    let mut snaps = Vec::new();
    let mut wals = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let name = entry?.file_name();
        let Some(name) = name.to_str() else { continue };
        let parse = |prefix: &str, suffix: &str| -> Option<u64> {
            name.strip_prefix(prefix)?
                .strip_suffix(suffix)?
                .parse()
                .ok()
        };
        if let Some(g) = parse("snapshot-", ".pipsnap") {
            snaps.push(g);
        }
        if let Some(g) = parse("wal-", ".pipwal") {
            wals.push(g);
        }
    }
    snaps.sort_unstable();
    wals.sort_unstable();
    Ok((snaps, wals))
}

/// Apply one replayed record to the reconstruction. Impossible applies
/// (insert into a missing table, …) mean the log and the catalog
/// semantics disagree — surfaced as corruption, never papered over.
fn apply(
    tables: &mut std::collections::BTreeMap<String, (CTable, Option<Json>)>,
    indexes: &mut std::collections::BTreeMap<String, (String, String)>,
    record: CatalogRecord,
) -> Result<()> {
    match record {
        CatalogRecord::CreateVariable { .. } => {}
        CatalogRecord::CreateTable { name, schema } => {
            if tables
                .insert(name.clone(), (CTable::empty(schema), None))
                .is_some()
            {
                return Err(PipError::corrupt(format!(
                    "WAL creates table '{name}' twice"
                )));
            }
        }
        CatalogRecord::RegisterTable { name, table } => {
            // A wholesale replacement may change the schema out from
            // under dependent indexes; their definitions die with the
            // old contents (mirrors the engine's register_table).
            indexes.retain(|_, (t, _)| t != &name);
            tables.insert(name, (table, None));
        }
        CatalogRecord::Insert { name, rows } => {
            let (table, stats) = tables.get_mut(&name).ok_or_else(|| {
                PipError::corrupt(format!("WAL inserts into unknown table '{name}'"))
            })?;
            *stats = None;
            for r in rows {
                table.push(r)?;
            }
        }
        CatalogRecord::Drop { name } => {
            if tables.remove(&name).is_none() {
                return Err(PipError::corrupt(format!(
                    "WAL drops unknown table '{name}'"
                )));
            }
            indexes.retain(|_, (table, _)| table != &name);
        }
        CatalogRecord::CreateIndex {
            name,
            table,
            column,
        } => {
            if !tables.contains_key(&table) {
                return Err(PipError::corrupt(format!(
                    "WAL creates index '{name}' on unknown table '{table}'"
                )));
            }
            if indexes.insert(name.clone(), (table, column)).is_some() {
                return Err(PipError::corrupt(format!(
                    "WAL creates index '{name}' twice"
                )));
            }
        }
        CatalogRecord::DropIndex { name } => {
            if indexes.remove(&name).is_none() {
                return Err(PipError::corrupt(format!(
                    "WAL drops unknown index '{name}'"
                )));
            }
        }
    }
    Ok(())
}

impl Store {
    /// Open (creating if needed) a data directory, run recovery, and
    /// return the store with the reconstructed catalog state.
    pub fn open(
        dir: impl Into<PathBuf>,
        registry: &DistributionRegistry,
    ) -> Result<(Store, Recovered)> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let (snap_gens, wal_gens) = scan_generations(&dir)?;

        // Newest verifiable snapshot wins; a corrupt one falls back to
        // the generation before it (whose WAL chain still reaches the
        // same state when the old files were not yet cleaned up).
        let mut base: Option<(u64, Snapshot)> = None;
        for &g in snap_gens.iter().rev() {
            match read_snapshot(&dir, g, registry) {
                Ok(s) => {
                    base = Some((g, s));
                    break;
                }
                Err(_) => continue,
            }
        }
        let (base_gen, base_snapshot) = match base {
            Some((g, s)) => (g, Some(s)),
            None => (0, None),
        };

        // A fallback (or WAL-only recovery) is only sound when the WAL
        // chain from the chosen base through the newest on-disk artifact
        // is complete — otherwise mutations folded into a now-unreadable
        // snapshot are simply gone, and "recovering" an empty or partial
        // catalog would masquerade as success. The one permissible gap is
        // the base generation's own missing WAL when nothing newer exists
        // (a checkpoint that crashed right after its snapshot rename).
        let newest_artifact = snap_gens
            .iter()
            .chain(wal_gens.iter())
            .copied()
            .max()
            .unwrap_or(base_gen)
            .max(base_gen);
        for g in base_gen..=newest_artifact {
            let missing_base_only = g == base_gen && newest_artifact == base_gen;
            if !wal_gens.contains(&g) && !missing_base_only {
                return Err(PipError::corrupt(format!(
                    "generation {newest_artifact} exists but the WAL chain from \
                     generation {base_gen} is incomplete (wal generation {g} is \
                     missing) — the newest snapshot is unreadable and older \
                     generations were already cleaned up"
                )));
            }
        }

        let mut tables: std::collections::BTreeMap<String, (CTable, Option<Json>)> =
            std::collections::BTreeMap::new();
        let mut indexes: std::collections::BTreeMap<String, (String, String)> =
            std::collections::BTreeMap::new();
        let mut version = 0;
        let mut max_var_id = 0;
        if let Some(snap) = base_snapshot {
            version = snap.version;
            max_var_id = snap.next_var_id.saturating_sub(1);
            for t in snap.tables {
                let table = std::sync::Arc::try_unwrap(t.table).unwrap_or_else(|a| (*a).clone());
                tables.insert(t.name, (table, t.stats));
            }
            for i in snap.indexes {
                indexes.insert(i.name, (i.table, i.column));
            }
        }
        // The retained WAL chain starts at the base snapshot: a follower
        // whose applied version is at or past the snapshot's can catch up
        // from frames alone.
        let retained = (base_gen, version);

        // Replay WAL generations ≥ the snapshot generation, in order. A
        // torn tail is only tolerable when no *later* generation holds
        // records — a hole in the middle of the record stream would
        // silently drop mutations that later records build on. (A torn
        // generation followed by *empty* later files is fine, and the
        // store produces exactly that: a checkpoint whose snapshot write
        // failed leaves an empty next-generation WAL behind while
        // appends — and a later crash — continue on the current one.)
        let replay_gens: Vec<u64> = wal_gens
            .iter()
            .copied()
            .filter(|&g| g >= base_gen)
            .chain(std::iter::once(base_gen))
            .collect::<std::collections::BTreeSet<u64>>()
            .into_iter()
            .collect();
        let replays: Vec<(u64, crate::wal::WalReplay)> = replay_gens
            .iter()
            .map(|&g| Ok((g, replay_wal(&dir, g, registry)?)))
            .collect::<Result<_>>()?;
        for (i, (g, r)) in replays.iter().enumerate() {
            let later_has_records = replays[i + 1..].iter().any(|(_, l)| !l.entries.is_empty());
            if r.torn_tail && later_has_records {
                return Err(PipError::corrupt(format!(
                    "wal generation {g} has a torn tail but later generations hold records"
                )));
            }
            if r.torn_tail && i + 1 != replays.len() {
                // Tolerated torn tail on a non-final generation: drop it
                // now, or the next recovery — by which time the active
                // generation may hold records — would refuse to start.
                // (The final generation is truncated by the reopen below.)
                std::fs::OpenOptions::new()
                    .write(true)
                    .open(wal_path(&dir, *g))?
                    .set_len(r.valid_bytes)?;
            }
        }
        let mut replayed = 0;
        let mut torn_tail = false;
        let mut active = None;
        for (g, r) in replays {
            torn_tail |= r.torn_tail;
            for entry in r.entries {
                version = version.max(entry.version);
                if let CatalogRecord::CreateVariable { id, .. } = &entry.record {
                    max_var_id = max_var_id.max(*id);
                }
                apply(&mut tables, &mut indexes, entry.record)?;
                replayed += 1;
            }
            active = Some((g, r.valid_bytes));
        }
        // Variables embedded in recovered cells (allocated during INSERT
        // evaluation, never through CREATE_VARIABLE) also pin the id
        // allocator floor.
        for (table, _) in tables.values() {
            for v in table.variables() {
                max_var_id = max_var_id.max(v.key.id.0);
            }
        }

        let (active_gen, valid_bytes) = active.expect("at least the base generation");
        let wal = if wal_path(&dir, active_gen).exists() {
            WalWriter::reopen(&dir, active_gen, valid_bytes)?
        } else {
            WalWriter::create(&dir, active_gen)?
        };

        let epoch = read_epoch(&dir)?;
        let store = Store {
            dir,
            durability: AtomicU8::new(Durability::Wal.as_u8()),
            wal: Mutex::new(wal),
            retained: Mutex::new(retained),
            epoch: AtomicU64::new(epoch),
            fault_hook: Mutex::new(None),
            metrics: OnceLock::new(),
        };
        let recovered = Recovered {
            tables: tables
                .into_iter()
                .map(|(name, (table, stats))| (name, table, stats))
                .collect(),
            indexes: indexes
                .into_iter()
                .map(|(name, (table, column))| (name, table, column))
                .collect(),
            version,
            max_var_id,
            snapshot_gen: base_gen,
            replayed,
            torn_tail,
        };
        Ok((store, recovered))
    }

    /// The data directory this store manages.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    pub fn durability(&self) -> Durability {
        Durability::from_u8(self.durability.load(Ordering::Acquire))
    }

    /// Switch the durability level. Transitions *out of* [`Durability::Off`]
    /// must be preceded by a checkpoint (unlogged mutations are only in
    /// memory) — [the engine's catalog] owns that protocol.
    pub fn set_durability(&self, d: Durability) {
        self.durability.store(d.as_u8(), Ordering::Release);
    }

    /// Append one mutation record; fsyncs per record at
    /// [`Durability::Sync`]. At [`Durability::Off`] nothing is written —
    /// no lock, no I/O, no serialization — but the record is still
    /// *validated* against the write contract (JSON nesting): a
    /// mutation the store could never snapshot must be refused even
    /// while unlogged, or the catalog would accept state that makes
    /// every later checkpoint — including the `OFF`→`ON` transition —
    /// fail for as long as it exists.
    pub fn append(&self, entry: &WalEntry) -> Result<()> {
        let durability = self.durability();
        if durability == Durability::Off {
            return crate::wal::validate_entry(entry);
        }
        let hook = self
            .fault_hook
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone();
        if let Some(h) = &hook {
            if h(FaultPoint::Append) {
                return Err(PipError::Io("injected WAL append failure".into()));
            }
        }
        let inject_sync = hook.map(|h| h(FaultPoint::Sync)).unwrap_or(false);
        let start = Instant::now();
        let mut wal = self.wal.lock().unwrap_or_else(|e| e.into_inner());
        let (bytes, fsync_nanos) =
            wal.append_faulty(entry, durability == Durability::Sync, inject_sync)?;
        if let Some(m) = self.metrics.get() {
            m.wal_append_seconds.observe_since(start);
            m.wal_appended_bytes_total.add(bytes);
            if fsync_nanos > 0 {
                m.wal_fsync_seconds.observe_nanos(fsync_nanos);
            }
        }
        Ok(())
    }

    /// Register this store's WAL/checkpoint metrics into `registry`.
    /// Idempotent; later calls are no-ops. The engine's `Database` calls
    /// this with its own registry right after recovery.
    pub fn attach_metrics(&self, registry: &pip_obs::Registry) {
        let _ = self.metrics.set(StoreMetrics::register(registry));
    }

    /// Install (or with `None`, remove) the fault-injection hook
    /// consulted by [`Store::append`]. Test-harness machinery — see
    /// [`FaultHook`].
    pub fn set_fault_hook(&self, hook: Option<FaultHook>) {
        *self.fault_hook.lock().unwrap_or_else(|e| e.into_inner()) = hook;
    }

    /// Replication epoch this data directory last served under. `0`
    /// means no promotion ever minted one; a follower adopts its
    /// primary's epoch, and `PROMOTE` mints `epoch + 1`. Persisted so a
    /// restarted deposed primary still refuses feeds from its past.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Raise the persisted replication epoch to `epoch` (monotonic:
    /// lower values are ignored). Temp-file + rename, so a crash leaves
    /// either the old or the new value, never a torn file.
    pub fn set_epoch(&self, epoch: u64) -> Result<()> {
        if epoch <= self.epoch.load(Ordering::Acquire) {
            return Ok(());
        }
        let tmp = self.dir.join("epoch.tmp");
        std::fs::write(&tmp, format!("{epoch}\n"))?;
        std::fs::rename(&tmp, epoch_path(&self.dir))?;
        self.epoch.fetch_max(epoch, Ordering::AcqRel);
        Ok(())
    }

    /// Bytes of records in the active WAL generation (the background
    /// checkpoint trigger).
    pub fn wal_bytes(&self) -> u64 {
        self.wal
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .record_bytes
    }

    /// Active generation number.
    pub fn generation(&self) -> u64 {
        self.wal.lock().unwrap_or_else(|e| e.into_inner()).gen
    }

    /// Base of the retained WAL chain as `(generation, version)`: the
    /// newest snapshot's generation and the catalog version it captured.
    /// A replication follower whose applied version is `>=` that version
    /// can catch up from WAL frames alone (starting at that generation's
    /// first frame); anything older needs a snapshot transfer — the
    /// frames that would bring it forward were deleted with the
    /// pre-snapshot generations.
    pub fn oldest_retained(&self) -> (u64, u64) {
        *self.retained.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The acknowledged end of the WAL chain: active generation plus the
    /// offset just past its last acknowledged frame. Frames at or beyond
    /// this position either do not exist yet or are unacknowledged
    /// in-flight writes a tailer must not ship.
    pub(crate) fn acknowledged_end(&self) -> (u64, u64) {
        let wal = self.wal.lock().unwrap_or_else(|e| e.into_inner());
        (wal.gen, crate::wal::HEADER_LEN + wal.record_bytes)
    }

    /// Current tail position of the WAL chain as a [`WalCursor`] — where
    /// a replication feed that is fully caught up would stand.
    pub fn wal_position(&self) -> crate::tail::WalCursor {
        let (gen, offset) = self.acknowledged_end();
        crate::tail::WalCursor { gen, offset }
    }

    /// Checkpoint phase 1: seal the current WAL generation and switch
    /// appends to a fresh one. Returns the new generation, whose
    /// snapshot the caller must then produce with
    /// [`Store::finish_checkpoint`].
    ///
    /// The caller must hold its mutation lock across this call and
    /// capture the snapshot state inside the same critical section, so
    /// that the snapshot reflects exactly the records in generations
    /// `< new_gen` — every later mutation lands in the new generation's
    /// WAL. The snapshot *write* needs no such exclusion: until it
    /// lands, recovery starts from the previous snapshot and replays the
    /// old generation's (synced, complete) WAL plus the new one.
    pub fn begin_checkpoint(&self) -> Result<u64> {
        let start = Instant::now();
        let mut wal = self.wal.lock().unwrap_or_else(|e| e.into_inner());
        // A generation must not be sealed with garbage from a failed
        // append at its tail (were the snapshot write then to fail or
        // crash, recovery would find a torn generation followed by one
        // holding acknowledged records, and refuse to start), nor with
        // zeroed preallocation padding (readers take a sealed file's
        // length as the end of its record stream). And everything the
        // snapshot will supersede must be durable before the old
        // generation becomes eligible for deletion. `seal` does all
        // three: clean tail, trim, sync.
        wal.seal()?;
        let new_gen = wal.gen + 1;
        // Rotation order is load-bearing: the new generation's (empty)
        // WAL is created *before* its snapshot can exist, so once the
        // snapshot rename makes recovery start at `new_gen`, the file
        // appends go to is guaranteed to be part of the replay chain.
        // If creation fails, the writer stays on the old generation —
        // still the recovery base — and no acknowledged append can land
        // in a generation recovery ignores.
        let new_writer = WalWriter::create(&self.dir, new_gen)?;
        *wal = new_writer;
        if let Some(m) = self.metrics.get() {
            m.checkpoint_seal_seconds.observe_since(start);
        }
        Ok(new_gen)
    }

    /// Checkpoint phase 2: write generation `gen`'s snapshot and retire
    /// the generations it supersedes. Runs without blocking appends. On
    /// failure the store keeps operating on `gen`'s WAL with the
    /// previous snapshot as recovery base — nothing was deleted.
    pub fn finish_checkpoint(&self, gen: u64, snapshot: &Snapshot) -> Result<()> {
        let start = Instant::now();
        write_snapshot(&self.dir, gen, snapshot)?;
        // The retained chain now starts here. Advance *before* deleting:
        // a tailer that consults the stale (smaller) base merely takes an
        // unnecessary snapshot path, while the reverse order would let it
        // commit to reading files about to disappear.
        *self.retained.lock().unwrap_or_else(|e| e.into_inner()) = (gen, snapshot.version);
        // Older generations are now redundant; removal is best-effort
        // (recovery ignores generations older than the newest snapshot).
        if let Ok((snaps, wals)) = scan_generations(&self.dir) {
            for g in snaps.into_iter().filter(|&g| g < gen) {
                let _ = std::fs::remove_file(snapshot_path(&self.dir, g));
            }
            for g in wals.into_iter().filter(|&g| g < gen) {
                let _ = std::fs::remove_file(wal_path(&self.dir, g));
            }
        }
        if let Some(m) = self.metrics.get() {
            m.checkpoint_snapshot_seconds.observe_since(start);
            m.checkpoints_total.inc();
            if let Ok(meta) = std::fs::metadata(snapshot_path(&self.dir, gen)) {
                m.checkpoint_bytes_total.add(meta.len());
            }
        }
        Ok(())
    }

    /// Write a checkpoint and switch to a fresh WAL generation — both
    /// phases back to back ([`Store::begin_checkpoint`] +
    /// [`Store::finish_checkpoint`]).
    ///
    /// The caller must guarantee `snapshot` reflects every record
    /// appended so far and that no append races this call (the engine
    /// holds its catalog write lock across it). Returns the new
    /// generation.
    pub fn checkpoint(&self, snapshot: &Snapshot) -> Result<u64> {
        let new_gen = self.begin_checkpoint()?;
        self.finish_checkpoint(new_gen, snapshot)?;
        Ok(new_gen)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::SnapshotTable;
    use pip_core::{DataType, Schema, Value};
    use pip_ctable::CRow;
    use pip_expr::Equation;
    use std::sync::Arc;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("pip-store-storetest-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn reg() -> DistributionRegistry {
        DistributionRegistry::with_builtins()
    }

    fn row(i: i64) -> CRow {
        CRow::unconditional(vec![Equation::val(Value::Int(i))])
    }

    fn entry(version: u64, record: CatalogRecord) -> WalEntry {
        WalEntry { version, record }
    }

    #[test]
    fn wal_only_recovery_reconstructs_tables() {
        let dir = tmp_dir("walonly");
        let registry = reg();
        {
            let (store, recovered) = Store::open(&dir, &registry).unwrap();
            assert_eq!(recovered.tables.len(), 0);
            store
                .append(&entry(
                    1,
                    CatalogRecord::CreateTable {
                        name: "t".into(),
                        schema: Schema::of(&[("a", DataType::Int)]),
                    },
                ))
                .unwrap();
            store
                .append(&entry(
                    2,
                    CatalogRecord::Insert {
                        name: "t".into(),
                        rows: vec![row(1), row(2)],
                    },
                ))
                .unwrap();
            store
                .append(&entry(
                    3,
                    CatalogRecord::CreateTable {
                        name: "gone".into(),
                        schema: Schema::empty(),
                    },
                ))
                .unwrap();
            store
                .append(&entry(
                    4,
                    CatalogRecord::Drop {
                        name: "gone".into(),
                    },
                ))
                .unwrap();
        }
        let (store, recovered) = Store::open(&dir, &registry).unwrap();
        assert_eq!(recovered.version, 4);
        assert_eq!(recovered.replayed, 4);
        assert_eq!(recovered.tables.len(), 1);
        let (name, table, stats) = &recovered.tables[0];
        assert_eq!(name, "t");
        assert_eq!(table.len(), 2);
        assert!(stats.is_none());
        assert!(!recovered.torn_tail);
        // Appends continue on the recovered log.
        store
            .append(&entry(
                5,
                CatalogRecord::Insert {
                    name: "t".into(),
                    rows: vec![row(3)],
                },
            ))
            .unwrap();
        drop(store);
        let (_, recovered) = Store::open(&dir, &registry).unwrap();
        assert_eq!(recovered.tables[0].1.len(), 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_compacts_and_rotates() {
        let dir = tmp_dir("ckpt");
        let registry = reg();
        let (store, _) = Store::open(&dir, &registry).unwrap();
        store
            .append(&entry(
                1,
                CatalogRecord::CreateTable {
                    name: "t".into(),
                    schema: Schema::of(&[("a", DataType::Int)]),
                },
            ))
            .unwrap();
        let mut t = CTable::empty(Schema::of(&[("a", DataType::Int)]));
        t.push(row(10)).unwrap();
        let gen = store
            .checkpoint(&Snapshot {
                version: 7,
                next_var_id: 42,
                tables: vec![SnapshotTable {
                    name: "t".into(),
                    table: Arc::new(t),
                    stats: None,
                }],
                indexes: vec![],
            })
            .unwrap();
        assert_eq!(gen, 1);
        assert_eq!(store.wal_bytes(), 0, "fresh generation after checkpoint");
        assert!(!wal_path(&dir, 0).exists(), "old generation cleaned up");
        store
            .append(&entry(
                8,
                CatalogRecord::Insert {
                    name: "t".into(),
                    rows: vec![row(11)],
                },
            ))
            .unwrap();
        drop(store);
        let (_, recovered) = Store::open(&dir, &registry).unwrap();
        assert_eq!(recovered.snapshot_gen, 1);
        assert_eq!(recovered.version, 8);
        assert_eq!(recovered.replayed, 1, "only the post-checkpoint suffix");
        assert_eq!(recovered.tables[0].1.len(), 2);
        assert_eq!(recovered.max_var_id, 41, "allocator watermark restored");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn appends_between_checkpoint_phases_land_in_the_new_generation() {
        let dir = tmp_dir("phases");
        let registry = reg();
        let (store, _) = Store::open(&dir, &registry).unwrap();
        let schema = Schema::of(&[("a", DataType::Int)]);
        store
            .append(&entry(
                1,
                CatalogRecord::CreateTable {
                    name: "t".into(),
                    schema: schema.clone(),
                },
            ))
            .unwrap();
        // Phase 1 under the (simulated) catalog lock: capture = empty
        // table t, rotate. Phase 2 runs with mutations flowing again.
        let gen = store.begin_checkpoint().unwrap();
        store
            .append(&entry(
                2,
                CatalogRecord::Insert {
                    name: "t".into(),
                    rows: vec![row(1)],
                },
            ))
            .unwrap();
        store
            .finish_checkpoint(
                gen,
                &Snapshot {
                    version: 1,
                    next_var_id: 1,
                    tables: vec![SnapshotTable {
                        name: "t".into(),
                        table: Arc::new(CTable::empty(schema)),
                        stats: None,
                    }],
                    indexes: vec![],
                },
            )
            .unwrap();
        assert!(!wal_path(&dir, 0).exists(), "old generation cleaned up");
        drop(store);
        let (_, recovered) = Store::open(&dir, &registry).unwrap();
        assert_eq!(recovered.snapshot_gen, 1);
        assert_eq!(recovered.replayed, 1, "the insert landed in wal-1");
        assert_eq!(recovered.tables[0].1.len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_between_checkpoint_phases_recovers_from_the_wal_chain() {
        let dir = tmp_dir("halfckpt");
        let registry = reg();
        {
            let (store, _) = Store::open(&dir, &registry).unwrap();
            store
                .append(&entry(
                    1,
                    CatalogRecord::CreateTable {
                        name: "t".into(),
                        schema: Schema::of(&[("a", DataType::Int)]),
                    },
                ))
                .unwrap();
            let _gen = store.begin_checkpoint().unwrap();
            // The snapshot write never happens (crash / write failure);
            // acknowledged appends meanwhile went to the new generation.
            store
                .append(&entry(
                    2,
                    CatalogRecord::Insert {
                        name: "t".into(),
                        rows: vec![row(7)],
                    },
                ))
                .unwrap();
        }
        let (_, recovered) = Store::open(&dir, &registry).unwrap();
        assert_eq!(recovered.snapshot_gen, 0, "previous base still rules");
        assert_eq!(recovered.replayed, 2, "both generations replayed");
        assert_eq!(recovered.tables[0].1.len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn durability_off_appends_nothing_but_still_validates() {
        let dir = tmp_dir("off");
        let registry = reg();
        let (store, _) = Store::open(&dir, &registry).unwrap();
        store.set_durability(Durability::Off);
        store
            .append(&entry(
                1,
                CatalogRecord::CreateTable {
                    name: "t".into(),
                    schema: Schema::empty(),
                },
            ))
            .unwrap();
        assert_eq!(store.wal_bytes(), 0);
        assert_eq!(store.durability(), Durability::Off);
        // Unlogged mutations still honour the write contract: a record
        // the store could never log or snapshot is refused up front —
        // otherwise the OFF→ON checkpoint would fail for as long as the
        // offending state existed.
        let mut eq = pip_expr::Equation::val(Value::Float(1.0));
        for _ in 0..80 {
            eq = eq + pip_expr::Equation::val(Value::Float(1.0));
        }
        assert!(store
            .append(&entry(
                2,
                CatalogRecord::Insert {
                    name: "t".into(),
                    rows: vec![CRow::unconditional(vec![eq])],
                },
            ))
            .is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_snapshot_falls_back_to_previous_generation() {
        let dir = tmp_dir("fallback");
        let registry = reg();
        let (store, _) = Store::open(&dir, &registry).unwrap();
        store
            .append(&entry(
                1,
                CatalogRecord::CreateTable {
                    name: "t".into(),
                    schema: Schema::of(&[("a", DataType::Int)]),
                },
            ))
            .unwrap();
        store
            .append(&entry(
                2,
                CatalogRecord::Insert {
                    name: "t".into(),
                    rows: vec![row(1)],
                },
            ))
            .unwrap();
        drop(store);
        // Forge a corrupt generation-1 snapshot *with* its WAL present
        // (a checkpoint whose cleanup never ran, then bit rot): the
        // chain from generation 0 is complete, so recovery falls back
        // and rebuilds the same state from wal-0 + wal-1.
        std::fs::write(snapshot_path(&dir, 1), b"PIPSNAP1garbage").unwrap();
        WalWriter::create(&dir, 1).unwrap();
        let (_, recovered) = Store::open(&dir, &registry).unwrap();
        assert_eq!(recovered.snapshot_gen, 0);
        assert_eq!(recovered.tables.len(), 1);
        assert_eq!(recovered.tables[0].1.len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_tolerated_and_truncated_when_later_generations_are_empty() {
        // A failed checkpoint leaves an empty next-generation WAL while
        // appends continue on the current one; a later crash then tears
        // the *non-final* generation. Recovery must accept (nothing
        // after the tear exists) and truncate the tear away so the next
        // recovery — active generation now holding records — accepts too.
        let dir = tmp_dir("stray");
        let registry = reg();
        {
            let (store, _) = Store::open(&dir, &registry).unwrap();
            store
                .append(&entry(
                    1,
                    CatalogRecord::CreateTable {
                        name: "t".into(),
                        schema: Schema::of(&[("a", DataType::Int)]),
                    },
                ))
                .unwrap();
        }
        WalWriter::create(&dir, 1).unwrap(); // the stray empty generation
        let wal0 = wal_path(&dir, 0);
        // The tear sits at the write cursor — the end of the acknowledged
        // frames, before any preallocation padding.
        let clean = replay_wal(&dir, 0, &registry).unwrap();
        let mut bytes = std::fs::read(&wal0).unwrap();
        bytes.truncate(clean.valid_bytes as usize);
        bytes.extend_from_slice(&[0x13, 0x37, 0x00]);
        std::fs::write(&wal0, &bytes).unwrap();

        let (store, recovered) = Store::open(&dir, &registry).unwrap();
        assert!(recovered.torn_tail);
        assert_eq!(recovered.tables.len(), 1);
        // New records land in the active (stray) generation...
        store
            .append(&entry(
                2,
                CatalogRecord::Insert {
                    name: "t".into(),
                    rows: vec![row(5)],
                },
            ))
            .unwrap();
        drop(store);
        // ...and the truncated generation 0 no longer reads as torn, so
        // the now-populated later generation is not refused.
        let (_, recovered) = Store::open(&dir, &registry).unwrap();
        assert!(!recovered.torn_tail);
        assert_eq!(recovered.tables[0].1.len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_snapshot_without_a_wal_chain_is_a_hard_error() {
        let dir = tmp_dir("nochain");
        let registry = reg();
        {
            let (store, _) = Store::open(&dir, &registry).unwrap();
            store
                .append(&entry(
                    1,
                    CatalogRecord::CreateTable {
                        name: "t".into(),
                        schema: Schema::empty(),
                    },
                ))
                .unwrap();
        }
        // The steady state after a checkpoint is one snapshot + one WAL;
        // if that snapshot rots, no older generation can reconstruct the
        // catalog. Recovery must refuse — silently "recovering" an empty
        // catalog would be data loss dressed up as success.
        std::fs::write(snapshot_path(&dir, 5), b"PIPSNAP1garbage").unwrap();
        assert!(matches!(
            Store::open(&dir, &registry),
            Err(PipError::Corrupt(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn index_definitions_survive_wal_replay_and_checkpoint() {
        let dir = tmp_dir("idxdefs");
        let registry = reg();
        let schema = Schema::of(&[("a", DataType::Int)]);
        {
            let (store, _) = Store::open(&dir, &registry).unwrap();
            store
                .append(&entry(
                    1,
                    CatalogRecord::CreateTable {
                        name: "t".into(),
                        schema: schema.clone(),
                    },
                ))
                .unwrap();
            store
                .append(&entry(
                    2,
                    CatalogRecord::CreateIndex {
                        name: "idx_a".into(),
                        table: "t".into(),
                        column: "a".into(),
                    },
                ))
                .unwrap();
            store
                .append(&entry(
                    3,
                    CatalogRecord::CreateIndex {
                        name: "idx_gone".into(),
                        table: "t".into(),
                        column: "a".into(),
                    },
                ))
                .unwrap();
            store
                .append(&entry(
                    4,
                    CatalogRecord::DropIndex {
                        name: "idx_gone".into(),
                    },
                ))
                .unwrap();
        }
        // WAL-only recovery replays the definitions.
        let (store, recovered) = Store::open(&dir, &registry).unwrap();
        assert_eq!(
            recovered.indexes,
            vec![("idx_a".into(), "t".into(), "a".into())]
        );
        // ...and a checkpoint carries them in the snapshot once the old
        // WAL generations are gone.
        store
            .checkpoint(&Snapshot {
                version: 4,
                next_var_id: 1,
                tables: vec![SnapshotTable {
                    name: "t".into(),
                    table: Arc::new(CTable::empty(schema)),
                    stats: None,
                }],
                indexes: vec![crate::snapshot::SnapshotIndex {
                    name: "idx_a".into(),
                    table: "t".into(),
                    column: "a".into(),
                }],
            })
            .unwrap();
        drop(store);
        let (store, recovered) = Store::open(&dir, &registry).unwrap();
        assert_eq!(recovered.snapshot_gen, 1);
        assert_eq!(
            recovered.indexes,
            vec![("idx_a".into(), "t".into(), "a".into())]
        );
        // Dropping the table takes its dependent definitions with it.
        store
            .append(&entry(5, CatalogRecord::Drop { name: "t".into() }))
            .unwrap();
        drop(store);
        let (_, recovered) = Store::open(&dir, &registry).unwrap();
        assert!(recovered.indexes.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn oversized_records_are_rejected_before_they_reach_the_log() {
        // The append-side guard mirrors the replay-side acceptance
        // bound exactly: anything the reader would classify as a torn
        // length field must fail the mutation instead of being written.
        use crate::wal::frame_too_large;
        assert!(!frame_too_large(0));
        assert!(!frame_too_large(1 << 30));
        assert!(frame_too_large((1 << 30) + 1));
        assert!(frame_too_large(u32::MAX as usize + 1));
    }
}
