//! JSON codecs for the catalog payloads the store persists.
//!
//! Everything the engine keeps in memory — schemas, deterministic and
//! symbolic cells ([`Equation`] trees over [`RandomVar`]s), row
//! conditions, whole c-tables — encodes to a [`serde_json::Value`] tree
//! (written through the shim `serde::Serialize` writer) and decodes back
//! **bit-identically**:
//!
//! * finite `f64`s use Rust's shortest-round-trip `Display` form, which
//!   `str::parse::<f64>` maps back to the exact same bits;
//! * non-finite `f64`s (and any NaN payload) are stored as an explicit
//!   `"f64:<hex bits>"` string, so even NaN bit patterns survive;
//! * random variables round-trip their `(id, subscript)` identity and
//!   parameters exactly — the sampling RNG seeds on the id, so identity
//!   preservation is what makes recovered query results bit-identical;
//! * distribution classes are stored by name and re-resolved against the
//!   recovering database's [`DistributionRegistry`].

use std::sync::Arc;

use pip_core::{Column, DataType, PipError, Result, Schema, Value};
use pip_ctable::{CRow, CTable};
use pip_dist::DistributionRegistry;
use pip_expr::{Atom, BinOp, CmpOp, Conjunction, Equation, RandomVar, UnOp, VarId, VarKey};
use serde_json::Value as Json;

fn corrupt(what: &str, v: &Json) -> PipError {
    let mut shown = String::new();
    serde::Serialize::serialize_json(v, &mut shown);
    // Truncate on a char boundary: payload text can be any UTF-8, and a
    // panic here would turn a reportable Corrupt error into an abort.
    let mut cut = 120.min(shown.len());
    while !shown.is_char_boundary(cut) {
        cut -= 1;
    }
    shown.truncate(cut);
    PipError::Corrupt(format!("expected {what}, found {shown}"))
}

// ---------------------------------------------------------------------
// f64
// ---------------------------------------------------------------------

/// Encode one `f64` with exact bit fidelity.
pub fn encode_f64(x: f64) -> Json {
    if x.is_finite() {
        Json::Number(x.to_string())
    } else {
        Json::String(format!("f64:{:016x}", x.to_bits()))
    }
}

/// Decode [`encode_f64`]'s output.
pub fn decode_f64(v: &Json) -> Result<f64> {
    match v {
        Json::Number(_) => v.as_f64().ok_or_else(|| corrupt("f64", v)),
        Json::String(s) => {
            let hex = s
                .strip_prefix("f64:")
                .ok_or_else(|| corrupt("f64 bits string", v))?;
            let bits = u64::from_str_radix(hex, 16).map_err(|_| corrupt("f64 bits string", v))?;
            Ok(f64::from_bits(bits))
        }
        _ => Err(corrupt("f64", v)),
    }
}

// ---------------------------------------------------------------------
// Deterministic values, schemas
// ---------------------------------------------------------------------

/// Encode a deterministic [`Value`].
///
/// `Int` is a bare JSON integer; `Float` is wrapped (`{"f": …}`) so the
/// two numeric types — which compare equal but are distinct storage
/// classes — never alias in the stored form.
pub fn encode_value(v: &Value) -> Json {
    match v {
        Value::Null => Json::Null,
        Value::Bool(b) => Json::Bool(*b),
        Value::Int(i) => Json::Number(i.to_string()),
        Value::Float(f) => Json::Object(vec![("f".into(), encode_f64(*f))]),
        Value::Str(s) => Json::String(s.to_string()),
    }
}

/// Decode [`encode_value`]'s output.
pub fn decode_value(v: &Json) -> Result<Value> {
    match v {
        Json::Null => Ok(Value::Null),
        Json::Bool(b) => Ok(Value::Bool(*b)),
        Json::Number(_) => v.as_i64().map(Value::Int).ok_or_else(|| corrupt("i64", v)),
        Json::String(s) => Ok(Value::str(s)),
        Json::Object(_) => {
            let f = v.get("f").ok_or_else(|| corrupt("value", v))?;
            Ok(Value::Float(decode_f64(f)?))
        }
        _ => Err(corrupt("value", v)),
    }
}

/// Column-type token used by schemas and the engine's persisted
/// statistics (matches [`DataType`]'s display form).
pub fn dtype_name(t: DataType) -> &'static str {
    match t {
        DataType::Bool => "BOOL",
        DataType::Int => "INT",
        DataType::Float => "FLOAT",
        DataType::Str => "TEXT",
        DataType::Symbolic => "SYMBOLIC",
    }
}

/// Inverse of [`dtype_name`].
pub fn dtype_from(name: &str) -> Option<DataType> {
    Some(match name {
        "BOOL" => DataType::Bool,
        "INT" => DataType::Int,
        "FLOAT" => DataType::Float,
        "TEXT" => DataType::Str,
        "SYMBOLIC" => DataType::Symbolic,
        _ => return None,
    })
}

/// Encode a [`Schema`] as `[[name, type], …]`.
pub fn encode_schema(s: &Schema) -> Json {
    Json::Array(
        s.columns()
            .iter()
            .map(|c| {
                Json::Array(vec![
                    Json::String(c.name.clone()),
                    Json::String(dtype_name(c.dtype).into()),
                ])
            })
            .collect(),
    )
}

/// Decode [`encode_schema`]'s output.
pub fn decode_schema(v: &Json) -> Result<Schema> {
    let cols = v.as_array().ok_or_else(|| corrupt("schema array", v))?;
    let mut out = Vec::with_capacity(cols.len());
    for c in cols {
        let pair = c.as_array().filter(|p| p.len() == 2);
        let (name, ty) = match pair {
            Some(p) => (p[0].as_str(), p[1].as_str()),
            None => (None, None),
        };
        let (name, ty) = match (name, ty) {
            (Some(n), Some(t)) => (n, t),
            _ => return Err(corrupt("schema column pair", c)),
        };
        let dtype = dtype_from(ty).ok_or_else(|| corrupt("column type", c))?;
        out.push(Column::new(name, dtype));
    }
    Schema::new(out)
}

// ---------------------------------------------------------------------
// Random variables, equations, conditions
// ---------------------------------------------------------------------

fn encode_var(v: &RandomVar) -> Json {
    Json::Object(vec![
        ("i".into(), Json::Number(v.key.id.0.to_string())),
        ("s".into(), Json::Number(v.key.subscript.to_string())),
        ("d".into(), Json::String(v.class.name().into())),
        (
            "p".into(),
            Json::Array(v.params.iter().map(|&p| encode_f64(p)).collect()),
        ),
    ])
}

fn decode_var(v: &Json, registry: &DistributionRegistry) -> Result<RandomVar> {
    let id = v
        .get("i")
        .and_then(Json::as_u64)
        .ok_or_else(|| corrupt("variable id", v))?;
    let subscript = v
        .get("s")
        .and_then(Json::as_u64)
        .ok_or_else(|| corrupt("variable subscript", v))? as u32;
    let class_name = v
        .get("d")
        .and_then(Json::as_str)
        .ok_or_else(|| corrupt("distribution name", v))?;
    let params = v
        .get("p")
        .and_then(Json::as_array)
        .ok_or_else(|| corrupt("variable params", v))?
        .iter()
        .map(decode_f64)
        .collect::<Result<Vec<f64>>>()?;
    let class = registry.get(class_name)?;
    Ok(RandomVar {
        key: VarKey {
            id: VarId(id),
            subscript,
        },
        class,
        params: Arc::from(params),
    })
}

fn binop_symbol(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
    }
}

/// Encode an [`Equation`] tree.
pub fn encode_equation(e: &Equation) -> Json {
    match e {
        Equation::Const(v) => Json::Object(vec![("c".into(), encode_value(v))]),
        Equation::Var(v) => Json::Object(vec![("v".into(), encode_var(v))]),
        Equation::Binary { op, left, right } => Json::Object(vec![(
            "b".into(),
            Json::Array(vec![
                Json::String(binop_symbol(*op).into()),
                encode_equation(left),
                encode_equation(right),
            ]),
        )]),
        Equation::Unary {
            op: UnOp::Neg,
            expr,
        } => Json::Object(vec![("n".into(), encode_equation(expr))]),
    }
}

/// Decode [`encode_equation`]'s output.
pub fn decode_equation(v: &Json, registry: &DistributionRegistry) -> Result<Equation> {
    if let Some(c) = v.get("c") {
        return Ok(Equation::Const(decode_value(c)?));
    }
    if let Some(var) = v.get("v") {
        return Ok(Equation::Var(decode_var(var, registry)?));
    }
    if let Some(b) = v.get("b") {
        let parts = b.as_array().filter(|p| p.len() == 3);
        let parts = parts.ok_or_else(|| corrupt("binary equation", v))?;
        let op = match parts[0].as_str() {
            Some("+") => BinOp::Add,
            Some("-") => BinOp::Sub,
            Some("*") => BinOp::Mul,
            Some("/") => BinOp::Div,
            _ => return Err(corrupt("binary operator", &parts[0])),
        };
        return Ok(Equation::binary(
            op,
            decode_equation(&parts[1], registry)?,
            decode_equation(&parts[2], registry)?,
        ));
    }
    if let Some(n) = v.get("n") {
        return Ok(decode_equation(n, registry)?.neg());
    }
    Err(corrupt("equation", v))
}

fn cmp_symbol(op: CmpOp) -> &'static str {
    match op {
        CmpOp::Lt => "<",
        CmpOp::Le => "<=",
        CmpOp::Gt => ">",
        CmpOp::Ge => ">=",
        CmpOp::Eq => "=",
        CmpOp::Ne => "<>",
    }
}

fn encode_atom(a: &Atom) -> Json {
    Json::Array(vec![
        encode_equation(&a.left),
        Json::String(cmp_symbol(a.op).into()),
        encode_equation(&a.right),
    ])
}

fn decode_atom(v: &Json, registry: &DistributionRegistry) -> Result<Atom> {
    let parts = v.as_array().filter(|p| p.len() == 3);
    let parts = parts.ok_or_else(|| corrupt("atom triple", v))?;
    let op = match parts[1].as_str() {
        Some("<") => CmpOp::Lt,
        Some("<=") => CmpOp::Le,
        Some(">") => CmpOp::Gt,
        Some(">=") => CmpOp::Ge,
        Some("=") => CmpOp::Eq,
        Some("<>") => CmpOp::Ne,
        _ => return Err(corrupt("comparison operator", &parts[1])),
    };
    Ok(Atom {
        left: decode_equation(&parts[0], registry)?,
        op,
        right: decode_equation(&parts[2], registry)?,
    })
}

/// Encode a [`Conjunction`] as its atom list.
pub fn encode_condition(c: &Conjunction) -> Json {
    Json::Array(c.atoms().iter().map(encode_atom).collect())
}

/// Decode [`encode_condition`]'s output.
pub fn decode_condition(v: &Json, registry: &DistributionRegistry) -> Result<Conjunction> {
    let atoms = v.as_array().ok_or_else(|| corrupt("condition array", v))?;
    Ok(Conjunction::of(
        atoms
            .iter()
            .map(|a| decode_atom(a, registry))
            .collect::<Result<Vec<Atom>>>()?,
    ))
}

// ---------------------------------------------------------------------
// Rows and tables
// ---------------------------------------------------------------------

/// Encode a [`CRow`] (cells + condition).
pub fn encode_row(r: &CRow) -> Json {
    Json::Object(vec![
        (
            "c".into(),
            Json::Array(r.cells.iter().map(encode_equation).collect()),
        ),
        ("w".into(), encode_condition(&r.condition)),
    ])
}

/// Decode [`encode_row`]'s output.
pub fn decode_row(v: &Json, registry: &DistributionRegistry) -> Result<CRow> {
    let cells = v
        .get("c")
        .and_then(Json::as_array)
        .ok_or_else(|| corrupt("row cells", v))?
        .iter()
        .map(|c| decode_equation(c, registry))
        .collect::<Result<Vec<Equation>>>()?;
    let condition = match v.get("w") {
        Some(w) => decode_condition(w, registry)?,
        None => Conjunction::top(),
    };
    Ok(CRow::new(cells, condition))
}

/// Encode a whole [`CTable`] (schema + rows in storage order — row order
/// is part of the bit-identity contract, sampling sites are row-indexed).
pub fn encode_table(t: &CTable) -> Json {
    Json::Object(vec![
        ("s".into(), encode_schema(t.schema())),
        (
            "r".into(),
            Json::Array(t.rows().iter().map(encode_row).collect()),
        ),
    ])
}

/// Decode [`encode_table`]'s output.
pub fn decode_table(v: &Json, registry: &DistributionRegistry) -> Result<CTable> {
    let schema = decode_schema(v.get("s").ok_or_else(|| corrupt("table schema", v))?)?;
    let rows = v
        .get("r")
        .and_then(Json::as_array)
        .ok_or_else(|| corrupt("table rows", v))?
        .iter()
        .map(|r| decode_row(r, registry))
        .collect::<Result<Vec<CRow>>>()?;
    CTable::new(schema, rows)
}

// ---------------------------------------------------------------------
// WAL records
// ---------------------------------------------------------------------

/// One logical catalog mutation, as logged in the write-ahead log.
#[derive(Debug, Clone, PartialEq)]
pub enum CatalogRecord {
    /// `CREATE_VARIABLE` allocated id `id`; replay re-reserves the id so
    /// fresh post-recovery variables can never collide with stored ones.
    CreateVariable {
        id: u64,
        class: String,
        params: Vec<f64>,
    },
    CreateTable {
        name: String,
        schema: Schema,
    },
    /// Register (or replace) a table wholesale, contents included.
    RegisterTable {
        name: String,
        table: CTable,
    },
    Insert {
        name: String,
        rows: Vec<CRow>,
    },
    Drop {
        name: String,
    },
    /// `CREATE INDEX name ON table (column)` — the definition only;
    /// index *contents* are rebuilt from the table on recovery.
    CreateIndex {
        name: String,
        table: String,
        column: String,
    },
    /// `DROP INDEX name`.
    DropIndex {
        name: String,
    },
}

/// A WAL entry: the mutation plus the catalog version *after* it —
/// recovery restores the version counter from the highest stamp seen, so
/// version-keyed caches can never confuse pre- and post-restart state.
#[derive(Debug, Clone, PartialEq)]
pub struct WalEntry {
    pub version: u64,
    pub record: CatalogRecord,
}

/// Encode one [`WalEntry`] to its JSON payload.
pub fn encode_entry(e: &WalEntry) -> Json {
    let op = match &e.record {
        CatalogRecord::CreateVariable { id, class, params } => Json::Object(vec![(
            "create_variable".into(),
            Json::Object(vec![
                ("id".into(), Json::Number(id.to_string())),
                ("class".into(), Json::String(class.clone())),
                (
                    "params".into(),
                    Json::Array(params.iter().map(|&p| encode_f64(p)).collect()),
                ),
            ]),
        )]),
        CatalogRecord::CreateTable { name, schema } => Json::Object(vec![(
            "create_table".into(),
            Json::Object(vec![
                ("name".into(), Json::String(name.clone())),
                ("schema".into(), encode_schema(schema)),
            ]),
        )]),
        CatalogRecord::RegisterTable { name, table } => Json::Object(vec![(
            "register_table".into(),
            Json::Object(vec![
                ("name".into(), Json::String(name.clone())),
                ("table".into(), encode_table(table)),
            ]),
        )]),
        CatalogRecord::Insert { name, rows } => Json::Object(vec![(
            "insert".into(),
            Json::Object(vec![
                ("name".into(), Json::String(name.clone())),
                (
                    "rows".into(),
                    Json::Array(rows.iter().map(encode_row).collect()),
                ),
            ]),
        )]),
        CatalogRecord::Drop { name } => Json::Object(vec![(
            "drop".into(),
            Json::Object(vec![("name".into(), Json::String(name.clone()))]),
        )]),
        CatalogRecord::CreateIndex {
            name,
            table,
            column,
        } => Json::Object(vec![(
            "create_index".into(),
            Json::Object(vec![
                ("name".into(), Json::String(name.clone())),
                ("table".into(), Json::String(table.clone())),
                ("column".into(), Json::String(column.clone())),
            ]),
        )]),
        CatalogRecord::DropIndex { name } => Json::Object(vec![(
            "drop_index".into(),
            Json::Object(vec![("name".into(), Json::String(name.clone()))]),
        )]),
    };
    Json::Object(vec![
        ("v".into(), Json::Number(e.version.to_string())),
        ("op".into(), op),
    ])
}

/// Decode [`encode_entry`]'s output.
pub fn decode_entry(v: &Json, registry: &DistributionRegistry) -> Result<WalEntry> {
    let version = v
        .get("v")
        .and_then(Json::as_u64)
        .ok_or_else(|| corrupt("entry version", v))?;
    let op = v.get("op").ok_or_else(|| corrupt("entry op", v))?;
    let name_of = |body: &Json| -> Result<String> {
        body.get("name")
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| corrupt("table name", body))
    };
    let record = if let Some(body) = op.get("create_variable") {
        CatalogRecord::CreateVariable {
            id: body
                .get("id")
                .and_then(Json::as_u64)
                .ok_or_else(|| corrupt("variable id", body))?,
            class: body
                .get("class")
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| corrupt("class name", body))?,
            params: body
                .get("params")
                .and_then(Json::as_array)
                .ok_or_else(|| corrupt("params", body))?
                .iter()
                .map(decode_f64)
                .collect::<Result<Vec<f64>>>()?,
        }
    } else if let Some(body) = op.get("create_table") {
        CatalogRecord::CreateTable {
            name: name_of(body)?,
            schema: decode_schema(body.get("schema").ok_or_else(|| corrupt("schema", body))?)?,
        }
    } else if let Some(body) = op.get("register_table") {
        CatalogRecord::RegisterTable {
            name: name_of(body)?,
            table: decode_table(
                body.get("table").ok_or_else(|| corrupt("table", body))?,
                registry,
            )?,
        }
    } else if let Some(body) = op.get("insert") {
        CatalogRecord::Insert {
            name: name_of(body)?,
            rows: body
                .get("rows")
                .and_then(Json::as_array)
                .ok_or_else(|| corrupt("rows", body))?
                .iter()
                .map(|r| decode_row(r, registry))
                .collect::<Result<Vec<CRow>>>()?,
        }
    } else if let Some(body) = op.get("drop") {
        CatalogRecord::Drop {
            name: name_of(body)?,
        }
    } else if let Some(body) = op.get("create_index") {
        let field = |key: &str| -> Result<String> {
            body.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| corrupt("index field", body))
        };
        CatalogRecord::CreateIndex {
            name: field("name")?,
            table: field("table")?,
            column: field("column")?,
        }
    } else if let Some(body) = op.get("drop_index") {
        CatalogRecord::DropIndex {
            name: name_of(body)?,
        }
    } else {
        return Err(corrupt("catalog record", op));
    };
    Ok(WalEntry { version, record })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pip_dist::prelude::builtin;
    use pip_expr::atoms;

    fn registry() -> DistributionRegistry {
        DistributionRegistry::with_builtins()
    }

    fn var(mu: f64, sigma: f64) -> RandomVar {
        RandomVar::create(builtin::normal(), &[mu, sigma]).unwrap()
    }

    #[test]
    fn f64_round_trips_every_class_of_value() {
        for x in [
            0.0,
            -0.0,
            1.5,
            0.1,
            f64::MIN_POSITIVE,
            f64::MAX,
            -f64::MAX,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NAN,
            f64::from_bits(0x7ff0000000000001), // signalling NaN payload
            std::f64::consts::PI,
        ] {
            let back = decode_f64(&encode_f64(x)).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x}");
        }
        // -0.0 keeps its sign bit through the decimal form.
        assert_eq!(
            decode_f64(&encode_f64(-0.0)).unwrap().to_bits(),
            (-0.0f64).to_bits()
        );
    }

    #[test]
    fn value_round_trip_distinguishes_int_and_float() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Int(i64::MAX),
            Value::Int(-7),
            Value::Float(7.0),
            Value::Float(f64::NAN),
            Value::str("he said \"hi\"\n"),
        ] {
            let back = decode_value(&encode_value(&v)).unwrap();
            match (&v, &back) {
                (Value::Float(a), Value::Float(b)) => assert_eq!(a.to_bits(), b.to_bits()),
                _ => assert_eq!(v, back),
            }
            // Storage class must round-trip, not just SQL equality.
            assert_eq!(std::mem::discriminant(&v), std::mem::discriminant(&back));
        }
    }

    #[test]
    fn schema_round_trip() {
        let s = Schema::of(&[
            ("a", DataType::Int),
            ("b", DataType::Symbolic),
            ("c", DataType::Str),
            ("d", DataType::Bool),
            ("e", DataType::Float),
        ]);
        assert_eq!(decode_schema(&encode_schema(&s)).unwrap(), s);
        assert_eq!(
            decode_schema(&encode_schema(&Schema::empty())).unwrap(),
            Schema::empty()
        );
    }

    #[test]
    fn equation_round_trip_preserves_variable_identity() {
        let reg = registry();
        let y = var(5.0, 2.0);
        let z = y.component(3);
        let eq = (Equation::from(y.clone()) * 2.0 + Equation::from(z.clone())).neg()
            / Equation::val(Value::str("unit-price-note"));
        let back = decode_equation(&encode_equation(&eq), &reg).unwrap();
        assert_eq!(back, eq);
        let vars = back.variables();
        assert_eq!(vars.len(), 2);
        let v = vars.iter().find(|v| v.key == y.key).unwrap();
        assert_eq!(v.class.name(), "Normal");
        assert_eq!(&v.params[..], &[5.0, 2.0]);
        assert!(vars.iter().any(|v| v.key.subscript == 3));
    }

    #[test]
    fn unknown_distribution_fails_cleanly() {
        let reg = registry();
        let mut bad = encode_equation(&Equation::from(var(0.0, 1.0)));
        if let Json::Object(fields) = &mut bad {
            if let Json::Object(vf) = &mut fields[0].1 {
                vf.retain(|(k, _)| k != "d");
                vf.push(("d".into(), Json::String("NoSuchClass".into())));
            }
        }
        assert!(matches!(
            decode_equation(&bad, &reg),
            Err(PipError::NotFound(_))
        ));
    }

    #[test]
    fn table_and_entry_round_trip() {
        let reg = registry();
        let y = var(100.0, 10.0);
        let schema = Schema::of(&[("name", DataType::Str), ("price", DataType::Symbolic)]);
        let mut t = CTable::empty(schema.clone());
        t.push(CRow::new(
            vec![
                Equation::val(Value::str("Joe")),
                Equation::from(y.clone()) * 1.1,
            ],
            Conjunction::single(atoms::gt(Equation::from(y.clone()), 90.0)),
        ))
        .unwrap();
        t.push(CRow::unconditional(vec![
            Equation::val(Value::str("Bob")),
            Equation::val(50.0),
        ]))
        .unwrap();
        assert_eq!(decode_table(&encode_table(&t), &reg).unwrap(), t);

        for record in [
            CatalogRecord::CreateVariable {
                id: y.key.id.0,
                class: "Normal".into(),
                params: vec![100.0, 10.0],
            },
            CatalogRecord::CreateTable {
                name: "orders".into(),
                schema: schema.clone(),
            },
            CatalogRecord::RegisterTable {
                name: "orders".into(),
                table: t.clone(),
            },
            CatalogRecord::Insert {
                name: "orders".into(),
                rows: t.rows().to_vec(),
            },
            CatalogRecord::Drop {
                name: "orders".into(),
            },
            CatalogRecord::CreateIndex {
                name: "orders_price".into(),
                table: "orders".into(),
                column: "price".into(),
            },
            CatalogRecord::DropIndex {
                name: "orders_price".into(),
            },
        ] {
            let entry = WalEntry {
                version: 42,
                record,
            };
            let text = serde_json::to_string(&encode_entry(&entry)).unwrap();
            let parsed = serde_json::from_str(&text).unwrap();
            assert_eq!(decode_entry(&parsed, &reg).unwrap(), entry);
        }
    }

    #[test]
    fn garbage_payloads_are_corrupt_not_panics() {
        let reg = registry();
        for bad in ["null", "7", "{\"op\":{}}", "{\"v\":1,\"op\":{\"boom\":{}}}"] {
            let v = serde_json::from_str(bad).unwrap();
            assert!(matches!(decode_entry(&v, &reg), Err(PipError::Corrupt(_))));
        }
    }
}
