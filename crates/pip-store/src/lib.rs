//! # pip-store
//!
//! Durable catalog storage for the PIP probabilistic database: a
//! write-ahead log of **logical catalog mutations** plus periodic
//! **checkpoint snapshots**, organised as generations in one data
//! directory, with crash recovery that reconstructs the catalog
//! **bit-identically** — schemas, deterministic cells, symbolic
//! equations (random-variable identity, distribution class, exact `f64`
//! parameter bits) and row order all round-trip exactly, so a recovered
//! database answers queries with the same sampled numbers as the
//! original (the property `tests/durability.rs` at the workspace root
//! proves over random catalogs, and the pip-server kill/recover test
//! proves over a real process boundary).
//!
//! * [`codec`] — JSON codecs for catalog payloads, written through the
//!   shim `serde`/`serde_json` serializer and read back through its
//!   parser;
//! * [`wal`] — length+CRC32 framed append-only log with torn-tail
//!   truncation on replay;
//! * [`snapshot`] — whole-catalog checkpoint files (temp + rename), plus
//!   the byte codecs replication uses to ship a snapshot over the wire;
//! * [`store`] — the data-directory manager: generations, the recovery
//!   protocol, [`Durability`] levels (`OFF` / `WAL` / `SYNC`);
//! * [`tail`] — reading acknowledged frames back out of a live directory
//!   past a [`WalCursor`] (the primary side of WAL-shipping replication).
//!
//! The crate knows the catalog *data model* (`pip-core` / `pip-expr` /
//! `pip-ctable` / `pip-dist`) but not the engine: `pip-engine`'s
//! [`Database`](../pip_engine/catalog/struct.Database.html) drives it
//! via mutation hooks, and treats the per-table statistics payload as an
//! opaque JSON blob this crate stores verbatim.

pub mod codec;
pub mod snapshot;
pub mod store;
pub mod tail;
pub mod wal;

pub use codec::{CatalogRecord, WalEntry};
pub use snapshot::{
    snapshot_from_bytes, snapshot_to_bytes, Snapshot, SnapshotIndex, SnapshotTable,
};
pub use store::{Durability, FaultHook, FaultPoint, Recovered, Store, StoreMetrics};
pub use tail::{TailFrame, TailRead, WalCursor};
pub use wal::crc32;
