//! Checkpoint snapshots: one file per generation holding the entire
//! serialized catalog.
//!
//! ```text
//! snapshot-<gen>.pipsnap :=  MAGIC(8) gen(u64 LE) frame
//! frame                  :=  len(u32 LE) crc32(u32 LE) payload
//! ```
//!
//! `payload` is one JSON document: catalog version, the variable-id
//! allocator watermark, and every table (schema, rows, optional
//! optimizer-statistics blob — opaque to this crate, the engine encodes
//! and decodes it). Snapshots are written to a temp file, synced, then
//! atomically renamed into place, so a crash mid-checkpoint leaves the
//! previous generation untouched.

use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use pip_core::{PipError, Result};
use pip_ctable::CTable;
use pip_dist::DistributionRegistry;
use serde_json::Value as Json;

use crate::codec::{decode_table, encode_table};
use crate::wal::{crc32, frame, json_too_deep, MAX_JSON_DEPTH};

pub(crate) const SNAP_MAGIC: &[u8; 8] = b"PIPSNAP1";

/// One table in a snapshot: name, contents, and the engine's opaque
/// statistics payload (if statistics were fresh at checkpoint time).
#[derive(Debug, Clone)]
pub struct SnapshotTable {
    pub name: String,
    pub table: Arc<CTable>,
    pub stats: Option<Json>,
}

/// One secondary-index definition in a snapshot. Only the definition is
/// persisted; index contents are rebuilt from the table at recovery.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotIndex {
    pub name: String,
    pub table: String,
    pub column: String,
}

/// Everything a checkpoint persists.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Catalog version at the checkpoint point.
    pub version: u64,
    /// Variable-id allocator watermark (next id that would be handed
    /// out); recovery reserves ids below it.
    pub next_var_id: u64,
    /// Tables sorted by name.
    pub tables: Vec<SnapshotTable>,
    /// Secondary-index definitions sorted by name. Checkpoints delete
    /// the WAL generations that carried the `CREATE INDEX` records, so
    /// definitions must ride in the snapshot itself.
    pub indexes: Vec<SnapshotIndex>,
}

pub(crate) fn snapshot_path(dir: &Path, gen: u64) -> PathBuf {
    dir.join(format!("snapshot-{gen:06}.pipsnap"))
}

fn encode_snapshot(s: &Snapshot) -> Json {
    Json::Object(vec![
        ("format".into(), Json::Number("1".into())),
        ("version".into(), Json::Number(s.version.to_string())),
        (
            "next_var_id".into(),
            Json::Number(s.next_var_id.to_string()),
        ),
        (
            "tables".into(),
            Json::Array(
                s.tables
                    .iter()
                    .map(|t| {
                        Json::Object(vec![
                            ("name".into(), Json::String(t.name.clone())),
                            ("table".into(), encode_table(&t.table)),
                            ("stats".into(), t.stats.clone().unwrap_or(Json::Null)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "indexes".into(),
            Json::Array(
                s.indexes
                    .iter()
                    .map(|i| {
                        Json::Object(vec![
                            ("name".into(), Json::String(i.name.clone())),
                            ("table".into(), Json::String(i.table.clone())),
                            ("column".into(), Json::String(i.column.clone())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn decode_snapshot(v: &Json, registry: &DistributionRegistry) -> Result<Snapshot> {
    let bad = || PipError::corrupt("malformed snapshot document");
    if v.get("format").and_then(Json::as_u64) != Some(1) {
        return Err(PipError::corrupt("unknown snapshot format version"));
    }
    let version = v.get("version").and_then(Json::as_u64).ok_or_else(bad)?;
    let next_var_id = v
        .get("next_var_id")
        .and_then(Json::as_u64)
        .ok_or_else(bad)?;
    let mut tables = Vec::new();
    for t in v.get("tables").and_then(Json::as_array).ok_or_else(bad)? {
        let name = t
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(bad)?
            .to_string();
        let table = decode_table(t.get("table").ok_or_else(bad)?, registry)?;
        let stats = t.get("stats").filter(|s| !s.is_null()).cloned();
        tables.push(SnapshotTable {
            name,
            table: Arc::new(table),
            stats,
        });
    }
    // Absent in pre-index snapshots: decode to no indexes.
    let mut indexes = Vec::new();
    if let Some(list) = v.get("indexes").and_then(Json::as_array) {
        for i in list {
            let field = |key: &str| -> Result<String> {
                i.get(key)
                    .and_then(Json::as_str)
                    .map(str::to_string)
                    .ok_or_else(bad)
            };
            indexes.push(SnapshotIndex {
                name: field("name")?,
                table: field("table")?,
                column: field("column")?,
            });
        }
    }
    Ok(Snapshot {
        version,
        next_var_id,
        tables,
        indexes,
    })
}

/// Serialize a snapshot to the standalone payload form replication ships
/// to a catching-up follower: the same JSON document a snapshot file
/// frames, without the file header. Enforces the write contract (nesting
/// depth) so nothing unreadable crosses the wire.
pub fn snapshot_to_bytes(s: &Snapshot) -> Result<Vec<u8>> {
    let encoded = encode_snapshot(s);
    if json_too_deep(&encoded) {
        return Err(PipError::io(format!(
            "snapshot serializes to JSON nested deeper than the \
             {MAX_JSON_DEPTH}-level payload limit"
        )));
    }
    let payload = serde_json::to_string(&encoded)
        .map_err(|e| PipError::io(format!("snapshot encode: {e}")))?;
    Ok(payload.into_bytes())
}

/// Decode a snapshot shipped as bytes (see [`snapshot_to_bytes`]). The
/// transport's checksum has already vouched for the bytes; any failure
/// here is corruption.
pub fn snapshot_from_bytes(bytes: &[u8], registry: &DistributionRegistry) -> Result<Snapshot> {
    let text = std::str::from_utf8(bytes)
        .map_err(|_| PipError::corrupt("snapshot payload is not UTF-8"))?;
    let json = serde_json::from_str(text)
        .map_err(|e| PipError::corrupt(format!("snapshot payload: {e}")))?;
    decode_snapshot(&json, registry)
}

/// Write generation `gen`'s snapshot (temp file + fsync + rename).
pub(crate) fn write_snapshot(dir: &Path, gen: u64, snapshot: &Snapshot) -> Result<()> {
    // A snapshot [`read_snapshot`] would refuse must never be written —
    // it would fail recovery outright (the WAL generations it superseded
    // are deleted right after this returns). `snapshot_to_bytes` carries
    // the nesting-depth half of that contract.
    let payload = snapshot_to_bytes(snapshot)?;
    // Same reasoning for the frame's length field: past u32 it would
    // wrap and the file would read back truncated/checksum-broken.
    if payload.len() > u32::MAX as usize {
        return Err(PipError::io(format!(
            "snapshot serializes to {} bytes, over the u32 frame length limit",
            payload.len()
        )));
    }
    let tmp = dir.join(format!("snapshot-{gen:06}.tmp"));
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(SNAP_MAGIC)?;
        f.write_all(&gen.to_le_bytes())?;
        f.write_all(&frame(&payload))?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, snapshot_path(dir, gen))?;
    // Make the rename itself durable.
    if let Ok(d) = std::fs::File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

/// Read and verify generation `gen`'s snapshot. Any integrity failure is
/// an error — the caller falls back to an older generation (or empty).
pub(crate) fn read_snapshot(
    dir: &Path,
    gen: u64,
    registry: &DistributionRegistry,
) -> Result<Snapshot> {
    let path = snapshot_path(dir, gen);
    let bytes = std::fs::read(&path)?;
    if bytes.len() < 24 || &bytes[..8] != SNAP_MAGIC {
        return Err(PipError::corrupt(format!(
            "{} has no valid snapshot header",
            path.display()
        )));
    }
    let header_gen = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    if header_gen != gen {
        return Err(PipError::corrupt(format!(
            "{} claims generation {header_gen}, expected {gen}",
            path.display()
        )));
    }
    let len = u32::from_le_bytes(bytes[16..20].try_into().unwrap()) as usize;
    let crc = u32::from_le_bytes(bytes[20..24].try_into().unwrap());
    let payload = bytes
        .get(24..24 + len)
        .ok_or_else(|| PipError::corrupt(format!("{} is truncated", path.display())))?;
    if crc32(payload) != crc {
        return Err(PipError::corrupt(format!(
            "{} fails its checksum",
            path.display()
        )));
    }
    let text = std::str::from_utf8(payload)
        .map_err(|_| PipError::corrupt("snapshot payload is not UTF-8"))?;
    let json = serde_json::from_str(text)
        .map_err(|e| PipError::corrupt(format!("snapshot payload: {e}")))?;
    decode_snapshot(&json, registry)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pip_core::{DataType, Schema, Value};
    use pip_ctable::CRow;
    use pip_expr::Equation;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("pip-store-snaptest-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn snapshot_round_trip() {
        let dir = tmp_dir("rt");
        let reg = DistributionRegistry::with_builtins();
        let mut t = CTable::empty(Schema::of(&[("a", DataType::Int)]));
        t.push(CRow::unconditional(vec![Equation::val(Value::Int(7))]))
            .unwrap();
        let snap = Snapshot {
            version: 12,
            next_var_id: 99,
            tables: vec![SnapshotTable {
                name: "t".into(),
                table: Arc::new(t.clone()),
                stats: Some(Json::Object(vec![(
                    "rows".into(),
                    Json::Number("1".into()),
                )])),
            }],
            indexes: vec![SnapshotIndex {
                name: "t_a".into(),
                table: "t".into(),
                column: "a".into(),
            }],
        };
        write_snapshot(&dir, 4, &snap).unwrap();
        let back = read_snapshot(&dir, 4, &reg).unwrap();
        assert_eq!(back.version, 12);
        assert_eq!(back.next_var_id, 99);
        assert_eq!(back.indexes, snap.indexes);
        assert_eq!(back.tables.len(), 1);
        assert_eq!(*back.tables[0].table, t);
        assert_eq!(
            back.tables[0].stats.as_ref().unwrap().get("rows").unwrap(),
            &Json::Number("1".into())
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn too_deep_snapshot_fails_loudly_instead_of_landing_unreadable() {
        let dir = tmp_dir("deep");
        let mut eq = Equation::val(Value::Float(1.0));
        for _ in 0..80 {
            eq = eq + Equation::val(Value::Float(1.0));
        }
        let mut t = CTable::empty(Schema::of(&[("x", DataType::Symbolic)]));
        t.push(CRow::unconditional(vec![eq])).unwrap();
        let snap = Snapshot {
            version: 1,
            next_var_id: 1,
            tables: vec![SnapshotTable {
                name: "t".into(),
                table: Arc::new(t),
                stats: None,
            }],
            indexes: vec![],
        };
        // A snapshot read_snapshot would refuse must fail the write —
        // once the old generations are cleaned up, an unreadable
        // snapshot would leave the data directory unopenable.
        assert!(matches!(
            write_snapshot(&dir, 3, &snap),
            Err(PipError::Io(_))
        ));
        assert!(
            !snapshot_path(&dir, 3).exists(),
            "refused snapshot must not be left behind"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn every_wal_accepted_row_also_snapshots() {
        use crate::codec::{CatalogRecord, WalEntry};
        use crate::wal::encode_payload;

        // The WAL guard keeps SNAPSHOT_DEPTH_HEADROOM below the parser
        // cap because a snapshot nests Insert rows one level deeper than
        // a WAL frame. Sweep chain lengths across the acceptance
        // boundary: anything the log acknowledges as durable must also
        // be checkpointable, or the catalog would hold rows every later
        // snapshot chokes on.
        let dir = tmp_dir("align");
        let mut accepted = 0;
        for ops in 50..=70 {
            let mut eq = Equation::val(Value::Float(1.0));
            for _ in 0..ops {
                eq = eq + Equation::val(Value::Float(1.0));
            }
            let row = CRow::unconditional(vec![eq]);
            let entry = WalEntry {
                version: 1,
                record: CatalogRecord::Insert {
                    name: "t".into(),
                    rows: vec![row.clone()],
                },
            };
            if encode_payload(&entry).is_err() {
                continue;
            }
            accepted += 1;
            let mut t = CTable::empty(Schema::of(&[("x", DataType::Symbolic)]));
            t.push(row).unwrap();
            write_snapshot(
                &dir,
                ops as u64,
                &Snapshot {
                    version: 1,
                    next_var_id: 1,
                    tables: vec![SnapshotTable {
                        name: "t".into(),
                        table: Arc::new(t),
                        stats: None,
                    }],
                    indexes: vec![],
                },
            )
            .unwrap_or_else(|e| panic!("WAL accepts {ops}-op chain but snapshot refuses: {e}"));
        }
        assert!(accepted > 0, "sweep never crossed the acceptance side");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_snapshot_is_rejected() {
        let dir = tmp_dir("bad");
        let reg = DistributionRegistry::with_builtins();
        let snap = Snapshot {
            version: 1,
            next_var_id: 1,
            tables: vec![],
            indexes: vec![],
        };
        write_snapshot(&dir, 2, &snap).unwrap();
        let path = snapshot_path(&dir, 2);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 3;
        bytes[last] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_snapshot(&dir, 2, &reg),
            Err(PipError::Corrupt(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
