//! Tailing the WAL back out of a live data directory — the read side of
//! WAL-shipping replication.
//!
//! A tailer holds a [`WalCursor`] (generation + byte offset) and calls
//! [`Store::read_wal_frames`] to pull acknowledged frames past it. The
//! store never blocks appends for a tailer: reads go straight to the
//! files, bounded by the acknowledged end of the chain captured from the
//! writer (acknowledged frame bytes are immutable — `record_bytes` only
//! grows, and every truncation restores exactly that boundary). Sealed
//! generations (anything below the active one) are read to the end of
//! their frames — zero padding from preallocation, where present, reads
//! as the end of the stream exactly as it does in recovery — and the
//! cursor then advances to the next generation's first frame.
//!
//! A checkpoint can delete the file a cursor points into (retention only
//! guarantees generations at or above [`Store::oldest_retained`]). That
//! is not an error but a [`TailRead::Gap`]: the tailer fell off the
//! retained chain and must restart from a snapshot.

use std::fs::File;
use std::io::{Read, Seek, SeekFrom};
use std::path::Path;

use pip_core::{PipError, Result};
use serde_json::Value as Json;

use crate::store::Store;
use crate::wal::{crc32, wal_path, HEADER_LEN, MAX_FRAME_BYTES, WAL_MAGIC};

/// A position in the WAL chain: a generation and a byte offset into its
/// file. Offsets always sit on a frame boundary (or the file header's
/// end, [`WalCursor::start`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalCursor {
    pub gen: u64,
    pub offset: u64,
}

impl WalCursor {
    /// The first frame of generation `gen`.
    pub fn start(gen: u64) -> WalCursor {
        WalCursor {
            gen,
            offset: HEADER_LEN,
        }
    }
}

/// One acknowledged frame read back off the chain.
#[derive(Debug, Clone)]
pub struct TailFrame {
    /// The entry's catalog version stamp, extracted from the payload
    /// (non-decreasing along the chain — the replication invariant).
    pub version: u64,
    /// The frame's payload exactly as written: one JSON
    /// [`WalEntry`](crate::codec::WalEntry) document. Shipped verbatim;
    /// the follower decodes it through the same codec recovery uses.
    pub payload: Vec<u8>,
}

/// Result of one [`Store::read_wal_frames`] call.
#[derive(Debug)]
pub enum TailRead {
    /// Frames past the cursor (empty when caught up) and the cursor to
    /// continue from.
    Frames {
        frames: Vec<TailFrame>,
        cursor: WalCursor,
    },
    /// The cursor's generation fell below the retained chain (its file
    /// was deleted by a checkpoint). The tailer must restart from a
    /// snapshot.
    Gap,
}

/// What one generation file yielded.
struct GenRead {
    frames: Vec<TailFrame>,
    end_offset: u64,
    /// False when the read stopped at `max` with more frames available
    /// in this file; true when it consumed everything readable (hit the
    /// limit, padding, or end of file).
    exhausted: bool,
}

impl Store {
    /// Read up to `max_frames` acknowledged frames past `cursor`,
    /// advancing across sealed generations. Returns [`TailRead::Gap`]
    /// when the cursor's generation was already retired by a checkpoint.
    ///
    /// Never blocks appends (the writer lock is taken only to sample the
    /// acknowledged end of the chain) and never returns bytes of an
    /// unacknowledged in-flight append.
    pub fn read_wal_frames(&self, cursor: WalCursor, max_frames: usize) -> Result<TailRead> {
        let mut cursor = cursor;
        let mut frames: Vec<TailFrame> = Vec::new();
        while frames.len() < max_frames {
            let (active_gen, active_end) = self.acknowledged_end();
            if cursor.gen > active_gen {
                // Can only happen if the caller fabricated a cursor past
                // the chain; report caught-up rather than inventing data.
                break;
            }
            let sealed = cursor.gen < active_gen;
            // Acknowledged frames are immutable once written, so a limit
            // sampled here stays valid however far appends race ahead.
            let limit = if sealed { u64::MAX } else { active_end };
            if cursor.offset >= limit {
                break; // caught up with the active generation
            }
            let read = match read_generation(
                self.dir(),
                cursor.gen,
                cursor.offset,
                limit,
                max_frames - frames.len(),
            )? {
                None => return Ok(TailRead::Gap),
                Some(r) => r,
            };
            frames.extend(read.frames);
            cursor.offset = read.end_offset;
            if !read.exhausted {
                continue; // more frames in this file; cap check loops us out
            }
            if sealed {
                // End of a sealed generation's records: the stream
                // continues at the next generation's first frame.
                cursor = WalCursor::start(cursor.gen + 1);
            } else {
                break; // drained the active file to its acknowledged end
            }
        }
        Ok(TailRead::Frames { frames, cursor })
    }
}

/// Read frames of generation `gen` from `offset`, stopping at byte
/// `limit`, end of frames, or `max` frames. `None` means the file is
/// gone (retired by a checkpoint).
fn read_generation(
    dir: &Path,
    gen: u64,
    offset: u64,
    limit: u64,
    max: usize,
) -> Result<Option<GenRead>> {
    let path = wal_path(dir, gen);
    let mut file = match File::open(&path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    // Guard against a cross-wired cursor before trusting any offset.
    let mut header = [0u8; HEADER_LEN as usize];
    if file.read_exact(&mut header).is_err() || &header[..8] != WAL_MAGIC {
        return Err(PipError::corrupt(format!(
            "{} has no valid WAL header",
            path.display()
        )));
    }
    let header_gen = u64::from_le_bytes(header[8..16].try_into().unwrap());
    if header_gen != gen {
        return Err(PipError::corrupt(format!(
            "{} claims generation {header_gen}, expected {gen}",
            path.display()
        )));
    }
    let file_len = file.metadata()?.len();
    let end = limit.min(file_len);
    if offset >= end {
        return Ok(Some(GenRead {
            frames: Vec::new(),
            end_offset: offset,
            exhausted: true,
        }));
    }
    file.seek(SeekFrom::Start(offset))?;
    let mut buf = vec![0u8; (end - offset) as usize];
    file.read_exact(&mut buf)?;

    let mut frames = Vec::new();
    let mut pos = 0usize;
    let mut exhausted = true;
    while pos < buf.len() {
        if frames.len() >= max {
            exhausted = false;
            break;
        }
        let Some(fh) = buf.get(pos..pos + 8) else {
            // Partial header at the boundary — nothing acknowledged here.
            break;
        };
        if fh.iter().all(|&b| b == 0) {
            break; // preallocation padding: end of this file's records
        }
        let len = u32::from_le_bytes(fh[..4].try_into().unwrap());
        let crc = u32::from_le_bytes(fh[4..8].try_into().unwrap());
        if len > MAX_FRAME_BYTES {
            return Err(PipError::corrupt(format!(
                "{}: frame at byte {} has an impossible length",
                path.display(),
                offset + pos as u64
            )));
        }
        let Some(payload) = buf.get(pos + 8..pos + 8 + len as usize) else {
            break; // frame extends past the acknowledged end
        };
        if crc32(payload) != crc {
            return Err(PipError::corrupt(format!(
                "{}: acknowledged frame at byte {} fails its checksum",
                path.display(),
                offset + pos as u64
            )));
        }
        frames.push(TailFrame {
            version: frame_version(payload)?,
            payload: payload.to_vec(),
        });
        pos += 8 + len as usize;
    }
    Ok(Some(GenRead {
        frames,
        end_offset: offset + pos as u64,
        exhausted,
    }))
}

/// Extract the version stamp from a frame payload. Acknowledged frames
/// are valid JSON with a numeric `version` by the write contract; a
/// payload that is not is corruption, never tolerable.
fn frame_version(payload: &[u8]) -> Result<u64> {
    let text = std::str::from_utf8(payload)
        .map_err(|_| PipError::corrupt("WAL frame payload is not UTF-8"))?;
    let json: Json = serde_json::from_str(text)
        .map_err(|e| PipError::corrupt(format!("WAL frame payload: {e}")))?;
    json.get("v")
        .and_then(Json::as_u64)
        .ok_or_else(|| PipError::corrupt("WAL frame payload has no version stamp"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{CatalogRecord, WalEntry};
    use crate::snapshot::{Snapshot, SnapshotTable};
    use pip_core::{DataType, Schema, Value};
    use pip_ctable::{CRow, CTable};
    use pip_dist::DistributionRegistry;
    use pip_expr::Equation;
    use std::path::PathBuf;
    use std::sync::Arc;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("pip-store-tailtest-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn reg() -> DistributionRegistry {
        DistributionRegistry::with_builtins()
    }

    fn entry(version: u64, i: i64) -> WalEntry {
        WalEntry {
            version,
            record: CatalogRecord::Insert {
                name: "t".into(),
                rows: vec![CRow::unconditional(vec![Equation::val(Value::Int(i))])],
            },
        }
    }

    fn create_t(store: &Store) {
        store
            .append(&WalEntry {
                version: 1,
                record: CatalogRecord::CreateTable {
                    name: "t".into(),
                    schema: Schema::of(&[("a", DataType::Int)]),
                },
            })
            .unwrap();
    }

    fn read_all(store: &Store, mut cursor: WalCursor) -> (Vec<u64>, WalCursor) {
        let mut versions = Vec::new();
        loop {
            match store.read_wal_frames(cursor, 3).unwrap() {
                TailRead::Frames { frames, cursor: c } => {
                    if frames.is_empty() {
                        return (versions, c);
                    }
                    versions.extend(frames.iter().map(|f| f.version));
                    cursor = c;
                }
                TailRead::Gap => panic!("unexpected gap"),
            }
        }
    }

    #[test]
    fn tail_reads_frames_and_catches_up() {
        let dir = tmp_dir("basic");
        let registry = reg();
        let (store, _) = Store::open(&dir, &registry).unwrap();
        let start = store.wal_position();
        assert_eq!(start, WalCursor::start(0));
        create_t(&store);
        for v in 2..=8 {
            store.append(&entry(v, v as i64)).unwrap();
        }
        let (versions, cursor) = read_all(&store, start);
        assert_eq!(versions, (1..=8).collect::<Vec<_>>());
        assert_eq!(cursor, store.wal_position());
        // Caught up: an empty read does not move the cursor.
        match store.read_wal_frames(cursor, 16).unwrap() {
            TailRead::Frames { frames, cursor: c } => {
                assert!(frames.is_empty());
                assert_eq!(c, cursor);
            }
            TailRead::Gap => panic!("gap at tail"),
        }
        // New appends become visible at the same cursor.
        store.append(&entry(9, 9)).unwrap();
        let (versions, _) = read_all(&store, cursor);
        assert_eq!(versions, vec![9]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tail_crosses_generation_rotation() {
        let dir = tmp_dir("rotate");
        let registry = reg();
        let (store, _) = Store::open(&dir, &registry).unwrap();
        create_t(&store);
        store.append(&entry(2, 1)).unwrap();
        let cursor = store.wal_position();
        // Rotate; the snapshot write is deferred so both generations'
        // files stay on disk (mid-checkpoint state).
        let gen = store.begin_checkpoint().unwrap();
        assert_eq!(gen, 1);
        store.append(&entry(3, 2)).unwrap();
        // A cursor at the sealed generation's end walks into the new one.
        let (versions, c) = read_all(&store, cursor);
        assert_eq!(versions, vec![3]);
        assert_eq!(c.gen, 1);
        // And a cursor from the chain start replays everything.
        let (versions, _) = read_all(&store, WalCursor::start(0));
        assert_eq!(versions, vec![1, 2, 3]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_retires_the_chain_and_tail_reports_gap() {
        let dir = tmp_dir("gap");
        let registry = reg();
        let (store, _) = Store::open(&dir, &registry).unwrap();
        create_t(&store);
        assert_eq!(store.oldest_retained(), (0, 0));
        let mut t = CTable::empty(Schema::of(&[("a", DataType::Int)]));
        t.push(CRow::unconditional(vec![Equation::val(Value::Int(1))]))
            .unwrap();
        store
            .checkpoint(&Snapshot {
                version: 1,
                next_var_id: 1,
                tables: vec![SnapshotTable {
                    name: "t".into(),
                    table: Arc::new(t),
                    stats: None,
                }],
                indexes: vec![],
            })
            .unwrap();
        assert_eq!(store.oldest_retained(), (1, 1));
        // The generation-0 file is gone; a tailer parked there must fall
        // back to a snapshot, not error out.
        assert!(matches!(
            store.read_wal_frames(WalCursor::start(0), 16).unwrap(),
            TailRead::Gap
        ));
        // The retained chain still tails fine.
        store.append(&entry(2, 2)).unwrap();
        let (versions, _) = read_all(&store, WalCursor::start(1));
        assert_eq!(versions, vec![2]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn preallocated_padding_is_invisible_to_replay_and_tail() {
        let dir = tmp_dir("prealloc");
        let registry = reg();
        {
            let (store, _) = Store::open(&dir, &registry).unwrap();
            create_t(&store);
            store.append(&entry(2, 7)).unwrap();
            // Preallocation made the file strictly larger than its frames.
            let disk = std::fs::metadata(crate::wal::wal_path(&dir, 0))
                .unwrap()
                .len();
            let (_, acknowledged) = store.acknowledged_end();
            assert!(
                disk > acknowledged,
                "expected zeroed preallocation past the last frame \
                 (disk {disk} <= acknowledged {acknowledged})"
            );
            assert_eq!(disk % (256 * 1024), 0, "chunk-granular extension");
            // The padding does not read as frames...
            let (versions, _) = read_all(&store, WalCursor::start(0));
            assert_eq!(versions, vec![1, 2]);
        }
        // ...nor as a torn tail on recovery (process "crashed" with
        // padding in place; no seal ran).
        let (store, recovered) = Store::open(&dir, &registry).unwrap();
        assert!(!recovered.torn_tail);
        assert_eq!(recovered.replayed, 2);
        // And appends continue cleanly after reopen.
        store.append(&entry(3, 8)).unwrap();
        let (versions, _) = read_all(&store, WalCursor::start(0));
        assert_eq!(versions, vec![1, 2, 3]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sealing_trims_padding_so_sealed_files_are_exactly_their_frames() {
        let dir = tmp_dir("seal");
        let registry = reg();
        let (store, _) = Store::open(&dir, &registry).unwrap();
        create_t(&store);
        store.begin_checkpoint().unwrap();
        let sealed = std::fs::metadata(crate::wal::wal_path(&dir, 0))
            .unwrap()
            .len();
        assert!(
            sealed < 256 * 1024,
            "sealed file should be trimmed to its frames, got {sealed}"
        );
        // The sealed file still tails end to end.
        let (versions, c) = read_all(&store, WalCursor::start(0));
        assert_eq!(versions, vec![1]);
        assert_eq!(c.gen, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tail_never_returns_unacknowledged_bytes() {
        // Frames land on disk before `record_bytes` acknowledges them;
        // a tailer sampling the acknowledged end must not see a frame
        // whose append has not returned. Simulate the in-flight state by
        // writing garbage past the acknowledged end (what a torn append
        // leaves) and confirm the tailer stops exactly at the boundary.
        let dir = tmp_dir("ack");
        let registry = reg();
        let (store, _) = Store::open(&dir, &registry).unwrap();
        create_t(&store);
        let (gen, end) = store.acknowledged_end();
        let path = crate::wal::wal_path(&dir, gen);
        let mut bytes = std::fs::read(&path).unwrap();
        // Overwrite the padding right past the acknowledged end with a
        // valid-looking frame; it must stay invisible.
        let ghost = crate::wal::frame(b"{\"v\":999}");
        bytes[end as usize..end as usize + ghost.len()].copy_from_slice(&ghost);
        std::fs::write(&path, &bytes).unwrap();
        let (versions, c) = read_all(&store, WalCursor::start(gen));
        assert_eq!(versions, vec![1], "ghost frame past the ack end leaked");
        assert_eq!(c.offset, end);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
