//! Offline stand-in for `serde_derive`: `#[derive(Serialize)]` generates
//! an implementation of the shim `serde::Serialize` trait (a direct JSON
//! writer), `#[derive(Deserialize)]` implements the marker trait.
//!
//! Parsing is done by hand on the raw token stream (no `syn`/`quote`),
//! which is sufficient for the non-generic structs and enums PIP derives
//! on. Output shapes follow serde's externally-tagged default:
//! named struct → object, tuple struct → array (newtype → inner value),
//! unit enum variant → string, payload variant → single-key object.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(i) => i,
        Err(e) => return compile_error(&e),
    };
    gen_serialize(&item).parse().expect("generated impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(i) => i,
        Err(e) => return compile_error(&e),
    };
    format!("impl ::serde::Deserialize for {} {{}}", item.name)
        .parse()
        .expect("generated impl parses")
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

enum Body {
    /// Named fields, in declaration order.
    Struct(Vec<String>),
    /// Number of positional fields.
    TupleStruct(usize),
    /// Variants: name + shape.
    Enum(Vec<(String, VariantShape)>),
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Item {
    name: String,
    body: Body,
}

/// Split a token sequence on top-level commas, treating `<...>` generic
/// argument lists as nested (groups are already atomic in a TokenStream).
fn split_top_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    let mut angle = 0i32;
    for t in tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                angle += 1;
                cur.push(t.clone());
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle -= 1;
                cur.push(t.clone());
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                if !cur.is_empty() {
                    out.push(std::mem::take(&mut cur));
                }
            }
            _ => cur.push(t.clone()),
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Drop leading `#[...]` attributes and a `pub` / `pub(...)` visibility.
fn strip_attrs_and_vis(tokens: &[TokenTree]) -> &[TokenTree] {
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2, // '#' + [..]
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }
    &tokens[i..]
}

/// First identifier of a (attribute/vis-stripped) field chunk: its name.
fn field_name(chunk: &[TokenTree]) -> Result<String, String> {
    match strip_attrs_and_vis(chunk).first() {
        Some(TokenTree::Ident(id)) => Ok(id.to_string()),
        other => Err(format!("expected field name, found {other:?}")),
    }
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let tokens = strip_attrs_and_vis(&tokens);
    let mut it = tokens.iter();
    let kind = match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct/enum, found {other:?}")),
    };
    let name = match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    let rest: Vec<TokenTree> = it.cloned().collect();
    if matches!(rest.first(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde shim derive does not support generics on {name}"
        ));
    }
    let body_group = rest.iter().find_map(|t| match t {
        TokenTree::Group(g)
            if g.delimiter() == Delimiter::Brace || g.delimiter() == Delimiter::Parenthesis =>
        {
            Some(g.clone())
        }
        _ => None,
    });
    let body = match (kind.as_str(), body_group) {
        ("struct", Some(g)) if g.delimiter() == Delimiter::Brace => {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            let fields = split_top_commas(&inner)
                .iter()
                .map(|c| field_name(c))
                .collect::<Result<Vec<_>, _>>()?;
            Body::Struct(fields)
        }
        ("struct", Some(g)) => {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            Body::TupleStruct(split_top_commas(&inner).len())
        }
        ("struct", None) => Body::TupleStruct(0),
        ("enum", Some(g)) if g.delimiter() == Delimiter::Brace => {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            let mut variants = Vec::new();
            for chunk in split_top_commas(&inner) {
                let chunk = strip_attrs_and_vis(&chunk);
                let vname = match chunk.first() {
                    Some(TokenTree::Ident(id)) => id.to_string(),
                    other => return Err(format!("expected variant name, found {other:?}")),
                };
                let shape = match chunk.get(1) {
                    None => VariantShape::Unit,
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                        VariantShape::Tuple(split_top_commas(&inner).len())
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                        let fields = split_top_commas(&inner)
                            .iter()
                            .map(|c| field_name(c))
                            .collect::<Result<Vec<_>, _>>()?;
                        VariantShape::Named(fields)
                    }
                    Some(TokenTree::Punct(p)) if p.as_char() == '=' => VariantShape::Unit,
                    other => return Err(format!("unsupported variant shape: {other:?}")),
                };
                variants.push((vname, shape));
            }
            Body::Enum(variants)
        }
        _ => return Err(format!("cannot derive serde shim for {kind} {name}")),
    };
    Ok(Item { name, body })
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::Struct(fields) => {
            let mut s = String::from("out.push('{');\n");
            for (i, f) in fields.iter().enumerate() {
                if i > 0 {
                    s.push_str("out.push(',');\n");
                }
                s.push_str(&format!(
                    "out.push_str(\"\\\"{f}\\\":\");\n\
                     ::serde::Serialize::serialize_json(&self.{f}, out);\n"
                ));
            }
            s.push_str("out.push('}');");
            s
        }
        Body::TupleStruct(0) => "out.push_str(\"null\");".to_string(),
        Body::TupleStruct(1) => "::serde::Serialize::serialize_json(&self.0, out);".to_string(),
        Body::TupleStruct(n) => {
            let mut s = String::from("out.push('[');\n");
            for i in 0..*n {
                if i > 0 {
                    s.push_str("out.push(',');\n");
                }
                s.push_str(&format!(
                    "::serde::Serialize::serialize_json(&self.{i}, out);\n"
                ));
            }
            s.push_str("out.push(']');");
            s
        }
        Body::Enum(variants) => {
            let mut arms = String::new();
            for (v, shape) in variants {
                match shape {
                    VariantShape::Unit => {
                        arms.push_str(&format!("{name}::{v} => out.push_str(\"\\\"{v}\\\"\"),\n"))
                    }
                    VariantShape::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let pat = binders.join(", ");
                        let mut writes = format!("out.push_str(\"{{\\\"{v}\\\":\");\n");
                        if *n == 1 {
                            writes.push_str("::serde::Serialize::serialize_json(__f0, out);\n");
                        } else {
                            writes.push_str("out.push('[');\n");
                            for (i, b) in binders.iter().enumerate() {
                                if i > 0 {
                                    writes.push_str("out.push(',');\n");
                                }
                                writes.push_str(&format!(
                                    "::serde::Serialize::serialize_json({b}, out);\n"
                                ));
                            }
                            writes.push_str("out.push(']');\n");
                        }
                        writes.push_str("out.push('}');");
                        arms.push_str(&format!("{name}::{v}({pat}) => {{ {writes} }}\n"));
                    }
                    VariantShape::Named(fields) => {
                        let pat = fields.join(", ");
                        let mut writes = format!("out.push_str(\"{{\\\"{v}\\\":{{\");\n");
                        for (i, f) in fields.iter().enumerate() {
                            if i > 0 {
                                writes.push_str("out.push(',');\n");
                            }
                            writes.push_str(&format!(
                                "out.push_str(\"\\\"{f}\\\":\");\n\
                                 ::serde::Serialize::serialize_json({f}, out);\n"
                            ));
                        }
                        writes.push_str("out.push_str(\"}}\");");
                        arms.push_str(&format!("{name}::{v} {{ {pat} }} => {{ {writes} }}\n"));
                    }
                }
            }
            format!("match self {{\n{arms}\n}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn serialize_json(&self, out: &mut String) {{\n{body}\n}}\n\
         }}"
    )
}
