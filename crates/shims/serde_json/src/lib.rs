//! Offline stand-in for `serde_json`: [`to_string`] drives the shim
//! `serde::Serialize` JSON writer, and [`Value`] / [`from_str`] provide
//! the parsing half that the durable catalog store (`pip-store`) reads
//! snapshots and WAL payloads back through.
//!
//! Numbers are kept as their source text ([`Value::Number`] stores the
//! literal) so `u64` identifiers and shortest-round-trip `f64`s survive
//! the trip without precision loss — accessors parse on demand.

use std::fmt;

/// Serialization / parse error.
#[derive(Debug)]
pub struct Error(String);

impl Error {
    fn parse(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json shim error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serialize `value` as a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.serialize_json(&mut out);
    Ok(out)
}

/// A parsed JSON document.
///
/// Object keys keep insertion order (a `Vec` of pairs) so that a
/// serialize → parse → serialize round trip is byte-stable.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// The number's source text, verbatim (full precision preserved).
    Number(String),
    String(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Build a number value from anything with a JSON-compatible display.
    pub fn number(n: impl fmt::Display) -> Value {
        Value::Number(n.to_string())
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.parse().ok(),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.parse().ok(),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.parse().ok(),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(o) => o.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl serde::Serialize for Value {
    fn serialize_json(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => out.push_str(n),
            Value::String(s) => serde::write_json_string(s, out),
            Value::Array(a) => {
                out.push('[');
                for (i, v) in a.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.serialize_json(out);
                }
                out.push(']');
            }
            Value::Object(o) => {
                out.push('{');
                for (i, (k, v)) in o.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    serde::write_json_string(k, out);
                    out.push(':');
                    v.serialize_json(out);
                }
                out.push('}');
            }
        }
    }
}

/// Parse one JSON document (trailing whitespace allowed, nothing else).
pub fn from_str(input: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::parse(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

/// Nesting cap: deep-recursion guard for hostile inputs.
const MAX_DEPTH: usize = 128;

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::parse(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_lit(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        if self.depth >= MAX_DEPTH {
            return Err(Error::parse("document nests too deeply"));
        }
        match self.peek() {
            None => Err(Error::parse("unexpected end of input")),
            Some(b'n') if self.eat_lit("null") => Ok(Value::Null),
            Some(b't') if self.eat_lit("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_lit("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                self.depth += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            self.depth -= 1;
                            return Ok(Value::Array(items));
                        }
                        _ => {
                            return Err(Error::parse(format!(
                                "expected ',' or ']' at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                self.depth += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Object(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let val = self.value()?;
                    fields.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            self.depth -= 1;
                            return Ok(Value::Object(fields));
                        }
                        _ => {
                            return Err(Error::parse(format!(
                                "expected ',' or '}}' at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(Error::parse(format!(
                "unexpected character '{}' at byte {}",
                b as char, self.pos
            ))),
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut saw_digit = false;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() {
                saw_digit = true;
                self.pos += 1;
            } else {
                break;
            }
        }
        if !saw_digit {
            return Err(Error::parse(format!("malformed number at byte {start}")));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::parse("non-utf8 number"))?;
        // Validate it is a real number now so accessors can't surprise.
        text.parse::<f64>()
            .map_err(|_| Error::parse(format!("malformed number '{text}'")))?;
        Ok(Value::Number(text.to_string()))
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::parse("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.hex4()?;
                            // Surrogate pair?
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if !(self.eat_lit("\\u")) {
                                    return Err(Error::parse("lone high surrogate"));
                                }
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(Error::parse("invalid low surrogate"));
                                }
                                let c = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(c)
                                    .ok_or_else(|| Error::parse("bad surrogate pair"))?
                            } else {
                                char::from_u32(code)
                                    .ok_or_else(|| Error::parse("bad \\u escape"))?
                            };
                            out.push(c);
                            continue; // hex4 already advanced
                        }
                        other => {
                            return Err(Error::parse(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (the input is &str, so
                    // boundaries are valid; find the char at this byte).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::parse("non-utf8 string content"))?;
                    let c = rest.chars().next().unwrap();
                    if (c as u32) < 0x20 {
                        return Err(Error::parse("unescaped control character"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Four hex digits of a `\u` escape (cursor past them on return).
    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::parse("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::parse("non-utf8 \\u escape"))?;
        let code = u32::from_str_radix(s, 16).map_err(|_| Error::parse("bad \\u escape"))?;
        self.pos = end;
        Ok(code)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_via_trait() {
        assert_eq!(super::to_string(&vec![1i64, 2, 3]).unwrap(), "[1,2,3]");
        assert_eq!(super::to_string("hi").unwrap(), "\"hi\"");
    }

    #[test]
    fn parse_scalars() {
        assert_eq!(from_str("null").unwrap(), Value::Null);
        assert_eq!(from_str(" true ").unwrap(), Value::Bool(true));
        assert_eq!(from_str("false").unwrap(), Value::Bool(false));
        assert_eq!(from_str("42").unwrap().as_i64(), Some(42));
        assert_eq!(from_str("-1.5e3").unwrap().as_f64(), Some(-1500.0));
        assert_eq!(from_str("\"a\\nb\"").unwrap().as_str(), Some("a\nb"));
    }

    #[test]
    fn numbers_keep_full_precision() {
        let big = u64::MAX.to_string();
        assert_eq!(from_str(&big).unwrap().as_u64(), Some(u64::MAX));
        let v = from_str("0.1").unwrap();
        assert_eq!(v.as_f64(), Some(0.1));
        // Shortest-round-trip floats survive serialize → parse → read.
        let x = 0.30000000000000004_f64;
        let v = from_str(&x.to_string()).unwrap();
        assert_eq!(v.as_f64().map(f64::to_bits), Some(x.to_bits()));
    }

    #[test]
    fn parse_containers_and_lookup() {
        let v = from_str(r#"{"a": [1, {"b": "x"}], "c": null}"#).unwrap();
        assert_eq!(v.get("c"), Some(&Value::Null));
        let a = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(a[0].as_i64(), Some(1));
        assert_eq!(a[1].get("b").unwrap().as_str(), Some("x"));
        assert!(v.get("zzz").is_none());
        assert_eq!(from_str("[]").unwrap(), Value::Array(vec![]));
        assert_eq!(from_str("{}").unwrap(), Value::Object(vec![]));
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(from_str("\"\\u00e9\"").unwrap().as_str(), Some("é"));
        assert_eq!(from_str("\"\\ud83d\\ude00\"").unwrap().as_str(), Some("😀"));
        assert!(from_str("\"\\ud83d\"").is_err());
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "tru",
            "1.2.3",
            "[1,",
            "{\"a\"}",
            "{\"a\":1,}",
            "\"unterminated",
            "[1] trailing",
            "nul",
            "+1",
            "01a",
        ] {
            assert!(from_str(bad).is_err(), "accepted {bad:?}");
        }
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(from_str(&deep).is_err(), "depth guard missing");
    }

    #[test]
    fn value_serializes_back() {
        let text = r#"{"a":[1,2.5,"x"],"b":{"c":null,"d":true}}"#;
        let v = from_str(text).unwrap();
        assert_eq!(super::to_string(&v).unwrap(), text);
    }
}
