//! Offline stand-in for `serde_json`: only [`to_string`], driving the
//! shim `serde::Serialize` JSON writer.

use std::fmt;

/// Serialization error (the shim writer is infallible, so this is never
/// actually produced; the type exists for API compatibility).
#[derive(Debug)]
pub struct Error(());

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json shim error")
    }
}

impl std::error::Error for Error {}

/// Serialize `value` as a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.serialize_json(&mut out);
    Ok(out)
}

#[cfg(test)]
mod tests {
    #[test]
    fn round_trip_via_trait() {
        assert_eq!(super::to_string(&vec![1i64, 2, 3]).unwrap(), "[1,2,3]");
        assert_eq!(super::to_string("hi").unwrap(), "\"hi\"");
    }
}
