//! Offline stand-in for `serde`: a direct-to-JSON `Serialize` trait plus
//! the derive macros (re-exported from the companion proc-macro crate)
//! and a `Deserialize` marker trait. `serde_json::to_string` drives
//! [`Serialize::serialize_json`].
//!
//! Only what PIP needs is implemented; the wire format matches serde's
//! externally-tagged JSON defaults for the shapes PIP serializes (bench
//! result rows and the core value/schema/tuple types).

pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;
use std::rc::Rc;
use std::sync::Arc;

/// Serialize directly into a JSON string buffer.
pub trait Serialize {
    fn serialize_json(&self, out: &mut String);
}

/// Marker trait: PIP derives `Deserialize` on its core types but never
/// deserializes through it, so the shim keeps it as a capability marker.
pub trait Deserialize {}

/// Append a JSON string literal with escaping.
pub fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

macro_rules! int_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, out: &mut String) {
                out.push_str(&self.to_string());
            }
        }
    )*};
}
int_impl!(i8, i16, i32, i64, i128, isize, u8, u16, u32, u64, u128, usize);

impl Serialize for bool {
    fn serialize_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl Serialize for f64 {
    fn serialize_json(&self, out: &mut String) {
        if self.is_finite() {
            // Rust's Display prints the shortest round-trippable form.
            out.push_str(&self.to_string());
        } else {
            out.push_str("null"); // serde_json convention
        }
    }
}

impl Serialize for f32 {
    fn serialize_json(&self, out: &mut String) {
        (*self as f64).serialize_json(out);
    }
}

impl Serialize for str {
    fn serialize_json(&self, out: &mut String) {
        write_json_string(self, out);
    }
}

impl Serialize for String {
    fn serialize_json(&self, out: &mut String) {
        write_json_string(self, out);
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_json(&self, out: &mut String) {
        (**self).serialize_json(out);
    }
}

impl<T: Serialize + ?Sized> Serialize for Arc<T> {
    fn serialize_json(&self, out: &mut String) {
        (**self).serialize_json(out);
    }
}

impl<T: Serialize + ?Sized> Serialize for Rc<T> {
    fn serialize_json(&self, out: &mut String) {
        (**self).serialize_json(out);
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize_json(&self, out: &mut String) {
        (**self).serialize_json(out);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_json(&self, out: &mut String) {
        match self {
            None => out.push_str("null"),
            Some(v) => v.serialize_json(out),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_json(&self, out: &mut String) {
        out.push('[');
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            v.serialize_json(out);
        }
        out.push(']');
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_json(&self, out: &mut String) {
        self.as_slice().serialize_json(out);
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_json(&self, out: &mut String) {
        self.as_slice().serialize_json(out);
    }
}

impl<K: AsRef<str>, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize_json(&self, out: &mut String) {
        out.push('{');
        for (i, (k, v)) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_string(k.as_ref(), out);
            out.push(':');
            v.serialize_json(out);
        }
        out.push('}');
    }
}

macro_rules! tuple_impl {
    ($(($($n:tt $t:ident),+)),+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize_json(&self, out: &mut String) {
                out.push('[');
                let mut first = true;
                $(
                    if !first { out.push(','); }
                    first = false;
                    self.$n.serialize_json(out);
                )+
                let _ = first;
                out.push(']');
            }
        }
    )+};
}
tuple_impl!((0 A), (0 A, 1 B), (0 A, 1 B, 2 C), (0 A, 1 B, 2 C, 3 D));

#[cfg(test)]
mod tests {
    use super::*;

    fn json<T: Serialize>(v: &T) -> String {
        let mut s = String::new();
        v.serialize_json(&mut s);
        s
    }

    #[test]
    fn primitives_and_escaping() {
        assert_eq!(json(&42i64), "42");
        assert_eq!(json(&true), "true");
        assert_eq!(json(&1.5f64), "1.5");
        assert_eq!(json(&f64::NAN), "null");
        assert_eq!(json(&"a\"b\n"), "\"a\\\"b\\n\"");
        assert_eq!(json(&vec![1i64, 2]), "[1,2]");
        assert_eq!(json(&Some(3i64)), "3");
        assert_eq!(json(&Option::<i64>::None), "null");
    }
}
