//! Offline stand-in for `parking_lot`: thin wrappers over the std
//! synchronization primitives exposing parking_lot's panic-free,
//! guard-returning API. Poisoned locks are recovered transparently
//! (parking_lot has no poisoning).

use std::fmt;
use std::sync::{self, TryLockError};

pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

/// Reader–writer lock with parking_lot's `read()`/`write()` signatures.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// Mutex with parking_lot's `lock()` signature.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// Condition variable passthrough (API subset).
#[derive(Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    pub fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        self.0.wait(guard).unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_and_mutex_basics() {
        let l = RwLock::new(1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 6);
    }
}
