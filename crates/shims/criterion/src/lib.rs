//! Offline stand-in for `criterion`: a minimal benchmark harness with the
//! `Criterion` / `BenchmarkGroup` / `Bencher` API subset PIP's micro
//! benches use. Each benchmark is auto-calibrated to a short measurement
//! window and reports median ns/iteration on stdout.
//!
//! Run with `cargo bench`; set `CRITERION_SHIM_MEAS_MS` to lengthen the
//! per-benchmark measurement window (default 100 ms).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

fn measurement_window() -> Duration {
    let ms = std::env::var("CRITERION_SHIM_MEAS_MS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(100u64);
    Duration::from_millis(ms)
}

/// Top-level harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\nbench group: {name}");
        BenchmarkGroup {
            _c: self,
            name,
            sample_size: 10,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one("", &id.into(), 10, f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Criterion API: number of samples; the shim scales its measurement
    /// repetitions from it.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.name, &id.into(), self.sample_size, f);
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(group: &str, id: &str, samples: usize, mut f: F) {
    // Calibration pass: find an iteration count that fills a fraction of
    // the measurement window, then collect `samples` timed runs.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = (b.elapsed.as_nanos().max(1)) as f64 / b.iters as f64;
    let window = measurement_window();
    let budget_ns = window.as_nanos() as f64 / samples.max(1) as f64;
    let iters = ((budget_ns / per_iter).ceil() as u64).clamp(1, 10_000_000);

    let mut per_iter_samples = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter_samples.push(b.elapsed.as_nanos() as f64 / b.iters as f64);
    }
    per_iter_samples.sort_by(f64::total_cmp);
    let median = per_iter_samples[per_iter_samples.len() / 2];
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    println!("  {label:<40} {median:>12.1} ns/iter ({iters} iters x {samples} samples)");
}

/// Timing context passed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Group benchmark functions into one runnable entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emit `main` for `cargo bench` with `harness = false`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
