//! Offline stand-in for the `rand` crate, API-compatible with the subset
//! PIP uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`, and the `Rng`
//! methods `gen`, `gen_range`, `gen_bool`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — fully
//! deterministic and platform-independent, which is what PIP's
//! reproducibility story (per-variable seed derivation, bit-stable
//! parallel sampling) actually depends on. It makes no attempt to match
//! the stream of the real `rand::rngs::StdRng`.

use std::ops::{Range, RangeInclusive};

pub mod rngs {
    /// Deterministic xoshiro256++ generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        pub(crate) fn from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the canonical xoshiro seeding recipe.
            let mut z = seed;
            let mut next = || {
                z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut x = z;
                x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                x ^ (x >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }

        /// Snapshot of the full 256-bit generator state. Two generators
        /// with equal states produce identical streams forever, which is
        /// what makes the state usable as a memoization key for
        /// deterministic sampling (PIP's sample-block cache).
        #[inline]
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Restore a state captured by [`StdRng::state`] — used to
        /// fast-forward a generator past a cached draw sequence without
        /// re-drawing it.
        #[inline]
        pub fn set_state(&mut self, s: [u64; 4]) {
            self.s = s;
        }

        #[inline]
        pub(crate) fn next(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Seeding constructor trait (the only entry point PIP uses).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        rngs::StdRng::from_u64(seed)
    }
}

/// Types producible by `Rng::gen()`.
pub trait Standard: Sized {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for f64 {
    /// Uniform on `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Range types accepted by `Rng::gen_range`.
pub trait SampleRange {
    type Output;
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

impl SampleRange for Range<f64> {
    type Output = f64;
    #[inline]
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty gen_range");
        let u: f64 = Standard::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange for RangeInclusive<f64> {
    type Output = f64;
    #[inline]
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "empty gen_range");
        let u: f64 = Standard::sample(rng);
        // Scale by the next-up of 1.0's reciprocal so `hi` is reachable.
        lo + u * (hi - lo)
    }
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            #[inline]
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                // Multiply-shift bounded draw (Lemire); bias is < 2^-64.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (self.start as i128 + hi as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                let draw = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}
int_range!(i64, u64, i32, u32, usize);

/// The user-facing generator trait.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    #[inline]
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let u: f64 = self.gen();
        u < p
    }
}

impl Rng for rngs::StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.next()
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = rngs::StdRng::seed_from_u64(7);
        let mut b = rngs::StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = rngs::StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = rngs::StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = rngs::StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let x = r.gen_range(-3.0..7.0);
            assert!((-3.0..7.0).contains(&x));
            let n = r.gen_range(5i64..9);
            assert!((5..9).contains(&n));
            let m = r.gen_range(2usize..=4);
            assert!((2..=4).contains(&m));
        }
        assert!((0..1000).map(|_| r.gen_bool(0.25) as u32).sum::<u32>() < 400);
    }
}
