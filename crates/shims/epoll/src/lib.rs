//! Offline libc-level shim for Linux `epoll`, plus a nonblocking
//! self-wake pipe — the two kernel facilities `pip-server`'s reactor
//! needs and no vendored crate provides.
//!
//! The container has no crates.io access, so instead of the `libc` or
//! `mio` crates this shim declares the handful of symbols it needs
//! directly against the C library that `std` already links. Scope is
//! deliberately tiny: level-triggered readiness on socket/pipe file
//! descriptors, and a pipe the worker threads can write one byte into
//! to pull a reactor out of `epoll_wait`.
//!
//! ```
//! use std::os::fd::AsRawFd;
//! let ep = epoll::Epoll::new().unwrap();
//! let wake = epoll::WakePipe::new().unwrap();
//! ep.add(wake.read_fd(), epoll::EPOLLIN, 7).unwrap();
//! wake.wake();
//! let mut events = Vec::new();
//! ep.wait(&mut events, 8, 1000).unwrap();
//! assert_eq!((events[0].token, events[0].events & epoll::EPOLLIN), (7, epoll::EPOLLIN));
//! wake.drain();
//! ```

use std::io;
use std::os::fd::RawFd;
use std::os::raw::{c_int, c_void};

/// Readable (or a pending accept on a listener).
pub const EPOLLIN: u32 = 0x001;
/// Writable without blocking.
pub const EPOLLOUT: u32 = 0x004;
/// Error condition (always reported; never needs registering).
pub const EPOLLERR: u32 = 0x008;
/// Hangup (always reported; never needs registering).
pub const EPOLLHUP: u32 = 0x010;
/// Peer shut down its write side.
pub const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;
const EPOLL_CLOEXEC: c_int = 0o2000000;
const O_NONBLOCK: c_int = 0o4000;
const O_CLOEXEC: c_int = 0o2000000;

/// Kernel ABI layout of `struct epoll_event`. On x86-64 the kernel
/// (and glibc) use a packed layout; other architectures align `data`
/// naturally.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
struct RawEvent {
    events: u32,
    data: u64,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut RawEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut RawEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn pipe2(fds: *mut c_int, flags: c_int) -> c_int;
    fn close(fd: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
}

fn cvt(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// One readiness notification: which interest fired, for which token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Bitmask of `EPOLL*` flags that are ready.
    pub events: u32,
    /// The token the file descriptor was registered under.
    pub token: u64,
}

/// A level-triggered epoll instance.
///
/// Registered file descriptors are identified by caller-chosen `u64`
/// tokens; the instance never owns the descriptors it watches.
#[derive(Debug)]
pub struct Epoll {
    fd: RawFd,
}

// An epoll fd is a kernel object; ctl/wait are thread-safe.
unsafe impl Send for Epoll {}
unsafe impl Sync for Epoll {}

impl Epoll {
    pub fn new() -> io::Result<Epoll> {
        let fd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Epoll { fd })
    }

    fn ctl(&self, op: c_int, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        let mut ev = RawEvent {
            events: interest,
            data: token,
        };
        cvt(unsafe { epoll_ctl(self.fd, op, fd, &mut ev) }).map(|_| ())
    }

    /// Start watching `fd` for `interest`, reporting it as `token`.
    pub fn add(&self, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, interest, token)
    }

    /// Change the interest set (and token) of a watched descriptor.
    pub fn modify(&self, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, interest, token)
    }

    /// Stop watching `fd`. (Closing the descriptor also deregisters it,
    /// but only once every duplicate is closed — the reactor dups its
    /// streams, so it deletes explicitly.)
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        // The event argument must be non-null on pre-2.6.9 kernels;
        // passing a real struct is harmless everywhere.
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Wait up to `timeout_ms` (`-1` = forever) for readiness, filling
    /// `events` (cleared first) with at most `max` notifications.
    /// Returns the number of events. `EINTR` is retried internally.
    pub fn wait(&self, events: &mut Vec<Event>, max: usize, timeout_ms: i32) -> io::Result<usize> {
        events.clear();
        let max = max.clamp(1, 4096) as c_int;
        let mut raw = vec![RawEvent { events: 0, data: 0 }; max as usize];
        loop {
            let n = unsafe { epoll_wait(self.fd, raw.as_mut_ptr(), max, timeout_ms) };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    continue;
                }
                return Err(err);
            }
            for r in &raw[..n as usize] {
                // Copy fields out: the struct is packed on x86-64.
                let (ev, data) = (r.events, r.data);
                events.push(Event {
                    events: ev,
                    token: data,
                });
            }
            return Ok(n as usize);
        }
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        unsafe {
            close(self.fd);
        }
    }
}

/// A nonblocking self-pipe: any thread calls [`WakePipe::wake`] to make
/// the read end readable, pulling a reactor out of `epoll_wait`; the
/// reactor [`WakePipe::drain`]s it before going back to sleep. Wakes
/// coalesce naturally — once the pipe holds a byte, further wakes are
/// no-ops (`EAGAIN` on a full pipe is also fine: the reader is already
/// pending wakeup).
#[derive(Debug)]
pub struct WakePipe {
    read_fd: RawFd,
    write_fd: RawFd,
}

unsafe impl Send for WakePipe {}
unsafe impl Sync for WakePipe {}

impl WakePipe {
    pub fn new() -> io::Result<WakePipe> {
        let mut fds = [0 as c_int; 2];
        cvt(unsafe { pipe2(fds.as_mut_ptr(), O_NONBLOCK | O_CLOEXEC) })?;
        Ok(WakePipe {
            read_fd: fds[0],
            write_fd: fds[1],
        })
    }

    /// The end to register with [`Epoll::add`] under `EPOLLIN`.
    pub fn read_fd(&self) -> RawFd {
        self.read_fd
    }

    /// Make the read end readable. Never blocks; errors (pipe full =
    /// wake already pending) are deliberately ignored.
    pub fn wake(&self) {
        let byte = 1u8;
        unsafe {
            write(self.write_fd, (&byte as *const u8).cast(), 1);
        }
    }

    /// Consume every pending wake byte.
    pub fn drain(&self) {
        let mut buf = [0u8; 64];
        loop {
            let n = unsafe { read(self.read_fd, buf.as_mut_ptr().cast(), buf.len()) };
            if n <= 0 {
                return; // EAGAIN (drained), EOF, or error: nothing left to do
            }
        }
    }
}

impl Drop for WakePipe {
    fn drop(&mut self) {
        unsafe {
            close(self.read_fd);
            close(self.write_fd);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn wake_pipe_round_trip() {
        let ep = Epoll::new().unwrap();
        let wake = WakePipe::new().unwrap();
        ep.add(wake.read_fd(), EPOLLIN, 42).unwrap();

        let mut events = Vec::new();
        // Nothing pending: a zero timeout returns no events.
        assert_eq!(ep.wait(&mut events, 8, 0).unwrap(), 0);

        wake.wake();
        wake.wake(); // coalesces
        assert_eq!(ep.wait(&mut events, 8, 1000).unwrap(), 1);
        assert_eq!(events[0].token, 42);
        assert_ne!(events[0].events & EPOLLIN, 0);

        wake.drain();
        assert_eq!(ep.wait(&mut events, 8, 0).unwrap(), 0);
    }

    #[test]
    fn wakes_from_other_threads() {
        let ep = Epoll::new().unwrap();
        let wake = std::sync::Arc::new(WakePipe::new().unwrap());
        ep.add(wake.read_fd(), EPOLLIN, 1).unwrap();
        let w = std::sync::Arc::clone(&wake);
        let t = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(20));
            w.wake();
        });
        let mut events = Vec::new();
        // Blocks until the other thread wakes us.
        assert_eq!(ep.wait(&mut events, 8, 5000).unwrap(), 1);
        t.join().unwrap();
    }

    #[test]
    fn socket_readiness_and_interest_changes() {
        let ep = Epoll::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        ep.add(listener.as_raw_fd(), EPOLLIN, 10).unwrap();

        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let mut events = Vec::new();
        // The pending accept makes the listener readable.
        assert!(ep.wait(&mut events, 8, 2000).unwrap() >= 1);
        assert!(events.iter().any(|e| e.token == 10));

        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();
        // A fresh socket with an empty send buffer is writable.
        ep.add(server_side.as_raw_fd(), EPOLLOUT, 11).unwrap();
        assert!(ep.wait(&mut events, 8, 2000).unwrap() >= 1);
        assert!(events
            .iter()
            .any(|e| e.token == 11 && e.events & EPOLLOUT != 0));

        // Swap interest to EPOLLIN: not readable until the client writes.
        ep.modify(server_side.as_raw_fd(), EPOLLIN, 11).unwrap();
        let n = ep.wait(&mut events, 8, 0).unwrap();
        assert!(
            !events[..n].iter().any(|e| e.token == 11),
            "unexpected readability: {events:?}"
        );
        client.write_all(b"hello").unwrap();
        assert!(ep.wait(&mut events, 8, 2000).unwrap() >= 1);
        assert!(events
            .iter()
            .any(|e| e.token == 11 && e.events & EPOLLIN != 0));

        // Deregister: no more notifications for it.
        ep.delete(server_side.as_raw_fd()).unwrap();
        let n = ep.wait(&mut events, 8, 0).unwrap();
        assert!(!events[..n].iter().any(|e| e.token == 11));
    }
}
