//! Offline stand-in for `proptest`: deterministic random-input testing
//! with the API subset PIP's property tests use — `proptest!` with
//! `pat in strategy` bindings and `#![proptest_config]`, range and
//! `collection::vec` strategies, `prop_map`, and the `prop_assert*` /
//! `prop_assume!` macros.
//!
//! Unlike real proptest there is no shrinking: a failing case reports its
//! case number and message. Streams are seeded from the test name, so
//! runs are reproducible.

use std::fmt;
use std::ops::Range;

/// Deterministic SplitMix64 stream for test-case generation.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Stream for `(test name, case index)` — stable across runs.
    pub fn for_case(name: &str, case: u64) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// Outcome of a single generated test case.
#[derive(Debug)]
pub enum TestCaseError {
    /// Assertion failure — the property does not hold.
    Fail(String),
    /// `prop_assume!` rejected the inputs — try another case.
    Reject,
}

/// Runner configuration (`cases` = number of accepted cases to run).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of test inputs.
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128 - self.start as i128).max(1) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
int_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize);

/// String strategies from a `[c1-c2]{m,n}`-shaped pattern literal (the
/// only regex form PIP's tests use). Unrecognized patterns yield short
/// ASCII-lowercase strings.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (lo, hi, min, max) = parse_class_pattern(self).unwrap_or(('a', 'z', 0, 8));
        let len = min + rng.below((max - min + 1) as u64) as usize;
        (0..len)
            .map(|_| {
                let span = hi as u32 - lo as u32 + 1;
                char::from_u32(lo as u32 + rng.below(span as u64) as u32).unwrap_or(lo)
            })
            .collect()
    }
}

fn parse_class_pattern(p: &str) -> Option<(char, char, usize, usize)> {
    // Shape: [X-Y]{m,n}
    let rest = p.strip_prefix('[')?;
    let (class, rest) = rest.split_once(']')?;
    let mut cs = class.chars();
    let lo = cs.next()?;
    if cs.next()? != '-' {
        return None;
    }
    let hi = cs.next()?;
    let counts = rest.strip_prefix('{')?.strip_suffix('}')?;
    let (m, n) = counts.split_once(',')?;
    Some((lo, hi, m.trim().parse().ok()?, n.trim().parse().ok()?))
}

/// `proptest::collection` — vector strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Accepted vector-length specifications.
    pub trait IntoLen {
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoLen for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoLen for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.start + rng.below((self.end - self.start).max(1) as u64) as usize
        }
    }

    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    pub fn vec<S: Strategy, L: IntoLen>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: IntoLen> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Glob-import surface mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Internal: panic formatting for a failed case.
pub fn fail_case(name: &str, case: u64, msg: &str) -> ! {
    panic!("proptest '{name}' failed at case {case}: {msg}")
}

/// Internal: value formatting used by `prop_assert_eq!`.
pub fn debug_str<T: fmt::Debug>(v: &T) -> String {
    format!("{v:?}")
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: {} == {}\n  left: {}\n right: {}",
            stringify!($a),
            stringify!($b),
            $crate::debug_str(a),
            $crate::debug_str(b)
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: {} != {}\n  both: {}",
            stringify!($a),
            stringify!($b),
            $crate::debug_str(a)
        );
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// The test-defining macro. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` accepted random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg); $($rest)*);
    };
    (@run ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut accepted: u32 = 0;
            let mut case: u64 = 0;
            let max_cases: u64 = cfg.cases as u64 * 32 + 64;
            while accepted < cfg.cases {
                if case >= max_cases {
                    panic!(
                        "proptest '{}' rejected too many cases ({accepted}/{} accepted)",
                        stringify!($name),
                        cfg.cases
                    );
                }
                let mut __rng = $crate::TestRng::for_case(stringify!($name), case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match outcome {
                    ::std::result::Result::Ok(()) => accepted += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        $crate::fail_case(stringify!($name), case, &msg)
                    }
                }
                case += 1;
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_in_bounds(x in -2.0f64..2.0, n in 1i64..5) {
            prop_assert!((-2.0..2.0).contains(&x));
            prop_assert!((1..5).contains(&n));
        }

        #[test]
        fn vec_and_map(v in prop::collection::vec(0i64..10, 1..4)) {
            prop_assert!(!v.is_empty() && v.len() < 4);
            prop_assert!(v.iter().all(|&x| (0..10).contains(&x)));
        }

        #[test]
        fn assume_filters(x in -5.0f64..5.0) {
            prop_assume!(x > 0.0);
            prop_assert!(x > 0.0);
        }

        #[test]
        fn string_pattern(s in "[a-z]{0,3}") {
            prop_assert!(s.len() <= 3);
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn prop_map_composes() {
        let strat = (0i64..10).prop_map(|x| x * 2);
        let mut rng = crate::TestRng::for_case("map", 0);
        for _ in 0..20 {
            let v = strat.generate(&mut rng);
            assert!(v % 2 == 0 && (0..20).contains(&v));
        }
    }
}
