//! Interactive REPL for the PIP query service.
//!
//! ```text
//! cargo run -p pip-server --example repl            # in-process demo server
//! cargo run -p pip-server --example repl -- --serve 127.0.0.1:7app
//! cargo run -p pip-server --example repl -- 127.0.0.1:7777   # connect only
//! ```
//!
//! With no arguments a demo server is started on a loopback port and
//! pre-loaded with the paper's running example (uncertain order prices
//! and shipping durations), then the REPL connects to it over TCP like
//! any other client. Raw SQL input is wrapped in a `QUERY` command;
//! protocol commands (`PREPARE`, `EXEC`, `SET`, `STATS`, `PING`,
//! `QUIT`) pass through unchanged.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;

use pip_engine::Database;
use pip_sampling::SamplerConfig;
use pip_server::server::{serve, ServerOptions};

/// The paper's running example: orders with uncertain prices, shipping
/// legs with uncertain durations.
fn demo_database() -> Arc<Database> {
    let db = Arc::new(Database::new());
    let cfg = SamplerConfig::default();
    for stmt in [
        "CREATE TABLE orders (cust TEXT, ship_to TEXT, price SYMBOLIC)",
        "CREATE TABLE shipping (dest TEXT, duration SYMBOLIC)",
        "INSERT INTO orders VALUES \
         ('Joe', 'NY', create_variable('Normal', 100, 10)), \
         ('Bob', 'LA', create_variable('Normal', 50, 5))",
        "INSERT INTO shipping VALUES \
         ('NY', create_variable('Normal', 5, 2)), \
         ('LA', create_variable('Normal', 9, 2))",
    ] {
        pip_engine::sql::run(&db, stmt, &cfg).expect("demo data");
    }
    db
}

const KNOWN_COMMANDS: [&str; 12] = [
    "QUERY",
    "STREAM",
    "PREPARE",
    "EXEC",
    "EXECUTE",
    "DEALLOCATE",
    "ANALYZE",
    "SET",
    "STATS",
    "PING",
    "QUIT",
    "EXIT",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (server, addr) = match args.as_slice() {
        [] => {
            let handle = serve(demo_database(), "127.0.0.1:0", ServerOptions::default())
                .expect("start demo server");
            let addr = handle.addr();
            eprintln!("demo server listening on {addr}");
            eprintln!("try: SELECT expected_sum(price) FROM orders, shipping");
            eprintln!("     WHERE ship_to = dest AND cust = 'Joe' AND duration >= 7");
            (Some(handle), addr)
        }
        [flag, addr] if flag == "--serve" => {
            let handle = serve(demo_database(), addr.as_str(), ServerOptions::default())
                .expect("start server");
            let bound = handle.addr();
            eprintln!("serving demo catalog on {bound}; press ctrl-c to stop");
            // Serve-only mode: block forever.
            loop {
                std::thread::park();
            }
        }
        [addr] => (None, addr.parse().expect("address must be host:port")),
        _ => {
            eprintln!("usage: repl [ADDR | --serve ADDR]");
            std::process::exit(2);
        }
    };

    let stream = TcpStream::connect(addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone stream");
    let mut reader = BufReader::new(stream);
    let mut banner = String::new();
    reader.read_line(&mut banner).expect("banner");
    print!("{banner}");

    let stdin = std::io::stdin();
    let interactive = args.is_empty() || args.len() == 1;
    loop {
        if interactive {
            print!("pip> ");
            std::io::stdout().flush().ok();
        }
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break; // EOF
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        // Bare SQL is sugar for `QUERY <sql>`.
        let first_word = trimmed
            .split_whitespace()
            .next()
            .unwrap_or("")
            .to_ascii_uppercase();
        let request = if KNOWN_COMMANDS.contains(&first_word.as_str()) {
            trimmed.to_string()
        } else {
            format!("QUERY {trimmed}")
        };
        writer
            .write_all(format!("{request}\n").as_bytes())
            .expect("send");

        let mut reply = String::new();
        reader.read_line(&mut reply).expect("recv");
        print!("{reply}");
        let is_table = reply.starts_with("OK") && reply.contains(" rows ");
        // STREAM frames end with `END <n> rows (...)` instead of `END`.
        let is_stream = reply.starts_with("STREAM BEGIN");
        if is_table || is_stream {
            loop {
                let mut row = String::new();
                reader.read_line(&mut row).expect("recv row");
                print!("{row}");
                let t = row.trim_end();
                if t == "END" || (is_stream && (t.starts_with("END ") || t.starts_with("ERR "))) {
                    break;
                }
            }
        }
        if reply.starts_with("BYE") {
            break;
        }
    }

    if let Some(handle) = server {
        handle.shutdown();
    }
}
