//! The TCP front-end: one listener, one thread per connection, one
//! [`Session`](crate::session::Session) per connection over the shared
//! catalog.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use pip_engine::Database;
use pip_replica::Replication;
use pip_sampling::SamplerConfig;

use crate::protocol;
use crate::session::SessionManager;

/// Live connections: the socket handle (for shutdown) and its serving
/// thread (for join).
type ConnRegistry = Arc<Mutex<Vec<(TcpStream, JoinHandle<()>)>>>;

/// Service configuration.
#[derive(Clone)]
pub struct ServerOptions {
    /// Default per-session sampler configuration (sessions override it
    /// with `SET ...`).
    pub default_config: SamplerConfig,
    /// Per-session prepared-statement LRU capacity.
    pub prepared_cache: usize,
    /// Per-session sample-result LRU capacity.
    pub result_cache: usize,
    /// Background-checkpoint trigger: when the catalog's WAL grows past
    /// this many bytes, the server checkpoints it. `0` disables the
    /// background checkpointer; it is also inert for catalogs without a
    /// data directory. Explicit `CHECKPOINT` commands work either way.
    pub checkpoint_wal_bytes: u64,
    /// How often the background checkpointer polls the WAL size.
    pub checkpoint_poll: std::time::Duration,
    /// The node's replication role (primary fan-out or follower apply
    /// loop), when it has one. Sessions report it in `STATS` and route
    /// `PROMOTE` to it; the server does not otherwise interfere with it.
    pub replication: Option<Arc<Replication>>,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            default_config: SamplerConfig::default(),
            prepared_cache: 32,
            result_cache: 64,
            checkpoint_wal_bytes: 8 << 20,
            checkpoint_poll: std::time::Duration::from_millis(100),
            replication: None,
        }
    }
}

/// A running server; dropping the handle shuts it down (accept loop
/// stopped, established connections closed and joined).
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    active: Arc<AtomicUsize>,
    accept_thread: Option<JoinHandle<()>>,
    checkpoint_thread: Option<JoinHandle<()>>,
    conns: ConnRegistry,
    manager: Arc<SessionManager>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections currently being served.
    pub fn active_connections(&self) -> usize {
        self.active.load(Ordering::Relaxed)
    }

    /// Sessions opened since startup.
    pub fn sessions_created(&self) -> u64 {
        self.manager.sessions_created()
    }

    /// Stop the service: the accept loop exits, every established
    /// connection's socket is shut down (a blocked read returns EOF),
    /// and all connection threads are joined before this returns.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        // Poke the blocking accept loop awake.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.checkpoint_thread.take() {
            // Wake the poller out of its park_timeout so shutdown never
            // waits out a full poll interval.
            t.thread().unpark();
            let _ = t.join();
        }
        let conns = std::mem::take(&mut *self.conns.lock().unwrap_or_else(|e| e.into_inner()));
        for (stream, thread) in conns {
            let _ = stream.shutdown(Shutdown::Both);
            let _ = thread.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.stop();
        }
    }
}

/// Bind `addr` (e.g. `"127.0.0.1:0"`) and serve the shared catalog.
pub fn serve(
    db: Arc<Database>,
    addr: impl ToSocketAddrs,
    options: ServerOptions,
) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let manager = Arc::new(
        SessionManager::new(db, options.default_config.clone())
            .with_cache_capacities(options.prepared_cache, options.result_cache)
            .with_replication(options.replication.clone()),
    );
    let shutdown = Arc::new(AtomicBool::new(false));
    let active = Arc::new(AtomicUsize::new(0));
    let conns: ConnRegistry = Arc::new(Mutex::new(Vec::new()));

    // Background checkpointer: bound WAL replay time by snapshotting
    // whenever the log outgrows the trigger. Only for durable catalogs.
    let checkpoint_thread =
        if options.checkpoint_wal_bytes > 0 && manager.database().store().is_some() {
            let db = Arc::clone(manager.database());
            let shutdown = Arc::clone(&shutdown);
            let trigger = options.checkpoint_wal_bytes;
            let poll = options.checkpoint_poll;
            Some(
                std::thread::Builder::new()
                    .name("pip-server-checkpoint".into())
                    .spawn(move || {
                        while !shutdown.load(Ordering::Acquire) {
                            std::thread::park_timeout(poll);
                            if db.wal_bytes() >= trigger {
                                // Failure (e.g. disk full) is retried next
                                // poll; the WAL itself stays intact.
                                let _ = db.checkpoint();
                            }
                        }
                    })?,
            )
        } else {
            None
        };

    let accept_thread = {
        let manager = Arc::clone(&manager);
        let shutdown = Arc::clone(&shutdown);
        let active = Arc::clone(&active);
        let conns = Arc::clone(&conns);
        std::thread::Builder::new()
            .name("pip-server-accept".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    if shutdown.load(Ordering::Acquire) {
                        break;
                    }
                    let stream = match stream {
                        Ok(s) => s,
                        Err(_) => continue,
                    };
                    let Ok(stream_handle) = stream.try_clone() else {
                        continue;
                    };
                    let manager = Arc::clone(&manager);
                    let conn_active = Arc::clone(&active);
                    active.fetch_add(1, Ordering::Relaxed);
                    let spawned = std::thread::Builder::new()
                        .name("pip-server-conn".into())
                        .spawn(move || {
                            let _ = handle_connection(stream, &manager);
                            conn_active.fetch_sub(1, Ordering::Relaxed);
                        });
                    match spawned {
                        Ok(thread) => {
                            let mut c = conns.lock().unwrap_or_else(|e| e.into_inner());
                            // Finished threads' entries are pruned here,
                            // bounding the registry by peak concurrency.
                            c.retain(|(_, t)| !t.is_finished());
                            c.push((stream_handle, thread));
                        }
                        Err(_) => {
                            active.fetch_sub(1, Ordering::Relaxed);
                        }
                    }
                }
            })?
    };

    Ok(ServerHandle {
        addr,
        shutdown,
        active,
        accept_thread: Some(accept_thread),
        checkpoint_thread,
        conns,
        manager,
    })
}

/// Hard cap on one request line. Anything longer is rejected (and the
/// oversized line drained) instead of buffering unbounded client input.
const MAX_REQUEST_BYTES: usize = 1 << 20;

/// Read one `\n`-terminated request of at most `MAX_REQUEST_BYTES`.
/// Returns `Ok(None)` at EOF; an oversized request is fully consumed
/// and flagged via the returned bool so the caller can reject it.
fn read_request(reader: &mut BufReader<TcpStream>) -> io::Result<Option<(String, bool)>> {
    let mut line = String::new();
    let n =
        std::io::Read::take(&mut *reader, (MAX_REQUEST_BYTES + 1) as u64).read_line(&mut line)?;
    if n == 0 && line.is_empty() {
        return Ok(None); // clean EOF
    }
    if n == 0 || line.ends_with('\n') {
        // Complete request (or EOF terminating an unfinished line).
        return Ok(Some((line, false)));
    }
    // The cap cut the line mid-way: drain the rest of the oversized
    // line in bounded bites. `read_until` stops at the newline, so any
    // pipelined next request stays buffered intact.
    loop {
        let mut throwaway = Vec::new();
        let n = std::io::Read::take(&mut *reader, 64 * 1024).read_until(b'\n', &mut throwaway)?;
        if n == 0 {
            return Ok(None); // EOF inside the oversized line
        }
        if throwaway.ends_with(b"\n") {
            break;
        }
    }
    Ok(Some((String::new(), true)))
}

fn handle_connection(stream: TcpStream, manager: &SessionManager) -> io::Result<()> {
    let mut session = manager.open();
    let mut writer = stream.try_clone()?;
    writer.write_all(
        format!(
            "PIP server ready (session {}); commands: QUERY/STREAM/PREPARE/EXEC/SET/CHECKPOINT/STATS/PING/QUIT\n",
            session.id()
        )
        .as_bytes(),
    )?;
    let mut reader = BufReader::new(stream);
    while let Some((line, truncated)) = read_request(&mut reader)? {
        if truncated {
            writer
                .write_all(format!("ERR request exceeds {MAX_REQUEST_BYTES} bytes\n").as_bytes())?;
            writer.flush()?;
            continue;
        }
        if line.trim().is_empty() {
            continue;
        }
        // STREAM writes rows straight onto the socket as the physical
        // plan produces them; everything else replies as one block.
        let reply = match protocol::parse_command(&line) {
            Ok(protocol::Command::Stream(sql)) => {
                protocol::handle_stream(&mut session, &sql, &mut writer)?;
                writer.flush()?;
                continue;
            }
            Ok(cmd) => protocol::handle_command(&mut session, cmd),
            Err(e) => protocol::Reply::err(e),
        };
        writer.write_all(reply.text.as_bytes())?;
        writer.flush()?;
        if reply.close {
            break;
        }
    }
    Ok(())
}
