//! The TCP front-end: one nonblocking reactor thread owns every socket
//! ([`crate::reactor`]), a bounded scheduler fleet runs every query
//! ([`crate::scheduler`]), one [`Session`](crate::session::Session) per
//! connection over the shared catalog. No connection gets an OS thread.

use std::io;
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Weak};
use std::thread::JoinHandle;

use pip_engine::Database;
use pip_obs::{MonotonicClock, SlowLog};
use pip_replica::Replication;
use pip_sampling::SamplerConfig;

use crate::reactor::{Limits, Reactor, ReactorShared};
use crate::scheduler::{DedupMap, Scheduler, ServingCounters, ServingSnapshot};
use crate::session::SessionManager;

pub use crate::reactor::MAX_REQUEST_BYTES;

/// Service configuration.
#[derive(Clone)]
pub struct ServerOptions {
    /// Default per-session sampler configuration (sessions override it
    /// with `SET ...`).
    pub default_config: SamplerConfig,
    /// Per-session prepared-statement LRU capacity.
    pub prepared_cache: usize,
    /// Per-session sample-result LRU capacity.
    pub result_cache: usize,
    /// Background-checkpoint trigger: when the catalog's WAL grows past
    /// this many bytes, the server checkpoints it. `0` disables the
    /// background checkpointer; it is also inert for catalogs without a
    /// data directory. Explicit `CHECKPOINT` commands work either way.
    pub checkpoint_wal_bytes: u64,
    /// How often the background checkpointer polls the WAL size.
    pub checkpoint_poll: std::time::Duration,
    /// The node's replication role (primary fan-out or follower apply
    /// loop), when it has one. Sessions report it in `STATS` and route
    /// `PROMOTE` to it; the server does not otherwise interfere with it.
    pub replication: Option<Arc<Replication>>,
    /// Scheduler worker threads executing queries (`0` = auto: the
    /// machine's available parallelism, at least 2). Session results
    /// never depend on this — the sampling runtime is bit-deterministic.
    pub workers: usize,
    /// Admission bound: at most this many expensive commands
    /// (`QUERY`/`EXEC`/`STREAM`) may be admitted-but-incomplete at
    /// once, server-wide; excess requests answer `ERR busy`.
    pub queue_capacity: usize,
    /// Parsed-but-unexecuted commands per connection before the reactor
    /// stops reading that socket (TCP backpressure on the pipeline).
    pub max_pipeline: usize,
    /// Staged reply bytes per connection before the producing worker
    /// blocks on the reader draining (slow readers stall only
    /// themselves, and are evicted if stuck too long).
    pub max_outbound_bytes: usize,
    /// How long a worker may sit blocked on one connection's full
    /// output buffer before the peer is evicted as a stuck reader.
    pub write_stall_timeout: std::time::Duration,
    /// Graceful-shutdown drain budget: queued commands get this long to
    /// finish and flush before remaining connections are force-closed.
    pub drain_timeout: std::time::Duration,
    /// Optional Prometheus scrape endpoint (e.g. `"127.0.0.1:9187"`):
    /// `GET /metrics` answers the same families as the `METRICS` verb,
    /// served by the reactor thread itself.
    pub metrics_addr: Option<String>,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            default_config: SamplerConfig::default(),
            prepared_cache: 32,
            result_cache: 64,
            checkpoint_wal_bytes: 8 << 20,
            checkpoint_poll: std::time::Duration::from_millis(100),
            replication: None,
            workers: 0,
            queue_capacity: 256,
            max_pipeline: 128,
            max_outbound_bytes: 8 << 20,
            write_stall_timeout: crate::reactor::WRITE_STALL_TIMEOUT,
            drain_timeout: std::time::Duration::from_secs(5),
            metrics_addr: None,
        }
    }
}

/// A running server; dropping the handle shuts it down (listener
/// closed, queued work drained, connections closed, threads joined).
pub struct ServerHandle {
    addr: SocketAddr,
    metrics_addr: Option<SocketAddr>,
    shared: Arc<ReactorShared>,
    scheduler: Arc<Scheduler>,
    serving: Arc<ServingCounters>,
    active: Arc<AtomicUsize>,
    reactor_thread: Option<JoinHandle<()>>,
    checkpoint_thread: Option<JoinHandle<()>>,
    manager: Arc<SessionManager>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound metrics-scrape address, when one was requested.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_addr
    }

    /// Connections currently being served.
    pub fn active_connections(&self) -> usize {
        self.active.load(Ordering::Relaxed)
    }

    /// Sessions opened since startup.
    pub fn sessions_created(&self) -> u64 {
        self.manager.sessions_created()
    }

    /// The scheduler's serving counters, as also reported by `STATS`.
    pub fn serving(&self) -> ServingSnapshot {
        self.serving.snapshot()
    }

    /// Stop the service: the listener closes, established connections
    /// stop being read, already-queued commands run to completion and
    /// their replies flush (bounded by
    /// [`ServerOptions::drain_timeout`]), then every thread is joined
    /// before this returns.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.wake.wake();
        if let Some(t) = self.reactor_thread.take() {
            let _ = t.join();
        }
        self.scheduler.shutdown();
        if let Some(t) = self.checkpoint_thread.take() {
            // Wake the poller out of its park_timeout so shutdown never
            // waits out a full poll interval.
            t.thread().unpark();
            let _ = t.join();
        }
        // Workers may have queued dirty notifications after the reactor
        // exited; clear them so no Conn ↔ ReactorShared cycle leaks.
        self.shared.clear_dirty();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.reactor_thread.is_some() {
            self.stop();
        }
    }
}

/// Derived replication gauges, computed at scrape time. The closures
/// hold `Weak` references: the registry must not keep the replication
/// role (and its threads) alive after the server drops it — and the
/// very same series keep reporting after a `PROMOTE` swaps the role's
/// internal state, since registration is idempotent by family name.
fn register_replication_gauges(registry: &pip_obs::Registry, repl: &Arc<Replication>) {
    let w: Weak<Replication> = Arc::downgrade(repl);
    let r = w.clone();
    registry.gauge_fn(
        "pip_replica_role",
        "Replication role: 1 = primary, 0 = replica.",
        move || {
            r.upgrade()
                .map_or(0.0, |r| if r.role() == "primary" { 1.0 } else { 0.0 })
        },
    );
    let r = w.clone();
    registry.gauge_fn(
        "pip_replica_epoch",
        "Replication epoch (bumped by every PROMOTE).",
        move || r.upgrade().map_or(0.0, |r| r.epoch() as f64),
    );
    let r = w.clone();
    registry.gauge_fn(
        "pip_replica_lag",
        "Versions this node is behind (follower) or ahead of its slowest follower (primary).",
        move || r.upgrade().map_or(0.0, |r| r.replication_lag() as f64),
    );
    let r = w.clone();
    registry.gauge_fn(
        "pip_replica_applied_version",
        "Catalog version this node has applied.",
        move || r.upgrade().map_or(0.0, |r| r.applied_version() as f64),
    );
    let r = w;
    registry.gauge_fn(
        "pip_replica_followers",
        "Followers currently attached (primary only).",
        move || r.upgrade().map_or(0.0, |r| r.follower_count() as f64),
    );
}

/// Bind `addr` (e.g. `"127.0.0.1:0"`) and serve the shared catalog.
pub fn serve(
    db: Arc<Database>,
    addr: impl ToSocketAddrs,
    options: ServerOptions,
) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let metrics_listener = match &options.metrics_addr {
        Some(a) => Some(TcpListener::bind(a)?),
        None => None,
    };
    let metrics_addr = match &metrics_listener {
        Some(l) => Some(l.local_addr()?),
        None => None,
    };
    // The serving counters live in the catalog's metric registry: STATS,
    // the METRICS verb, and the HTTP scrape all read the same atomics.
    let serving = Arc::new(ServingCounters::register(
        options.queue_capacity,
        db.obs_registry(),
    ));
    if let Some(repl) = &options.replication {
        register_replication_gauges(db.obs_registry(), repl);
    }
    let slowlog = Arc::new(SlowLog::new());
    let dedup = Arc::new(DedupMap::new());
    let manager = Arc::new(
        SessionManager::new(db, options.default_config.clone())
            .with_cache_capacities(options.prepared_cache, options.result_cache)
            .with_replication(options.replication.clone())
            .with_serving(Arc::clone(&serving), dedup)
            .with_obs(Arc::new(MonotonicClock), slowlog),
    );
    let workers = match options.workers {
        0 => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(2)
            .max(2),
        n => n,
    };
    let scheduler = Arc::new(Scheduler::new(workers)?);
    let shared = Arc::new(ReactorShared::new()?);
    let active = Arc::new(AtomicUsize::new(0));

    // Background checkpointer: bound WAL replay time by snapshotting
    // whenever the log outgrows the trigger. Only for durable catalogs.
    let shutdown = Arc::clone(&shared);
    let checkpoint_thread =
        if options.checkpoint_wal_bytes > 0 && manager.database().store().is_some() {
            let db = Arc::clone(manager.database());
            let trigger = options.checkpoint_wal_bytes;
            let poll = options.checkpoint_poll;
            Some(
                std::thread::Builder::new()
                    .name("pip-server-checkpoint".into())
                    .spawn(move || {
                        while !shutdown.shutdown.load(Ordering::Acquire) {
                            std::thread::park_timeout(poll);
                            if db.wal_bytes() >= trigger {
                                // Failure (e.g. disk full) is retried next
                                // poll; the WAL itself stays intact.
                                let _ = db.checkpoint();
                            }
                        }
                    })?,
            )
        } else {
            None
        };

    let reactor = Reactor::new(
        listener,
        metrics_listener,
        Arc::clone(&shared),
        Arc::clone(&scheduler),
        Arc::clone(&manager),
        Arc::clone(&serving),
        Arc::clone(&active),
        Limits {
            max_pipeline: options.max_pipeline.max(1),
            max_outbound: options.max_outbound_bytes.max(1),
            write_stall_timeout: options.write_stall_timeout,
            drain_timeout: options.drain_timeout,
        },
    )?;
    let reactor_thread = std::thread::Builder::new()
        .name("pip-server-reactor".into())
        .spawn(move || reactor.run())?;

    Ok(ServerHandle {
        addr,
        metrics_addr,
        shared,
        scheduler,
        serving,
        active,
        reactor_thread: Some(reactor_thread),
        checkpoint_thread,
        manager,
    })
}
