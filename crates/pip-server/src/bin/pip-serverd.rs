//! The PIP server daemon: a durable catalog behind the TCP protocol.
//!
//! ```text
//! pip-serverd [--addr HOST:PORT] [--data-dir DIR]
//!             [--durability off|wal|sync] [--checkpoint-bytes N]
//! ```
//!
//! With `--data-dir`, the catalog is recovered from the directory on
//! startup (snapshot + WAL replay) and every mutation is logged; without
//! it the catalog is memory-only, exactly as before. The bound address
//! is printed as `LISTENING <addr>` once the server accepts connections
//! (use `--addr 127.0.0.1:0` to let the OS pick a port — the recovery
//! integration test drives the daemon this way).

use std::io::Write;
use std::sync::Arc;

use pip_engine::{Database, Durability};
use pip_server::server::{serve, ServerOptions};

fn usage() -> ! {
    eprintln!(
        "usage: pip-serverd [--addr HOST:PORT] [--data-dir DIR] \
         [--durability off|wal|sync] [--checkpoint-bytes N]"
    );
    std::process::exit(2);
}

fn main() {
    let mut addr = "127.0.0.1:7432".to_string();
    let mut data_dir: Option<String> = None;
    let mut durability: Option<Durability> = None;
    let mut options = ServerOptions::default();

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--addr" => addr = value(),
            "--data-dir" => data_dir = Some(value()),
            "--durability" => {
                durability = Some(Durability::parse(&value()).unwrap_or_else(|| usage()))
            }
            "--checkpoint-bytes" => {
                options.checkpoint_wal_bytes = value().parse().unwrap_or_else(|_| usage())
            }
            _ => usage(),
        }
    }

    let db = match &data_dir {
        Some(dir) => {
            let (db, info) = Database::recover(dir).unwrap_or_else(|e| {
                eprintln!("pip-serverd: recovery of {dir} failed: {e}");
                std::process::exit(1);
            });
            eprintln!(
                "pip-serverd: recovered {dir}: version={} snapshot_gen={} replayed={}{}",
                info.version,
                info.snapshot_gen,
                info.replayed,
                if info.torn_tail {
                    " (torn tail truncated)"
                } else {
                    ""
                }
            );
            if let Some(level) = durability {
                db.set_durability(level).expect("store is attached");
            }
            db
        }
        None => Database::new(),
    };

    let handle = serve(Arc::new(db), addr.as_str(), options).unwrap_or_else(|e| {
        eprintln!("pip-serverd: cannot bind {addr}: {e}");
        std::process::exit(1);
    });
    println!("LISTENING {}", handle.addr());
    std::io::stdout().flush().expect("stdout");

    // Serve until killed; connection threads do all the work.
    loop {
        std::thread::park();
    }
}
