//! The PIP server daemon: a durable catalog behind the TCP protocol.
//!
//! ```text
//! pip-serverd [--addr HOST:PORT] [--data-dir DIR]
//!             [--durability off|wal|sync] [--checkpoint-bytes N]
//!             [--workers N] [--queue N]
//!             [--metrics-addr HOST:PORT]
//!             [--replication-addr HOST:PORT]
//!             [--replicate-from HOST:PORT[,HOST:PORT...]]
//! ```
//!
//! `--metrics-addr` binds a Prometheus scrape endpoint (`GET /metrics`,
//! printed as `METRICS <addr>`) exposing the same families as the
//! `METRICS` protocol verb. Diagnostics go to stderr through the
//! `pip-obs` logger; `PIP_LOG=error|warn|info|debug` sets the level.
//!
//! `--workers` sizes the scheduler fleet executing queries (0 = auto:
//! the machine's available parallelism); `--queue` is the admission
//! bound — at most N expensive commands (`QUERY`/`EXEC`/`STREAM`)
//! admitted-but-incomplete at once, the rest answering `ERR busy`.
//!
//! With `--data-dir`, the catalog is recovered from the directory on
//! startup (snapshot + WAL replay) and every mutation is logged; without
//! it the catalog is memory-only, exactly as before. The bound address
//! is printed as `LISTENING <addr>` once the server accepts connections
//! (use `--addr 127.0.0.1:0` to let the OS pick a port — the recovery
//! integration test drives the daemon this way).
//!
//! Replication roles (see the `pip-replica` crate):
//!
//! * `--replication-addr` alone makes this node a **primary**: it binds
//!   a second listener (printed as `REPLICATING <addr>`) and ships its
//!   WAL to any follower that connects. Requires `--data-dir`, and pins
//!   durability on (`SET DURABILITY OFF` is refused while replicating).
//! * `--replicate-from` makes this node a **follower**: the catalog is
//!   read-only (queries, `EXEC`, and sampling are served as usual;
//!   mutations answer `ERR`) and tracks the primary's log. The value
//!   may be a comma-separated candidate list — the follower rotates
//!   through it with backoff until one serves it, and re-points
//!   automatically when a candidate refuses it (fenced, deposed, or
//!   stale). With `--data-dir`, applied state is durable, so a restart
//!   resumes from its local prefix instead of re-transferring.
//! * **Both together** make a **promotable follower**: it follows the
//!   candidate list, and the `PROMOTE` protocol verb seals the feed,
//!   mints the next replication epoch, flips the catalog writable, and
//!   starts serving the feed on `--replication-addr` — surviving
//!   followers re-point to it, and the deposed primary is fenced.
//!   Requires `--data-dir` (the post-promotion feed is the WAL).

use std::io::Write;
use std::sync::Arc;

use pip_engine::{Database, Durability};
use pip_replica::Replication;
use pip_server::server::{serve, ServerOptions};

fn usage() -> ! {
    eprintln!(
        "usage: pip-serverd [--addr HOST:PORT] [--data-dir DIR] \
         [--durability off|wal|sync] [--checkpoint-bytes N] \
         [--workers N] [--queue N] [--metrics-addr HOST:PORT] \
         [--replication-addr HOST:PORT] [--replicate-from HOST:PORT[,HOST:PORT...]]"
    );
    std::process::exit(2);
}

fn main() {
    pip_obs::init_start_time();
    let mut addr = "127.0.0.1:7432".to_string();
    let mut data_dir: Option<String> = None;
    let mut durability: Option<Durability> = None;
    let mut replication_addr: Option<String> = None;
    let mut replicate_from: Option<String> = None;
    let mut options = ServerOptions::default();

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--addr" => addr = value(),
            "--data-dir" => data_dir = Some(value()),
            "--durability" => {
                durability = Some(Durability::parse(&value()).unwrap_or_else(|| usage()))
            }
            "--checkpoint-bytes" => {
                options.checkpoint_wal_bytes = value().parse().unwrap_or_else(|_| usage())
            }
            "--workers" => options.workers = value().parse().unwrap_or_else(|_| usage()),
            "--queue" => {
                options.queue_capacity = value().parse().unwrap_or_else(|_| usage());
                if options.queue_capacity == 0 {
                    usage();
                }
            }
            "--metrics-addr" => options.metrics_addr = Some(value()),
            "--replication-addr" => replication_addr = Some(value()),
            "--replicate-from" => replicate_from = Some(value()),
            _ => usage(),
        }
    }
    if replication_addr.is_some() && data_dir.is_none() {
        pip_obs::error!("--replication-addr requires --data-dir (the WAL is the feed)");
        std::process::exit(2);
    }
    if let Some(from) = &replicate_from {
        if from.split(',').all(|c| c.trim().is_empty()) {
            pip_obs::error!("--replicate-from needs at least one HOST:PORT candidate");
            std::process::exit(2);
        }
    }

    let db = match &data_dir {
        Some(dir) => {
            let (db, info) = Database::recover(dir).unwrap_or_else(|e| {
                pip_obs::error!("recovery of {dir} failed: {e}");
                std::process::exit(1);
            });
            pip_obs::info!(
                "recovered {dir}: version={} snapshot_gen={} replayed={}{}",
                info.version,
                info.snapshot_gen,
                info.replayed,
                if info.torn_tail {
                    " (torn tail truncated)"
                } else {
                    ""
                }
            );
            if let Some(level) = durability {
                db.set_durability(level).expect("store is attached");
            }
            db
        }
        None => Database::new(),
    };
    let db = Arc::new(db);

    options.replication = match (&replication_addr, &replicate_from) {
        (Some(repl_addr), None) => {
            let repl = Replication::primary(Arc::clone(&db), repl_addr).unwrap_or_else(|e| {
                pip_obs::error!("cannot start replication on {repl_addr}: {e}");
                std::process::exit(1);
            });
            println!(
                "REPLICATING {}",
                repl.local_addr().expect("primary address")
            );
            Some(Arc::new(repl))
        }
        (listen, Some(from)) => {
            let repl = Replication::follower_promotable(Arc::clone(&db), from, listen.as_deref());
            pip_obs::info!(
                "following {from}{}",
                match listen {
                    Some(l) => format!(" (promotable; would serve the feed on {l})"),
                    None => String::new(),
                }
            );
            Some(Arc::new(repl))
        }
        (None, None) => None,
    };

    let handle = serve(db, addr.as_str(), options).unwrap_or_else(|e| {
        pip_obs::error!("cannot bind {addr}: {e}");
        std::process::exit(1);
    });
    if let Some(m) = handle.metrics_addr() {
        println!("METRICS {m}");
    }
    println!("LISTENING {}", handle.addr());
    std::io::stdout().flush().expect("stdout");

    // Serve until killed; connection threads do all the work.
    loop {
        std::thread::park();
    }
}
