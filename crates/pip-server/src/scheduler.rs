//! The sampling scheduler: a bounded worker fleet shared by every
//! connection, with per-query admission control and cross-session
//! deduplication of identical sampling work.
//!
//! The reactor ([`crate::reactor`]) never executes a query itself — it
//! parses requests and appends them to the owning connection's command
//! queue, then marks the connection *runnable* here. A fixed pool of
//! scheduler workers pops runnable connections and executes their
//! queued commands one at a time (per-connection order is strict —
//! that is what makes pipelined `QUERY`/`EXEC` streams deterministic),
//! re-enqueueing the connection after each command so a long pipeline
//! cannot starve other sessions. Inside a command, sampling still fans
//! out over [`pip_sampling::parallel::ParallelSampler`]'s process-wide
//! pool (`SET THREADS`), so the two layers compose: the scheduler
//! bounds *how many queries* run at once, the sampler pool bounds *how
//! many threads* one query uses.
//!
//! Three mechanisms keep an overloaded server well-behaved:
//!
//! * **Admission control** ([`ServingCounters::try_admit`]): at most
//!   `capacity` expensive commands (`QUERY`/`EXEC`/`STREAM`) may be
//!   admitted-but-incomplete at once, server-wide. Excess requests are
//!   answered `ERR busy` *in pipeline order* instead of growing queues
//!   without bound.
//! * **Backpressure**: per-connection command queues are capped by the
//!   reactor (it simply stops reading a socket whose pipeline is full,
//!   letting TCP flow control push back on the client).
//! * **Work dedup** ([`DedupMap`]): when several sessions concurrently
//!   submit a `SELECT` with the same text, sampling parameters and
//!   catalog version, one *leader* executes it and the others become
//!   *followers* sharing the leader's result table. The PR 4 block
//!   cache dedupes the compute inside one execution; this dedupes the
//!   executions themselves. Sharing is value-neutral by construction —
//!   the key pins everything the result depends on, so a follower's
//!   reply is byte-identical to what its own execution would produce.

use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use pip_core::Result;
use pip_ctable::CTable;
use pip_obs::{Counter, Gauge, Histogram, Registry};

// ---------------------------------------------------------------------
// Serving counters + admission control.
// ---------------------------------------------------------------------

/// Scheduler-wide serving counters, reported by `STATS` as
/// `inflight=`/`queued=`/`admitted=`/`rejected=`/`batched=` and scraped
/// as the `pip_server_*` metric families — one set of atomics backs
/// both (the pip-obs registry is the single source of truth).
///
/// `admitted`, `rejected`, `completed`, `cancelled` and `batched` are
/// monotonic totals; `queued` and `inflight` are gauges
/// (`queued + inflight <= capacity` at all times — that inequality *is*
/// the admission bound, and `admitted == completed + cancelled +
/// inflight + queued` at every instant — the accounting invariant the
/// observability suite property-tests).
///
/// The admission decision itself rides on a separate private
/// `AtomicUsize` CAS, never on the registry handles, so the global
/// `pip_obs::set_enabled(false)` switch (which only gates histograms
/// and spans) cannot perturb admission control.
#[derive(Debug)]
pub struct ServingCounters {
    capacity: usize,
    /// Admitted-but-incomplete expensive commands (queued + inflight).
    load: AtomicUsize,
    queued: Arc<Gauge>,
    inflight: Arc<Gauge>,
    admitted: Arc<Counter>,
    rejected: Arc<Counter>,
    completed: Arc<Counter>,
    cancelled: Arc<Counter>,
    batched: Arc<Counter>,
    dedup_leaders: Arc<Counter>,
    /// Reactor-side event counters (accepted sockets, wire bytes, flow
    /// control and protocol kills). They live here because every layer
    /// that needs them — reactor, connections, sessions — already
    /// shares this struct.
    pub(crate) accepts: Arc<Counter>,
    pub(crate) read_bytes: Arc<Counter>,
    pub(crate) flushed_bytes: Arc<Counter>,
    pub(crate) backpressure_pauses: Arc<Counter>,
    pub(crate) slow_reader_evictions: Arc<Counter>,
    pub(crate) oversize_kills: Arc<Counter>,
    pub(crate) utf8_kills: Arc<Counter>,
    /// Session-cache hit totals (result cache keyed by SQL + sampling
    /// parameters + catalog version; prepared statements by name).
    pub(crate) result_cache_hits: Arc<Counter>,
    pub(crate) prepared_cache_hits: Arc<Counter>,
    /// Latency histograms: admit → start, one command slice, and the
    /// parked-reply duration of replication waits.
    pub(crate) admission_wait_seconds: Arc<Histogram>,
    pub(crate) slice_seconds: Arc<Histogram>,
    pub(crate) park_seconds: Arc<Histogram>,
}

/// One consistent-enough reading of the counters for `STATS`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServingSnapshot {
    pub inflight: u64,
    pub queued: u64,
    pub admitted: u64,
    pub rejected: u64,
    pub completed: u64,
    pub cancelled: u64,
    pub batched: u64,
    pub evictions: u64,
    pub oversize: u64,
    pub capacity: usize,
}

impl ServingCounters {
    /// Standalone counters (embedded sessions, unit tests): registered
    /// into a private registry nobody scrapes.
    pub fn new(capacity: usize) -> Self {
        Self::register(capacity, &Registry::new())
    }

    /// Build the counters as `pip_server_*` families in `registry`, so
    /// `METRICS` and `STATS` read the very same atomics. Registration is
    /// idempotent on family names.
    pub fn register(capacity: usize, r: &Registry) -> Self {
        ServingCounters {
            capacity: capacity.max(1),
            load: AtomicUsize::new(0),
            queued: r.gauge(
                "pip_server_queued",
                "Admitted commands waiting for a scheduler worker.",
            ),
            inflight: r.gauge(
                "pip_server_inflight",
                "Admitted commands currently executing.",
            ),
            admitted: r.counter(
                "pip_server_admitted_total",
                "Expensive commands admitted past admission control.",
            ),
            rejected: r.counter(
                "pip_server_rejected_total",
                "Expensive commands refused with ERR busy at capacity.",
            ),
            completed: r.counter(
                "pip_server_completed_total",
                "Admitted commands that finished executing.",
            ),
            cancelled: r.counter(
                "pip_server_cancelled_total",
                "Admitted commands dropped before execution (close, QUIT, shutdown).",
            ),
            batched: r.counter(
                "pip_server_dedup_follower_total",
                "SELECTs served by joining another session's identical in-flight execution.",
            ),
            dedup_leaders: r.counter(
                "pip_server_dedup_leader_total",
                "Deduplicated SELECT executions led on behalf of other sessions.",
            ),
            accepts: r.counter(
                "pip_server_accepts_total",
                "Client connections accepted by the reactor.",
            ),
            read_bytes: r.counter(
                "pip_server_read_bytes_total",
                "Request bytes read off client sockets.",
            ),
            flushed_bytes: r.counter(
                "pip_server_flushed_bytes_total",
                "Reply bytes flushed to client sockets.",
            ),
            backpressure_pauses: r.counter(
                "pip_server_backpressure_pauses_total",
                "Times a connection's reads were paused by the pipeline cap.",
            ),
            slow_reader_evictions: r.counter(
                "pip_server_slow_reader_evictions_total",
                "Connections evicted for not draining their replies in time.",
            ),
            oversize_kills: r.counter(
                "pip_server_oversize_kills_total",
                "Request lines discarded for exceeding the size cap.",
            ),
            utf8_kills: r.counter(
                "pip_server_utf8_kills_total",
                "Connections dropped for sending non-UTF-8 request lines.",
            ),
            result_cache_hits: r.counter(
                "pip_server_result_cache_hits_total",
                "Queries answered from a session's sample-result cache.",
            ),
            prepared_cache_hits: r.counter(
                "pip_server_prepared_cache_hits_total",
                "EXECs that found their prepared plan cached.",
            ),
            admission_wait_seconds: r.histogram(
                "pip_server_admission_wait_seconds",
                "Time admitted commands waited between admission and execution.",
            ),
            slice_seconds: r.histogram(
                "pip_server_slice_seconds",
                "Execution time of one scheduler command slice.",
            ),
            park_seconds: r.histogram(
                "pip_server_park_seconds",
                "Time parked connections waited for replication to release a reply.",
            ),
        }
    }

    /// The admission bound `K`.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Try to admit one expensive command. On success the command is
    /// accounted as queued; the caller must later pair this with
    /// [`ServingCounters::start`] + [`ServingCounters::finish`] (or
    /// [`ServingCounters::cancel_queued`] if it is dropped unrun).
    pub fn try_admit(&self) -> bool {
        let admitted = self
            .load
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |load| {
                (load < self.capacity).then_some(load + 1)
            })
            .is_ok();
        if admitted {
            self.queued.add(1);
            self.admitted.inc();
        } else {
            self.rejected.inc();
        }
        admitted
    }

    /// An admitted command starts executing: queued → inflight.
    pub fn start(&self) {
        self.queued.sub(1);
        self.inflight.add(1);
    }

    /// An executing command finished (successfully or not).
    pub fn finish(&self) {
        self.inflight.sub(1);
        self.completed.inc();
        self.load.fetch_sub(1, Ordering::AcqRel);
    }

    /// An admitted command was dropped before execution (connection
    /// closed, `QUIT` ahead of it in the pipeline, shutdown).
    pub fn cancel_queued(&self) {
        self.queued.sub(1);
        self.cancelled.inc();
        self.load.fetch_sub(1, Ordering::AcqRel);
    }

    /// A session was served by joining another session's in-flight
    /// execution of the same work.
    pub fn note_batched(&self) {
        self.batched.inc();
    }

    /// A session led a deduplicated execution other sessions could join.
    pub fn note_dedup_leader(&self) {
        self.dedup_leaders.inc();
    }

    pub fn snapshot(&self) -> ServingSnapshot {
        ServingSnapshot {
            inflight: self.inflight.get().max(0) as u64,
            queued: self.queued.get().max(0) as u64,
            admitted: self.admitted.get(),
            rejected: self.rejected.get(),
            completed: self.completed.get(),
            cancelled: self.cancelled.get(),
            batched: self.batched.get(),
            evictions: self.slow_reader_evictions.get(),
            oversize: self.oversize_kills.get(),
            capacity: self.capacity,
        }
    }
}

// ---------------------------------------------------------------------
// Cross-session work dedup.
// ---------------------------------------------------------------------

enum EntryState {
    /// The leader is computing.
    Running,
    /// The leader finished; everyone shares the table.
    Done(Arc<CTable>),
    /// The leader failed or unwound: followers must retry themselves
    /// (errors are deterministic, so each retry reproduces the same
    /// reply the session would have produced alone).
    Poisoned,
}

struct Entry {
    state: Mutex<EntryState>,
    done: Condvar,
}

impl Entry {
    fn new() -> Entry {
        Entry {
            state: Mutex::new(EntryState::Running),
            done: Condvar::new(),
        }
    }

    fn complete(&self, state: EntryState) {
        *self.state.lock().unwrap_or_else(|e| e.into_inner()) = state;
        self.done.notify_all();
    }
}

/// In-flight `SELECT` executions keyed by the session result-cache key
/// (statement text + sampling parameters + catalog version — see
/// `Session::cache_suffix`; the key pins the result bit-for-bit).
#[derive(Default)]
pub struct DedupMap {
    inflight: Mutex<HashMap<String, Arc<Entry>>>,
}

/// Poisons-and-removes the leader's entry unless it completed cleanly,
/// so followers never wait on a leader that unwound.
struct LeaderGuard<'a> {
    map: &'a DedupMap,
    key: &'a str,
    entry: &'a Arc<Entry>,
    completed: bool,
}

impl Drop for LeaderGuard<'_> {
    fn drop(&mut self) {
        if !self.completed {
            self.entry.complete(EntryState::Poisoned);
            self.map
                .inflight
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .remove(self.key);
        }
    }
}

impl DedupMap {
    pub fn new() -> DedupMap {
        DedupMap::default()
    }

    /// In-flight executions right now (tests / diagnostics).
    pub fn len(&self) -> usize {
        self.inflight
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Run `run` for `key`, sharing the execution with any concurrent
    /// caller holding the same key. Returns the result table plus
    /// whether this call was a follower (served from another session's
    /// execution). `run` must be a pure function of the key — true for
    /// the result-cache keys, which pin seed, sampling parameters and
    /// catalog version.
    pub fn run_shared(
        &self,
        key: &str,
        run: impl Fn() -> Result<CTable>,
    ) -> (Result<Arc<CTable>>, bool) {
        let mut followed = false;
        loop {
            let existing = {
                let mut map = self.inflight.lock().unwrap_or_else(|e| e.into_inner());
                match map.get(key) {
                    Some(entry) => Some(Arc::clone(entry)),
                    None => {
                        map.insert(key.to_string(), Arc::new(Entry::new()));
                        None
                    }
                }
            };
            match existing {
                None => {
                    // Leader: compute, publish, retire the entry.
                    let entry = {
                        let map = self.inflight.lock().unwrap_or_else(|e| e.into_inner());
                        Arc::clone(map.get(key).expect("leader entry present"))
                    };
                    let mut guard = LeaderGuard {
                        map: self,
                        key,
                        entry: &entry,
                        completed: false,
                    };
                    let result = run();
                    guard.completed = true;
                    drop(guard);
                    let out = match result {
                        Ok(table) => {
                            let table = Arc::new(table);
                            entry.complete(EntryState::Done(Arc::clone(&table)));
                            Ok(table)
                        }
                        Err(e) => {
                            entry.complete(EntryState::Poisoned);
                            Err(e)
                        }
                    };
                    self.inflight
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .remove(key);
                    return (out, followed);
                }
                Some(entry) => {
                    // Follower: wait the leader out.
                    let mut state = entry.state.lock().unwrap_or_else(|e| e.into_inner());
                    loop {
                        match &*state {
                            EntryState::Running => {
                                state = entry.done.wait(state).unwrap_or_else(|e| e.into_inner());
                            }
                            EntryState::Done(table) => return (Ok(Arc::clone(table)), true),
                            EntryState::Poisoned => break,
                        }
                    }
                    // The leader failed — run it ourselves next round
                    // (and remember we *tried* to follow: errors are
                    // not counted as batched).
                    followed = false;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// The worker fleet.
// ---------------------------------------------------------------------

/// A schedulable unit: one runnable connection.
pub(crate) trait Work: Send + Sync {
    /// Execute one queued command. Return `true` to be re-enqueued
    /// (more commands pending), `false` when idle.
    fn run_slice(self: Arc<Self>) -> bool;
}

struct SchedShared {
    runnable: Mutex<VecDeque<Arc<dyn Work>>>,
    ready: Condvar,
    shutdown: Mutex<bool>,
}

/// The bounded worker fleet executing runnable connections.
pub(crate) struct Scheduler {
    shared: Arc<SchedShared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Scheduler {
    pub fn new(workers: usize) -> std::io::Result<Scheduler> {
        let workers = workers.max(1);
        let shared = Arc::new(SchedShared {
            runnable: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            shutdown: Mutex::new(false),
        });
        let mut handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let shared = Arc::clone(&shared);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("pip-sched-{i}"))
                    .spawn(move || worker_loop(&shared))?,
            );
        }
        Ok(Scheduler {
            shared,
            workers: Mutex::new(handles),
        })
    }

    /// Mark a connection runnable. The caller must guarantee a
    /// connection is enqueued at most once at a time (the reactor's
    /// `running` flag does).
    pub fn enqueue(&self, work: Arc<dyn Work>) {
        let mut q = self
            .shared
            .runnable
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        q.push_back(work);
        self.shared.ready.notify_one();
    }

    /// Stop the fleet: workers finish the slice they are executing,
    /// drain nothing further, and are joined. Call only after the
    /// reactor has stopped producing runnable connections.
    pub fn shutdown(&self) {
        *self
            .shared
            .shutdown
            .lock()
            .unwrap_or_else(|e| e.into_inner()) = true;
        self.shared.ready.notify_all();
        let workers = std::mem::take(&mut *self.workers.lock().unwrap_or_else(|e| e.into_inner()));
        for w in workers {
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: &SchedShared) {
    loop {
        let work = {
            let mut q = shared.runnable.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(w) = q.pop_front() {
                    break w;
                }
                if *shared.shutdown.lock().unwrap_or_else(|e| e.into_inner()) {
                    return;
                }
                q = shared.ready.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        };
        // A panicking command must not take the worker down with it —
        // the connection's slice returns not-runnable and the reactor
        // reaps the connection; other sessions are unaffected.
        let again = catch_unwind(AssertUnwindSafe(|| Arc::clone(&work).run_slice()));
        if let Ok(true) = again {
            let mut q = shared.runnable.lock().unwrap_or_else(|e| e.into_inner());
            q.push_back(work);
            shared.ready.notify_one();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pip_core::PipError;
    use pip_core::Schema;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn admission_bounds_load() {
        let c = ServingCounters::new(2);
        assert!(c.try_admit());
        assert!(c.try_admit());
        assert!(!c.try_admit(), "third admit must bounce off capacity 2");
        let s = c.snapshot();
        assert_eq!((s.admitted, s.rejected, s.queued), (2, 1, 2));
        c.start();
        assert_eq!(c.snapshot().inflight, 1);
        c.finish();
        // Capacity freed: admission works again.
        assert!(c.try_admit());
        c.cancel_queued();
        c.cancel_queued();
        let s = c.snapshot();
        assert_eq!((s.queued, s.inflight), (0, 0));
        assert!(c.try_admit() && c.try_admit(), "fully recovered");
    }

    #[test]
    fn dedup_shares_one_execution() {
        let map = Arc::new(DedupMap::new());
        let runs = Arc::new(AtomicUsize::new(0));
        let n_threads = 8;
        let results: Vec<(usize, bool)> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..n_threads)
                .map(|_| {
                    let map = Arc::clone(&map);
                    let runs = Arc::clone(&runs);
                    s.spawn(move || {
                        let (r, followed) = map.run_shared("k", || {
                            runs.fetch_add(1, Ordering::SeqCst);
                            // Give followers time to pile up on the entry.
                            std::thread::sleep(std::time::Duration::from_millis(30));
                            Ok(CTable::empty(Schema::empty()))
                        });
                        (Arc::strong_count(&r.unwrap()), followed)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let executions = runs.load(Ordering::SeqCst);
        let followers = results.iter().filter(|(_, f)| *f).count();
        // Every thread that did not execute was a follower.
        assert_eq!(executions + followers, n_threads);
        assert!(executions >= 1);
        assert!(map.is_empty(), "entries retire after completion");
    }

    #[test]
    fn dedup_distinct_keys_do_not_share() {
        let map = DedupMap::new();
        let (a, fa) = map.run_shared("a", || Ok(CTable::empty(Schema::empty())));
        let (b, fb) = map.run_shared("b", || Ok(CTable::empty(Schema::empty())));
        assert!(!fa && !fb);
        assert!(!Arc::ptr_eq(&a.unwrap(), &b.unwrap()));
    }

    #[test]
    fn dedup_leader_error_does_not_stick() {
        let map = DedupMap::new();
        let (r, followed) = map.run_shared("k", || Err(PipError::NotFound("t".into())));
        assert!(r.is_err() && !followed);
        assert!(map.is_empty(), "failed entry must retire");
        // Next caller becomes a fresh leader.
        let (r, followed) = map.run_shared("k", || Ok(CTable::empty(Schema::empty())));
        assert!(r.is_ok() && !followed);
    }

    #[test]
    fn scheduler_runs_and_requeues_work() {
        struct Countdown {
            left: Mutex<usize>,
            hits: AtomicUsize,
        }
        impl Work for Countdown {
            fn run_slice(self: Arc<Self>) -> bool {
                self.hits.fetch_add(1, Ordering::SeqCst);
                let mut left = self.left.lock().unwrap();
                *left -= 1;
                *left > 0
            }
        }
        let sched = Scheduler::new(2).unwrap();
        let work = Arc::new(Countdown {
            left: Mutex::new(5),
            hits: AtomicUsize::new(0),
        });
        sched.enqueue(Arc::clone(&work) as Arc<dyn Work>);
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while work.hits.load(Ordering::SeqCst) < 5 && std::time::Instant::now() < deadline {
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert_eq!(work.hits.load(Ordering::SeqCst), 5, "requeue chain ran dry");
        sched.shutdown();
    }
}
