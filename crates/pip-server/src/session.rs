//! Query sessions over a shared catalog.
//!
//! Every client connection owns a [`Session`]: a view of the shared
//! [`Database`] (internally synchronized — concurrent sessions read and
//! write the catalog through its own reader–writer lock) plus
//! session-local state:
//!
//! * a per-session [`SamplerConfig`] (`SET THREADS/SEED/SAMPLES`),
//! * an LRU cache of prepared statements (`PREPARE` / `EXEC`),
//! * an LRU cache of sampled query results, keyed by the statement text,
//!   the sampling parameters that define the result, and the catalog
//!   version — a mutation anywhere invalidates by construction, and the
//!   thread count is deliberately *not* part of the key because the
//!   parallel runtime is bit-deterministic in it.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use std::sync::Mutex;

use pip_core::{PipError, Result};
use pip_ctable::CTable;
use pip_engine::sql::{self, Statement};
use pip_engine::{execute_with_stats, optimize, Database, Plan, QueryStats};
use pip_obs::{Clock, MonotonicClock, SlowLog, SpanRecorder};
use pip_replica::Replication;
use pip_sampling::SamplerConfig;

use crate::lru::Lru;
use crate::scheduler::{DedupMap, ServingCounters};

/// A statement captured by `PREPARE`.
struct PreparedStatement {
    plan: Arc<Plan>,
    /// The statement text, which keys cross-session work dedup (unlike
    /// `generation`, it means the same thing in every session).
    sql: String,
    /// Distinguishes re-prepared statements with the same name in the
    /// result-cache key.
    generation: u64,
}

/// The session's synchronous-replication setting (`SET REPLICATION
/// WAIT ...`): how many follower ACKs a mutation's reply waits for.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ReplWait {
    /// Asynchronous (the default): reply as soon as the write is local.
    #[default]
    Off,
    /// Wait for this many follower ACKs.
    Count(u32),
    /// Wait for a cluster majority, re-counted per write against the
    /// follower fleet attached at that moment.
    Majority,
}

impl std::fmt::Display for ReplWait {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplWait::Off => write!(f, "0"),
            ReplWait::Count(n) => write!(f, "{n}"),
            ReplWait::Majority => write!(f, "majority"),
        }
    }
}

/// Default deadline for `SET REPLICATION WAIT` and `WAIT VERSION`.
pub const DEFAULT_REPL_WAIT_TIMEOUT: Duration = Duration::from_secs(5);

/// Counters reported by the `STATS` command.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Statements executed (QUERY + EXEC, including cache hits).
    pub queries: u64,
    /// Executions served from the sample-result cache.
    pub cache_hits: u64,
    /// Statements currently prepared.
    pub prepared: usize,
}

/// Result of one session statement.
pub struct QueryReply {
    pub table: Arc<CTable>,
    /// Served from the sample-result cache.
    pub cached: bool,
}

/// A statement opened for streaming execution ([`Session::open_stream`]).
pub enum StreamQuery {
    /// Result-cache hit: the whole table, rows replayed to the sink.
    Cached(Arc<CTable>),
    /// Live pipelined execution: lower `plan` against the shared catalog
    /// (`pip_engine::lower`), drain it row by row, then hand the
    /// collected table back via [`Session::note_streamed`] under `key`
    /// so later identical queries hit the cache.
    Live {
        plan: Box<Plan>,
        cfg: SamplerConfig,
        key: String,
    },
    /// Non-SELECT statement, executed eagerly (DDL/DML/EXPLAIN).
    Table(Arc<CTable>),
}

/// One client's view of the service.
pub struct Session {
    id: u64,
    db: Arc<Database>,
    /// Session-local sampler configuration.
    pub cfg: SamplerConfig,
    /// Follower ACKs a mutation's reply waits for (`SET REPLICATION
    /// WAIT`); reported as `wait=` in STATS.
    pub repl_wait: ReplWait,
    /// Deadline for replication waits (`SET REPLICATION TIMEOUT`); past
    /// it the reply degrades to `ERR repl_timeout ...`.
    pub repl_wait_timeout: Duration,
    prepared: Lru<String, PreparedStatement>,
    results: Lru<String, Arc<CTable>>,
    next_generation: u64,
    stats: SessionStats,
    replication: Option<Arc<Replication>>,
    /// Scheduler-wide serving counters (when the session is served by
    /// the TCP front-end), reported by `STATS`.
    serving: Option<Arc<ServingCounters>>,
    /// Cross-session dedup of in-flight identical sampling work.
    dedup: Option<Arc<DedupMap>>,
    /// Time source for query spans (injectable so tests can drive a
    /// `ManualClock`).
    clock: Arc<dyn Clock>,
    /// Server-wide slow-query ring (`SET SLOWLOG <ms>` / `SLOWLOG [n]`);
    /// `None` for embedded sessions.
    slowlog: Option<Arc<SlowLog>>,
    /// Admission wait of the command about to run, stamped by the
    /// reactor and consumed into the next query's span.
    pending_admission_wait_nanos: u64,
}

impl Session {
    pub fn id(&self) -> u64 {
        self.id
    }

    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }

    /// The node's replication role, when the server runs as a primary
    /// or follower (`None` on a standalone node).
    pub fn replication(&self) -> Option<&Arc<Replication>> {
        self.replication.as_ref()
    }

    /// The scheduler's serving counters, when this session is served by
    /// the TCP front-end (`None` for embedded sessions).
    pub fn serving(&self) -> Option<&Arc<ServingCounters>> {
        self.serving.as_ref()
    }

    pub fn stats(&self) -> SessionStats {
        SessionStats {
            prepared: self.prepared.len(),
            ..self.stats
        }
    }

    /// The server-wide slow-query log, when attached.
    pub fn slowlog(&self) -> Option<&Arc<SlowLog>> {
        self.slowlog.as_ref()
    }

    /// Stamp the admission wait of the command about to run; consumed
    /// into that command's span.
    pub fn note_admission_wait_nanos(&mut self, nanos: u64) {
        self.pending_admission_wait_nanos = nanos;
    }

    /// Open a span recorder when the slowlog is armed; `None` keeps the
    /// hot path allocation-free.
    fn span_recorder(&self, sql_text: &str) -> Option<SpanRecorder> {
        let log = self.slowlog.as_ref()?;
        if !pip_obs::enabled() || log.threshold_millis() == 0 {
            return None;
        }
        let mut rec = SpanRecorder::start(Arc::clone(&self.clock), self.id, sql_text);
        rec.span.admission_wait_nanos = self.pending_admission_wait_nanos;
        Some(rec)
    }

    /// Finalize a span and offer it to the slowlog ring.
    fn observe_span(&self, rec: SpanRecorder) {
        if let Some(log) = &self.slowlog {
            log.observe(&rec.finish());
        }
    }

    /// The portion of the result-cache key that pins the *numbers*: the
    /// sampling parameters a result depends on, plus the catalog
    /// version. Thread count is excluded — the parallel runtime returns
    /// bit-identical results for any `threads`, so a hit stays valid.
    /// `compile` and `reuse_blocks` are excluded for the same reason:
    /// the compiled engine is bit-identical to the interpreted one and
    /// the sample-block cache is pure memoization, so toggling either
    /// cannot invalidate a cached result.
    fn cache_suffix(&self) -> String {
        format!(
            "|seed={}|min={}|max={}|eps={}|delta={}|chunk={}|v={}",
            self.cfg.world_seed,
            self.cfg.min_samples,
            self.cfg.max_samples,
            self.cfg.epsilon,
            self.cfg.delta,
            self.cfg.chunk_samples,
            self.db.version()
        )
    }

    /// Run one `SELECT`'s sampling work, sharing the execution with any
    /// other session concurrently submitting the same work (same
    /// statement text, sampling parameters and catalog version — the
    /// dedup key is the result-cache key, which pins the result
    /// bit-for-bit, so sharing is invisible in the reply). Sessions not
    /// served through the scheduler just execute directly.
    fn run_select_shared(
        &mut self,
        key: &str,
        run: impl Fn() -> Result<CTable>,
    ) -> Result<Arc<CTable>> {
        match &self.dedup {
            None => Ok(Arc::new(run()?)),
            Some(dedup) => {
                let (result, followed) = dedup.run_shared(key, run);
                if let Some(serving) = &self.serving {
                    if followed {
                        serving.note_batched();
                    } else {
                        serving.note_dedup_leader();
                    }
                }
                result
            }
        }
    }

    /// Parse and run one SQL statement, consulting the sample-result
    /// cache for `SELECT`s.
    pub fn query(&mut self, sql_text: &str) -> Result<QueryReply> {
        self.stats.queries += 1;
        let mut rec = self.span_recorder(sql_text);
        self.pending_admission_wait_nanos = 0;
        let stmt = sql::parse(sql_text)?;
        if let Some(r) = rec.as_mut() {
            r.span.parse_nanos = r.lap();
        }
        match stmt {
            Statement::Select(_) => {
                let key = format!("Q:{}{}", sql_text.trim(), self.cache_suffix());
                if let Some(hit) = self.results.get(&key) {
                    self.stats.cache_hits += 1;
                    if let Some(s) = &self.serving {
                        s.result_cache_hits.inc();
                    }
                    let table = Arc::clone(hit);
                    if let Some(mut r) = rec.take() {
                        r.span.cache_hit = true;
                        r.span.rows = table.len() as u64;
                        self.observe_span(r);
                    }
                    return Ok(QueryReply {
                        table,
                        cached: true,
                    });
                }
                // The closure re-parses so it can be re-run verbatim if
                // a dedup leader fails; parsing is noise next to the
                // sampling it guards. The stats slot carries the
                // leader's phase timings out for the span — a dedup
                // follower's closure never runs, so a `None` slot after
                // the call marks the span as a follower.
                let db = Arc::clone(&self.db);
                let cfg = self.cfg.clone();
                let stats_slot: Arc<Mutex<Option<(u64, QueryStats)>>> = Arc::new(Mutex::new(None));
                let slot = Arc::clone(&stats_slot);
                let table = self.run_select_shared(&key, move || match sql::parse(sql_text)? {
                    Statement::Select(plan) => {
                        let t0 = std::time::Instant::now();
                        let optimized = optimize(&db, plan)?;
                        let optimize_nanos = t0.elapsed().as_nanos() as u64;
                        let (table, qs) = execute_with_stats(&db, &optimized, &cfg)?;
                        *slot.lock().unwrap_or_else(|e| e.into_inner()) =
                            Some((optimize_nanos, qs));
                        Ok(table)
                    }
                    other => sql::run_statement(&db, other, &cfg),
                })?;
                self.results.put(key, Arc::clone(&table));
                if let Some(mut r) = rec.take() {
                    let wall = r.lap();
                    match stats_slot.lock().unwrap_or_else(|e| e.into_inner()).take() {
                        Some((optimize_nanos, qs)) => {
                            r.span.optimize_nanos = optimize_nanos;
                            r.span.execute_nanos = (qs.query_secs * 1e9) as u64;
                            r.span.sample_nanos = (qs.sample_secs * 1e9) as u64;
                        }
                        None => {
                            // Served by another session's leader: the
                            // whole wait is accounted as execute time.
                            r.span.dedup_follower = true;
                            r.span.execute_nanos = wall;
                        }
                    }
                    r.span.rows = table.len() as u64;
                    self.observe_span(r);
                }
                Ok(QueryReply {
                    table,
                    cached: false,
                })
            }
            other => {
                // DDL/DML: the catalog version bump retires stale cache
                // keys on its own.
                let table = Arc::new(sql::run_statement(&self.db, other, &self.cfg)?);
                if let Some(mut r) = rec.take() {
                    r.span.execute_nanos = r.lap();
                    r.span.rows = table.len() as u64;
                    self.observe_span(r);
                }
                Ok(QueryReply {
                    table,
                    cached: false,
                })
            }
        }
    }

    /// Open one SQL statement for streaming execution: rows of a live
    /// `SELECT` leave through the physical operator tree as they are
    /// produced instead of waiting for the full result table. Cache
    /// consultation and statistics match [`Session::query`]; a live
    /// stream's result is cached by calling [`Session::note_streamed`]
    /// after the drain.
    pub fn open_stream(&mut self, sql_text: &str) -> Result<StreamQuery> {
        self.stats.queries += 1;
        let stmt = sql::parse(sql_text)?;
        match stmt {
            Statement::Select(plan) => {
                let key = format!("Q:{}{}", sql_text.trim(), self.cache_suffix());
                if let Some(hit) = self.results.get(&key) {
                    self.stats.cache_hits += 1;
                    if let Some(s) = &self.serving {
                        s.result_cache_hits.inc();
                    }
                    return Ok(StreamQuery::Cached(Arc::clone(hit)));
                }
                let optimized = optimize(&self.db, plan)?;
                Ok(StreamQuery::Live {
                    plan: Box::new(optimized),
                    cfg: self.cfg.clone(),
                    key,
                })
            }
            other => Ok(StreamQuery::Table(Arc::new(sql::run_statement(
                &self.db, other, &self.cfg,
            )?))),
        }
    }

    /// Store a drained stream's table in the sample-result cache.
    pub fn note_streamed(&mut self, key: String, table: Arc<CTable>) {
        self.results.put(key, table);
    }

    /// `PREPARE name AS SELECT ...` — parse and plan once.
    pub fn prepare(&mut self, name: &str, sql_text: &str) -> Result<()> {
        if name.is_empty() || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
            return Err(PipError::Sql(format!(
                "invalid prepared-statement name '{name}'"
            )));
        }
        match sql::parse(sql_text)? {
            Statement::Select(plan) => {
                self.next_generation += 1;
                self.prepared.put(
                    name.to_string(),
                    PreparedStatement {
                        plan: Arc::new(plan),
                        sql: sql_text.trim().to_string(),
                        generation: self.next_generation,
                    },
                );
                Ok(())
            }
            _ => Err(PipError::Sql(
                "only SELECT statements can be prepared".into(),
            )),
        }
    }

    /// `EXEC name` — run a prepared statement through the result cache.
    pub fn exec_prepared(&mut self, name: &str) -> Result<QueryReply> {
        self.stats.queries += 1;
        let (plan, sql, generation) = match self.prepared.get(&name.to_string()) {
            Some(p) => {
                if let Some(s) = &self.serving {
                    s.prepared_cache_hits.inc();
                }
                (Arc::clone(&p.plan), p.sql.clone(), p.generation)
            }
            None => return Err(PipError::NotFound(format!("prepared statement '{name}'"))),
        };
        let mut rec = self.span_recorder(&sql);
        self.pending_admission_wait_nanos = 0;
        let key = format!("E:{name}#{generation}{}", self.cache_suffix());
        if let Some(hit) = self.results.get(&key) {
            self.stats.cache_hits += 1;
            if let Some(s) = &self.serving {
                s.result_cache_hits.inc();
            }
            let table = Arc::clone(hit);
            if let Some(mut r) = rec.take() {
                r.span.cache_hit = true;
                r.span.rows = table.len() as u64;
                self.observe_span(r);
            }
            return Ok(QueryReply {
                table,
                cached: true,
            });
        }
        // The dedup key is the statement-text key (`Q:`), not the local
        // `E:` key — prepared names and generations are session-local,
        // so only the text means the same thing across sessions. EXEC
        // and QUERY of the same SELECT therefore share one execution:
        // both paths are optimize-then-execute against the current
        // catalog, bit-identical by construction.
        let shared_key = format!("Q:{sql}{}", self.cache_suffix());
        let db = Arc::clone(&self.db);
        let cfg = self.cfg.clone();
        let stats_slot: Arc<Mutex<Option<(u64, QueryStats)>>> = Arc::new(Mutex::new(None));
        let slot = Arc::clone(&stats_slot);
        let table = self.run_select_shared(&shared_key, move || {
            // Optimization is catalog-dependent (schema lookups), so it
            // runs per execution against the current catalog.
            let t0 = std::time::Instant::now();
            let optimized = optimize(&db, (*plan).clone())?;
            let optimize_nanos = t0.elapsed().as_nanos() as u64;
            let (table, qs) = execute_with_stats(&db, &optimized, &cfg)?;
            *slot.lock().unwrap_or_else(|e| e.into_inner()) = Some((optimize_nanos, qs));
            Ok(table)
        })?;
        self.results.put(key, Arc::clone(&table));
        if let Some(mut r) = rec.take() {
            let wall = r.lap();
            match stats_slot.lock().unwrap_or_else(|e| e.into_inner()).take() {
                Some((optimize_nanos, qs)) => {
                    r.span.optimize_nanos = optimize_nanos;
                    r.span.execute_nanos = (qs.query_secs * 1e9) as u64;
                    r.span.sample_nanos = (qs.sample_secs * 1e9) as u64;
                }
                None => {
                    r.span.dedup_follower = true;
                    r.span.execute_nanos = wall;
                }
            }
            r.span.rows = table.len() as u64;
            self.observe_span(r);
        }
        Ok(QueryReply {
            table,
            cached: false,
        })
    }

    /// Forget one prepared statement.
    pub fn deallocate(&mut self, name: &str) -> Result<()> {
        self.prepared
            .remove(&name.to_string())
            .map(|_| ())
            .ok_or_else(|| PipError::NotFound(format!("prepared statement '{name}'")))
    }
}

/// Factory for sessions sharing one catalog.
pub struct SessionManager {
    db: Arc<Database>,
    default_cfg: SamplerConfig,
    prepared_capacity: usize,
    result_capacity: usize,
    next_id: AtomicU64,
    replication: Option<Arc<Replication>>,
    serving: Option<Arc<ServingCounters>>,
    dedup: Option<Arc<DedupMap>>,
    clock: Arc<dyn Clock>,
    slowlog: Option<Arc<SlowLog>>,
}

impl SessionManager {
    pub fn new(db: Arc<Database>, default_cfg: SamplerConfig) -> Self {
        SessionManager {
            db,
            default_cfg,
            prepared_capacity: 32,
            result_capacity: 64,
            next_id: AtomicU64::new(1),
            replication: None,
            serving: None,
            dedup: None,
            clock: Arc::new(MonotonicClock),
            slowlog: None,
        }
    }

    /// Override the per-session cache capacities.
    pub fn with_cache_capacities(mut self, prepared: usize, results: usize) -> Self {
        self.prepared_capacity = prepared;
        self.result_capacity = results;
        self
    }

    /// Attach the node's replication role: sessions report it in STATS
    /// and route PROMOTE to it.
    pub fn with_replication(mut self, replication: Option<Arc<Replication>>) -> Self {
        self.replication = replication;
        self
    }

    /// Attach the scheduler's serving counters and cross-session dedup
    /// map: sessions report the counters in STATS and share identical
    /// in-flight `SELECT` executions through the map.
    pub fn with_serving(mut self, serving: Arc<ServingCounters>, dedup: Arc<DedupMap>) -> Self {
        self.serving = Some(serving);
        self.dedup = Some(dedup);
        self
    }

    /// Attach the observability hooks: the span clock (injectable for
    /// deterministic tests) and the server-wide slow-query ring.
    pub fn with_obs(mut self, clock: Arc<dyn Clock>, slowlog: Arc<SlowLog>) -> Self {
        self.clock = clock;
        self.slowlog = Some(slowlog);
        self
    }

    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }

    /// Sessions handed out so far.
    pub fn sessions_created(&self) -> u64 {
        self.next_id.load(Ordering::Relaxed) - 1
    }

    /// Open a new session.
    pub fn open(&self) -> Session {
        Session {
            id: self.next_id.fetch_add(1, Ordering::Relaxed),
            db: Arc::clone(&self.db),
            cfg: self.default_cfg.clone(),
            repl_wait: ReplWait::default(),
            repl_wait_timeout: DEFAULT_REPL_WAIT_TIMEOUT,
            prepared: Lru::new(self.prepared_capacity),
            results: Lru::new(self.result_capacity),
            next_generation: 0,
            stats: SessionStats::default(),
            replication: self.replication.clone(),
            serving: self.serving.clone(),
            dedup: self.dedup.clone(),
            clock: Arc::clone(&self.clock),
            slowlog: self.slowlog.clone(),
            pending_admission_wait_nanos: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pip_engine::scalar_result;

    fn manager() -> SessionManager {
        let db = Arc::new(Database::new());
        let mgr = SessionManager::new(db, SamplerConfig::default());
        let mut s = mgr.open();
        s.query("CREATE TABLE t (x SYMBOLIC)").unwrap();
        s.query("INSERT INTO t VALUES (create_variable('Normal', 10, 2))")
            .unwrap();
        mgr
    }

    #[test]
    fn query_caches_selects_until_mutation() {
        let mgr = manager();
        let mut s = mgr.open();
        let q = "SELECT expected_sum(x) FROM t";
        let a = s.query(q).unwrap();
        assert!(!a.cached);
        let b = s.query(q).unwrap();
        assert!(b.cached);
        assert_eq!(
            scalar_result(&a.table).unwrap(),
            scalar_result(&b.table).unwrap()
        );
        // A catalog mutation retires the cached entry.
        s.query("INSERT INTO t VALUES (create_variable('Normal', 5, 1))")
            .unwrap();
        let c = s.query(q).unwrap();
        assert!(!c.cached);
        assert!(scalar_result(&c.table).unwrap() > scalar_result(&a.table).unwrap());
        let stats = s.stats();
        assert_eq!(stats.queries, 4);
        assert_eq!(stats.cache_hits, 1);
    }

    #[test]
    fn seed_change_bypasses_cache() {
        let mgr = manager();
        let mut s = mgr.open();
        let q = "SELECT conf() FROM t WHERE x > 9";
        s.query(q).unwrap();
        s.cfg.world_seed ^= 1;
        assert!(!s.query(q).unwrap().cached);
    }

    #[test]
    fn prepared_statements_round_trip() {
        let mgr = manager();
        let mut s = mgr.open();
        s.prepare("total", "SELECT expected_sum(x) FROM t").unwrap();
        let a = s.exec_prepared("total").unwrap();
        assert!(!a.cached);
        let b = s.exec_prepared("total").unwrap();
        assert!(b.cached);
        assert!((scalar_result(&a.table).unwrap() - 10.0).abs() < 1e-9);
        assert!(s.exec_prepared("missing").is_err());
        s.deallocate("total").unwrap();
        assert!(s.exec_prepared("total").is_err());
        // Only SELECT may be prepared; names are validated.
        assert!(s.prepare("p", "CREATE TABLE u (a INT)").is_err());
        assert!(s.prepare("bad name", "SELECT * FROM t").is_err());
    }

    #[test]
    fn sessions_share_the_catalog() {
        let mgr = manager();
        let mut a = mgr.open();
        let mut b = mgr.open();
        assert_ne!(a.id(), b.id());
        a.query("CREATE TABLE shared (v FLOAT)").unwrap();
        a.query("INSERT INTO shared VALUES (1.5)").unwrap();
        let r = b.query("SELECT expected_sum(v) FROM shared").unwrap();
        assert_eq!(scalar_result(&r.table).unwrap(), 1.5);
        assert_eq!(mgr.sessions_created(), 3); // manager() opened one
    }

    #[test]
    fn thread_setting_reuses_cache() {
        let mgr = manager();
        let mut s = mgr.open();
        let q = "SELECT expected_sum(x) FROM t";
        let serial = s.query(q).unwrap();
        s.cfg = s.cfg.clone().with_threads(4);
        let parallel = s.query(q).unwrap();
        // Bit-determinism makes the cached serial result valid at any
        // thread count.
        assert!(parallel.cached);
        assert_eq!(
            scalar_result(&serial.table).unwrap(),
            scalar_result(&parallel.table).unwrap()
        );
    }
}
