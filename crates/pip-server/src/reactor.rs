//! The nonblocking serving core: one epoll reactor thread owns every
//! socket; scheduler workers ([`crate::scheduler`]) own every query.
//!
//! No connection gets an OS thread. The reactor accepts, reads and
//! writes all sockets nonblockingly (level-triggered epoll via the
//! vendored [`epoll`] shim), decodes pipelined requests out of whatever
//! partial reads arrive, and appends parsed commands to the owning
//! connection's FIFO. A connection with work is handed to the scheduler
//! exactly once (`running` flag); a worker executes its commands one
//! per slice — strict per-session order, so a pipelined
//! `SET SEED` → `QUERY` stream behaves exactly as it would on the old
//! thread-per-connection server — and re-enqueues the connection while
//! commands remain, so one deep pipeline cannot monopolize a worker.
//!
//! Replies are staged in a per-connection output buffer that only the
//! reactor flushes to the socket (batched write-out: one syscall moves
//! every reply staged since the last flush). Workers nudge the reactor
//! through a self-wake pipe; nudges coalesce.
//!
//! Flow control, in both directions:
//!
//! * **Inbound** — a connection whose FIFO reaches `max_pipeline`
//!   parsed-but-unexecuted commands stops being read (its `EPOLLIN`
//!   interest is dropped) until the queue drains below half; TCP then
//!   pushes back on the client. A request line over
//!   [`MAX_REQUEST_BYTES`] is discarded as it streams in — never
//!   buffered — and answered with one `ERR`.
//! * **Outbound** — replies queue up to `max_outbound_bytes`; past
//!   that the *worker* blocks (bounded by admission control, and with a
//!   stall deadline so a reader that never drains is evicted instead of
//!   pinning a worker forever). The reactor keeps serving every other
//!   connection throughout — a slow reader stalls only itself.
//!
//! **Parking** (synchronous replication): a session under
//! `SET REPLICATION WAIT` gets its mutation replies withheld until
//! enough follower ACKs arrive, and `WAIT VERSION` on a follower blocks
//! until the feed catches up — but neither holds a worker thread. The
//! slice registers with the replication wait hub, leaves `running` set
//! and the admission slot held, and returns; the hub's callback stages
//! the decided reply (the original on success, `ERR repl_timeout ...`
//! past the deadline), releases the slot, and re-enqueues any pipeline
//! that built up behind the parked command. One reactor + a bounded
//! fleet thus serves any number of concurrently-waiting sessions.
//!
//! Shutdown drains: the listener closes first, established connections
//! stop being read, already-queued commands run to completion and their
//! replies flush, then sockets close — no response is truncated
//! mid-write. Connections still busy past `drain_timeout` are the one
//! exception: they are force-closed (the query's reply is discarded
//! whole, never cut).

use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use epoll::{Epoll, WakePipe, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP};

use crate::protocol::{self, Command};
use crate::scheduler::{Scheduler, ServingCounters, Work};
use crate::session::{ReplWait, SessionManager};

/// Hard cap on one request line. Anything longer is rejected (and the
/// oversized line discarded as it streams in) instead of buffering
/// unbounded client input.
pub const MAX_REQUEST_BYTES: usize = 1 << 20;

/// Default for [`Limits::write_stall_timeout`]: how long a worker may
/// sit blocked on one connection's full output buffer before the
/// connection is declared stuck and evicted.
pub(crate) const WRITE_STALL_TIMEOUT: Duration = Duration::from_secs(30);

const TOKEN_LISTENER: u64 = u64::MAX;
const TOKEN_WAKE: u64 = u64::MAX - 1;
const TOKEN_METRICS: u64 = u64::MAX - 2;

/// Sizing knobs the reactor and its connections share.
#[derive(Clone, Copy)]
pub(crate) struct Limits {
    /// Parsed-but-unexecuted commands per connection before reads pause.
    pub max_pipeline: usize,
    /// Staged reply bytes per connection before the producing worker
    /// blocks (and, past `write_stall_timeout`, the peer is evicted).
    pub max_outbound: usize,
    /// How long a worker may sit blocked on one connection's full
    /// output buffer before the peer is evicted as a stuck reader.
    pub write_stall_timeout: Duration,
    /// How long shutdown waits for in-flight commands to finish and
    /// flush before force-closing the stragglers.
    pub drain_timeout: Duration,
}

/// State the reactor and the scheduler workers both touch, shared via
/// [`Conn`].
pub(crate) struct ReactorShared {
    pub epoll: Epoll,
    pub wake: WakePipe,
    /// Connections whose output/queue state changed off-reactor.
    dirty: Mutex<Vec<Arc<Conn>>>,
    pub shutdown: AtomicBool,
}

impl ReactorShared {
    pub fn new() -> io::Result<ReactorShared> {
        Ok(ReactorShared {
            epoll: Epoll::new()?,
            wake: WakePipe::new()?,
            dirty: Mutex::new(Vec::new()),
            shutdown: AtomicBool::new(false),
        })
    }

    /// Ask the reactor to revisit `conn` (flush staged output, adjust
    /// interest, reap). Coalesces: a connection is queued at most once.
    fn notify(&self, conn: &Arc<Conn>) {
        if !conn.dirty.swap(true, Ordering::AcqRel) {
            self.dirty
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(Arc::clone(conn));
            self.wake.wake();
        }
    }

    /// Drop queued dirty entries (breaks the `Conn` ↔ `ReactorShared`
    /// reference cycle after the reactor exits).
    pub fn clear_dirty(&self) {
        self.dirty.lock().unwrap_or_else(|e| e.into_inner()).clear();
    }
}

/// One decoded-but-unexecuted unit in a connection's FIFO.
enum Pending {
    /// A parsed command (`admitted` = it holds an admission slot,
    /// stamped with its admission time for the wait histogram).
    Cmd {
        cmd: Command,
        admitted: bool,
        admitted_at: Option<Instant>,
    },
    /// A reply decided at parse time (parse error, `ERR busy`,
    /// oversized request) — it still flows through the FIFO so replies
    /// leave in request order.
    Reply(String),
}

struct ConnState {
    /// Partial request line carried across reads (bounded by
    /// [`MAX_REQUEST_BYTES`]).
    inbuf: Vec<u8>,
    /// Mid-discard of an oversized request line.
    skipping: bool,
    pending: VecDeque<Pending>,
    /// The connection is enqueued with (or running on) the scheduler.
    running: bool,
    /// Graceful close: stop reading, finish `pending`, flush, close.
    closing: bool,
    /// Reads paused by the pipeline cap.
    read_paused: bool,
    /// Interest set currently registered with epoll.
    interest: u32,
}

struct OutBuf {
    buf: Vec<u8>,
    pos: usize,
}

impl OutBuf {
    fn unsent(&self) -> usize {
        self.buf.len() - self.pos
    }
}

/// One client connection: socket + session + command FIFO + staged
/// output. The reactor does all socket I/O; workers execute commands
/// and stage replies.
pub(crate) struct Conn {
    token: u64,
    stream: TcpStream,
    /// Queued on the reactor's dirty list.
    dirty: AtomicBool,
    /// Force-close: socket error, protocol violation, stuck reader, or
    /// drain deadline. Monotonic; once set the connection only drains
    /// toward reaping.
    broken: AtomicBool,
    session: Mutex<crate::session::Session>,
    st: Mutex<ConnState>,
    out: Mutex<OutBuf>,
    /// Signalled whenever flushed output frees buffer space (or the
    /// connection breaks) — wakes workers blocked in [`Conn::stage`].
    out_cv: Condvar,
    shared: Arc<ReactorShared>,
    serving: Arc<ServingCounters>,
    /// Needed off the worker path: a parked command's wake callback
    /// ([`Conn::unpark`]) re-enqueues the connection itself.
    scheduler: Arc<Scheduler>,
    limits: Limits,
}

/// What one executed command left behind.
enum SliceOutcome {
    /// The reply is staged (or streamed); `close` = QUIT semantics.
    Done { close: bool },
    /// The reply is withheld: the command registered with the
    /// replication wait hub and the connection is parked — `running`
    /// stays set, the admission slot stays held, and [`Conn::unpark`]
    /// finishes the slice when the wait resolves.
    Parked,
}

impl Conn {
    /// Append reply bytes to the output buffer, blocking (bounded by
    /// [`WRITE_STALL_TIMEOUT`]) while the buffer is at capacity.
    fn stage(&self, bytes: &[u8]) -> io::Result<()> {
        if bytes.is_empty() {
            return Ok(());
        }
        let mut out = self.out.lock().unwrap_or_else(|e| e.into_inner());
        let deadline = Instant::now() + self.limits.write_stall_timeout;
        loop {
            if self.broken.load(Ordering::Acquire) {
                return Err(io::ErrorKind::BrokenPipe.into());
            }
            // Oversized single replies may exceed the cap on an empty
            // buffer; admit them whole rather than deadlocking.
            if out.unsent() + bytes.len() <= self.limits.max_outbound || out.unsent() == 0 {
                out.buf.extend_from_slice(bytes);
                return Ok(());
            }
            if Instant::now() >= deadline {
                // The peer stopped draining: evict it rather than pin
                // a worker (and an admission slot) indefinitely.
                self.serving.slow_reader_evictions.inc();
                pip_obs::warn!(
                    "evicting connection {}: reply backlog not drained in {:?}",
                    self.token,
                    self.limits.write_stall_timeout
                );
                self.broken.store(true, Ordering::Release);
                return Err(io::ErrorKind::TimedOut.into());
            }
            let (next, _) = self
                .out_cv
                .wait_timeout(out, Duration::from_millis(200))
                .unwrap_or_else(|e| e.into_inner());
            out = next;
        }
    }

    /// Complete a parked command: stage its decided reply, release the
    /// admission slot it held across the wait, and settle the `running`
    /// flag exactly as [`Work::run_slice`]'s tail would have (settled
    /// BEFORE the reactor is notified — same reap-ordering argument).
    ///
    /// Runs on the replication wait-hub's monitor thread, not a
    /// scheduler worker, so commands that pipelined up behind the
    /// parked one are re-enqueued here rather than by returning
    /// runnable.
    fn unpark(self: Arc<Self>, text: String, admitted: bool) {
        let _ = self.stage(text.as_bytes());
        if admitted {
            self.serving.finish();
        }
        let again = {
            let mut st = self.st.lock().unwrap_or_else(|e| e.into_inner());
            if self.broken.load(Ordering::Acquire) {
                self.drop_pending(&mut st);
            }
            if st.pending.is_empty() {
                st.running = false;
                false
            } else {
                true
            }
        };
        if self.shared.shutdown.load(Ordering::Acquire) {
            // The reactor is draining (its drain loop revisits every
            // connection on its own tick) or already gone; enqueueing
            // or notifying now could park a `Conn` reference in a
            // queue nobody will ever drain again.
            return;
        }
        if again {
            self.scheduler.enqueue(Arc::clone(&self) as Arc<dyn Work>);
        }
        self.shared.notify(&self);
    }

    /// Drop every queued command, releasing held admission slots.
    fn drop_pending(&self, st: &mut ConnState) {
        for p in st.pending.drain(..) {
            if let Pending::Cmd { admitted: true, .. } = p {
                self.serving.cancel_queued();
            }
        }
    }
}

/// `io::Write` adapter for `STREAM`: rows leave the worker into the
/// connection's output buffer as they are produced (the reactor ships
/// them to the socket concurrently).
struct ConnWriter<'a> {
    conn: &'a Conn,
    shared: &'a ReactorShared,
    me: &'a Arc<Conn>,
}

impl Write for ConnWriter<'_> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.conn.stage(buf)?;
        self.shared.notify(self.me);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        self.shared.notify(self.me);
        Ok(())
    }
}

impl Work for Conn {
    /// Execute one queued command, stage its reply, and report whether
    /// more work remains.
    fn run_slice(self: Arc<Self>) -> bool {
        let item = {
            let mut st = self.st.lock().unwrap_or_else(|e| e.into_inner());
            if self.broken.load(Ordering::Acquire) {
                self.drop_pending(&mut st);
                st.running = false;
                drop(st);
                self.shared.notify(&self);
                return false;
            }
            match st.pending.pop_front() {
                Some(p) => p,
                None => {
                    st.running = false;
                    drop(st);
                    self.shared.notify(&self);
                    return false;
                }
            }
        };
        match item {
            Pending::Reply(text) => {
                let _ = self.stage(text.as_bytes());
            }
            Pending::Cmd {
                cmd,
                admitted,
                admitted_at,
            } => {
                let wait_nanos = admitted_at.map_or(0, |t| t.elapsed().as_nanos() as u64);
                if admitted {
                    self.serving.start();
                    if let Some(t) = admitted_at {
                        self.serving.admission_wait_seconds.observe_since(t);
                    }
                }
                let slice_start = Instant::now();
                let outcome = {
                    let mut session = self.session.lock().unwrap_or_else(|e| e.into_inner());
                    session.note_admission_wait_nanos(wait_nanos);
                    match cmd {
                        Command::Stream(sql) => {
                            let mut w = ConnWriter {
                                conn: &self,
                                shared: &self.shared,
                                me: &self,
                            };
                            // An Err is an I/O failure on this very
                            // connection (broken/evicted) — nothing
                            // left to tell the peer.
                            let _ = protocol::handle_stream(&mut session, &sql, &mut w);
                            SliceOutcome::Done { close: false }
                        }
                        Command::WaitVersion {
                            version,
                            timeout_ms,
                        } if session.replication().is_some() => {
                            // Park through the wait hub instead of the
                            // blocking fallback in `handle_command`:
                            // the worker is released immediately and
                            // the reply is staged when the version
                            // lands (or the timeout fires).
                            let repl = Arc::clone(session.replication().expect("guard"));
                            let timeout = timeout_ms
                                .map(Duration::from_millis)
                                .unwrap_or(session.repl_wait_timeout);
                            let me = Arc::clone(&self);
                            let r = Arc::clone(&repl);
                            let parked_at = Instant::now();
                            let done = Box::new(move |ok: bool| {
                                let applied = r.applied_version();
                                let text = if ok {
                                    format!("OK version={applied}\n")
                                } else {
                                    format!(
                                        "ERR repl_timeout waiting for version {version} (applied {applied})\n"
                                    )
                                };
                                me.serving.park_seconds.observe_since(parked_at);
                                me.unpark(text, admitted);
                            });
                            if repl.register_version_wait(version, timeout, done) {
                                let _ = self.stage(
                                    format!("OK version={}\n", repl.applied_version()).as_bytes(),
                                );
                                SliceOutcome::Done { close: false }
                            } else {
                                SliceOutcome::Parked
                            }
                        }
                        cmd => {
                            let v0 = session.database().version();
                            let reply = protocol::handle_command(&mut session, cmd);
                            // Synchronous replication: a session under
                            // `SET REPLICATION WAIT` has this primary
                            // withhold a mutation's reply until enough
                            // followers ACKed the resulting version.
                            // Detection is the catalog-version delta
                            // across the command — only a successful
                            // write advances it. (Concurrent writers
                            // may inflate v1; ACKs are monotone in
                            // version, so waiting on a later version
                            // still covers this write.)
                            let gate = match (session.repl_wait, session.replication()) {
                                (ReplWait::Off, _) | (_, None) => None,
                                (wait, Some(repl)) if repl.role() == "primary" => {
                                    let v1 = session.database().version();
                                    (v1 > v0 && !reply.close).then(|| {
                                        let need = match wait {
                                            ReplWait::Count(n) => n as usize,
                                            ReplWait::Majority => repl.majority_need(),
                                            ReplWait::Off => 0,
                                        };
                                        (Arc::clone(repl), v1, need)
                                    })
                                }
                                _ => None,
                            };
                            match gate {
                                Some((repl, v1, need)) if need > 0 => {
                                    let timeout = session.repl_wait_timeout;
                                    let inline = reply.text.clone();
                                    let me = Arc::clone(&self);
                                    let text = reply.text;
                                    let parked_at = Instant::now();
                                    let done = Box::new(move |ok: bool| {
                                        let text = if ok {
                                            text
                                        } else {
                                            format!(
                                                "ERR repl_timeout write committed at version {v1} but {need} follower ack(s) did not arrive in {}ms (the write is durable and replicating; only the synchronous confirmation timed out)\n",
                                                timeout.as_millis()
                                            )
                                        };
                                        me.serving.park_seconds.observe_since(parked_at);
                                        me.unpark(text, admitted);
                                    });
                                    if repl.register_ack_wait(v1, need, timeout, done) {
                                        // Already acked by the time the
                                        // write returned — reply now.
                                        let _ = self.stage(inline.as_bytes());
                                        SliceOutcome::Done { close: false }
                                    } else {
                                        SliceOutcome::Parked
                                    }
                                }
                                _ => {
                                    let _ = self.stage(reply.text.as_bytes());
                                    SliceOutcome::Done { close: reply.close }
                                }
                            }
                        }
                    }
                };
                self.serving.slice_seconds.observe_since(slice_start);
                let close = match outcome {
                    SliceOutcome::Parked => {
                        // The park: return not-runnable WITHOUT
                        // settling `running` and WITHOUT releasing the
                        // admission slot. The scheduler forgets the
                        // connection, `ingest` cannot re-enqueue it
                        // (running is still set), and no worker thread
                        // is held across the wait. `Conn::unpark`
                        // finishes what this slice started.
                        return false;
                    }
                    SliceOutcome::Done { close } => close,
                };
                if admitted {
                    self.serving.finish();
                }
                if close {
                    let mut st = self.st.lock().unwrap_or_else(|e| e.into_inner());
                    st.closing = true;
                    // Input pipelined behind QUIT is not executed —
                    // same as the blocking server, which stopped
                    // reading after BYE.
                    self.drop_pending(&mut st);
                }
            }
        }
        // Settle the running flag BEFORE notifying the reactor: the
        // notification triggers `update_conn`, whose graceful-close
        // reap requires `!running`. Notifying first would let the
        // reactor observe `closing && running`, skip the reap, and —
        // with this slice returning not-runnable — never be told
        // again, leaking the connection (and its socket) forever.
        let again = {
            let mut st = self.st.lock().unwrap_or_else(|e| e.into_inner());
            if self.broken.load(Ordering::Acquire) {
                self.drop_pending(&mut st);
            }
            if st.pending.is_empty() {
                st.running = false;
                false
            } else {
                true
            }
        };
        self.shared.notify(&self);
        again
    }
}

/// The reactor: accepts connections, turns socket bytes into queued
/// commands, and ships staged replies back out. Runs on one thread;
/// everything it owns exclusively lives here rather than in `Conn`.
pub(crate) struct Reactor {
    shared: Arc<ReactorShared>,
    scheduler: Arc<Scheduler>,
    manager: Arc<SessionManager>,
    serving: Arc<ServingCounters>,
    listener: TcpListener,
    /// Optional Prometheus scrape endpoint (`--metrics-addr`): plain
    /// HTTP/1.0 `GET /metrics`, served by this same reactor thread.
    metrics_listener: Option<TcpListener>,
    conns: HashMap<u64, Arc<Conn>>,
    http_conns: HashMap<u64, HttpConn>,
    next_token: u64,
    active: Arc<AtomicUsize>,
    limits: Limits,
}

/// One scrape connection: buffered request head in, one response out,
/// then close. Scrapes are tiny and rare, so no flow control beyond a
/// request-size cap.
struct HttpConn {
    stream: TcpStream,
    inbuf: Vec<u8>,
    out: Vec<u8>,
    pos: usize,
}

fn find_newline(haystack: &[u8]) -> Option<usize> {
    haystack.iter().position(|&b| b == b'\n')
}

fn oversize_reply() -> String {
    format!("ERR request exceeds {MAX_REQUEST_BYTES} bytes\n")
}

impl Reactor {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        listener: TcpListener,
        metrics_listener: Option<TcpListener>,
        shared: Arc<ReactorShared>,
        scheduler: Arc<Scheduler>,
        manager: Arc<SessionManager>,
        serving: Arc<ServingCounters>,
        active: Arc<AtomicUsize>,
        limits: Limits,
    ) -> io::Result<Reactor> {
        listener.set_nonblocking(true)?;
        shared
            .epoll
            .add(listener.as_raw_fd(), EPOLLIN, TOKEN_LISTENER)?;
        shared
            .epoll
            .add(shared.wake.read_fd(), EPOLLIN, TOKEN_WAKE)?;
        if let Some(ml) = &metrics_listener {
            ml.set_nonblocking(true)?;
            shared.epoll.add(ml.as_raw_fd(), EPOLLIN, TOKEN_METRICS)?;
        }
        Ok(Reactor {
            shared,
            scheduler,
            manager,
            serving,
            listener,
            metrics_listener,
            conns: HashMap::new(),
            http_conns: HashMap::new(),
            next_token: 0,
            active,
            limits,
        })
    }

    pub fn run(mut self) {
        let mut events = Vec::new();
        let mut draining = false;
        let mut deadline = None;
        loop {
            let timeout = if draining { 20 } else { -1 };
            if self.shared.epoll.wait(&mut events, 256, timeout).is_err() {
                break;
            }
            for ev in &events {
                match ev.token {
                    TOKEN_WAKE => self.shared.wake.drain(),
                    TOKEN_LISTENER => self.accept_ready(draining),
                    TOKEN_METRICS => self.accept_metrics(draining),
                    token => {
                        if let Some(conn) = self.conns.get(&token).cloned() {
                            if ev.events & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR) != 0 {
                                self.handle_readable(&conn);
                            }
                            self.update_conn(&conn);
                        } else if self.http_conns.contains_key(&token) {
                            self.step_http(token);
                        }
                    }
                }
            }
            // Worker notifications: flush/adjust the connections whose
            // state changed off-reactor.
            let dirty =
                std::mem::take(&mut *self.shared.dirty.lock().unwrap_or_else(|e| e.into_inner()));
            for conn in dirty {
                conn.dirty.store(false, Ordering::Release);
                if self.conns.contains_key(&conn.token) {
                    self.update_conn(&conn);
                }
            }
            if !draining && self.shared.shutdown.load(Ordering::Acquire) {
                // Begin the drain: stop accepting, stop reading, let
                // queued work finish and flush.
                draining = true;
                deadline = Some(Instant::now() + self.limits.drain_timeout);
                let _ = self.shared.epoll.delete(self.listener.as_raw_fd());
                for conn in self.conns.values() {
                    conn.st.lock().unwrap_or_else(|e| e.into_inner()).closing = true;
                }
            }
            if draining {
                let overdue = deadline.is_some_and(|d| Instant::now() >= d);
                for conn in self.conns.values().cloned().collect::<Vec<_>>() {
                    if overdue {
                        conn.broken.store(true, Ordering::Release);
                        conn.out_cv.notify_all();
                    }
                    self.update_conn(&conn);
                }
                if self.conns.is_empty() || overdue {
                    break;
                }
            }
        }
        // Scrape connections hold no replies worth draining: close them.
        for http in std::mem::take(&mut self.http_conns).into_values() {
            let _ = self.shared.epoll.delete(http.stream.as_raw_fd());
        }
        // Anything still registered at this point is force-closed.
        for conn in std::mem::take(&mut self.conns).into_values() {
            conn.broken.store(true, Ordering::Release);
            conn.out_cv.notify_all();
            let _ = self.shared.epoll.delete(conn.stream.as_raw_fd());
            let _ = conn.stream.shutdown(Shutdown::Both);
            let mut st = conn.st.lock().unwrap_or_else(|e| e.into_inner());
            conn.drop_pending(&mut st);
            self.active.fetch_sub(1, Ordering::Relaxed);
        }
        self.shared.clear_dirty();
    }

    fn accept_ready(&mut self, draining: bool) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if !draining {
                        self.add_conn(stream);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
    }

    fn accept_metrics(&mut self, draining: bool) {
        let Some(listener) = &self.metrics_listener else {
            return;
        };
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    if draining || stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let token = self.next_token;
                    self.next_token += 1;
                    if self
                        .shared
                        .epoll
                        .add(stream.as_raw_fd(), EPOLLIN | EPOLLRDHUP, token)
                        .is_err()
                    {
                        continue;
                    }
                    self.http_conns.insert(
                        token,
                        HttpConn {
                            stream,
                            inbuf: Vec::new(),
                            out: Vec::new(),
                            pos: 0,
                        },
                    );
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
    }

    /// Render the `GET /metrics` response body: the catalog registry
    /// (server/engine/store/replication families) plus the process-wide
    /// one (sampling runtime).
    fn render_metrics(&self) -> String {
        let mut body = String::new();
        self.manager
            .database()
            .obs_registry()
            .render_into(&mut body);
        pip_obs::Registry::global().render_into(&mut body);
        body
    }

    /// Drive one scrape connection: buffer the request head, answer one
    /// response, close when it is flushed. Any protocol or socket
    /// trouble just drops the connection — scrapes are best-effort.
    fn step_http(&mut self, token: u64) {
        let Some(mut http) = self.http_conns.remove(&token) else {
            return;
        };
        let mut drop_conn = false;
        let mut eof = false;
        if http.out.is_empty() {
            // Still reading the request head.
            let mut buf = [0u8; 4096];
            loop {
                match (&http.stream).read(&mut buf) {
                    Ok(0) => {
                        drop_conn = http.inbuf.is_empty();
                        eof = true;
                        break;
                    }
                    Ok(n) => {
                        http.inbuf.extend_from_slice(&buf[..n]);
                        if http.inbuf.len() > 16 * 1024 {
                            drop_conn = true; // not a scrape request
                            break;
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        drop_conn = true;
                        break;
                    }
                }
            }
            let head_complete = eof
                || http.inbuf.windows(4).any(|w| w == b"\r\n\r\n")
                || http.inbuf.windows(2).any(|w| w == b"\n\n");
            if !drop_conn && head_complete {
                let request = String::from_utf8_lossy(&http.inbuf);
                let target = request.split_whitespace().nth(1).unwrap_or("");
                let is_get = request.starts_with("GET ") || request.starts_with("get ");
                let (status, body) = if is_get && (target == "/metrics" || target == "/metrics/") {
                    ("200 OK", self.render_metrics())
                } else {
                    (
                        "404 Not Found",
                        "not found (try GET /metrics)\n".to_string(),
                    )
                };
                http.out = format!(
                    "HTTP/1.0 {status}\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
                    body.len()
                )
                .into_bytes();
                let _ = self
                    .shared
                    .epoll
                    .modify(http.stream.as_raw_fd(), EPOLLOUT, token);
            }
        }
        if !drop_conn && !http.out.is_empty() {
            while http.pos < http.out.len() {
                match (&http.stream).write(&http.out[http.pos..]) {
                    Ok(0) => {
                        drop_conn = true;
                        break;
                    }
                    Ok(n) => http.pos += n,
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        drop_conn = true;
                        break;
                    }
                }
            }
            if http.pos == http.out.len() {
                drop_conn = true; // response delivered
            }
        }
        if drop_conn {
            let _ = self.shared.epoll.delete(http.stream.as_raw_fd());
        } else {
            self.http_conns.insert(token, http);
        }
    }

    fn add_conn(&mut self, stream: TcpStream) {
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let _ = stream.set_nodelay(true);
        let session = self.manager.open();
        let banner = format!(
            "PIP server ready (session {}); commands: QUERY/STREAM/PREPARE/EXEC/SET/CHECKPOINT/STATS/PING/QUIT\n",
            session.id()
        );
        let token = self.next_token;
        self.next_token += 1;
        let conn = Arc::new(Conn {
            token,
            stream,
            dirty: AtomicBool::new(false),
            broken: AtomicBool::new(false),
            session: Mutex::new(session),
            st: Mutex::new(ConnState {
                inbuf: Vec::new(),
                skipping: false,
                pending: VecDeque::new(),
                running: false,
                closing: false,
                read_paused: false,
                interest: EPOLLIN | EPOLLRDHUP,
            }),
            out: Mutex::new(OutBuf {
                buf: banner.into_bytes(),
                pos: 0,
            }),
            out_cv: Condvar::new(),
            shared: Arc::clone(&self.shared),
            serving: Arc::clone(&self.serving),
            scheduler: Arc::clone(&self.scheduler),
            limits: self.limits,
        });
        if self
            .shared
            .epoll
            .add(conn.stream.as_raw_fd(), EPOLLIN | EPOLLRDHUP, token)
            .is_err()
        {
            return;
        }
        self.serving.accepts.inc();
        self.active.fetch_add(1, Ordering::Relaxed);
        self.conns.insert(token, Arc::clone(&conn));
        self.update_conn(&conn); // flush the banner
    }

    /// Read everything available, decoding complete request lines into
    /// the connection's FIFO as they appear.
    fn handle_readable(&mut self, conn: &Arc<Conn>) {
        let mut buf = [0u8; 16 * 1024];
        loop {
            {
                let st = conn.st.lock().unwrap_or_else(|e| e.into_inner());
                if st.closing || st.read_paused || self.broken(conn) {
                    return;
                }
            }
            match (&conn.stream).read(&mut buf) {
                Ok(0) => {
                    self.ingest(conn, &[], true);
                    return;
                }
                Ok(n) => {
                    self.serving.read_bytes.add(n as u64);
                    self.ingest(conn, &buf[..n], false);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    conn.broken.store(true, Ordering::Release);
                    conn.out_cv.notify_all();
                    return;
                }
            }
        }
    }

    fn broken(&self, conn: &Conn) -> bool {
        conn.broken.load(Ordering::Acquire)
    }

    /// Decode `data` (plus any carried partial line) into queued
    /// commands; `eof` means the peer half-closed, which executes any
    /// unterminated trailing request and begins a graceful close —
    /// exactly the blocking server's `read_line`-at-EOF semantics.
    fn ingest(&mut self, conn: &Arc<Conn>, data: &[u8], eof: bool) {
        let mut st = conn.st.lock().unwrap_or_else(|e| e.into_inner());
        let st = &mut *st;
        let mut i = 0;
        while i < data.len() && !self.broken(conn) {
            if st.skipping {
                match find_newline(&data[i..]) {
                    Some(j) => {
                        st.skipping = false;
                        self.serving.oversize_kills.inc();
                        st.pending.push_back(Pending::Reply(oversize_reply()));
                        i += j + 1;
                    }
                    None => break, // discard the whole chunk
                }
            } else {
                match find_newline(&data[i..]) {
                    Some(j) => {
                        if st.inbuf.len() + j > MAX_REQUEST_BYTES {
                            st.inbuf.clear();
                            self.serving.oversize_kills.inc();
                            st.pending.push_back(Pending::Reply(oversize_reply()));
                        } else if st.inbuf.is_empty() {
                            enqueue_line(st, conn, &data[i..i + j], &self.serving);
                        } else {
                            st.inbuf.extend_from_slice(&data[i..i + j]);
                            let line = std::mem::take(&mut st.inbuf);
                            enqueue_line(st, conn, &line, &self.serving);
                        }
                        i += j + 1;
                    }
                    None => {
                        st.inbuf.extend_from_slice(&data[i..]);
                        i = data.len();
                        if st.inbuf.len() > MAX_REQUEST_BYTES {
                            // Oversized: drop what we buffered and keep
                            // discarding until the newline arrives.
                            st.inbuf.clear();
                            st.skipping = true;
                        }
                    }
                }
            }
        }
        if eof {
            if !st.skipping && !st.inbuf.is_empty() {
                let line = std::mem::take(&mut st.inbuf);
                enqueue_line(st, conn, &line, &self.serving);
            }
            st.closing = true;
        }
        if st.pending.len() >= self.limits.max_pipeline {
            if !st.read_paused {
                self.serving.backpressure_pauses.inc();
            }
            st.read_paused = true;
        }
        if !st.running && !st.pending.is_empty() && !self.broken(conn) {
            st.running = true;
            self.scheduler.enqueue(Arc::clone(conn) as Arc<dyn Work>);
        }
    }

    /// Flush staged output, recompute epoll interest, resume paused
    /// reads, and reap the connection once it is drained (or broken).
    fn update_conn(&mut self, conn: &Arc<Conn>) {
        let mut broke = false;
        let mut flushed = 0u64;
        let unsent = {
            let mut out = conn.out.lock().unwrap_or_else(|e| e.into_inner());
            while out.pos < out.buf.len() {
                match (&conn.stream).write(&out.buf[out.pos..]) {
                    Ok(0) => {
                        broke = true;
                        break;
                    }
                    Ok(n) => {
                        out.pos += n;
                        flushed += n as u64;
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        broke = true;
                        break;
                    }
                }
            }
            if out.pos == out.buf.len() {
                out.buf.clear();
                out.pos = 0;
            } else if out.pos > (1 << 16) {
                // Reclaim the flushed prefix of a long-lived backlog.
                let pos = out.pos;
                out.buf.drain(..pos);
                out.pos = 0;
            }
            out.unsent()
        };
        if flushed > 0 {
            self.serving.flushed_bytes.add(flushed);
        }
        if broke {
            conn.broken.store(true, Ordering::Release);
        }
        // Space freed (or the connection died): unblock staging workers.
        conn.out_cv.notify_all();

        let mut remove = false;
        {
            let mut st = conn.st.lock().unwrap_or_else(|e| e.into_inner());
            if self.broken(conn) {
                remove = true;
            } else if st.closing && !st.running && st.pending.is_empty() && unsent == 0 {
                remove = true; // graceful close: everything ran + flushed
            } else {
                if st.read_paused && !st.closing && st.pending.len() * 2 <= self.limits.max_pipeline
                {
                    st.read_paused = false;
                }
                let mut want = 0;
                if !st.closing && !st.read_paused {
                    want |= EPOLLIN | EPOLLRDHUP;
                }
                if unsent > 0 {
                    want |= EPOLLOUT;
                }
                if want != st.interest {
                    match self
                        .shared
                        .epoll
                        .modify(conn.stream.as_raw_fd(), want, conn.token)
                    {
                        Ok(()) => st.interest = want,
                        Err(_) => {
                            conn.broken.store(true, Ordering::Release);
                            remove = true;
                        }
                    }
                }
            }
        }
        if remove {
            self.reap(conn);
        }
    }

    fn reap(&mut self, conn: &Arc<Conn>) {
        if self.conns.remove(&conn.token).is_none() {
            return; // already reaped
        }
        conn.broken.store(true, Ordering::Release);
        conn.out_cv.notify_all();
        let _ = self.shared.epoll.delete(conn.stream.as_raw_fd());
        let _ = conn.stream.shutdown(Shutdown::Both);
        let mut st = conn.st.lock().unwrap_or_else(|e| e.into_inner());
        conn.drop_pending(&mut st);
        self.active.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Parse one request line into the FIFO, applying admission control to
/// expensive commands at decode time.
fn enqueue_line(st: &mut ConnState, conn: &Conn, line: &[u8], serving: &ServingCounters) {
    let Ok(text) = std::str::from_utf8(line) else {
        // Binary garbage: drop the connection, as the blocking server's
        // `read_line` did.
        serving.utf8_kills.inc();
        conn.broken.store(true, Ordering::Release);
        return;
    };
    if text.trim().is_empty() {
        return;
    }
    match protocol::parse_command(text) {
        Err(e) => st
            .pending
            .push_back(Pending::Reply(protocol::Reply::err(e).text)),
        Ok(cmd) => {
            let expensive = matches!(
                cmd,
                Command::Query(_) | Command::Exec(_) | Command::Stream(_)
            );
            if expensive && !serving.try_admit() {
                st.pending.push_back(Pending::Reply(format!(
                    "ERR busy (admission queue full, capacity {})\n",
                    serving.capacity()
                )));
            } else {
                st.pending.push_back(Pending::Cmd {
                    cmd,
                    admitted: expensive,
                    admitted_at: expensive.then(Instant::now),
                });
            }
        }
    }
}
