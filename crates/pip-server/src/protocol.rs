//! The line-oriented wire protocol.
//!
//! Requests are single lines; keywords are case-insensitive:
//!
//! ```text
//! QUERY <sql>              run one SQL statement
//! PREPARE <name> AS <sql>  parse + plan a SELECT once
//! EXEC <name>              run a prepared statement
//! DEALLOCATE <name>        forget a prepared statement
//! SET <key> <value>        THREADS | SEED | SAMPLES | EPSILON | DELTA
//! STATS                    session counters and sampler settings
//! PING                     liveness probe
//! QUIT                     close the connection
//! ```
//!
//! Result-set responses are `OK <n> rows (<fresh|cached>)`, a tab
//! separated header line, one line per row (rows still carrying a
//! non-trivial c-table condition render it after an `IF`), then `END`.
//! All other successes answer with a single `OK ...` line; failures
//! answer `ERR <message>` and keep the connection open.

use pip_ctable::CTable;

use crate::session::Session;

/// A parsed client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    Query(String),
    Prepare { name: String, sql: String },
    Exec(String),
    Deallocate(String),
    Set { key: String, value: String },
    Stats,
    Ping,
    Quit,
}

/// Parse one request line.
pub fn parse_command(line: &str) -> Result<Command, String> {
    let line = line.trim();
    let (word, rest) = match line.split_once(char::is_whitespace) {
        Some((w, r)) => (w, r.trim()),
        None => (line, ""),
    };
    match word.to_ascii_uppercase().as_str() {
        "QUERY" if !rest.is_empty() => Ok(Command::Query(rest.to_string())),
        "QUERY" => Err("QUERY requires a SQL statement".into()),
        "PREPARE" => {
            // PREPARE <name> AS <sql>
            let (name, tail) = rest
                .split_once(char::is_whitespace)
                .ok_or("usage: PREPARE <name> AS <sql>")?;
            let tail = tail.trim();
            let sql = tail
                .strip_prefix("AS ")
                .or_else(|| tail.strip_prefix("as "))
                .or_else(|| tail.strip_prefix("As "))
                .or_else(|| tail.strip_prefix("aS "))
                .ok_or("usage: PREPARE <name> AS <sql>")?;
            Ok(Command::Prepare {
                name: name.to_string(),
                sql: sql.trim().to_string(),
            })
        }
        "EXEC" | "EXECUTE" if !rest.is_empty() => Ok(Command::Exec(rest.to_string())),
        "EXEC" | "EXECUTE" => Err("usage: EXEC <name>".into()),
        "DEALLOCATE" if !rest.is_empty() => Ok(Command::Deallocate(rest.to_string())),
        "DEALLOCATE" => Err("usage: DEALLOCATE <name>".into()),
        "SET" => {
            let (key, value) = rest
                .split_once(char::is_whitespace)
                .ok_or("usage: SET <key> <value>")?;
            Ok(Command::Set {
                key: key.to_ascii_uppercase(),
                value: value.trim().to_string(),
            })
        }
        "STATS" => Ok(Command::Stats),
        "PING" => Ok(Command::Ping),
        "QUIT" | "EXIT" => Ok(Command::Quit),
        "" => Err("empty request".into()),
        other => Err(format!(
            "unknown command '{other}' (try QUERY/PREPARE/EXEC/SET/STATS/PING/QUIT)"
        )),
    }
}

/// One protocol reply: response text (one or more `\n`-terminated
/// lines) plus whether the connection should close.
pub struct Reply {
    pub text: String,
    pub close: bool,
}

impl Reply {
    fn line(text: impl Into<String>) -> Reply {
        Reply {
            text: format!("{}\n", text.into()),
            close: false,
        }
    }

    fn err(msg: impl std::fmt::Display) -> Reply {
        let one_line = msg.to_string().replace('\n', "; ");
        Reply::line(format!("ERR {one_line}"))
    }
}

/// Render a result table as the multi-line `OK ... END` block.
fn render_table(table: &CTable, cached: bool) -> String {
    let mut out = String::new();
    let freshness = if cached { "cached" } else { "fresh" };
    out.push_str(&format!("OK {} rows ({freshness})\n", table.len()));
    let header: Vec<&str> = table
        .schema()
        .columns()
        .iter()
        .map(|c| c.name.as_str())
        .collect();
    out.push_str(&header.join("\t"));
    out.push('\n');
    for row in table.rows() {
        let cells: Vec<String> = row.cells.iter().map(|c| format!("{c}")).collect();
        out.push_str(&cells.join("\t"));
        if !row.condition.is_trivially_true() {
            out.push_str(&format!("\tIF {}", row.condition));
        }
        out.push('\n');
    }
    out.push_str("END\n");
    out
}

fn apply_set(session: &mut Session, key: &str, value: &str) -> Result<String, String> {
    match key {
        "THREADS" => {
            let n: usize = value.parse().map_err(|_| "THREADS expects an integer")?;
            session.cfg = session.cfg.clone().with_threads(n);
            Ok(format!("OK threads={}", session.cfg.threads))
        }
        "SEED" => {
            let n: u64 = value.parse().map_err(|_| "SEED expects an integer")?;
            session.cfg.world_seed = n;
            Ok(format!("OK seed={n}"))
        }
        "SAMPLES" => {
            let n: usize = value.parse().map_err(|_| "SAMPLES expects an integer")?;
            if n == 0 {
                return Err("SAMPLES must be positive".into());
            }
            session.cfg.min_samples = n;
            session.cfg.max_samples = n;
            Ok(format!("OK samples={n}"))
        }
        "EPSILON" => {
            let x: f64 = value.parse().map_err(|_| "EPSILON expects a number")?;
            if !(0.0..1.0).contains(&x) || x == 0.0 {
                return Err("EPSILON must be in (0, 1)".into());
            }
            session.cfg.epsilon = x;
            Ok(format!("OK epsilon={x}"))
        }
        "DELTA" => {
            let x: f64 = value.parse().map_err(|_| "DELTA expects a number")?;
            if x <= 0.0 {
                return Err("DELTA must be positive".into());
            }
            session.cfg.delta = x;
            Ok(format!("OK delta={x}"))
        }
        other => Err(format!(
            "unknown setting '{other}' (THREADS, SEED, SAMPLES, EPSILON, DELTA)"
        )),
    }
}

/// Execute one request line against a session.
pub fn handle_line(session: &mut Session, line: &str) -> Reply {
    let cmd = match parse_command(line) {
        Ok(c) => c,
        Err(e) => return Reply::err(e),
    };
    match cmd {
        Command::Query(sql) => match session.query(&sql) {
            Ok(r) => Reply {
                text: render_table(&r.table, r.cached),
                close: false,
            },
            Err(e) => Reply::err(e),
        },
        Command::Prepare { name, sql } => match session.prepare(&name, &sql) {
            Ok(()) => Reply::line(format!("OK prepared {name}")),
            Err(e) => Reply::err(e),
        },
        Command::Exec(name) => match session.exec_prepared(&name) {
            Ok(r) => Reply {
                text: render_table(&r.table, r.cached),
                close: false,
            },
            Err(e) => Reply::err(e),
        },
        Command::Deallocate(name) => match session.deallocate(&name) {
            Ok(()) => Reply::line(format!("OK deallocated {name}")),
            Err(e) => Reply::err(e),
        },
        Command::Set { key, value } => match apply_set(session, &key, &value) {
            Ok(msg) => Reply::line(msg),
            Err(e) => Reply::err(e),
        },
        Command::Stats => {
            let s = session.stats();
            Reply::line(format!(
                "OK session={} queries={} cache_hits={} prepared={} threads={} seed={} samples={}..{}",
                session.id(),
                s.queries,
                s.cache_hits,
                s.prepared,
                session.cfg.threads,
                session.cfg.world_seed,
                session.cfg.min_samples,
                session.cfg.max_samples,
            ))
        }
        Command::Ping => Reply::line("PONG"),
        Command::Quit => Reply {
            text: "BYE\n".to_string(),
            close: true,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pip_engine::Database;
    use pip_sampling::SamplerConfig;
    use std::sync::Arc;

    use crate::session::SessionManager;

    fn session() -> Session {
        let mgr = SessionManager::new(Arc::new(Database::new()), SamplerConfig::default());
        mgr.open()
    }

    #[test]
    fn command_parsing() {
        assert_eq!(
            parse_command("query SELECT 1").unwrap(),
            Command::Query("SELECT 1".into())
        );
        assert_eq!(
            parse_command("PREPARE p AS SELECT * FROM t").unwrap(),
            Command::Prepare {
                name: "p".into(),
                sql: "SELECT * FROM t".into()
            }
        );
        assert_eq!(parse_command("exec p").unwrap(), Command::Exec("p".into()));
        assert_eq!(
            parse_command("SET threads 4").unwrap(),
            Command::Set {
                key: "THREADS".into(),
                value: "4".into()
            }
        );
        assert_eq!(parse_command("ping").unwrap(), Command::Ping);
        assert_eq!(parse_command("QUIT").unwrap(), Command::Quit);
        assert!(parse_command("").is_err());
        assert!(parse_command("QUERY").is_err());
        assert!(parse_command("PREPARE p SELECT 1").is_err());
        assert!(parse_command("FROBNICATE").is_err());
    }

    #[test]
    fn end_to_end_lines() {
        let mut s = session();
        let r = handle_line(&mut s, "QUERY CREATE TABLE t (x SYMBOLIC)");
        assert!(r.text.starts_with("OK"), "{}", r.text);
        handle_line(
            &mut s,
            "QUERY INSERT INTO t VALUES (create_variable('Normal', 7, 1))",
        );
        let r = handle_line(&mut s, "QUERY SELECT expected_sum(x) FROM t");
        assert!(r.text.starts_with("OK 1 rows (fresh)\n"), "{}", r.text);
        assert!(r.text.contains("expected_sum(x)"), "{}", r.text);
        assert!(r.text.trim_end().ends_with("END"), "{}", r.text);
        let r = handle_line(&mut s, "QUERY SELECT expected_sum(x) FROM t");
        assert!(r.text.starts_with("OK 1 rows (cached)"), "{}", r.text);
        let r = handle_line(&mut s, "QUERY SELECT nothing FROM ghost");
        assert!(r.text.starts_with("ERR "), "{}", r.text);
        assert!(!r.close);
        let r = handle_line(&mut s, "STATS");
        assert!(r.text.contains("cache_hits=1"), "{}", r.text);
        let r = handle_line(&mut s, "QUIT");
        assert!(r.close);
    }

    #[test]
    fn set_validation() {
        let mut s = session();
        assert!(handle_line(&mut s, "SET THREADS 4").text.starts_with("OK"));
        assert_eq!(s.cfg.threads, 4);
        assert!(handle_line(&mut s, "SET SEED 99").text.starts_with("OK"));
        assert_eq!(s.cfg.world_seed, 99);
        assert!(handle_line(&mut s, "SET SAMPLES 500")
            .text
            .starts_with("OK"));
        assert_eq!((s.cfg.min_samples, s.cfg.max_samples), (500, 500));
        assert!(handle_line(&mut s, "SET SAMPLES 0").text.starts_with("ERR"));
        assert!(handle_line(&mut s, "SET EPSILON 2").text.starts_with("ERR"));
        assert!(handle_line(&mut s, "SET BOGUS 1").text.starts_with("ERR"));
        assert!(handle_line(&mut s, "SET THREADS x").text.starts_with("ERR"));
    }
}
