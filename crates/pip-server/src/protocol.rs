//! The line-oriented wire protocol.
//!
//! Requests are single lines; keywords are case-insensitive:
//!
//! ```text
//! QUERY <sql>              run one SQL statement
//! STREAM <sql>             run one SQL statement, rows on the wire as produced
//! PREPARE <name> AS <sql>  parse + plan a SELECT once
//! EXEC <name>              run a prepared statement
//! DEALLOCATE <name>        forget a prepared statement
//! ANALYZE [<table>]        refresh optimizer statistics (SQL passthrough)
//! SET <key> <value>        THREADS | SEED | SAMPLES | EPSILON | DELTA | COMPILE | REUSE
//!                          | DURABILITY (catalog-wide: OFF | WAL | SYNC)
//!                          | REPLICATION WAIT 0|<n>|MAJORITY (sync acks)
//!                          | REPLICATION TIMEOUT <ms>
//! CHECKPOINT               snapshot the catalog, start a fresh WAL
//! PROMOTE                  failover: mint a new epoch, go writable, serve the feed
//! WAIT VERSION <v> [<ms>]  block until this node has applied version v
//! STATS                    session counters and sampler settings
//! METRICS                  every metric family, Prometheus text format
//! SLOWLOG [n]              most recent slow-query spans, newest first
//! PING                     liveness probe
//! QUIT                     close the connection
//! ```
//!
//! `SET SLOWLOG <ms>` arms the server-wide slow-query log (0 disarms and
//! clears it); `SLOWLOG [n]` reads back up to `n` captured spans with the
//! full per-phase breakdown. `METRICS` dumps the same Prometheus text the
//! optional `--metrics-addr` HTTP listener serves at `GET /metrics`.
//!
//! `SET DURABILITY` and `CHECKPOINT` require the server to have been
//! opened over a data directory (`pip-serverd --data-dir`); unlike the
//! sampler knobs, durability is a property of the shared catalog, not
//! of the issuing session.
//!
//! On a replicated node, `STATS` also reports `version=` (the catalog
//! version this node serves — on the primary the write counter, on a
//! follower the applied version; clients wanting read-your-writes pick
//! a replica whose version has reached their write's — or just issue
//! `WAIT VERSION`), `role=` (`primary`/`replica`), `epoch=` (the
//! replication generation, bumped by every `PROMOTE`), `wait=` (the
//! session's `SET REPLICATION WAIT` setting), `replication_lag=`, and on
//! the primary `acked_min=` (the lowest version every attached follower
//! has acknowledged) plus `fenced=true` once a newer epoch deposed it.
//! `PROMOTE` is the failover verb: on a follower it seals the
//! replication feed, mints a new epoch, and opens the write gate; on a
//! primary (or a standalone node) it is an error.
//!
//! With `SET REPLICATION WAIT n` (or `MAJORITY`) active, a mutation's
//! `OK` is withheld until n followers acknowledged the resulting catalog
//! version; past `SET REPLICATION TIMEOUT` the reply degrades to
//! `ERR repl_timeout ...` — the write itself is durable and replicating
//! either way, only the synchronous confirmation timed out.
//!
//! `ANALYZE` is the SQL statement on the wire: `ANALYZE [<table>]`
//! routes through the QUERY handler unchanged, so `QUERY ANALYZE t` and
//! `ANALYZE t` are equivalent (as are the `EXPLAIN` variants, including
//! `EXPLAIN (FORMAT JSON)` for machine-readable plans).
//!
//! `QUERY` result sets are `OK <n> rows (<fresh|cached>)`, a tab
//! separated header line, one line per row (rows still carrying a
//! non-trivial c-table condition render it after an `IF`), then `END`.
//! `STREAM` cannot know the row count up front — its frame is
//! `STREAM BEGIN`, the header, rows written as the physical operator
//! tree produces them, then `END <n> rows (<fresh|cached>)`; an error
//! mid-stream terminates the frame with an `ERR` line instead of `END`.
//! All other successes answer with a single `OK ...` line; failures
//! answer `ERR <message>` and keep the connection open.

use std::io::{self, Write};
use std::sync::Arc;

use pip_ctable::{CRow, CTable};

use crate::session::{ReplWait, Session, StreamQuery};

/// A parsed client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    Query(String),
    Stream(String),
    Prepare {
        name: String,
        sql: String,
    },
    Exec(String),
    Deallocate(String),
    Set {
        key: String,
        value: String,
    },
    Checkpoint,
    Promote,
    /// `WAIT VERSION <v> [<timeout_ms>]` — read-your-writes routing:
    /// block until this node's applied catalog version reaches `v`.
    WaitVersion {
        version: u64,
        timeout_ms: Option<u64>,
    },
    Stats,
    /// `METRICS` — dump every registered metric family in Prometheus
    /// text exposition format, terminated by `END`.
    Metrics,
    /// `SLOWLOG [n]` — read back up to `n` (default 16) captured
    /// slow-query spans, newest first.
    SlowLog(Option<usize>),
    Ping,
    Quit,
}

/// Parse one request line.
pub fn parse_command(line: &str) -> Result<Command, String> {
    let line = line.trim();
    let (word, rest) = match line.split_once(char::is_whitespace) {
        Some((w, r)) => (w, r.trim()),
        None => (line, ""),
    };
    match word.to_ascii_uppercase().as_str() {
        "QUERY" if !rest.is_empty() => Ok(Command::Query(rest.to_string())),
        "QUERY" => Err("QUERY requires a SQL statement".into()),
        "STREAM" if !rest.is_empty() => Ok(Command::Stream(rest.to_string())),
        "STREAM" => Err("STREAM requires a SQL statement".into()),
        "PREPARE" => {
            // PREPARE <name> AS <sql>
            let (name, tail) = rest
                .split_once(char::is_whitespace)
                .ok_or("usage: PREPARE <name> AS <sql>")?;
            let tail = tail.trim();
            let sql = tail
                .strip_prefix("AS ")
                .or_else(|| tail.strip_prefix("as "))
                .or_else(|| tail.strip_prefix("As "))
                .or_else(|| tail.strip_prefix("aS "))
                .ok_or("usage: PREPARE <name> AS <sql>")?;
            Ok(Command::Prepare {
                name: name.to_string(),
                sql: sql.trim().to_string(),
            })
        }
        "EXEC" | "EXECUTE" if !rest.is_empty() => Ok(Command::Exec(rest.to_string())),
        "EXEC" | "EXECUTE" => Err("usage: EXEC <name>".into()),
        "DEALLOCATE" if !rest.is_empty() => Ok(Command::Deallocate(rest.to_string())),
        "DEALLOCATE" => Err("usage: DEALLOCATE <name>".into()),
        // ANALYZE is SQL: forward the whole line to the statement path.
        "ANALYZE" => Ok(Command::Query(line.to_string())),
        "SET" => {
            let (key, value) = rest
                .split_once(char::is_whitespace)
                .ok_or("usage: SET <key> <value>")?;
            Ok(Command::Set {
                key: key.to_ascii_uppercase(),
                value: value.trim().to_string(),
            })
        }
        "CHECKPOINT" => Ok(Command::Checkpoint),
        "PROMOTE" => Ok(Command::Promote),
        "WAIT" => {
            // WAIT VERSION <v> [<timeout_ms>]
            let mut words = rest.split_whitespace();
            if !words
                .next()
                .is_some_and(|w| w.eq_ignore_ascii_case("VERSION"))
            {
                return Err("usage: WAIT VERSION <version> [<timeout_ms>]".into());
            }
            let version = words
                .next()
                .and_then(|v| v.parse().ok())
                .ok_or("WAIT VERSION expects an integer version")?;
            let timeout_ms = match words.next() {
                None => None,
                Some(t) => Some(
                    t.parse()
                        .map_err(|_| "WAIT VERSION timeout expects milliseconds")?,
                ),
            };
            if words.next().is_some() {
                return Err("usage: WAIT VERSION <version> [<timeout_ms>]".into());
            }
            Ok(Command::WaitVersion {
                version,
                timeout_ms,
            })
        }
        "STATS" => Ok(Command::Stats),
        "METRICS" => Ok(Command::Metrics),
        "SLOWLOG" if rest.is_empty() => Ok(Command::SlowLog(None)),
        "SLOWLOG" => rest
            .parse()
            .map(|n| Command::SlowLog(Some(n)))
            .map_err(|_| "usage: SLOWLOG [<n>]".into()),
        "PING" => Ok(Command::Ping),
        "QUIT" | "EXIT" => Ok(Command::Quit),
        "" => Err("empty request".into()),
        other => Err(format!(
            "unknown command '{other}' (try QUERY/STREAM/PREPARE/EXEC/SET/CHECKPOINT/PROMOTE/WAIT/STATS/METRICS/SLOWLOG/PING/QUIT)"
        )),
    }
}

/// One protocol reply: response text (one or more `\n`-terminated
/// lines) plus whether the connection should close.
pub struct Reply {
    pub text: String,
    pub close: bool,
}

impl Reply {
    fn line(text: impl Into<String>) -> Reply {
        Reply {
            text: format!("{}\n", text.into()),
            close: false,
        }
    }

    pub(crate) fn err(msg: impl std::fmt::Display) -> Reply {
        let one_line = msg.to_string().replace('\n', "; ");
        Reply::line(format!("ERR {one_line}"))
    }
}

/// Render the tab-separated header line for a schema.
fn render_header(schema: &pip_core::Schema) -> String {
    let header: Vec<&str> = schema.columns().iter().map(|c| c.name.as_str()).collect();
    header.join("\t")
}

/// Render one result row (with its condition after `IF` when present).
fn render_row(row: &CRow) -> String {
    let cells: Vec<String> = row.cells.iter().map(|c| format!("{c}")).collect();
    let mut line = cells.join("\t");
    if !row.condition.is_trivially_true() {
        line.push_str(&format!("\tIF {}", row.condition));
    }
    line
}

/// Render a result table as the multi-line `OK ... END` block.
fn render_table(table: &CTable, cached: bool) -> String {
    let mut out = String::new();
    let freshness = if cached { "cached" } else { "fresh" };
    out.push_str(&format!("OK {} rows ({freshness})\n", table.len()));
    out.push_str(&render_header(table.schema()));
    out.push('\n');
    for row in table.rows() {
        out.push_str(&render_row(row));
        out.push('\n');
    }
    out.push_str("END\n");
    out
}

/// Execute `STREAM <sql>`: rows are written to `out` as the physical
/// operator tree produces them (one `write` per row — on a TCP sink
/// each row leaves the process before the next is computed). A fresh
/// SELECT's collected result still lands in the session's sample-result
/// cache, so later `QUERY`/`STREAM` calls with the same text hit it.
pub fn handle_stream(session: &mut Session, sql: &str, out: &mut dyn Write) -> io::Result<()> {
    let replay = |out: &mut dyn Write, table: &CTable, cached: bool| -> io::Result<()> {
        writeln!(out, "STREAM BEGIN")?;
        writeln!(out, "{}", render_header(table.schema()))?;
        for row in table.rows() {
            writeln!(out, "{}", render_row(row))?;
        }
        let freshness = if cached { "cached" } else { "fresh" };
        writeln!(out, "END {} rows ({freshness})", table.len())
    };
    let (plan, cfg, key) = match session.open_stream(sql) {
        Err(e) => return writeln!(out, "ERR {}", e.to_string().replace('\n', "; ")),
        Ok(StreamQuery::Cached(table)) => return replay(out, &table, true),
        Ok(StreamQuery::Table(table)) => return replay(out, &table, false),
        Ok(StreamQuery::Live { plan, cfg, key }) => (plan, cfg, key),
    };
    let db = Arc::clone(session.database());
    let mut phys = match pip_engine::lower(&db, &plan, &cfg) {
        Ok(p) => p,
        Err(e) => return writeln!(out, "ERR {}", e.to_string().replace('\n', "; ")),
    };
    writeln!(out, "STREAM BEGIN")?;
    writeln!(out, "{}", render_header(phys.schema()))?;
    let mut table = CTable::empty(phys.schema().clone());
    loop {
        match phys.next_row() {
            Ok(Some(row)) => {
                writeln!(out, "{}", render_row(&row))?;
                // Arity was checked at lowering, so this cannot fail —
                // but if an operator ever emitted a malformed row,
                // caching a truncated table would silently corrupt
                // later QUERY hits; terminate the frame instead.
                if let Err(e) = table.push(row) {
                    return writeln!(out, "ERR {}", e.to_string().replace('\n', "; "));
                }
            }
            Ok(None) => break,
            Err(e) => {
                // Terminate the frame in place of END.
                return writeln!(out, "ERR {}", e.to_string().replace('\n', "; "));
            }
        }
    }
    let n = table.len();
    drop(phys);
    session.note_streamed(key, Arc::new(table));
    writeln!(out, "END {n} rows (fresh)")
}

/// ON/OFF (also 1/0, TRUE/FALSE) for the boolean sampler knobs. Neither
/// setting ever changes results — `COMPILE OFF` forces the interpreted
/// reference engine, `REUSE OFF` disables sample-block memoization.
fn parse_bool(value: &str) -> Option<bool> {
    match value.to_ascii_uppercase().as_str() {
        "ON" | "1" | "TRUE" => Some(true),
        "OFF" | "0" | "FALSE" => Some(false),
        _ => None,
    }
}

fn apply_set(session: &mut Session, key: &str, value: &str) -> Result<String, String> {
    match key {
        "THREADS" => {
            let n: usize = value.parse().map_err(|_| "THREADS expects an integer")?;
            session.cfg = session.cfg.clone().with_threads(n);
            Ok(format!("OK threads={}", session.cfg.threads))
        }
        "SEED" => {
            let n: u64 = value.parse().map_err(|_| "SEED expects an integer")?;
            session.cfg.world_seed = n;
            Ok(format!("OK seed={n}"))
        }
        "SAMPLES" => {
            let n: usize = value.parse().map_err(|_| "SAMPLES expects an integer")?;
            if n == 0 {
                return Err("SAMPLES must be positive".into());
            }
            session.cfg.min_samples = n;
            session.cfg.max_samples = n;
            Ok(format!("OK samples={n}"))
        }
        "EPSILON" => {
            let x: f64 = value.parse().map_err(|_| "EPSILON expects a number")?;
            if !(0.0..1.0).contains(&x) || x == 0.0 {
                return Err("EPSILON must be in (0, 1)".into());
            }
            session.cfg.epsilon = x;
            Ok(format!("OK epsilon={x}"))
        }
        "DELTA" => {
            let x: f64 = value.parse().map_err(|_| "DELTA expects a number")?;
            if x <= 0.0 {
                return Err("DELTA must be positive".into());
            }
            session.cfg.delta = x;
            Ok(format!("OK delta={x}"))
        }
        "COMPILE" => {
            let on = parse_bool(value).ok_or("COMPILE expects ON/OFF")?;
            session.cfg = session.cfg.clone().with_compile(on);
            Ok(format!("OK compile={on}"))
        }
        "REUSE" => {
            let on = parse_bool(value).ok_or("REUSE expects ON/OFF")?;
            session.cfg = session.cfg.clone().with_block_reuse(on);
            Ok(format!("OK reuse={on}"))
        }
        "DURABILITY" => {
            let level = pip_engine::Durability::parse(value)
                .ok_or("DURABILITY expects OFF, WAL or SYNC")?;
            // Catalog-wide, not session-local: the WAL is shared state.
            match session.database().set_durability(level) {
                Ok(()) => Ok(format!("OK durability={level}")),
                Err(e) => Err(e.to_string()),
            }
        }
        "REPLICATION" => {
            // SET REPLICATION WAIT 0|<n>|MAJORITY  — ACKs per mutation
            // SET REPLICATION TIMEOUT <ms>         — wait deadline
            let (verb, arg) = value
                .split_once(char::is_whitespace)
                .map(|(v, a)| (v, a.trim()))
                .ok_or("usage: SET REPLICATION WAIT 0|<n>|MAJORITY or SET REPLICATION TIMEOUT <ms>")?;
            if verb.eq_ignore_ascii_case("WAIT") {
                if session.replication().is_none() {
                    return Err("SET REPLICATION WAIT: this node is not replicating".into());
                }
                let wait = if arg.eq_ignore_ascii_case("MAJORITY") {
                    ReplWait::Majority
                } else {
                    match arg.parse::<u32>() {
                        Ok(0) => ReplWait::Off,
                        Ok(n) => ReplWait::Count(n),
                        Err(_) => return Err("REPLICATION WAIT expects 0, a count, or MAJORITY".into()),
                    }
                };
                session.repl_wait = wait;
                Ok(format!("OK replication_wait={wait}"))
            } else if verb.eq_ignore_ascii_case("TIMEOUT") {
                let ms: u64 = arg
                    .parse()
                    .map_err(|_| "REPLICATION TIMEOUT expects milliseconds")?;
                if ms == 0 {
                    return Err("REPLICATION TIMEOUT must be positive".into());
                }
                session.repl_wait_timeout = std::time::Duration::from_millis(ms);
                Ok(format!("OK replication_timeout_ms={ms}"))
            } else {
                Err("usage: SET REPLICATION WAIT 0|<n>|MAJORITY or SET REPLICATION TIMEOUT <ms>".into())
            }
        }
        "SLOWLOG" => {
            // Server-wide, like DURABILITY: one ring serves every session.
            let ms: u64 = value
                .parse()
                .map_err(|_| "SLOWLOG expects a threshold in milliseconds (0 disarms)")?;
            match session.slowlog() {
                Some(log) => {
                    log.set_threshold_millis(ms);
                    Ok(format!("OK slowlog_ms={ms}"))
                }
                None => Err("SET SLOWLOG: no slow-query log on this session".into()),
            }
        }
        other => Err(format!(
            "unknown setting '{other}' (THREADS, SEED, SAMPLES, EPSILON, DELTA, COMPILE, REUSE, DURABILITY, REPLICATION, SLOWLOG)"
        )),
    }
}

/// Execute one request line against a session.
pub fn handle_line(session: &mut Session, line: &str) -> Reply {
    let cmd = match parse_command(line) {
        Ok(c) => c,
        Err(e) => return Reply::err(e),
    };
    handle_command(session, cmd)
}

/// Execute one already-parsed command against a session (the TCP server
/// parses once to route `STREAM` to the socket writer and hands every
/// other command here).
pub fn handle_command(session: &mut Session, cmd: Command) -> Reply {
    match cmd {
        Command::Query(sql) => match session.query(&sql) {
            Ok(r) => Reply {
                text: render_table(&r.table, r.cached),
                close: false,
            },
            Err(e) => Reply::err(e),
        },
        Command::Stream(sql) => {
            // Buffered fallback for non-socket callers; the TCP server
            // calls handle_stream with the connection writer instead.
            let mut buf: Vec<u8> = Vec::new();
            match handle_stream(session, &sql, &mut buf) {
                Ok(()) => Reply {
                    text: String::from_utf8_lossy(&buf).into_owned(),
                    close: false,
                },
                Err(e) => Reply::err(e),
            }
        }
        Command::Prepare { name, sql } => match session.prepare(&name, &sql) {
            Ok(()) => Reply::line(format!("OK prepared {name}")),
            Err(e) => Reply::err(e),
        },
        Command::Exec(name) => match session.exec_prepared(&name) {
            Ok(r) => Reply {
                text: render_table(&r.table, r.cached),
                close: false,
            },
            Err(e) => Reply::err(e),
        },
        Command::Deallocate(name) => match session.deallocate(&name) {
            Ok(()) => Reply::line(format!("OK deallocated {name}")),
            Err(e) => Reply::err(e),
        },
        Command::Set { key, value } => match apply_set(session, &key, &value) {
            Ok(msg) => Reply::line(msg),
            Err(e) => Reply::err(e),
        },
        Command::Checkpoint => match session.database().checkpoint() {
            Ok(generation) => Reply::line(format!("OK checkpoint generation={generation}")),
            Err(e) => Reply::err(e),
        },
        Command::Promote => match session.replication() {
            None => Reply::err("PROMOTE: this node is not replicating"),
            Some(repl) => match repl.promote() {
                Ok(()) => Reply::line(format!(
                    "OK promoted role=primary epoch={} version={}",
                    repl.epoch(),
                    session.database().version()
                )),
                Err(e) => Reply::err(e),
            },
        },
        Command::WaitVersion {
            version,
            timeout_ms,
        } => {
            // Blocking fallback for embedded sessions; the TCP reactor
            // parks the connection through the wait hub instead of
            // holding a worker thread here.
            let timeout = timeout_ms
                .map(std::time::Duration::from_millis)
                .unwrap_or(session.repl_wait_timeout);
            match session.replication() {
                None => {
                    // A standalone node is its own (only) replica.
                    if session.database().version() >= version {
                        Reply::line(format!("OK version={}", session.database().version()))
                    } else {
                        Reply::err(format!(
                            "repl_timeout waiting for version {version} (applied {}, not replicating)",
                            session.database().version()
                        ))
                    }
                }
                Some(repl) => {
                    if repl.wait_version_blocking(version, timeout) {
                        Reply::line(format!("OK version={}", repl.applied_version()))
                    } else {
                        Reply::err(format!(
                            "repl_timeout waiting for version {version} (applied {})",
                            repl.applied_version()
                        ))
                    }
                }
            }
        }
        Command::Stats => {
            let s = session.stats();
            let durability = match session.database().durability() {
                Some(level) => format!(
                    " durability={level} wal_bytes={}",
                    session.database().wal_bytes()
                ),
                None => String::new(),
            };
            // Replicated nodes expose what read-your-writes routing and
            // failover tooling need: the served version, the role, and
            // how far behind (follower) / ahead of the slowest follower
            // (primary) this node is.
            let replication = match session.replication() {
                Some(repl) if repl.role() == "primary" => {
                    let acked_min = repl
                        .acked_min()
                        .map(|v| format!(" acked_min={v}"))
                        .unwrap_or_default();
                    let fenced = if repl.is_fenced() { " fenced=true" } else { "" };
                    format!(
                        " version={} role=primary epoch={} wait={} followers={} replication_lag={}{acked_min}{fenced}",
                        session.database().version(),
                        repl.epoch(),
                        session.repl_wait,
                        repl.follower_count(),
                        repl.replication_lag(),
                    )
                }
                Some(repl) => format!(
                    " version={} role=replica epoch={} wait={} applied_version={} replication_lag={} connected={}",
                    session.database().version(),
                    repl.epoch(),
                    session.repl_wait,
                    repl.applied_version(),
                    repl.replication_lag(),
                    repl.connected(),
                ),
                None => format!(" version={}", session.database().version()),
            };
            // Scheduler-served sessions expose the serving counters:
            // gauges (inflight/queued) plus monotonic totals
            // (admitted/rejected/batched) — what a load balancer or an
            // admission-control test needs to observe over the wire.
            let serving = match session.serving() {
                Some(counters) => {
                    let c = counters.snapshot();
                    format!(
                        " inflight={} queued={} admitted={} rejected={} batched={} capacity={}",
                        c.inflight, c.queued, c.admitted, c.rejected, c.batched, c.capacity
                    )
                }
                None => String::new(),
            };
            Reply::line(format!(
                "OK session={} queries={} cache_hits={} prepared={} threads={} seed={} samples={}..{}{durability}{replication}{serving} uptime_secs={:.0} queries_total={}",
                session.id(),
                s.queries,
                s.cache_hits,
                s.prepared,
                session.cfg.threads,
                session.cfg.world_seed,
                session.cfg.min_samples,
                session.cfg.max_samples,
                pip_obs::uptime_secs(),
                session.database().metrics().queries_total.get(),
            ))
        }
        Command::Metrics => {
            // The catalog's registry (server/engine/store/replication
            // families) plus the process-global one (sampling runtime).
            let mut text = String::new();
            session.database().obs_registry().render_into(&mut text);
            pip_obs::Registry::global().render_into(&mut text);
            text.push_str("END\n");
            Reply { text, close: false }
        }
        Command::SlowLog(n) => match session.slowlog() {
            None => Reply::err("SLOWLOG: no slow-query log on this session"),
            Some(log) => {
                let spans = log.recent(n.unwrap_or(16));
                let mut text = format!(
                    "OK {} entries threshold_ms={}\n",
                    spans.len(),
                    log.threshold_millis()
                );
                for span in &spans {
                    text.push_str(&span.render());
                    text.push('\n');
                }
                text.push_str("END\n");
                Reply { text, close: false }
            }
        },
        Command::Ping => Reply::line("PONG"),
        Command::Quit => Reply {
            text: "BYE\n".to_string(),
            close: true,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pip_engine::Database;
    use pip_sampling::SamplerConfig;
    use std::sync::Arc;

    use crate::session::SessionManager;

    fn session() -> Session {
        let mgr = SessionManager::new(Arc::new(Database::new()), SamplerConfig::default());
        mgr.open()
    }

    #[test]
    fn command_parsing() {
        assert_eq!(
            parse_command("query SELECT 1").unwrap(),
            Command::Query("SELECT 1".into())
        );
        assert_eq!(
            parse_command("PREPARE p AS SELECT * FROM t").unwrap(),
            Command::Prepare {
                name: "p".into(),
                sql: "SELECT * FROM t".into()
            }
        );
        assert_eq!(parse_command("exec p").unwrap(), Command::Exec("p".into()));
        assert_eq!(
            parse_command("SET threads 4").unwrap(),
            Command::Set {
                key: "THREADS".into(),
                value: "4".into()
            }
        );
        assert_eq!(parse_command("ping").unwrap(), Command::Ping);
        assert_eq!(parse_command("QUIT").unwrap(), Command::Quit);
        assert!(parse_command("").is_err());
        assert!(parse_command("QUERY").is_err());
        assert!(parse_command("PREPARE p SELECT 1").is_err());
        assert!(parse_command("FROBNICATE").is_err());
    }

    #[test]
    fn end_to_end_lines() {
        let mut s = session();
        let r = handle_line(&mut s, "QUERY CREATE TABLE t (x SYMBOLIC)");
        assert!(r.text.starts_with("OK"), "{}", r.text);
        handle_line(
            &mut s,
            "QUERY INSERT INTO t VALUES (create_variable('Normal', 7, 1))",
        );
        let r = handle_line(&mut s, "QUERY SELECT expected_sum(x) FROM t");
        assert!(r.text.starts_with("OK 1 rows (fresh)\n"), "{}", r.text);
        assert!(r.text.contains("expected_sum(x)"), "{}", r.text);
        assert!(r.text.trim_end().ends_with("END"), "{}", r.text);
        let r = handle_line(&mut s, "QUERY SELECT expected_sum(x) FROM t");
        assert!(r.text.starts_with("OK 1 rows (cached)"), "{}", r.text);
        let r = handle_line(&mut s, "QUERY SELECT nothing FROM ghost");
        assert!(r.text.starts_with("ERR "), "{}", r.text);
        assert!(!r.close);
        let r = handle_line(&mut s, "STATS");
        assert!(r.text.contains("cache_hits=1"), "{}", r.text);
        let r = handle_line(&mut s, "QUIT");
        assert!(r.close);
    }

    #[test]
    fn stream_frames_rows_and_hits_the_cache() {
        let mut s = session();
        handle_line(&mut s, "QUERY CREATE TABLE t (a INT)");
        handle_line(&mut s, "QUERY INSERT INTO t VALUES (1), (2), (3)");
        let r = handle_line(&mut s, "STREAM SELECT * FROM t");
        assert!(
            r.text
                .starts_with("STREAM BEGIN\na\n1\n2\n3\nEND 3 rows (fresh)"),
            "{}",
            r.text
        );
        // Same text through QUERY now hits the streamed result's cache entry.
        let r = handle_line(&mut s, "QUERY SELECT * FROM t");
        assert!(r.text.starts_with("OK 3 rows (cached)"), "{}", r.text);
        // And STREAM replays cached results too.
        let r = handle_line(&mut s, "STREAM SELECT * FROM t");
        assert!(
            r.text.trim_end().ends_with("END 3 rows (cached)"),
            "{}",
            r.text
        );
        // Errors keep the ERR framing.
        let r = handle_line(&mut s, "STREAM SELECT * FROM ghost");
        assert!(r.text.starts_with("ERR "), "{}", r.text);
        assert!(parse_command("STREAM").is_err());
    }

    #[test]
    fn analyze_and_json_explain_over_the_wire() {
        let mut s = session();
        handle_line(&mut s, "QUERY CREATE TABLE t (a INT, b SYMBOLIC)");
        handle_line(
            &mut s,
            "QUERY INSERT INTO t VALUES (1, create_variable('Normal', 5, 1)), (2, 3.5)",
        );
        // Bare protocol ANALYZE routes through the SQL layer.
        let r = handle_line(&mut s, "ANALYZE t");
        assert!(r.text.starts_with("OK 1 rows"), "{}", r.text);
        assert!(r.text.contains("symbolic_cells"), "{}", r.text);
        assert!(r.text.contains("'t'\t2\t2\t1"), "{}", r.text);
        let r = handle_line(&mut s, "ANALYZE");
        assert!(r.text.starts_with("OK 1 rows"), "{}", r.text);
        let r = handle_line(&mut s, "ANALYZE ghost");
        assert!(r.text.starts_with("ERR "), "{}", r.text);
        // The server is self-profiling: JSON EXPLAIN over the wire.
        let r = handle_line(
            &mut s,
            "QUERY EXPLAIN (ANALYZE, FORMAT JSON) SELECT expected_sum(b) FROM t WHERE a > 0",
        );
        assert!(r.text.contains("\"est_rows\":"), "{}", r.text);
        assert!(r.text.contains("\"self_secs\":"), "{}", r.text);
        assert!(r.text.contains("\"analyzed\":true"), "{}", r.text);
    }

    #[test]
    fn set_validation() {
        let mut s = session();
        assert!(handle_line(&mut s, "SET THREADS 4").text.starts_with("OK"));
        assert_eq!(s.cfg.threads, 4);
        assert!(handle_line(&mut s, "SET SEED 99").text.starts_with("OK"));
        assert_eq!(s.cfg.world_seed, 99);
        assert!(handle_line(&mut s, "SET SAMPLES 500")
            .text
            .starts_with("OK"));
        assert_eq!((s.cfg.min_samples, s.cfg.max_samples), (500, 500));
        assert!(handle_line(&mut s, "SET SAMPLES 0").text.starts_with("ERR"));
        assert!(handle_line(&mut s, "SET EPSILON 2").text.starts_with("ERR"));
        assert!(handle_line(&mut s, "SET COMPILE OFF")
            .text
            .contains("compile=false"));
        assert!(!s.cfg.compile);
        assert!(handle_line(&mut s, "SET COMPILE on")
            .text
            .contains("compile=true"));
        assert!(s.cfg.compile);
        assert!(handle_line(&mut s, "SET REUSE 0")
            .text
            .contains("reuse=false"));
        assert!(!s.cfg.reuse_blocks);
        assert!(handle_line(&mut s, "SET REUSE maybe")
            .text
            .starts_with("ERR"));
        assert!(handle_line(&mut s, "SET BOGUS 1").text.starts_with("ERR"));
        assert!(handle_line(&mut s, "SET THREADS x").text.starts_with("ERR"));
    }
}
