//! A small least-recently-used cache for per-session state (prepared
//! statements, sampled query results).
//!
//! Capacities are tens of entries, so the implementation favours
//! simplicity: a `HashMap` of values stamped with a logical clock, with
//! `O(capacity)` eviction of the stalest entry on overflow.

use std::collections::HashMap;
use std::hash::Hash;

/// Bounded LRU map.
#[derive(Debug)]
pub struct Lru<K, V> {
    capacity: usize,
    clock: u64,
    entries: HashMap<K, (V, u64)>,
}

impl<K: Eq + Hash + Clone, V> Lru<K, V> {
    /// A cache holding at most `capacity` entries (`0` disables caching).
    pub fn new(capacity: usize) -> Self {
        Lru {
            capacity,
            clock: 0,
            entries: HashMap::with_capacity(capacity.min(64)),
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Fetch and mark as most recently used.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        self.clock += 1;
        let clock = self.clock;
        self.entries.get_mut(key).map(|(v, stamp)| {
            *stamp = clock;
            &*v
        })
    }

    /// Insert (or replace), evicting the least-recently-used entry when
    /// over capacity. Returns the evicted key, if any.
    pub fn put(&mut self, key: K, value: V) -> Option<K> {
        if self.capacity == 0 {
            return None;
        }
        self.clock += 1;
        self.entries.insert(key, (value, self.clock));
        if self.entries.len() <= self.capacity {
            return None;
        }
        let stalest = self
            .entries
            .iter()
            .min_by_key(|(_, (_, stamp))| *stamp)
            .map(|(k, _)| k.clone())?;
        self.entries.remove(&stalest);
        Some(stalest)
    }

    /// Remove one entry.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        self.entries.remove(key).map(|(v, _)| v)
    }

    /// Drop every entry.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used() {
        let mut lru = Lru::new(2);
        assert_eq!(lru.put("a", 1), None);
        assert_eq!(lru.put("b", 2), None);
        assert_eq!(lru.get(&"a"), Some(&1)); // refresh a → b is stalest
        assert_eq!(lru.put("c", 3), Some("b"));
        assert_eq!(lru.get(&"b"), None);
        assert_eq!(lru.get(&"a"), Some(&1));
        assert_eq!(lru.get(&"c"), Some(&3));
        assert_eq!(lru.len(), 2);
    }

    #[test]
    fn replace_does_not_grow() {
        let mut lru = Lru::new(2);
        lru.put("a", 1);
        lru.put("a", 2);
        assert_eq!(lru.len(), 1);
        assert_eq!(lru.get(&"a"), Some(&2));
    }

    #[test]
    fn zero_capacity_disables() {
        let mut lru = Lru::new(0);
        lru.put("a", 1);
        assert!(lru.is_empty());
        assert_eq!(lru.get(&"a"), None);
    }
}
