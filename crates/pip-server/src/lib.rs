//! # pip-server
//!
//! The concurrent query service over the PIP probabilistic database
//! (Kennedy & Koch, ICDE 2010 — see the workspace root for the full
//! reproduction):
//!
//! * [`session`] — client sessions sharing one internally-synchronized
//!   [`pip_engine::Database`], each with a per-session
//!   [`pip_sampling::SamplerConfig`], a prepared-statement LRU and a
//!   sample-result LRU keyed on the catalog version (mutations
//!   invalidate by construction);
//! * [`protocol`] — the line-oriented request/response protocol
//!   (`QUERY` / `PREPARE` / `EXEC` / `SET` / `STATS`);
//! * [`scheduler`] — the bounded query-execution fleet shared by every
//!   connection, with per-query admission control (`ERR busy` past
//!   capacity) and cross-session dedup of identical in-flight sampling
//!   work;
//! * [`server`] — the TCP front-end: a nonblocking epoll reactor owns
//!   every socket (pipelined request decoding from partial reads,
//!   batched write flushes, no per-connection OS thread), one session
//!   per connection.
//!
//! Sampling heads execute on the deterministic parallel Monte-Carlo
//! runtime ([`pip_sampling::parallel`]): `SET THREADS n` changes
//! wall-clock time, never results, which is also why cached results
//! survive thread-count changes.
//!
//! ```
//! use std::io::{BufRead, BufReader, Write};
//! use std::net::TcpStream;
//! use std::sync::Arc;
//!
//! use pip_engine::Database;
//! use pip_server::server::{serve, ServerOptions};
//!
//! let handle = serve(
//!     Arc::new(Database::new()),
//!     "127.0.0.1:0",
//!     ServerOptions::default(),
//! )
//! .unwrap();
//! let mut conn = TcpStream::connect(handle.addr()).unwrap();
//! let mut reader = BufReader::new(conn.try_clone().unwrap());
//! let mut banner = String::new();
//! reader.read_line(&mut banner).unwrap();
//! conn.write_all(b"PING\n").unwrap();
//! let mut reply = String::new();
//! reader.read_line(&mut reply).unwrap();
//! assert_eq!(reply.trim(), "PONG");
//! handle.shutdown();
//! ```

pub mod lru;
pub mod protocol;
mod reactor;
pub mod scheduler;
pub mod server;
pub mod session;

pub use lru::Lru;
pub use protocol::{handle_line, parse_command, Command, Reply};
pub use scheduler::{DedupMap, ServingCounters, ServingSnapshot};
pub use server::{serve, ServerHandle, ServerOptions};
pub use session::{QueryReply, ReplWait, Session, SessionManager, SessionStats};

// The parallel runtime the service executes on, re-exported for callers
// that talk to the engine directly.
pub use pip_sampling::parallel::ParallelSampler;
