//! Observability integration tests: the `METRICS` verb and the HTTP
//! scrape endpoint expose the same families across every layer, the
//! slow-query log captures per-phase breakdowns, `STATS` reports
//! registry-backed totals, and — the load-bearing invariant — admission
//! accounting balances exactly under concurrent pipelined load.

use std::collections::BTreeSet;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use pip_engine::Database;
use pip_replica::Replication;
use pip_server::server::{serve, ServerOptions};
use proptest::prelude::*;

/// A line-protocol test client.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        let mut c = Client {
            reader: BufReader::new(stream.try_clone().expect("clone")),
            writer: stream,
        };
        let banner = c.read_line();
        assert!(banner.starts_with("PIP server ready"), "{banner}");
        c
    }

    fn read_line(&mut self) -> String {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read");
        line.trim_end().to_string()
    }

    /// One reply: a single line, or the `OK ... END` block for result
    /// sets.
    fn read_reply(&mut self) -> String {
        let first = self.read_line();
        let mut text = format!("{first}\n");
        if first.starts_with("OK") && first.contains(" rows ") {
            loop {
                let line = self.read_line();
                text.push_str(&line);
                text.push('\n');
                if line == "END" {
                    break;
                }
            }
        }
        text
    }

    fn send(&mut self, cmd: &str) -> String {
        self.writer
            .write_all(format!("{cmd}\n").as_bytes())
            .expect("write");
        self.read_reply()
    }

    /// Send a command whose reply is a free-form block terminated by a
    /// bare `END` line (`METRICS`, `SLOWLOG`).
    fn send_block(&mut self, cmd: &str) -> Vec<String> {
        self.writer
            .write_all(format!("{cmd}\n").as_bytes())
            .expect("write");
        let mut lines = Vec::new();
        loop {
            let line = self.read_line();
            if line == "END" {
                return lines;
            }
            assert!(
                !line.starts_with("ERR"),
                "unexpected error from {cmd}: {line}"
            );
            lines.push(line);
        }
    }
}

fn setup_catalog(c: &mut Client) {
    let r = c.send("QUERY CREATE TABLE t (g TEXT, x SYMBOLIC)");
    assert!(r.starts_with("OK"), "{r}");
    let r = c.send(
        "QUERY INSERT INTO t VALUES \
         ('a', create_variable('Normal', 10, 2)), \
         ('b', create_variable('Normal', 20, 3)), \
         ('a', create_variable('Uniform', 0, 5))",
    );
    assert!(r.starts_with("OK"), "{r}");
}

const GROUPED: &str = "QUERY SELECT g, expected_sum(x), conf() FROM t WHERE x > 8 GROUP BY g";

/// Family names from Prometheus exposition text: the second word of
/// every `# TYPE <name> <kind>` line.
fn families(lines: impl Iterator<Item = String>) -> BTreeSet<String> {
    lines
        .filter_map(|l| {
            l.strip_prefix("# TYPE ")
                .and_then(|rest| rest.split_whitespace().next().map(str::to_string))
        })
        .collect()
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("pip-server-obs-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

// ---------------------------------------------------------------------
// Exposition: METRICS verb and HTTP scrape.
// ---------------------------------------------------------------------

/// A durable, replicating server exposes the same metric families over
/// the `METRICS` verb and the `GET /metrics` scrape endpoint — and they
/// cover every layer: server, engine, sampling runtime, store, and
/// replication.
#[test]
fn metrics_verb_and_http_scrape_expose_the_same_families() {
    let dir = temp_dir("scrape");
    let (db, _) = Database::recover(&dir).expect("recover");
    let db = Arc::new(db);
    let repl = Replication::primary(Arc::clone(&db), "127.0.0.1:0").expect("replication");
    let server = serve(
        db,
        "127.0.0.1:0",
        ServerOptions {
            replication: Some(Arc::new(repl)),
            metrics_addr: Some("127.0.0.1:0".to_string()),
            ..ServerOptions::default()
        },
    )
    .expect("bind server");

    let mut c = Client::connect(server.addr());
    setup_catalog(&mut c);
    // Run a query so the sampling runtime registers its process-global
    // families too.
    let r = c.send(GROUPED);
    assert!(r.starts_with("OK"), "{r}");

    let verb = families(c.send_block("METRICS").into_iter());
    for prefix in [
        "pip_server_",
        "pip_engine_",
        "pip_sampling_",
        "pip_store_",
        "pip_replica_",
    ] {
        assert!(
            verb.iter().any(|f| f.starts_with(prefix)),
            "METRICS exposes no {prefix}* family: {verb:?}"
        );
    }

    // The scrape endpoint answers the very same exposition.
    let addr = server.metrics_addr().expect("metrics addr");
    let mut http = TcpStream::connect(addr).expect("connect scrape");
    http.write_all(b"GET /metrics HTTP/1.0\r\n\r\n")
        .expect("GET");
    let mut raw = String::new();
    http.read_to_string(&mut raw).expect("scrape body");
    assert!(raw.starts_with("HTTP/1.0 200 OK\r\n"), "{raw}");
    let (head, body) = raw.split_once("\r\n\r\n").expect("header/body split");
    assert!(
        head.contains("Content-Type: text/plain"),
        "missing content type: {head}"
    );
    let scraped = families(body.lines().map(str::to_string));
    assert_eq!(scraped, verb, "scrape and METRICS families differ");

    // Counter values are rendered: admission totals must be present and
    // the catalog's query total must have counted the query above.
    assert!(body.contains("pip_server_admitted_total"), "{body}");
    assert!(!body.contains("pip_engine_queries_total 0\n"), "{body}");

    // Unknown paths get a 404 and the connection still closes cleanly.
    let mut http = TcpStream::connect(addr).expect("connect scrape");
    http.write_all(b"GET /nope HTTP/1.0\r\n\r\n").expect("GET");
    let mut raw = String::new();
    http.read_to_string(&mut raw).expect("404 body");
    assert!(raw.starts_with("HTTP/1.0 404"), "{raw}");

    drop(c);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Without `metrics_addr` no scrape listener is bound, and the verb
/// still works against a memory-only catalog (no store / replication
/// families — just server, engine, and sampling).
#[test]
fn metrics_verb_works_without_scrape_listener() {
    let server = serve(
        Arc::new(Database::new()),
        "127.0.0.1:0",
        ServerOptions::default(),
    )
    .expect("bind server");
    assert!(server.metrics_addr().is_none());

    let mut c = Client::connect(server.addr());
    setup_catalog(&mut c);
    let r = c.send(GROUPED);
    assert!(r.starts_with("OK"), "{r}");

    let verb = families(c.send_block("METRICS").into_iter());
    for prefix in ["pip_server_", "pip_engine_", "pip_sampling_"] {
        assert!(
            verb.iter().any(|f| f.starts_with(prefix)),
            "METRICS exposes no {prefix}* family: {verb:?}"
        );
    }
    assert!(
        !verb.iter().any(|f| f.starts_with("pip_store_")),
        "memory-only catalog grew store families: {verb:?}"
    );
}

// ---------------------------------------------------------------------
// Slow-query log.
// ---------------------------------------------------------------------

/// Arming `SET SLOWLOG` captures spans with the full per-phase
/// breakdown; `SET SLOWLOG 0` disarms and clears the ring.
#[test]
fn slowlog_captures_per_phase_breakdowns() {
    let server = serve(
        Arc::new(Database::new()),
        "127.0.0.1:0",
        ServerOptions::default(),
    )
    .expect("bind server");
    let mut c = Client::connect(server.addr());
    setup_catalog(&mut c);

    // Armed at 0ms threshold... no: 0 disarms. Use a 1ms threshold and a
    // sample count big enough that the query always crosses it.
    assert_eq!(c.send("SET SLOWLOG 1"), "OK slowlog_ms=1\n");
    assert_eq!(c.send("SET SAMPLES 60000"), "OK samples=60000\n");
    let r = c.send(GROUPED);
    assert!(r.starts_with("OK"), "{r}");

    let lines = c.send_block("SLOWLOG");
    assert!(
        lines[0].starts_with("OK ") && lines[0].contains("entries threshold_ms=1"),
        "{:?}",
        lines[0]
    );
    assert!(lines.len() >= 2, "no spans captured: {lines:?}");
    let span = &lines[1];
    for field in [
        "session=",
        "parse=",
        "optimize=",
        "execute=",
        "sample=",
        "rows=",
        "cache_hit=",
        "dedup_follower=",
        "admission_wait=",
        "park=",
        "sql=",
    ] {
        assert!(span.contains(field), "span lacks {field}: {span}");
    }
    assert!(
        span.contains("sql=SELECT g, expected_sum(x)"),
        "span sql mismatch: {span}"
    );
    // The query really did sample: the sample phase is nonzero and the
    // two groups came back.
    assert!(!span.contains("sample=0.000ms"), "{span}");
    assert!(span.contains("rows=2"), "{span}");

    // Disarm: the ring clears and nothing further is captured.
    assert_eq!(c.send("SET SLOWLOG 0"), "OK slowlog_ms=0\n");
    let r = c.send(GROUPED);
    assert!(r.starts_with("OK"), "{r}");
    let lines = c.send_block("SLOWLOG 5");
    assert_eq!(lines.len(), 1, "{lines:?}");
    assert!(lines[0].starts_with("OK 0 entries"), "{:?}", lines[0]);
}

// ---------------------------------------------------------------------
// STATS rides on the registry.
// ---------------------------------------------------------------------

/// `STATS` renders its totals from the same registry the scrape reads:
/// `queries_total=` counts engine executions and `uptime_secs=` is
/// present and sane.
#[test]
fn stats_reports_registry_backed_totals() {
    let server = serve(
        Arc::new(Database::new()),
        "127.0.0.1:0",
        ServerOptions::default(),
    )
    .expect("bind server");
    let mut c = Client::connect(server.addr());
    setup_catalog(&mut c);

    let field = |stats: &str, key: &str| -> u64 {
        stats
            .split_whitespace()
            .find_map(|w| w.strip_prefix(key))
            .unwrap_or_else(|| panic!("STATS lacks {key}: {stats}"))
            .parse::<f64>()
            .unwrap_or_else(|_| panic!("unparsable {key} in: {stats}")) as u64
    };

    let before = c.send("STATS");
    assert!(before.starts_with("OK session="), "{before}");
    let queries_before = field(&before, "queries_total=");
    let _ = field(&before, "uptime_secs="); // present and numeric

    let r = c.send(GROUPED);
    assert!(r.starts_with("OK"), "{r}");

    let after = c.send("STATS");
    let queries_after = field(&after, "queries_total=");
    assert!(
        queries_after > queries_before,
        "queries_total did not advance: {queries_before} -> {queries_after}"
    );
}

// ---------------------------------------------------------------------
// The admission-accounting invariant.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Every admitted command is exactly one of completed, cancelled,
    /// inflight, or queued — `admitted == completed + cancelled +
    /// inflight + queued` — and every expensive command is exactly one
    /// of admitted or rejected. Checked while concurrent pipelined
    /// clients hammer a tiny admission queue at 1, 2, and 4 scheduler
    /// workers, and exactly at quiescence.
    #[test]
    fn admission_accounting_balances_under_pipelined_load(
        plan in prop::collection::vec(0usize..4, 12..30),
        nclients in 2usize..4,
    ) {
        for workers in [1usize, 2, 4] {
            let server = serve(
                Arc::new(Database::new()),
                "127.0.0.1:0",
                ServerOptions {
                    workers,
                    // A tiny admission bound so rejects genuinely happen.
                    queue_capacity: 2,
                    ..ServerOptions::default()
                },
            )
            .expect("bind server");
            let addr = server.addr();
            let mut setup = Client::connect(addr);
            setup_catalog(&mut setup);
            // The catalog setup itself went through admission; measure
            // the load phase as a delta from here.
            let base = server.serving();

            let stop = AtomicUsize::new(0);
            let violations = AtomicUsize::new(0);
            let busy_total = AtomicUsize::new(0);
            let expensive_total = AtomicUsize::new(0);

            std::thread::scope(|scope| {
                // Mid-flight monitor: counters race, but a completion
                // observed *before* reading `admitted` can never exceed
                // it — completions only happen to admitted commands.
                scope.spawn(|| {
                    while stop.load(Ordering::Acquire) == 0 {
                        let done = {
                            let s = server.serving();
                            s.completed + s.cancelled
                        };
                        let admitted_after = server.serving().admitted;
                        if done > admitted_after {
                            violations.fetch_add(1, Ordering::Relaxed);
                        }
                        std::thread::yield_now();
                    }
                });

                let mut handles = Vec::new();
                for i in 0..nclients {
                    let plan = &plan;
                    let busy_total = &busy_total;
                    let expensive_total = &expensive_total;
                    handles.push(scope.spawn(move || {
                        // Per-client seed: distinct dedup keys, so the
                        // clients contend instead of all drafting behind
                        // one leader.
                        let mut script = vec![format!("SET SEED {i}")];
                        for &v in plan {
                            script.push(match v {
                                0 => "PING".to_string(),
                                _ => GROUPED.to_string(),
                            });
                        }
                        let expensive =
                            script.iter().filter(|s| s.starts_with("QUERY")).count();
                        expensive_total.fetch_add(expensive, Ordering::Relaxed);

                        // The whole script in one write: a pipelined burst.
                        let mut c = Client::connect(addr);
                        c.writer
                            .write_all(script.join("\n").as_bytes())
                            .and_then(|_| c.writer.write_all(b"\n"))
                            .expect("write script");
                        let mut busy = 0usize;
                        for _ in &script {
                            if c.read_reply().starts_with("ERR busy") {
                                busy += 1;
                            }
                        }
                        busy_total.fetch_add(busy, Ordering::Relaxed);
                    }));
                }
                for h in handles {
                    h.join().expect("client thread");
                }
                stop.store(1, Ordering::Release);
            });

            // Quiesce: every reply has been read, so nothing should stay
            // queued or inflight for long.
            let deadline = Instant::now() + Duration::from_secs(10);
            while Instant::now() < deadline {
                let s = server.serving();
                if s.queued == 0 && s.inflight == 0 {
                    break;
                }
                std::thread::sleep(Duration::from_millis(5));
            }

            let s = server.serving();
            prop_assert!(
                s.queued == 0 && s.inflight == 0,
                "workers={workers} did not quiesce: {s:?}"
            );
            // The invariant at quiescence: inflight and queued are zero,
            // so admitted must equal completed + cancelled exactly.
            prop_assert!(
                s.admitted == s.completed + s.cancelled,
                "workers={workers} accounting imbalance: {s:?}"
            );
            // Every expensive command was admitted or rejected...
            prop_assert!(
                (s.admitted - base.admitted) + (s.rejected - base.rejected)
                    == expensive_total.load(Ordering::Relaxed) as u64,
                "workers={workers} lost commands: {s:?} (base {base:?})"
            );
            // ...and every rejection was answered `ERR busy`.
            prop_assert!(
                s.rejected - base.rejected == busy_total.load(Ordering::Relaxed) as u64,
                "workers={workers} reject/busy mismatch: {s:?} (base {base:?})"
            );
            prop_assert!(
                violations.load(Ordering::Relaxed) == 0,
                "workers={workers}: mid-flight accounting violations"
            );
        }
    }
}
