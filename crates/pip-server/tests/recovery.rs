//! Crash-recovery integration tests: a real `pip-serverd` process over a
//! real data directory, killed hard (SIGKILL) and restarted.
//!
//! The headline property is the acceptance criterion of the durability
//! PR: after a kill, reopening the data directory replays snapshot + WAL
//! and the fig6/fig7a-flavoured workloads return **bit-identical**
//! results to the pre-crash run — same rendered rows, byte for byte
//! (variable identities, parameters and row order all round-trip, and
//! sampling is a pure function of those plus the seed).

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

/// A line-protocol test client (mirrors `tests/service.rs`).
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: &str) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        let mut c = Client {
            reader: BufReader::new(stream.try_clone().expect("clone")),
            writer: stream,
        };
        let banner = c.read_line();
        assert!(banner.starts_with("PIP server ready"), "{banner}");
        c
    }

    fn read_line(&mut self) -> String {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read");
        line.trim_end().to_string()
    }

    fn send(&mut self, cmd: &str) -> Vec<String> {
        self.writer
            .write_all(format!("{cmd}\n").as_bytes())
            .expect("write");
        let first = self.read_line();
        let mut lines = vec![first.clone()];
        if first.starts_with("OK") && first.contains(" rows ") {
            loop {
                let line = self.read_line();
                let done = line == "END";
                lines.push(line);
                if done {
                    break;
                }
            }
        }
        lines
    }

    fn ok(&mut self, cmd: &str) -> Vec<String> {
        let reply = self.send(cmd);
        assert!(reply[0].starts_with("OK"), "{cmd} -> {reply:?}");
        reply
    }
}

struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    fn spawn(data_dir: &std::path::Path, extra: &[&str]) -> Daemon {
        let mut child = Command::new(env!("CARGO_BIN_EXE_pip-serverd"))
            .arg("--addr")
            .arg("127.0.0.1:0")
            .arg("--data-dir")
            .arg(data_dir)
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn pip-serverd");
        let stdout = child.stdout.take().expect("stdout piped");
        let mut lines = BufReader::new(stdout);
        let mut line = String::new();
        lines.read_line(&mut line).expect("read LISTENING line");
        let addr = line
            .strip_prefix("LISTENING ")
            .unwrap_or_else(|| panic!("unexpected banner {line:?}"))
            .trim()
            .to_string();
        Daemon { child, addr }
    }

    /// SIGKILL — no shutdown handling runs, exactly like a crash.
    fn kill(mut self) {
        self.child.kill().expect("kill");
        self.child.wait().expect("wait");
    }
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("pip-server-recovery-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The fig6/fig7a-flavoured workload: a symbolic join base (orders ×
/// shipping with Normal prices and durations) plus a group-by RMS-style
/// aggregate over it.
fn load_workload(c: &mut Client) {
    c.ok("QUERY CREATE TABLE orders (cust TEXT, ship_to TEXT, price SYMBOLIC)");
    c.ok("QUERY CREATE TABLE shipping (dest TEXT, duration SYMBOLIC)");
    c.ok("QUERY INSERT INTO shipping VALUES \
         ('NY', create_variable('Normal', 5, 2)), \
         ('LA', create_variable('Normal', 9, 2)), \
         ('SF', create_variable('Exponential', 0.2))");
    for i in 0..8 {
        let dest = ["NY", "LA", "SF"][i % 3];
        let mu = 50 + 10 * i;
        c.ok(&format!(
            "QUERY INSERT INTO orders VALUES \
             ('c{i}', '{dest}', create_variable('Normal', {mu}, 7))"
        ));
    }
}

/// The query half of the workload (fig6-style join, fig7a-style
/// group-by, a confidence head) — returns every reply block verbatim.
fn run_queries(c: &mut Client) -> Vec<Vec<String>> {
    [
        "QUERY SELECT expected_sum(price) FROM orders, shipping \
         WHERE ship_to = dest AND duration >= 7",
        "QUERY SELECT ship_to, expected_avg(price) FROM orders GROUP BY ship_to",
        "QUERY SELECT conf() FROM orders, shipping WHERE ship_to = dest AND duration >= 7",
        "QUERY SELECT cust, price FROM orders WHERE ship_to = 'NY'",
    ]
    .iter()
    .map(|q| c.ok(q))
    .collect()
}

#[test]
fn kill_and_recover_is_bit_identical() {
    let dir = tmp_dir("bitident");

    // Phase 1: load, checkpoint mid-way, keep mutating (so recovery
    // exercises snapshot *plus* WAL suffix), query, then die hard.
    let daemon = Daemon::spawn(&dir, &[]);
    let before;
    {
        let mut c = Client::connect(&daemon.addr);
        load_workload(&mut c);
        let reply = c.ok("CHECKPOINT");
        assert!(reply[0].contains("generation=1"), "{reply:?}");
        c.ok("QUERY INSERT INTO orders VALUES ('late', 'NY', create_variable('Normal', 200, 1))");
        before = run_queries(&mut c);
        let stats = c.ok("STATS");
        assert!(stats[0].contains("durability=WAL"), "{stats:?}");
    }
    daemon.kill();

    // Phase 2: restart from the data directory; the same queries must
    // render byte-identically.
    let daemon = Daemon::spawn(&dir, &[]);
    {
        let mut c = Client::connect(&daemon.addr);
        let after = run_queries(&mut c);
        assert_eq!(
            before, after,
            "recovered results diverge from pre-crash run"
        );
        // The service keeps working: new mutations and queries land.
        c.ok("QUERY INSERT INTO orders VALUES ('post', 'LA', create_variable('Normal', 10, 1))");
        let grown = c.ok("QUERY SELECT cust FROM orders");
        assert!(grown[0].starts_with("OK 10 rows"), "{grown:?}");
    }
    daemon.kill();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn index_survives_kill_and_serves_identical_rows() {
    let dir = tmp_dir("index");
    let q = "QUERY SELECT k, v FROM m WHERE k >= 10 AND k < 40";
    let daemon = Daemon::spawn(&dir, &[]);
    let before;
    {
        let mut c = Client::connect(&daemon.addr);
        c.ok("QUERY CREATE TABLE m (k INT, v FLOAT)");
        for i in 0..60 {
            c.ok(&format!(
                "QUERY INSERT INTO m VALUES ({}, {}.5)",
                (i * 13) % 97,
                i
            ));
        }
        c.ok("QUERY CREATE INDEX idx_mk ON m (k)");
        // Maintenance after creation: these rows land via the
        // incremental append path, not the initial build.
        c.ok("QUERY INSERT INTO m VALUES (11, 1000.0), (200, 0.25)");
        c.ok("QUERY ANALYZE m");
        before = c.ok(q);
    }
    daemon.kill();

    let daemon = Daemon::spawn(&dir, &[]);
    {
        let mut c = Client::connect(&daemon.addr);
        // The index definition survived recovery...
        let plan = c.ok("QUERY EXPLAIN SELECT k, v FROM m WHERE k >= 10 AND k < 40");
        let text = plan.join("\n");
        assert!(text.contains("idx_mk"), "index path not chosen:\n{text}");
        // ...and serves exactly the pre-crash rows.
        let after = c.ok(q);
        assert_eq!(before, after, "recovered index rows diverge");
        // DROP INDEX works post-recovery and the scan still answers.
        c.ok("QUERY DROP INDEX idx_mk");
        let after = c.ok(q);
        assert_eq!(before, after, "post-drop rows diverge");
    }
    daemon.kill();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn hard_kill_mid_workload_keeps_an_exact_prefix() {
    let dir = tmp_dir("prefix");
    let daemon = Daemon::spawn(&dir, &["--durability", "sync"]);
    let total = 200;
    {
        let mut c = Client::connect(&daemon.addr);
        c.ok("QUERY CREATE TABLE seq (i INT)");
        // Fire the whole insert stream pipelined, reading no replies —
        // then kill the server while it is chewing through them.
        let mut batch = String::new();
        for i in 0..total {
            batch.push_str(&format!("QUERY INSERT INTO seq VALUES ({i})\n"));
        }
        c.writer.write_all(batch.as_bytes()).expect("write batch");
        c.writer.flush().expect("flush");
        std::thread::sleep(Duration::from_millis(30));
    }
    daemon.kill();

    let daemon = Daemon::spawn(&dir, &[]);
    {
        let mut c = Client::connect(&daemon.addr);
        let reply = c.ok("QUERY SELECT i FROM seq");
        // reply = ["OK n rows (fresh)", header, rows..., "END"]
        let rows = &reply[2..reply.len() - 1];
        assert!(
            rows.len() <= total,
            "recovered more rows than were inserted"
        );
        // WAL order == apply order: what survives is an *exact prefix*
        // of the insert stream, never a row with a hole before it.
        for (expect, got) in rows.iter().enumerate() {
            assert_eq!(got, &expect.to_string(), "non-prefix recovery: {reply:?}");
        }
    }
    daemon.kill();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn background_checkpoint_compacts_the_wal() {
    let dir = tmp_dir("bgckpt");
    // A 1-byte trigger: every mutation makes the WAL eligible, so the
    // poller (100 ms) checkpoints it away almost immediately.
    let daemon = Daemon::spawn(&dir, &["--checkpoint-bytes", "1"]);
    {
        let mut c = Client::connect(&daemon.addr);
        c.ok("QUERY CREATE TABLE t (a INT)");
        c.ok("QUERY INSERT INTO t VALUES (1), (2), (3)");
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            let stats = c.ok("STATS");
            if stats[0].contains("wal_bytes=0") {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "background checkpoint never ran: {stats:?}"
            );
            std::thread::sleep(Duration::from_millis(50));
        }
    }
    daemon.kill();
    // The snapshot the background checkpointer wrote must recover.
    let daemon = Daemon::spawn(&dir, &[]);
    {
        let mut c = Client::connect(&daemon.addr);
        let reply = c.ok("QUERY SELECT expected_sum(a) FROM t");
        assert_eq!(reply[2], "6", "{reply:?}");
    }
    daemon.kill();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn durability_off_skips_logging_until_reenabled() {
    let dir = tmp_dir("offon");
    let daemon = Daemon::spawn(&dir, &[]);
    {
        let mut c = Client::connect(&daemon.addr);
        c.ok("SET DURABILITY OFF");
        c.ok("QUERY CREATE TABLE t (a INT)");
        c.ok("QUERY INSERT INTO t VALUES (7)");
        let stats = c.ok("STATS");
        assert!(stats[0].contains("durability=OFF wal_bytes=0"), "{stats:?}");
        // Re-enabling folds the unlogged mutations into a snapshot.
        c.ok("SET DURABILITY SYNC");
        c.ok("QUERY INSERT INTO t VALUES (8)");
        let bad = c.send("SET DURABILITY sideways");
        assert!(bad[0].starts_with("ERR"), "{bad:?}");
    }
    daemon.kill();
    let daemon = Daemon::spawn(&dir, &[]);
    {
        let mut c = Client::connect(&daemon.addr);
        let reply = c.ok("QUERY SELECT expected_sum(a) FROM t");
        assert_eq!(reply[2], "15", "{reply:?}");
    }
    daemon.kill();
    std::fs::remove_dir_all(&dir).unwrap();
}
